//! Crash-recovery property suite.
//!
//! The matrix: every named injection point (panic *and* torn where the
//! site persists multiple words) × 1..=8 concurrent allocator threads
//! × fixed seeds, plus randomized `FaultPlan::seeded_alloc` mixes. Each
//! case runs a mixed single-frame/range workload until the injector
//! kills the machine, then remounts the media, recovers, and asserts
//! the headline invariants:
//!
//! * **no lost frames** — every frame whose operation returned `Ok` is
//!   durably allocated after recovery, and every other frame can be
//!   allocated again (the region drains to exactly its capacity);
//! * **no double-allocated frames** — no frame is ever owned twice,
//!   live or across the crash.
//!
//! The ownership oracle is exact because the allocator's contract is
//! exact: an operation took durable effect if and only if it returned
//! `Ok`. Interrupted journalled operations are always rolled back,
//! never rolled forward.

use std::collections::HashSet;
use std::sync::{Arc, Barrier};
use std::thread;

use nvsim_alloc::{
    words_for, AllocError, Arena, NvAllocator, INJECTION_POINTS, TORN_POINTS,
};
use nvsim_faults::{FaultInjector, FaultPlan};

/// 4 trees (one partial) and a partial final bitfield word, so tree
/// seams and padding bits are both in play.
const FRAMES: u64 = 1620;
/// Operations attempted per worker thread.
const OPS: usize = 400;

/// Deterministic per-thread RNG (same family the faults crate uses).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// What one worker durably owns when it stops: single frames and
/// contiguous ranges for which the allocator returned `Ok` (minus the
/// ones it successfully freed).
struct Owned {
    frames: Vec<u64>,
    ranges: Vec<(u64, u64)>,
}

fn worker(alloc: NvAllocator, seed: u64, ops: usize) -> Owned {
    let mut rng = Lcg(seed);
    let mut owned = Owned {
        frames: Vec::new(),
        ranges: Vec::new(),
    };
    for _ in 0..ops {
        match rng.below(100) {
            // Single-frame allocation.
            0..=49 => match alloc.alloc() {
                Ok(f) => owned.frames.push(f),
                Err(AllocError::Crashed { .. }) => break,
                Err(AllocError::OutOfMemory) => {}
                Err(e) => panic!("alloc: unexpected {e}"),
            },
            // Single-frame free of something we own.
            50..=79 => {
                if owned.frames.is_empty() {
                    continue;
                }
                let i = rng.below(owned.frames.len() as u64) as usize;
                let f = owned.frames.swap_remove(i);
                match alloc.free(f) {
                    Ok(()) => {}
                    Err(AllocError::Crashed { .. }) => {
                        // The free did not take effect: still ours.
                        owned.frames.push(f);
                        break;
                    }
                    Err(e) => panic!("free({f}): unexpected {e}"),
                }
            }
            // Contiguous range allocation.
            80..=89 => {
                let len = 1 + rng.below(24);
                match alloc.alloc_range(len) {
                    Ok(s) => owned.ranges.push((s, len)),
                    Err(AllocError::Crashed { .. }) => break,
                    Err(AllocError::OutOfMemory) => {}
                    Err(e) => panic!("alloc_range({len}): unexpected {e}"),
                }
            }
            // Range free of a range we own.
            _ => {
                if owned.ranges.is_empty() {
                    continue;
                }
                let i = rng.below(owned.ranges.len() as u64) as usize;
                let (s, l) = owned.ranges.swap_remove(i);
                match alloc.free_range(s, l) {
                    Ok(()) => {}
                    Err(AllocError::Crashed { .. }) => {
                        owned.ranges.push((s, l));
                        break;
                    }
                    Err(e) => panic!("free_range({s},{l}): unexpected {e}"),
                }
            }
        }
    }
    owned
}

/// Runs `threads` workers against one allocator wired to `plan`, then
/// recovers and checks the invariants. Returns the frames owned at
/// the end (for determinism checks).
fn chaos_case(plan: &FaultPlan, threads: usize, seed: u64) -> Vec<u64> {
    let arena = Arena::new(words_for(FRAMES), plan.injector());
    let alloc = match NvAllocator::format(arena.clone(), FRAMES) {
        Ok(a) => a,
        Err(AllocError::Crashed { .. }) => {
            // Killed during format: nothing was ever handed out, so
            // recovery must produce an empty, fully usable region.
            return verify_after_recovery(&arena, &HashSet::new());
        }
        Err(e) => panic!("format: unexpected {e}"),
    };

    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let a = alloc.clone();
            let b = Arc::clone(&barrier);
            let s = seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            thread::spawn(move || {
                b.wait();
                worker(a, s, OPS)
            })
        })
        .collect();

    // Merge ownership; any overlap is a live double-allocation.
    let mut owned = HashSet::new();
    for h in handles {
        let got = h.join().expect("worker panicked");
        for f in got.frames {
            assert!(owned.insert(f), "frame {f} owned by two threads");
        }
        for (s, l) in got.ranges {
            for f in s..s + l {
                assert!(owned.insert(f), "frame {f} owned twice via a range");
            }
        }
    }
    verify_after_recovery(&arena, &owned)
}

/// Remounts the (possibly crashed) media, recovers, and asserts zero
/// lost and zero double-allocated frames against the oracle.
fn verify_after_recovery(arena: &Arena, owned: &HashSet<u64>) -> Vec<u64> {
    let remounted = arena.remount(FaultInjector::disabled());
    let (alloc, report) =
        NvAllocator::recover(remounted, FRAMES).expect("recovery must always succeed");

    // No lost allocations: every Ok-ed frame survived the crash.
    for &f in owned {
        assert!(
            alloc.is_durably_allocated(f),
            "owned frame {f} lost across recovery (crash {:?})",
            arena.crash_info()
        );
    }
    // No leaks: nothing beyond the owned set is allocated.
    let stats = alloc.stats();
    assert_eq!(
        stats.allocated_frames,
        owned.len() as u64,
        "durable image holds frames nobody owns (crash {:?}, report {report:?})",
        arena.crash_info()
    );
    assert_eq!(report.frames, owned.len() as u64);
    assert_eq!(alloc.free_count(), FRAMES - owned.len() as u64);

    // No double allocation going forward: the recovered allocator
    // drains to exactly the remaining capacity without ever handing
    // out an owned frame.
    let mut fresh = HashSet::new();
    loop {
        match alloc.alloc() {
            Ok(f) => {
                assert!(!owned.contains(&f), "frame {f} double-allocated after recovery");
                assert!(fresh.insert(f), "frame {f} handed out twice while draining");
            }
            Err(AllocError::OutOfMemory) => break,
            Err(e) => panic!("drain: unexpected {e}"),
        }
    }
    assert_eq!(fresh.len() as u64, FRAMES - owned.len() as u64, "lost frames");

    let mut all: Vec<u64> = owned.iter().copied().collect();
    all.sort_unstable();
    all
}

#[test]
fn every_injection_point_under_every_thread_count() {
    for (p, point) in INJECTION_POINTS.iter().enumerate() {
        for threads in 1..=8 {
            let plan = FaultPlan::parse(&format!("panic@{point}*1")).unwrap();
            chaos_case(&plan, threads, 0xA110C ^ ((p as u64) << 8) ^ threads as u64);
        }
    }
}

#[test]
fn every_torn_point_under_every_thread_count() {
    for (p, point) in TORN_POINTS.iter().enumerate() {
        for threads in 1..=8 {
            let plan = FaultPlan::parse(&format!("torn@{point}*1")).unwrap();
            chaos_case(&plan, threads, 0x70A4 ^ ((p as u64) << 8) ^ threads as u64);
        }
    }
}

#[test]
fn seeded_random_crash_mixes() {
    let sites: Vec<String> = INJECTION_POINTS.iter().map(|s| s.to_string()).collect();
    for seed in 0..16u64 {
        let plan = FaultPlan::seeded_alloc(seed, &sites, 2, 1);
        let threads = (seed % 8) as usize + 1;
        chaos_case(&plan, threads, seed.wrapping_mul(0xD1B5_4A32_D192_ED03));
    }
}

#[test]
fn crash_free_runs_still_satisfy_the_invariants() {
    for threads in 1..=8 {
        chaos_case(&FaultPlan::none(), threads, 0xC1EA_0000 + threads as u64);
    }
}

#[test]
fn singles_vs_ranges_persist_in_coherence_order() {
    // Regression for the persist-order inversion: a range free's
    // media `Clear` used to be decoupled from its shadow store, so a
    // concurrent `alloc()` could claim one of the freed frames, set
    // and flush its bit, and then have it durably erased by the
    // free's late persist — the frame stayed owned in the shadow but
    // was handed out again after recovery. A tiny region (two bitfield
    // words) keeps every worker colliding on the same words, and three
    // single-frame workers churn hard enough to land inside the
    // store→persist window of the range worker's commits.
    const SMALL: u64 = 128;
    const SINGLE_WORKERS: usize = 3;
    for round in 0..16u64 {
        // An armed-but-never-firing plan: every probe goes through the
        // injector (as crashing runs do) right between a store and its
        // persist, which lines concurrent workers up on the window.
        let plan = FaultPlan::parse("panic@no.such.site*1").unwrap();
        let arena = Arena::new(words_for(SMALL), plan.injector());
        let alloc = NvAllocator::format(arena.clone(), SMALL).unwrap();
        let barrier = Arc::new(Barrier::new(1 + SINGLE_WORKERS));

        let ranges = {
            let a = alloc.clone();
            let b = Arc::clone(&barrier);
            thread::spawn(move || {
                b.wait();
                let mut rng = Lcg(0xFA11 ^ round);
                let mut owned: Vec<(u64, u64)> = Vec::new();
                for _ in 0..4000 {
                    if owned.len() < 4 {
                        let len = 8 + rng.below(17);
                        if let Ok(s) = a.alloc_range(len) {
                            owned.push((s, len));
                        }
                    }
                    if !owned.is_empty() && rng.below(2) == 0 {
                        let (s, l) = owned.swap_remove(0);
                        a.free_range(s, l).expect("crash-free range free");
                    }
                }
                owned
            })
        };
        let singles: Vec<_> = (0..SINGLE_WORKERS as u64)
            .map(|w| {
                let a = alloc.clone();
                let b = Arc::clone(&barrier);
                thread::spawn(move || {
                    b.wait();
                    let mut rng = Lcg(0x51C5 ^ (round << 8) ^ w);
                    let mut owned: Vec<u64> = Vec::new();
                    for _ in 0..4000 {
                        match a.alloc() {
                            Ok(f) => owned.push(f),
                            Err(AllocError::OutOfMemory) => {}
                            Err(e) => panic!("alloc: unexpected {e}"),
                        }
                        if owned.len() > 8 {
                            let i = rng.below(owned.len() as u64) as usize;
                            a.free(owned.swap_remove(i)).expect("crash-free free");
                        }
                    }
                    owned
                })
            })
            .collect();

        let mut owned = HashSet::new();
        for (s, l) in ranges.join().expect("range worker panicked") {
            for f in s..s + l {
                assert!(owned.insert(f), "frame {f} owned twice via a range");
            }
        }
        for h in singles {
            for f in h.join().expect("singles worker panicked") {
                assert!(owned.insert(f), "frame {f} owned by two workers");
            }
        }
        // Every operation returned (no crash fired), so the media must
        // match the shadow word for word — any difference is a persist
        // that landed out of coherence order.
        for w in 0..arena.len() {
            assert_eq!(
                arena.durable(w),
                arena.load(w),
                "word {w}: media diverged from shadow without a crash"
            );
        }
        verify_small_region(&arena, SMALL, &owned);
    }
}

/// `verify_after_recovery` for an arbitrary region size.
fn verify_small_region(arena: &Arena, frames: u64, owned: &HashSet<u64>) {
    let remounted = arena.remount(FaultInjector::disabled());
    let (alloc, report) = NvAllocator::recover(remounted, frames).expect("recovery");
    for &f in owned {
        assert!(
            alloc.is_durably_allocated(f),
            "owned frame {f} lost across recovery"
        );
    }
    assert_eq!(report.frames, owned.len() as u64, "durable image holds unowned frames");
    let mut fresh = HashSet::new();
    while let Ok(f) = alloc.alloc() {
        assert!(!owned.contains(&f), "frame {f} double-allocated after recovery");
        assert!(fresh.insert(f), "frame {f} handed out twice while draining");
    }
    assert_eq!(fresh.len() as u64, frames - owned.len() as u64, "lost frames");
}

#[test]
fn single_thread_runs_are_deterministic() {
    // The one-shot fires at the first range op's journal write, so
    // the single-frame churn before it survives into `owned`.
    let plan = FaultPlan::parse("panic@alloc.journal.write*1").unwrap();
    let a = chaos_case(&plan, 1, 42);
    assert!(!a.is_empty(), "workload must own frames at the crash");
    let b = chaos_case(&plan, 1, 42);
    assert_eq!(a, b, "same seed, same plan, same surviving frames");
    let c = chaos_case(&plan, 1, 43);
    // Different seed: overwhelmingly likely to own different frames.
    assert_ne!(a, c, "seed must steer the workload");
}

#[test]
fn recovery_cost_grows_with_region_size() {
    let mut last_words = 0;
    for frames in [512u64, 2048, 8192, 32768] {
        let arena = Arena::new(words_for(frames), FaultInjector::disabled());
        let alloc = NvAllocator::format(arena.clone(), frames).unwrap();
        for _ in 0..frames.min(64) {
            alloc.alloc().unwrap();
        }
        let (_, report) =
            NvAllocator::recover(arena.remount(FaultInjector::disabled()), frames).unwrap();
        assert!(
            report.words_scanned > last_words,
            "recovery scan must grow with the region"
        );
        last_words = report.words_scanned;
        // The deterministic time estimate is latency-linear: a PCRAM
        // region (20 ns reads) recovers half as fast as STT-RAM (10).
        assert_eq!(report.est_ns(20.0), 2.0 * report.est_ns(10.0));
    }
}
