//! # nvsim-alloc — crash-consistent NVRAM page allocator
//!
//! The paper's pipeline decides *which* objects belong in NVRAM;
//! actually running a hybrid-memory node also needs the NVRAM region
//! *managed* so that a crash mid-allocation never loses or
//! double-allocates a frame. This crate is that manager, modeled on
//! llfree-rs: a two-level tree whose lower level is a persistent
//! per-frame bitfield and whose upper level is volatile CAS-updated
//! counters, with lock-free single-frame fast paths and recovery that
//! rebuilds every volatile structure purely from the persistent bits.
//!
//! The persistent half lives in a crash-simulable [`Arena`] with an
//! explicit store → persist model, so `nvsim-faults` can kill the
//! allocator at any of the named [`INJECTION_POINTS`] between a store
//! and its flush — including tearing multi-word updates
//! (`torn@site`). The contract the chaos suite enforces for every
//! seeded crash point and thread interleaving:
//!
//! * **no lost frames** — a frame whose operation returned `Ok` is
//!   durably owned after recovery, and every other frame is
//!   allocatable again;
//! * **no double-allocated frames** — recovery never hands out a frame
//!   an owner already holds.
//!
//! ```
//! use nvsim_alloc::{Arena, NvAllocator, words_for};
//! use nvsim_faults::FaultInjector;
//!
//! let arena = Arena::new(words_for(1024), FaultInjector::disabled());
//! let alloc = NvAllocator::format(arena.clone(), 1024).unwrap();
//! let frame = alloc.alloc().unwrap();
//! alloc.free(frame).unwrap();
//!
//! // Simulated reboot: rebuild everything from the durable image.
//! let (alloc, report) =
//!     NvAllocator::recover(arena.remount(FaultInjector::disabled()), 1024).unwrap();
//! assert_eq!(report.frames, 0);
//! assert_eq!(alloc.free_count(), 1024);
//! ```

#![warn(missing_docs)]

mod allocator;
mod arena;

pub use allocator::{
    words_for, AllocStats, NvAllocator, RecoveryReport, FRAMES_PER_WORD, INJECTION_POINTS,
    JOURNAL_SLOTS, MAGIC, MAX_RANGE, TORN_POINTS, TREE_FRAMES, TREE_WORDS,
};
pub use arena::{Arena, CrashInfo, Update, WordOp};

use std::fmt;

/// Everything an allocator operation can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The fault injector killed the simulated machine. The arena is
    /// frozen; remount + [`NvAllocator::recover`] is the only way on.
    Crashed {
        /// Injection point that fired.
        site: String,
        /// Whether a multi-word update was torn.
        torn: bool,
    },
    /// No frame (or no contiguous run) could satisfy the request.
    OutOfMemory,
    /// The frame was not allocated.
    DoubleFree {
        /// The offending frame.
        frame: u64,
    },
    /// The frame index is outside the region.
    InvalidFrame {
        /// The offending frame.
        frame: u64,
    },
    /// The range is empty, too long to journal, or out of bounds.
    InvalidRange {
        /// First frame of the range.
        start: u64,
        /// Frames in the range.
        len: u64,
    },
    /// The durable image is inconsistent with the requested geometry.
    Corrupt {
        /// What recovery or validation found.
        what: String,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::Crashed { site, torn } => {
                let torn = if *torn { " (torn)" } else { "" };
                write!(f, "allocator crashed at {site}{torn}")
            }
            AllocError::OutOfMemory => write!(f, "out of NVRAM frames"),
            AllocError::DoubleFree { frame } => write!(f, "frame {frame} is not allocated"),
            AllocError::InvalidFrame { frame } => write!(f, "frame {frame} is out of range"),
            AllocError::InvalidRange { start, len } => {
                write!(f, "invalid range: start {start}, len {len}")
            }
            AllocError::Corrupt { what } => write!(f, "corrupt allocator state: {what}"),
        }
    }
}

impl std::error::Error for AllocError {}
