//! The two-level crash-consistent page allocator.
//!
//! Modeled on llfree-rs: the **lower level** is a persistent per-frame
//! bitfield living in the [`Arena`] (1 = allocated); the **upper
//! level** is a volatile array of per-tree free counters (one tree =
//! [`TREE_FRAMES`] frames) updated with CAS, plus a global free
//! counter. Single-frame allocation is lock-free in the modeled
//! algorithm: reserve a slot in a tree counter, then claim a concrete
//! bit with an atomic set-and-persist (the simulation serializes each
//! word's store→flush window with the arena's per-word flush lock so
//! the media stays coherent with the shadow). Nothing volatile is
//! ever persisted — after a crash the counters are rebuilt by
//! popcounting the bitfields ([`NvAllocator::recover`]).
//!
//! Multi-frame (contiguous) operations are journalled: an intent
//! record is sealed into a persistent journal slot before the
//! bitfields change, and cleared after. Recovery rolls interrupted
//! intents *back* (never forward), so the caller-visible rule is
//! simple: **an operation took effect iff it returned `Ok`**.
//!
//! ## Persistent layout (64-bit words)
//!
//! | words                | contents                                  |
//! |----------------------|-------------------------------------------|
//! | 0                    | magic (`NVALLOC1`)                        |
//! | 1                    | frame count                               |
//! | 2 .. 2+128           | journal: 64 slots × (descriptor, seal)    |
//! | 130 ..               | per-frame bitfields, 64 frames per word   |
//!
//! Padding bits past the last frame are durably set at format time so
//! popcount-based rebuilds never see them as free.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use nvsim_faults::FaultInjector;
use nvsim_obs::{Correlation, Counter, Event, EventBus, Metrics};

use crate::arena::{Arena, Update, WordOp};
use crate::AllocError;

/// Frames tracked per bitfield word.
pub const FRAMES_PER_WORD: u64 = 64;
/// Bitfield words per tree (the unit the volatile counters cover).
pub const TREE_WORDS: u64 = 8;
/// Frames per tree.
pub const TREE_FRAMES: u64 = TREE_WORDS * FRAMES_PER_WORD;
/// Journal slots (each two words: descriptor + seal).
pub const JOURNAL_SLOTS: usize = 64;
/// First journal word.
const JOURNAL_BASE: usize = 2;
/// First bitfield word.
const BITFIELD_BASE: usize = JOURNAL_BASE + 2 * JOURNAL_SLOTS;
/// Arena word 0 must hold this after format.
pub const MAGIC: u64 = 0x4e56_414c_4c4f_4331; // "NVALLOC1"
/// Longest journalled range (descriptor packs the length in 16 bits).
pub const MAX_RANGE: u64 = 0xFFFF;

/// Every named injection point the allocator probes, in the order a
/// full operation would hit them. The chaos suite crashes at each.
pub const INJECTION_POINTS: &[&str] = &[
    "alloc.meta.seal",
    "alloc.tree.reserve",
    "alloc.bitfield.set",
    "alloc.bitfield.clear",
    "alloc.journal.write",
    "alloc.range.apply",
    "alloc.journal.clear",
];

/// Injection points that persist more than one word in a single
/// commit, i.e. the sites where `torn@…` faults are meaningful.
pub const TORN_POINTS: &[&str] = &[
    "alloc.meta.seal",
    "alloc.journal.write",
    "alloc.range.apply",
    "alloc.journal.clear",
];

/// Arena words needed for a region of `frames` page frames.
pub fn words_for(frames: u64) -> usize {
    BITFIELD_BASE + frames.div_ceil(FRAMES_PER_WORD) as usize
}

/// SplitMix64 finalizer — seals journal descriptors so a torn slot
/// (descriptor without matching seal) is detectable.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

const DESC_MARK: u64 = 1 << 63;
const DESC_ALLOC: u64 = 1 << 48;

fn encode_desc(start: u64, len: u64, is_alloc: bool) -> u64 {
    DESC_MARK
        | if is_alloc { DESC_ALLOC } else { 0 }
        | ((len & MAX_RANGE) << 32)
        | (start & 0xFFFF_FFFF)
}

fn decode_desc(d: u64) -> (u64, u64, bool) {
    (d & 0xFFFF_FFFF, (d >> 32) & MAX_RANGE, d & DESC_ALLOC != 0)
}

fn seal_for(desc: u64) -> u64 {
    mix64(desc) | 1
}

/// Per-word masks covering the frame range `[start, start + len)`.
fn run_masks(start: u64, len: u64) -> Vec<(usize, u64)> {
    let mut out = Vec::new();
    let mut f = start;
    let end = start + len;
    while f < end {
        let word = BITFIELD_BASE + (f / FRAMES_PER_WORD) as usize;
        let bit = f % FRAMES_PER_WORD;
        let take = (FRAMES_PER_WORD - bit).min(end - f);
        let mask = if take == 64 {
            u64::MAX
        } else {
            ((1u64 << take) - 1) << bit
        };
        out.push((word, mask));
        f += take;
    }
    out
}

/// What recovery found and repaired. All fields are deterministic
/// functions of the durable image, so they can be stored and compared.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryReport {
    /// Frames durably allocated after recovery.
    pub frames: u64,
    /// Frames free after recovery.
    pub free_frames: u64,
    /// Persistent words read to rebuild the volatile state (header +
    /// journal + bitfields).
    pub words_scanned: u64,
    /// Frames rolled back out of interrupted journalled operations.
    pub rolled_back_frames: u64,
    /// Live journal intents rolled back.
    pub rolled_back_intents: u64,
    /// Dead (torn) journal slots scrubbed.
    pub scrubbed_slots: u64,
    /// True if the header was missing/torn and the region was
    /// re-formatted from scratch.
    pub reformatted: bool,
}

impl RecoveryReport {
    /// Estimated recovery time on a device with the given read
    /// latency per word — deterministic, so it can live in stored
    /// datasets (`words_scanned × read_latency_ns`).
    pub fn est_ns(&self, read_latency_ns: f64) -> f64 {
        self.words_scanned as f64 * read_latency_ns
    }
}

/// A deterministic snapshot of allocator occupancy, fragmentation and
/// media wear.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocStats {
    /// Total frames in the region.
    pub frames: u64,
    /// Frames currently free.
    pub free_frames: u64,
    /// Frames currently allocated.
    pub allocated_frames: u64,
    /// Longest run of contiguous free frames.
    pub largest_free_run: u64,
    /// Number of maximal free runs (an external-fragmentation proxy).
    pub free_runs: u64,
    /// `100 × (1 − largest_free_run / free_frames)`; 0 when empty.
    pub fragmentation_pct: f64,
    /// Total words persisted over the arena's lifetime.
    pub persists: u64,
    /// Highest persist count on any single word.
    pub max_word_wear: u64,
    /// Mean persist count per word.
    pub mean_word_wear: f64,
}

struct ObsHandles {
    alloc: Counter,
    free: Counter,
    range_alloc: Counter,
    range_free: Counter,
    oom: Counter,
    double_free: Counter,
    crash: Counter,
    torn: Counter,
    recovery: Counter,
    rolled_back: Counter,
}

impl ObsHandles {
    fn bind(m: &Metrics) -> Self {
        ObsHandles {
            alloc: m.counter("alloc.alloc"),
            free: m.counter("alloc.free"),
            range_alloc: m.counter("alloc.range_alloc"),
            range_free: m.counter("alloc.range_free"),
            oom: m.counter("alloc.oom"),
            double_free: m.counter("alloc.double_free"),
            crash: m.counter("alloc.crash"),
            torn: m.counter("alloc.torn"),
            recovery: m.counter("alloc.recovery"),
            rolled_back: m.counter("alloc.recovery.rolled_back"),
        }
    }

    fn disabled() -> Self {
        Self::bind(&Metrics::disabled())
    }
}

struct Inner {
    arena: Arena,
    frames: u64,
    trees: usize,
    /// Volatile free-minus-reserved count per tree. Never persisted.
    tree_free: Vec<AtomicU32>,
    /// Volatile global free-minus-reserved count. Never persisted.
    global_free: AtomicU64,
    /// Round-robin hint: the tree the last allocation landed in.
    next_tree: AtomicUsize,
    /// Volatile journal-slot claims.
    slot_claims: Vec<AtomicBool>,
    /// Serializes journalled range operations.
    range_lock: Mutex<()>,
    obs: ObsHandles,
    events: EventBus,
    correlation: Correlation,
    crash_noted: AtomicBool,
}

/// The allocator handle. Cloning shares the same allocator (all state
/// is behind one `Arc`), so every simulated core can hold one.
#[derive(Clone)]
pub struct NvAllocator {
    inner: Arc<Inner>,
}

/// Bound on full-tree rescans before the allocator declares its
/// counters corrupt instead of spinning forever.
const MAX_BIT_SCANS: usize = 1 << 16;
/// Bound on whole-region rescans in the contiguous-range search.
const MAX_RANGE_SCANS: usize = 64;

impl NvAllocator {
    fn tree_count(frames: u64) -> usize {
        frames.div_ceil(TREE_FRAMES) as usize
    }

    fn frames_in_tree(frames: u64, t: usize) -> u64 {
        (frames - t as u64 * TREE_FRAMES).min(TREE_FRAMES)
    }

    fn build(arena: Arena, frames: u64, tree_free: Vec<AtomicU32>, free: u64) -> Self {
        let trees = tree_free.len();
        NvAllocator {
            inner: Arc::new(Inner {
                arena,
                frames,
                trees,
                tree_free,
                global_free: AtomicU64::new(free),
                next_tree: AtomicUsize::new(0),
                slot_claims: (0..JOURNAL_SLOTS).map(|_| AtomicBool::new(false)).collect(),
                range_lock: Mutex::new(()),
                obs: ObsHandles::disabled(),
                events: EventBus::disabled(),
                correlation: Correlation::default(),
                crash_noted: AtomicBool::new(false),
            }),
        }
    }

    fn validate_geometry(arena: &Arena, frames: u64) -> Result<(), AllocError> {
        if frames == 0 || frames > u32::MAX as u64 {
            return Err(AllocError::Corrupt {
                what: format!("unsupported region size: {frames} frames"),
            });
        }
        if arena.len() != words_for(frames) {
            return Err(AllocError::Corrupt {
                what: format!(
                    "arena has {} words, a {frames}-frame region needs {}",
                    arena.len(),
                    words_for(frames)
                ),
            });
        }
        Ok(())
    }

    /// Durably marks padding bits past the last frame as allocated,
    /// if the last bitfield word is partial.
    fn padding_update(frames: u64) -> Option<Update> {
        let tail = frames % FRAMES_PER_WORD;
        if tail == 0 {
            return None;
        }
        let last = BITFIELD_BASE + (frames / FRAMES_PER_WORD) as usize;
        Some(Update::new(last, WordOp::Set(!((1u64 << tail) - 1))))
    }

    /// The magic goes *last*: commits persist (and tear) in order, so
    /// a durable magic proves the frame count and padding mask made it
    /// too. That lets `recover` treat magic-without-matching-frames as
    /// caller error rather than a torn format.
    fn header_updates(frames: u64) -> Vec<Update> {
        let mut updates = vec![Update::new(1, WordOp::Write(frames))];
        updates.extend(Self::padding_update(frames));
        updates.push(Update::new(0, WordOp::Write(MAGIC)));
        updates
    }

    /// Formats a zeroed arena into an empty allocator. Probes the
    /// `alloc.meta.seal` injection point while persisting the header —
    /// a crash here leaves an unformatted region, which
    /// [`NvAllocator::recover`] re-formats losslessly (no frame was
    /// ever handed out).
    pub fn format(arena: Arena, frames: u64) -> Result<Self, AllocError> {
        Self::validate_geometry(&arena, frames)?;
        arena.commit(&Self::header_updates(frames), "alloc.meta.seal")?;
        let trees = Self::tree_count(frames);
        let tree_free = (0..trees)
            .map(|t| AtomicU32::new(Self::frames_in_tree(frames, t) as u32))
            .collect();
        Ok(Self::build(arena, frames, tree_free, frames))
    }

    /// Rebuilds an allocator from the durable image alone: replays the
    /// journal (rolling interrupted intents back), scrubs torn slots,
    /// re-asserts the padding mask, and popcounts the bitfields into
    /// fresh volatile counters. If the magic never persisted, the
    /// region is re-formatted; a durable header recording a
    /// *different* frame count is a caller-side mismatch and is
    /// refused as [`AllocError::Corrupt`] instead of wiped. Recovery
    /// itself is idempotent and is modeled as crash-free.
    pub fn recover(arena: Arena, frames: u64) -> Result<(Self, RecoveryReport), AllocError> {
        Self::validate_geometry(&arena, frames)?;
        let mut report = RecoveryReport {
            words_scanned: 2,
            ..RecoveryReport::default()
        };

        if arena.durable(0) != MAGIC {
            // Torn or missing format: no frame was ever handed out, so
            // rebuilding an empty region is the lossless repair. Scrub
            // everything a partial format might have left behind.
            let mut wipe: Vec<Update> = (JOURNAL_BASE..arena.len())
                .map(|w| Update::new(w, WordOp::Write(0)))
                .collect();
            wipe.extend(Self::header_updates(frames));
            arena.apply_durable(&wipe);
            report.reformatted = true;
        } else if arena.durable(1) != frames {
            // An intact magic means the whole header persisted (it is
            // the last word of the format commit), so this is a valid
            // image for a *different* region size — a caller-side
            // mismatch the geometry check cannot catch whenever two
            // frame counts share a word count. Destroying the image
            // would lose every frame it records; refuse instead.
            return Err(AllocError::Corrupt {
                what: format!(
                    "durable header records {} frames, recover asked for {frames}",
                    arena.durable(1)
                ),
            });
        } else {
            // Defensive: the padding mask rides the same commit as the
            // header, but re-asserting it is free and idempotent.
            if let Some(pad) = Self::padding_update(frames) {
                arena.apply_durable(&[pad]);
            }
        }

        // Journal replay. A descriptor is one word, so it persists
        // atomically; if a valid one is present the intent is rolled
        // back *regardless of the seal* — rollback is idempotent, and
        // this is what makes a crash inside the journal-clear commit
        // safe: the operation was fully applied but its caller saw
        // `Crashed`, so it must be undone. The seal only distinguishes
        // "write reached the media" stages for diagnostics; a slot
        // with garbage that decodes out of range is scrubbed.
        for slot in 0..JOURNAL_SLOTS {
            let dw = JOURNAL_BASE + 2 * slot;
            let desc = arena.durable(dw);
            let seal = arena.durable(dw + 1);
            report.words_scanned += 2;
            if desc == 0 && seal == 0 {
                continue;
            }
            let (start, len, is_alloc) = decode_desc(desc);
            let live = desc & DESC_MARK != 0 && len > 0 && start + len <= frames;
            if live {
                // Undo, never redo: an interrupted alloc clears the
                // bits it may have set; an interrupted free re-sets
                // the bits it may have cleared.
                let undo: Vec<Update> = run_masks(start, len)
                    .into_iter()
                    .map(|(w, m)| {
                        Update::new(w, if is_alloc { WordOp::Clear(m) } else { WordOp::Set(m) })
                    })
                    .collect();
                arena.apply_durable(&undo);
                report.rolled_back_frames += len;
                report.rolled_back_intents += 1;
            } else {
                report.scrubbed_slots += 1;
            }
            arena.apply_durable(&[
                Update::new(dw + 1, WordOp::Write(0)),
                Update::new(dw, WordOp::Write(0)),
            ]);
        }

        // Rebuild the volatile counters purely from the bitfields.
        let trees = Self::tree_count(frames);
        let mut tree_free = Vec::with_capacity(trees);
        let mut free_total = 0u64;
        for t in 0..trees {
            let first = BITFIELD_BASE as u64 + t as u64 * TREE_WORDS;
            let last = BITFIELD_BASE as u64 + frames.div_ceil(FRAMES_PER_WORD);
            let mut free = 0u64;
            for w in first..(first + TREE_WORDS).min(last) {
                free += u64::from(arena.durable(w as usize).count_zeros());
                report.words_scanned += 1;
            }
            free_total += free;
            tree_free.push(AtomicU32::new(free as u32));
        }
        report.frames = frames - free_total;
        report.free_frames = free_total;

        Ok((Self::build(arena, frames, tree_free, free_total), report))
    }

    /// Attach metric counters. Call right after `format`/`recover`,
    /// before cloning the handle.
    pub fn with_metrics(mut self, metrics: &Metrics) -> Self {
        let inner = Arc::get_mut(&mut self.inner)
            .expect("attach observability before cloning the allocator");
        inner.obs = ObsHandles::bind(metrics);
        self
    }

    /// Attach an event bus + correlation for `alloc.crashed` /
    /// `alloc.recovered` publication. Call before cloning the handle.
    pub fn with_events(mut self, bus: &EventBus, correlation: Correlation) -> Self {
        let inner = Arc::get_mut(&mut self.inner)
            .expect("attach observability before cloning the allocator");
        inner.events = bus.clone();
        inner.correlation = correlation;
        self
    }

    /// Total frames in the region.
    pub fn frames(&self) -> u64 {
        self.inner.frames
    }

    /// Free frames according to the volatile counter.
    pub fn free_count(&self) -> u64 {
        self.inner.global_free.load(Ordering::SeqCst)
    }

    /// The underlying arena (media) handle.
    pub fn arena(&self) -> &Arena {
        &self.inner.arena
    }

    /// True if `frame` is currently allocated (volatile view).
    pub fn is_allocated(&self, frame: u64) -> bool {
        if frame >= self.inner.frames {
            return false;
        }
        let word = BITFIELD_BASE + (frame / FRAMES_PER_WORD) as usize;
        self.inner.arena.load(word) & (1 << (frame % FRAMES_PER_WORD)) != 0
    }

    /// True if `frame` is allocated on the durable media (what a
    /// reboot would see).
    pub fn is_durably_allocated(&self, frame: u64) -> bool {
        if frame >= self.inner.frames {
            return false;
        }
        let word = BITFIELD_BASE + (frame / FRAMES_PER_WORD) as usize;
        self.inner.arena.durable(word) & (1 << (frame % FRAMES_PER_WORD)) != 0
    }

    fn on_err(&self, err: &AllocError) {
        match err {
            AllocError::Crashed { site, torn } => {
                if !self.inner.crash_noted.swap(true, Ordering::SeqCst) {
                    self.inner.obs.crash.inc();
                    if *torn {
                        self.inner.obs.torn.inc();
                    }
                    self.inner.events.publish(
                        &self.inner.correlation,
                        Event::AllocCrashed {
                            site: site.clone(),
                            torn: *torn,
                        },
                    );
                }
            }
            AllocError::OutOfMemory => self.inner.obs.oom.inc(),
            AllocError::DoubleFree { .. } => self.inner.obs.double_free.inc(),
            _ => {}
        }
    }

    /// Records a completed recovery in metrics and on the event bus.
    /// Integration layers call this after attaching observability.
    pub fn note_recovery(&self, report: &RecoveryReport) {
        self.inner.obs.recovery.inc();
        self.inner.obs.rolled_back.add(report.rolled_back_frames);
        self.inner.events.publish(
            &self.inner.correlation,
            Event::AllocRecovered {
                frames: report.frames,
                rolled_back: report.rolled_back_frames,
                words_scanned: report.words_scanned,
            },
        );
    }

    fn reserve_tree(&self, t: usize) -> bool {
        let c = &self.inner.tree_free[t];
        let mut v = c.load(Ordering::SeqCst);
        loop {
            if v == 0 {
                return false;
            }
            match c.compare_exchange_weak(v, v - 1, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return true,
                Err(now) => v = now,
            }
        }
    }

    fn unreserve_tree(&self, t: usize, n: u32) {
        self.inner.tree_free[t].fetch_add(n, Ordering::SeqCst);
    }

    fn reserve_global(&self, n: u64) -> bool {
        let c = &self.inner.global_free;
        let mut v = c.load(Ordering::SeqCst);
        loop {
            if v < n {
                return false;
            }
            match c.compare_exchange_weak(v, v - n, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return true,
                Err(now) => v = now,
            }
        }
    }

    /// Claims one free bit in tree `t`. The caller holds one slot of
    /// `tree_free[t]`, so a free bit is guaranteed to exist; CAS
    /// failures only mean another thread made progress.
    fn take_bit_in_tree(&self, t: usize) -> Result<u64, AllocError> {
        let arena = &self.inner.arena;
        let first = BITFIELD_BASE + (t as u64 * TREE_WORDS) as usize;
        let last = BITFIELD_BASE + self.inner.frames.div_ceil(FRAMES_PER_WORD) as usize;
        let words = (first + TREE_WORDS as usize).min(last) - first;
        for _ in 0..MAX_BIT_SCANS {
            for w in 0..words {
                let word = first + w;
                let avail = !arena.load(word);
                if avail == 0 {
                    continue;
                }
                let bit = avail.trailing_zeros() as u64;
                if arena.try_set(word, 1 << bit, "alloc.bitfield.set")? {
                    return Ok((word - BITFIELD_BASE) as u64 * FRAMES_PER_WORD + bit);
                }
                // Raced: rescan the tree from the top.
            }
        }
        Err(AllocError::Corrupt {
            what: format!("tree {t} counter says free but no bit could be claimed"),
        })
    }

    fn alloc_inner(&self) -> Result<u64, AllocError> {
        // Crash point between deciding to allocate and touching any
        // persistent state.
        self.inner.arena.probe("alloc.tree.reserve")?;
        if !self.reserve_global(1) {
            return Err(AllocError::OutOfMemory);
        }
        let trees = self.inner.trees;
        let start = self.inner.next_tree.load(Ordering::SeqCst);
        // Our global reservation guarantees some tree counter is (or
        // becomes) non-zero; a few rounds absorb counter races.
        for _ in 0..MAX_BIT_SCANS {
            for i in 0..trees {
                let t = (start + i) % trees;
                if self.reserve_tree(t) {
                    let frame = self.take_bit_in_tree(t)?;
                    self.inner.next_tree.store(t, Ordering::SeqCst);
                    self.inner.obs.alloc.inc();
                    return Ok(frame);
                }
            }
        }
        self.inner.global_free.fetch_add(1, Ordering::SeqCst);
        Err(AllocError::Corrupt {
            what: "global counter says free but every tree is exhausted".into(),
        })
    }

    /// Allocates one frame. Lock-free: a tree-counter reservation
    /// followed by an atomic bitfield set-and-persist.
    pub fn alloc(&self) -> Result<u64, AllocError> {
        let r = self.alloc_inner();
        if let Err(e) = &r {
            self.on_err(e);
        }
        r
    }

    fn free_inner(&self, frame: u64) -> Result<(), AllocError> {
        if frame >= self.inner.frames {
            return Err(AllocError::InvalidFrame { frame });
        }
        let word = BITFIELD_BASE + (frame / FRAMES_PER_WORD) as usize;
        let mask = 1u64 << (frame % FRAMES_PER_WORD);
        if !self.inner.arena.try_clear(word, mask, "alloc.bitfield.clear")? {
            return Err(AllocError::DoubleFree { frame });
        }
        let t = (frame / TREE_FRAMES) as usize;
        self.unreserve_tree(t, 1);
        self.inner.global_free.fetch_add(1, Ordering::SeqCst);
        self.inner.obs.free.inc();
        Ok(())
    }

    /// Frees one frame. Freeing a frame that is not allocated is a
    /// [`AllocError::DoubleFree`] and changes nothing.
    pub fn free(&self, frame: u64) -> Result<(), AllocError> {
        let r = self.free_inner(frame);
        if let Err(e) = &r {
            self.on_err(e);
        }
        r
    }

    fn claim_slot(&self) -> usize {
        for (i, claim) in self.inner.slot_claims.iter().enumerate() {
            if claim
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                if self.inner.arena.durable(JOURNAL_BASE + 2 * i) == 0 {
                    return i;
                }
                claim.store(false, Ordering::SeqCst);
            }
        }
        0 // Unreachable in practice: ranges are serialized by the lock.
    }

    fn release_slot(&self, slot: usize) {
        self.inner.slot_claims[slot].store(false, Ordering::SeqCst);
    }

    /// Rolls a failed volatile claim back: bits for the first
    /// `claimed` masks, then the per-tree counters. The global
    /// reservation is owned by `alloc_range_inner`, not refunded here.
    fn unclaim_run(&self, masks: &[(usize, u64)], claimed: usize, start: u64, len: u64) {
        for (word, mask) in &masks[..claimed] {
            self.inner.arena.volatile_clear(*word, *mask);
        }
        for (t, n) in Self::per_tree(start, len) {
            self.unreserve_tree(t, n);
        }
    }

    fn per_tree(start: u64, len: u64) -> Vec<(usize, u32)> {
        let mut out: Vec<(usize, u32)> = Vec::new();
        let mut f = start;
        let end = start + len;
        while f < end {
            let t = (f / TREE_FRAMES) as usize;
            let take = (TREE_FRAMES - f % TREE_FRAMES).min(end - f);
            out.push((t, take as u32));
            f += take;
        }
        out
    }

    fn reserve_run(&self, start: u64, len: u64) -> bool {
        let counts = Self::per_tree(start, len);
        for (i, (t, n)) in counts.iter().enumerate() {
            let c = &self.inner.tree_free[*t];
            let mut v = c.load(Ordering::SeqCst);
            let ok = loop {
                if v < *n {
                    break false;
                }
                match c.compare_exchange_weak(v, v - n, Ordering::SeqCst, Ordering::SeqCst) {
                    Ok(_) => break true,
                    Err(now) => v = now,
                }
            };
            if !ok {
                for (t, n) in &counts[..i] {
                    self.unreserve_tree(*t, *n);
                }
                return false;
            }
        }
        true
    }

    /// One scan pass over the shadow bitfields for a free run of
    /// `len`, claimed volatile-first. Returns the start frame.
    fn claim_run(&self, len: u64) -> Option<u64> {
        let arena = &self.inner.arena;
        let frames = self.inner.frames;
        let mut run_start = 0u64;
        let mut run = 0u64;
        for f in 0..frames {
            let word = BITFIELD_BASE + (f / FRAMES_PER_WORD) as usize;
            let free = arena.load(word) & (1 << (f % FRAMES_PER_WORD)) == 0;
            if !free {
                run = 0;
                continue;
            }
            if run == 0 {
                run_start = f;
            }
            run += 1;
            if run < len {
                continue;
            }
            // Candidate: reserve counters, then claim the bits.
            if !self.reserve_run(run_start, len) {
                run = 0;
                continue;
            }
            let masks = run_masks(run_start, len);
            for (i, (w, m)) in masks.iter().enumerate() {
                if !arena.volatile_set(*w, *m) {
                    self.unclaim_run(&masks, i, run_start, len);
                    run = 0;
                    break;
                }
            }
            if run != 0 {
                return Some(run_start);
            }
        }
        None
    }

    fn journalled(
        &self,
        start: u64,
        len: u64,
        is_alloc: bool,
        site_ctx: &str,
    ) -> Result<(), AllocError> {
        let _ = site_ctx;
        let arena = &self.inner.arena;
        let slot = self.claim_slot();
        let dw = JOURNAL_BASE + 2 * slot;
        let desc = encode_desc(start, len, is_alloc);
        let result = (|| {
            arena.commit(
                &[
                    Update::new(dw, WordOp::Write(desc)),
                    Update::new(dw + 1, WordOp::Write(seal_for(desc))),
                ],
                "alloc.journal.write",
            )?;
            let apply: Vec<Update> = run_masks(start, len)
                .into_iter()
                .map(|(w, m)| {
                    Update::new(w, if is_alloc { WordOp::Set(m) } else { WordOp::Clear(m) })
                })
                .collect();
            arena.commit(&apply, "alloc.range.apply")?;
            // Seal first: a torn clear zeroes the seal but leaves the
            // descriptor, so recovery still rolls this completed-but-
            // unacknowledged operation back. Clearing the descriptor
            // first would strand the op's effects with no owner.
            arena.commit(
                &[
                    Update::new(dw + 1, WordOp::Write(0)),
                    Update::new(dw, WordOp::Write(0)),
                ],
                "alloc.journal.clear",
            )
        })();
        self.release_slot(slot);
        result
    }

    fn alloc_range_inner(&self, len: u64) -> Result<u64, AllocError> {
        if len == 0 || len > MAX_RANGE {
            return Err(AllocError::InvalidRange { start: 0, len });
        }
        let _guard = self.inner.range_lock.lock().unwrap();
        self.inner.arena.ensure_alive()?;
        if !self.reserve_global(len) {
            return Err(AllocError::OutOfMemory);
        }
        let mut start = None;
        for _ in 0..MAX_RANGE_SCANS {
            if let Some(s) = self.claim_run(len) {
                start = Some(s);
                break;
            }
        }
        let Some(start) = start else {
            // Enough free frames exist but no contiguous run does —
            // external fragmentation.
            self.inner.global_free.fetch_add(len, Ordering::SeqCst);
            return Err(AllocError::OutOfMemory);
        };
        // Counters and shadow bits are claimed; journal + persist.
        self.journalled(start, len, true, "range_alloc")?;
        self.inner.obs.range_alloc.inc();
        Ok(start)
    }

    /// Allocates `len` contiguous frames through the intent journal.
    /// Returns the first frame. `OutOfMemory` covers both exhaustion
    /// and fragmentation (no run long enough).
    pub fn alloc_range(&self, len: u64) -> Result<u64, AllocError> {
        let r = self.alloc_range_inner(len);
        if let Err(e) = &r {
            self.on_err(e);
        }
        r
    }

    fn free_range_inner(&self, start: u64, len: u64) -> Result<(), AllocError> {
        if len == 0 || len > MAX_RANGE || start + len > self.inner.frames {
            return Err(AllocError::InvalidRange { start, len });
        }
        let _guard = self.inner.range_lock.lock().unwrap();
        self.inner.arena.ensure_alive()?;
        for (w, m) in run_masks(start, len) {
            if self.inner.arena.load(w) & m != m {
                let first = (w - BITFIELD_BASE) as u64 * FRAMES_PER_WORD
                    + (!self.inner.arena.load(w) & m).trailing_zeros() as u64;
                return Err(AllocError::DoubleFree { frame: first });
            }
        }
        self.journalled(start, len, false, "range_free")?;
        for (t, n) in Self::per_tree(start, len) {
            self.unreserve_tree(t, n);
        }
        self.inner.global_free.fetch_add(len, Ordering::SeqCst);
        self.inner.obs.range_free.inc();
        Ok(())
    }

    /// Frees `len` contiguous frames starting at `start`, through the
    /// intent journal. Every frame must currently be allocated.
    pub fn free_range(&self, start: u64, len: u64) -> Result<(), AllocError> {
        let r = self.free_range_inner(start, len);
        if let Err(e) = &r {
            self.on_err(e);
        }
        r
    }

    /// Occupancy, fragmentation and wear snapshot (volatile view).
    pub fn stats(&self) -> AllocStats {
        let arena = &self.inner.arena;
        let frames = self.inner.frames;
        let mut free = 0u64;
        let mut run = 0u64;
        let mut largest = 0u64;
        let mut runs = 0u64;
        for f in 0..frames {
            let word = BITFIELD_BASE + (f / FRAMES_PER_WORD) as usize;
            if arena.load(word) & (1 << (f % FRAMES_PER_WORD)) == 0 {
                if run == 0 {
                    runs += 1;
                }
                run += 1;
                free += 1;
                largest = largest.max(run);
            } else {
                run = 0;
            }
        }
        AllocStats {
            frames,
            free_frames: free,
            allocated_frames: frames - free,
            largest_free_run: largest,
            free_runs: runs,
            fragmentation_pct: if free == 0 {
                0.0
            } else {
                100.0 * (1.0 - largest as f64 / free as f64)
            },
            persists: arena.persist_count(),
            max_word_wear: arena.max_wear(),
            mean_word_wear: arena.mean_wear(),
        }
    }

    /// Exports snapshot gauges (`alloc.free_frames`,
    /// `alloc.allocated_frames`, `alloc.wear.max`, `alloc.persists`,
    /// `alloc.frag_permille`) into `metrics`.
    pub fn export_metrics(&self, metrics: &Metrics) {
        let s = self.stats();
        metrics.gauge("alloc.free_frames").set(s.free_frames as i64);
        metrics
            .gauge("alloc.allocated_frames")
            .set(s.allocated_frames as i64);
        metrics.gauge("alloc.wear.max").set(s.max_word_wear as i64);
        metrics.gauge("alloc.persists").set(s.persists as i64);
        metrics
            .gauge("alloc.frag_permille")
            .set((s.fragmentation_pct * 10.0) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim_faults::FaultPlan;

    fn fresh(frames: u64) -> NvAllocator {
        let arena = Arena::new(words_for(frames), FaultInjector::disabled());
        NvAllocator::format(arena, frames).unwrap()
    }

    #[test]
    fn descriptor_round_trip() {
        for (start, len, is_alloc) in [(0, 1, true), (511, 513, false), (0xFFFF_FFFF, 0xFFFF, true)]
        {
            let d = encode_desc(start, len, is_alloc);
            assert_ne!(d, 0);
            assert_eq!(decode_desc(d), (start, len, is_alloc));
            assert_ne!(seal_for(d), 0);
        }
    }

    #[test]
    fn run_masks_cover_exactly_the_run() {
        let masks = run_masks(60, 10); // straddles a word boundary
        assert_eq!(masks.len(), 2);
        assert_eq!(masks[0], (BITFIELD_BASE, 0xF << 60));
        assert_eq!(masks[1], (BITFIELD_BASE + 1, 0x3F));
        let total: u32 = masks.iter().map(|(_, m)| m.count_ones()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn alloc_free_round_trip_updates_counters_and_media() {
        let a = fresh(96); // partial last word: 32 padding bits
        let f0 = a.alloc().unwrap();
        let f1 = a.alloc().unwrap();
        assert_ne!(f0, f1);
        assert!(a.is_allocated(f0) && a.is_durably_allocated(f0));
        assert_eq!(a.free_count(), 94);
        a.free(f0).unwrap();
        assert!(!a.is_allocated(f0) && !a.is_durably_allocated(f0));
        assert_eq!(a.free_count(), 95);
        assert!(matches!(
            a.free(f0),
            Err(AllocError::DoubleFree { frame }) if frame == f0
        ));
        assert!(matches!(
            a.free(10_000),
            Err(AllocError::InvalidFrame { .. })
        ));
    }

    #[test]
    fn region_drains_to_oom_and_padding_is_never_handed_out() {
        let a = fresh(96);
        let mut got = Vec::new();
        loop {
            match a.alloc() {
                Ok(f) => {
                    assert!(f < 96, "padding frame {f} handed out");
                    got.push(f);
                }
                Err(AllocError::OutOfMemory) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(got.len(), 96);
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 96, "duplicate frames");
        assert_eq!(a.free_count(), 0);
    }

    #[test]
    fn range_round_trip_and_fragmentation_stats() {
        let a = fresh(TREE_FRAMES * 2); // 1024 frames, 2 trees
        let start = a.alloc_range(100).unwrap();
        assert_eq!(start, 0);
        let s2 = a.alloc_range(600).unwrap(); // crosses the tree seam
        assert_eq!(s2, 100);
        assert_eq!(a.free_count(), 1024 - 700);
        a.free_range(start, 100).unwrap();
        let st = a.stats();
        assert_eq!(st.allocated_frames, 600);
        assert_eq!(st.free_runs, 2);
        assert_eq!(st.largest_free_run, 1024 - 700);
        assert!(st.fragmentation_pct > 0.0);
        assert!(matches!(
            a.free_range(start, 100),
            Err(AllocError::DoubleFree { .. })
        ));
        assert!(matches!(
            a.alloc_range(0),
            Err(AllocError::InvalidRange { .. })
        ));
        assert!(matches!(
            a.alloc_range(2048),
            Err(AllocError::OutOfMemory)
        ));
    }

    #[test]
    fn clean_recovery_rebuilds_identical_counters() {
        let a = fresh(TREE_FRAMES + 96);
        let mut owned = Vec::new();
        for _ in 0..200 {
            owned.push(a.alloc().unwrap());
        }
        for f in owned.drain(..50) {
            a.free(f).unwrap();
        }
        let remounted = a.arena().remount(FaultInjector::disabled());
        let (b, report) = NvAllocator::recover(remounted, TREE_FRAMES + 96).unwrap();
        assert!(!report.reformatted);
        assert_eq!(report.rolled_back_intents, 0);
        assert_eq!(report.frames, 150);
        assert_eq!(b.free_count(), a.free_count());
        for f in &owned {
            assert!(b.is_durably_allocated(*f));
        }
        assert_eq!(b.stats().allocated_frames, 150);
    }

    #[test]
    fn crash_before_flush_loses_the_allocation_not_the_frame() {
        // The one-shot fires on the first bitfield set: the alloc's
        // store reaches the shadow but never the media.
        let plan = FaultPlan::parse("panic@alloc.bitfield.set*1").unwrap();
        let arena = Arena::new(words_for(128), plan.injector());
        let a = NvAllocator::format(arena.clone(), 128).unwrap();
        let err = a.alloc().unwrap_err();
        assert!(matches!(err, AllocError::Crashed { ref site, .. } if site == "alloc.bitfield.set"));
        let (b, report) = NvAllocator::recover(
            arena.remount(FaultInjector::disabled()),
            128,
        )
        .unwrap();
        assert_eq!(report.frames, 0, "the unflushed alloc evaporated");
        // The frame is not lost: everything is allocatable again.
        let mut rest = std::collections::HashSet::new();
        while let Ok(f) = b.alloc() {
            assert!(rest.insert(f), "double-allocated frame {f}");
        }
        assert_eq!(rest.len(), 128);
    }

    #[test]
    fn crash_during_free_flush_keeps_the_frame_allocated() {
        let plan = FaultPlan::parse("panic@alloc.bitfield.clear*1").unwrap();
        let arena = Arena::new(words_for(128), plan.injector());
        let a = NvAllocator::format(arena.clone(), 128).unwrap();
        let kept = a.alloc().unwrap();
        let gone = a.alloc().unwrap();
        let err = a.free(gone).unwrap_err();
        assert!(matches!(err, AllocError::Crashed { .. }));
        let (b, report) = NvAllocator::recover(
            arena.remount(FaultInjector::disabled()),
            128,
        )
        .unwrap();
        // The free never returned Ok, so the caller still owns both.
        assert_eq!(report.frames, 2);
        assert!(b.is_durably_allocated(kept));
        assert!(b.is_durably_allocated(gone));
        let mut rest = std::collections::HashSet::new();
        while let Ok(f) = b.alloc() {
            assert!(f != kept && f != gone, "double-allocated frame {f}");
            assert!(rest.insert(f));
        }
        assert_eq!(rest.len(), 126);
    }

    #[test]
    fn torn_range_apply_rolls_back_to_the_pre_op_image() {
        let plan = FaultPlan::parse("torn@alloc.range.apply*1").unwrap();
        let arena = Arena::new(words_for(1024), plan.injector());
        let a = NvAllocator::format(arena.clone(), 1024).unwrap();
        // Single-frame allocs never touch range.apply, so this one
        // completes and must survive the torn range below.
        let keep = a.alloc().unwrap();
        let err = a.alloc_range(512).unwrap_err();
        assert!(matches!(err, AllocError::Crashed { torn: true, .. }));
        let (b, report) = NvAllocator::recover(
            arena.remount(FaultInjector::disabled()),
            1024,
        )
        .unwrap();
        assert_eq!(report.rolled_back_intents, 1);
        assert_eq!(report.rolled_back_frames, 512);
        assert_eq!(report.frames, 1, "interrupted range rolled back");
        assert!(b.is_durably_allocated(keep));
        assert_eq!(b.free_count(), 1023);
    }

    #[test]
    fn torn_journal_clear_still_rolls_the_unacknowledged_op_back() {
        let plan = FaultPlan::parse("torn@alloc.journal.clear*1").unwrap();
        let arena = Arena::new(words_for(256), plan.injector());
        let a = NvAllocator::format(arena.clone(), 256).unwrap();
        // The range was fully persisted before the crash, but the
        // caller saw `Crashed` — nobody owns those frames. The torn
        // clear zeroed only the seal (seal-first ordering); the
        // surviving descriptor makes recovery undo the whole thing,
        // otherwise the frames would be durably leaked.
        let err = a.alloc_range(32).unwrap_err();
        assert!(matches!(err, AllocError::Crashed { torn: true, .. }));
        let (b, report) = NvAllocator::recover(
            arena.remount(FaultInjector::disabled()),
            256,
        )
        .unwrap();
        assert_eq!(report.rolled_back_intents, 1);
        assert_eq!(report.rolled_back_frames, 32);
        assert_eq!(report.frames, 0);
        assert_eq!(b.free_count(), 256);
    }

    #[test]
    fn crash_at_journal_clear_undoes_a_fully_applied_free() {
        let plan = FaultPlan::parse("panic@alloc.journal.clear*1").unwrap();
        let arena = Arena::new(words_for(256), plan.injector());
        let a = NvAllocator::format(arena.clone(), 256).unwrap();
        // Populate through the single-frame path (no journal traffic):
        // sequential allocs yield the contiguous run 0..40.
        for _ in 0..40 {
            a.alloc().unwrap();
        }
        // The free is fully applied (bits durably cleared) before the
        // crash in its cleanup; the caller saw `Crashed`, so recovery
        // must re-set the bits — the caller still owns the range.
        let err = a.free_range(0, 40).unwrap_err();
        assert!(matches!(err, AllocError::Crashed { torn: false, .. }));
        let (b, report) = NvAllocator::recover(
            arena.remount(FaultInjector::disabled()),
            256,
        )
        .unwrap();
        assert_eq!(report.rolled_back_intents, 1);
        assert_eq!(report.frames, 40, "the interrupted free was undone");
        for f in 0..40 {
            assert!(b.is_durably_allocated(f));
        }
    }

    #[test]
    fn recovery_scales_with_region_size_and_estimates_time() {
        let mut last = 0;
        for frames in [512u64, 4096, 32768] {
            let a = fresh(frames);
            a.alloc().unwrap();
            let (_, report) =
                NvAllocator::recover(a.arena().remount(FaultInjector::disabled()), frames).unwrap();
            assert!(report.words_scanned > last);
            last = report.words_scanned;
            let est = report.est_ns(20.0);
            assert_eq!(est, report.words_scanned as f64 * 20.0);
        }
    }

    #[test]
    fn recover_reformats_a_virgin_or_torn_region() {
        // Virgin (never formatted) arena.
        let arena = Arena::new(words_for(512), FaultInjector::disabled());
        let (a, report) = NvAllocator::recover(arena, 512).unwrap();
        assert!(report.reformatted);
        assert_eq!(report.frames, 0);
        assert_eq!(a.free_count(), 512);

        // Format torn mid-header.
        let plan = FaultPlan::parse("torn@alloc.meta.seal*1").unwrap();
        let arena = Arena::new(words_for(96), plan.injector());
        assert!(NvAllocator::format(arena.clone(), 96).is_err());
        let (b, report) =
            NvAllocator::recover(arena.remount(FaultInjector::disabled()), 96).unwrap();
        assert!(report.reformatted);
        assert_eq!(b.free_count(), 96);
        let mut n = 0;
        while b.alloc().is_ok() {
            n += 1;
        }
        assert_eq!(n, 96);
    }

    #[test]
    fn recover_with_mismatched_frame_count_refuses_instead_of_wiping() {
        // words_for(100) == words_for(128): geometry alone cannot tell
        // the two regions apart, but the durable header can.
        assert_eq!(words_for(100), words_for(128));
        let a = fresh(100);
        let f = a.alloc().unwrap();
        let remounted = a.arena().remount(FaultInjector::disabled());
        match NvAllocator::recover(remounted.clone(), 128) {
            Err(AllocError::Corrupt { .. }) => {}
            Err(e) => panic!("expected Corrupt, got {e}"),
            Ok(_) => panic!("mismatched recover must not succeed"),
        }
        // The image survived the refusal: recovery with the recorded
        // frame count still finds the allocation.
        let (b, report) = NvAllocator::recover(remounted, 100).unwrap();
        assert!(!report.reformatted);
        assert!(b.is_durably_allocated(f));
        assert_eq!(report.frames, 1);
    }

    #[test]
    fn torn_format_never_persists_magic_without_the_frame_count() {
        // The magic is the last word of the header commit; every torn
        // prefix is strictly shorter than the commit, so a durable
        // magic implies a durable frame count.
        for frames in [96u64, 128] {
            let plan = FaultPlan::parse("torn@alloc.meta.seal*1").unwrap();
            let arena = Arena::new(words_for(frames), plan.injector());
            assert!(NvAllocator::format(arena.clone(), frames).is_err());
            assert_ne!(arena.durable(0), MAGIC, "magic persisted by a torn format");
        }
    }

    #[test]
    fn metrics_and_events_flow_through_obs() {
        let metrics = Metrics::enabled();
        let bus = EventBus::builder("alloc-test").build();
        let arena = Arena::new(
            words_for(128),
            FaultPlan::parse("panic@alloc.bitfield.clear*1")
                .unwrap()
                .injector(),
        );
        let a = NvAllocator::format(arena.clone(), 128)
            .unwrap()
            .with_metrics(&metrics)
            .with_events(&bus, bus.correlation().with_app("unit"));
        let f = a.alloc().unwrap();
        assert!(a.free(f).is_err(), "one-shot crash on the free");
        let (b, report) = NvAllocator::recover(arena.remount(FaultInjector::disabled()), 128)
            .unwrap();
        let b = b.with_metrics(&metrics).with_events(&bus, bus.correlation());
        b.note_recovery(&report);
        bus.flush();
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("alloc.alloc"), Some(1));
        assert_eq!(snap.counter("alloc.crash"), Some(1));
        assert_eq!(snap.counter("alloc.recovery"), Some(1));
        assert!(bus.published() >= 2, "crash + recovery events");
    }
}
