//! Crash-simulable persistent word arena.
//!
//! The arena models one byte-addressable NVRAM region as an array of
//! 64-bit words with an explicit *store → persist* pipeline:
//!
//! * the **shadow** array is the cache-coherent view every thread sees
//!   immediately after a store (CPU caches + store buffers);
//! * the **media** array is what has actually reached the persistence
//!   domain (what survives power loss).
//!
//! Every mutating entry point names an *injection point* and asks the
//! [`FaultInjector`] whether to kill the machine between the store and
//! its flush. On a crash the arena freezes: the shadow contents are
//! lost, the media contents are exactly what had been persisted, and
//! every later operation fails with [`AllocError::Crashed`]. A
//! [`Arena::remount`] then models the reboot — the new shadow is a copy
//! of the old media.
//!
//! Multi-word updates go through [`Arena::commit`], where the injector
//! can additionally tear the update ([`FaultInjector::torn_prefix`]):
//! only a prefix of the words reaches the media before the crash.
//!
//! An operation that passed its crash probe may still persist its words
//! after another thread crashed the arena — that models a store already
//! accepted by the persistence domain (eADR) — so the rule callers rely
//! on is: **an operation took durable effect iff it returned `Ok`**.
//!
//! Persists are kept coherent with the shadow by a per-word *flush
//! lock*: every persisting operation holds the lock of each word it
//! touches from its shadow store through its media persist. Without
//! it, a multi-word commit's persist could land *after* a later
//! coherent store from a concurrent single-word op had already
//! persisted — e.g. a range-free's `Clear` durably erasing a frame
//! bit a racing `try_set` had just set and flushed — silently
//! reordering the media against the shadow.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use nvsim_faults::FaultInjector;

use crate::AllocError;

/// How one word changes inside an [`Update`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordOp {
    /// OR the mask into the word (set bits).
    Set(u64),
    /// AND the complement of the mask into the word (clear bits).
    Clear(u64),
    /// Overwrite the whole word. Only safe for words the caller owns
    /// exclusively (the allocator's journal slots, under its lock).
    Write(u64),
}

/// One word of a (possibly multi-word) update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Update {
    /// Word index into the arena.
    pub word: usize,
    /// The change to apply.
    pub op: WordOp,
}

impl Update {
    /// Convenience constructor.
    pub fn new(word: usize, op: WordOp) -> Self {
        Update { word, op }
    }
}

/// Where and how the simulated machine died.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashInfo {
    /// The injection point that fired.
    pub site: String,
    /// Whether a multi-word update was torn (a prefix persisted).
    pub torn: bool,
}

struct ArenaInner {
    /// Cache-coherent view (volatile): every completed store is here.
    shadow: Vec<AtomicU64>,
    /// Persistence domain (durable): only flushed stores are here.
    media: Vec<AtomicU64>,
    /// Per-word flush locks: held across a word's store → persist
    /// window so the media applies overlapping updates in shadow
    /// (coherence) order. Multi-word commits take theirs in ascending
    /// word order, which keeps lock acquisition deadlock-free.
    flush: Vec<Mutex<()>>,
    /// Persist count per word — the wear proxy reported in stats.
    wear: Vec<AtomicU64>,
    /// Total persisted words over the arena's lifetime (carried over
    /// remounts, like real media wear).
    persists: AtomicU64,
    crashed: AtomicBool,
    crash: Mutex<Option<CrashInfo>>,
    injector: FaultInjector,
}

/// A shared handle to one simulated NVRAM region. Cloning is cheap and
/// models another path to the same DIMM; the media survives the crash
/// of the allocator that was using it, so tests keep a clone around to
/// [`Arena::remount`] after the kill.
#[derive(Clone)]
pub struct Arena {
    inner: Arc<ArenaInner>,
}

impl Arena {
    /// A zeroed arena of `words` 64-bit words wired to `injector`.
    pub fn new(words: usize, injector: FaultInjector) -> Self {
        let zeroed = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect();
        Arena {
            inner: Arc::new(ArenaInner {
                shadow: zeroed(words),
                media: zeroed(words),
                flush: (0..words).map(|_| Mutex::new(())).collect(),
                wear: zeroed(words),
                persists: AtomicU64::new(0),
                crashed: AtomicBool::new(false),
                crash: Mutex::new(None),
                injector,
            }),
        }
    }

    /// Words in the region.
    pub fn len(&self) -> usize {
        self.inner.shadow.len()
    }

    /// True if the region has zero words.
    pub fn is_empty(&self) -> bool {
        self.inner.shadow.is_empty()
    }

    /// The volatile (cache-coherent) value of a word.
    pub fn load(&self, word: usize) -> u64 {
        self.inner.shadow[word].load(Ordering::SeqCst)
    }

    /// The durable (persisted) value of a word — what a reboot reads.
    pub fn durable(&self, word: usize) -> u64 {
        self.inner.media[word].load(Ordering::SeqCst)
    }

    /// Persist count of one word.
    pub fn wear_of(&self, word: usize) -> u64 {
        self.inner.wear[word].load(Ordering::SeqCst)
    }

    /// Total words persisted over the arena's lifetime.
    pub fn persist_count(&self) -> u64 {
        self.inner.persists.load(Ordering::SeqCst)
    }

    /// True once a crash fired; all further mutations fail.
    pub fn is_crashed(&self) -> bool {
        self.inner.crashed.load(Ordering::SeqCst)
    }

    /// Where the machine died, if it did.
    pub fn crash_info(&self) -> Option<CrashInfo> {
        self.inner.crash.lock().unwrap().clone()
    }

    fn record_crash(&self, site: &str, torn: bool) -> AllocError {
        let mut slot = self.inner.crash.lock().unwrap();
        // First crash wins; later probes report the original site.
        if slot.is_none() {
            *slot = Some(CrashInfo {
                site: site.to_string(),
                torn,
            });
        }
        self.inner.crashed.store(true, Ordering::SeqCst);
        let info = slot.clone().unwrap();
        AllocError::Crashed {
            site: info.site,
            torn: info.torn,
        }
    }

    fn crashed_err(&self) -> AllocError {
        let info = self.crash_info().unwrap_or(CrashInfo {
            site: String::new(),
            torn: false,
        });
        AllocError::Crashed {
            site: info.site,
            torn: info.torn,
        }
    }

    /// Fails with the original crash if the arena is frozen; a cheap
    /// early-out for paths with no injection point of their own.
    pub fn ensure_alive(&self) -> Result<(), AllocError> {
        if self.is_crashed() {
            return Err(self.crashed_err());
        }
        Ok(())
    }

    /// Volatile-only bit set (no persist, no crash probe) — the
    /// allocator's range path uses this to claim frames against
    /// concurrent single-frame allocations before journalling. Returns
    /// `false` (and undoes its own partial set) if any `mask` bit was
    /// already set.
    pub fn volatile_set(&self, word: usize, mask: u64) -> bool {
        let prev = self.inner.shadow[word].fetch_or(mask, Ordering::SeqCst);
        if prev & mask != 0 {
            self.inner.shadow[word].fetch_and(!(mask & !prev), Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Volatile-only unconditional clear of `mask` bits — the rollback
    /// half of [`Arena::volatile_set`].
    pub fn volatile_clear(&self, word: usize, mask: u64) {
        self.inner.shadow[word].fetch_and(!mask, Ordering::SeqCst);
    }

    /// Fails if the arena is crashed, and otherwise gives the injector
    /// a chance to kill the machine at `site` without touching any
    /// word (a pure control-flow crash point).
    pub fn probe(&self, site: &str) -> Result<(), AllocError> {
        if self.is_crashed() {
            return Err(self.crashed_err());
        }
        if self.inner.injector.crashes(site) {
            return Err(self.record_crash(site, false));
        }
        Ok(())
    }

    /// Flush locks for every word `updates` touches, in ascending
    /// word order (deduplicated) so concurrent commits cannot
    /// deadlock against each other or against single-word ops.
    fn lock_words(&self, updates: &[Update]) -> Vec<MutexGuard<'_, ()>> {
        let mut words: Vec<usize> = updates.iter().map(|u| u.word).collect();
        words.sort_unstable();
        words.dedup();
        words
            .into_iter()
            .map(|w| self.inner.flush[w].lock().unwrap())
            .collect()
    }

    fn persist_set(&self, word: usize, mask: u64) {
        self.inner.media[word].fetch_or(mask, Ordering::SeqCst);
        self.note_persist(word);
    }

    fn persist_clear(&self, word: usize, mask: u64) {
        self.inner.media[word].fetch_and(!mask, Ordering::SeqCst);
        self.note_persist(word);
    }

    fn note_persist(&self, word: usize) {
        self.inner.wear[word].fetch_add(1, Ordering::SeqCst);
        self.inner.persists.fetch_add(1, Ordering::SeqCst);
    }

    /// Atomically sets `mask` bits in one word, then persists them.
    ///
    /// Returns `Ok(true)` if this call set all the bits, `Ok(false)` if
    /// any of them were already set (the caller lost a race — nothing
    /// was stored or persisted for it to undo), and
    /// [`AllocError::Crashed`] if the injector killed the machine at
    /// `site` after the store but before the flush (the shadow has the
    /// bits, the media does not).
    pub fn try_set(&self, word: usize, mask: u64, site: &str) -> Result<bool, AllocError> {
        if self.is_crashed() {
            return Err(self.crashed_err());
        }
        let _flush = self.inner.flush[word].lock().unwrap();
        let prev = self.inner.shadow[word].fetch_or(mask, Ordering::SeqCst);
        if prev & mask != 0 {
            // Lost the race: put back exactly the bits we flipped.
            self.inner.shadow[word].fetch_and(!(mask & !prev), Ordering::SeqCst);
            return Ok(false);
        }
        if self.inner.injector.crashes(site) {
            return Err(self.record_crash(site, false));
        }
        self.persist_set(word, mask);
        Ok(true)
    }

    /// Atomically clears `mask` bits in one word, then persists them.
    ///
    /// Returns `Ok(true)` if all the bits were set and are now clear,
    /// `Ok(false)` if any were already clear (nothing changed — the
    /// caller is looking at a double free), and crashes like
    /// [`Arena::try_set`].
    pub fn try_clear(&self, word: usize, mask: u64, site: &str) -> Result<bool, AllocError> {
        if self.is_crashed() {
            return Err(self.crashed_err());
        }
        let _flush = self.inner.flush[word].lock().unwrap();
        let prev = self.inner.shadow[word].fetch_and(!mask, Ordering::SeqCst);
        if prev & mask != mask {
            // Some bits were already clear: restore the ones we took.
            self.inner.shadow[word].fetch_or(prev & mask, Ordering::SeqCst);
            return Ok(false);
        }
        if self.inner.injector.crashes(site) {
            return Err(self.record_crash(site, false));
        }
        self.persist_clear(word, mask);
        Ok(true)
    }

    fn apply_shadow(&self, u: &Update) {
        match u.op {
            WordOp::Set(m) => {
                self.inner.shadow[u.word].fetch_or(m, Ordering::SeqCst);
            }
            WordOp::Clear(m) => {
                self.inner.shadow[u.word].fetch_and(!m, Ordering::SeqCst);
            }
            WordOp::Write(v) => {
                self.inner.shadow[u.word].store(v, Ordering::SeqCst);
            }
        }
    }

    fn persist_update(&self, u: &Update) {
        match u.op {
            WordOp::Set(m) => self.persist_set(u.word, m),
            WordOp::Clear(m) => self.persist_clear(u.word, m),
            WordOp::Write(v) => {
                self.inner.media[u.word].store(v, Ordering::SeqCst);
                self.note_persist(u.word);
            }
        }
    }

    /// Stores a multi-word update, then persists it word by word in
    /// order.
    ///
    /// This is the torn-write site: if a `torn@site` fault is armed,
    /// only [`FaultInjector::torn_prefix`] words reach the media before
    /// the crash; a plain `panic@site` crashes after the stores but
    /// before any word persists.
    pub fn commit(&self, updates: &[Update], site: &str) -> Result<(), AllocError> {
        if self.is_crashed() {
            return Err(self.crashed_err());
        }
        // Hold every touched word's flush lock for the whole
        // store → persist window: a concurrent single-word op on one
        // of these words waits here, so its later coherent store can
        // never be durably overwritten by this commit's persist.
        let _flush = self.lock_words(updates);
        for u in updates {
            self.apply_shadow(u);
        }
        if let Some(prefix) = self.inner.injector.torn_prefix(site, updates.len()) {
            for u in &updates[..prefix] {
                self.persist_update(u);
            }
            return Err(self.record_crash(site, true));
        }
        if self.inner.injector.crashes(site) {
            return Err(self.record_crash(site, false));
        }
        for u in updates {
            self.persist_update(u);
        }
        Ok(())
    }

    /// Applies an update to shadow *and* media unconditionally, with no
    /// crash probe. Recovery uses this: the recovery path itself is
    /// idempotent (it rebuilds from the bitfields), so it is modeled as
    /// atomic.
    pub fn apply_durable(&self, updates: &[Update]) {
        for u in updates {
            let _flush = self.inner.flush[u.word].lock().unwrap();
            self.apply_shadow(u);
            self.persist_update(u);
        }
    }

    /// Reboot: a fresh arena over the same media. The new shadow is a
    /// copy of the durable state (everything unflushed is gone), the
    /// wear and persist counters carry over, and the crash flag is
    /// reset. The old handle keeps seeing the frozen pre-reboot arena.
    pub fn remount(&self, injector: FaultInjector) -> Arena {
        let words = self.len();
        let copy = |src: &[AtomicU64]| {
            src.iter()
                .map(|w| AtomicU64::new(w.load(Ordering::SeqCst)))
                .collect::<Vec<_>>()
        };
        Arena {
            inner: Arc::new(ArenaInner {
                shadow: copy(&self.inner.media),
                media: copy(&self.inner.media),
                flush: (0..words).map(|_| Mutex::new(())).collect(),
                wear: copy(&self.inner.wear),
                persists: AtomicU64::new(self.persist_count()),
                crashed: AtomicBool::new(false),
                crash: Mutex::new(None),
                injector,
            }),
        }
    }

    /// Wear (persist count) of every word, for stats and reports.
    pub fn wear_snapshot(&self) -> Vec<u64> {
        (0..self.len()).map(|w| self.wear_of(w)).collect()
    }

    /// The maximum single-word wear.
    pub fn max_wear(&self) -> u64 {
        (0..self.len()).map(|w| self.wear_of(w)).max().unwrap_or(0)
    }

    /// Words never persisted even once remain visible here.
    pub fn mean_wear(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.persist_count() as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim_faults::FaultPlan;

    fn quiet(words: usize) -> Arena {
        Arena::new(words, FaultInjector::disabled())
    }

    #[test]
    fn set_clear_round_trip_reaches_media() {
        let a = quiet(4);
        assert!(a.try_set(1, 0b101, "s").unwrap());
        assert_eq!(a.load(1), 0b101);
        assert_eq!(a.durable(1), 0b101);
        assert!(!a.try_set(1, 0b100, "s").unwrap(), "already set");
        assert!(a.try_clear(1, 0b001, "s").unwrap());
        assert_eq!(a.durable(1), 0b100);
        assert!(!a.try_clear(1, 0b001, "s").unwrap(), "already clear");
        assert_eq!(a.persist_count(), 2);
        assert_eq!(a.wear_of(1), 2);
    }

    #[test]
    fn lost_race_restores_only_the_loser_bits() {
        let a = quiet(1);
        assert!(a.try_set(0, 0b010, "s").unwrap());
        // Overlapping set: bit 1 already taken, bit 0 ours — must be
        // rolled back, leaving the winner's bit alone.
        assert!(!a.try_set(0, 0b011, "s").unwrap());
        assert_eq!(a.load(0), 0b010);
    }

    #[test]
    fn crash_between_store_and_flush_loses_the_shadow() {
        let plan = FaultPlan::parse("panic@site.a*1").unwrap();
        let a = Arena::new(2, plan.injector());
        let err = a.try_set(0, 1, "site.a").unwrap_err();
        assert!(matches!(err, AllocError::Crashed { ref site, torn: false } if site == "site.a"));
        assert_eq!(a.load(0), 1, "store reached the shadow");
        assert_eq!(a.durable(0), 0, "flush never happened");
        assert!(a.is_crashed());
        assert!(matches!(a.try_set(1, 1, "other"), Err(AllocError::Crashed { .. })));

        let b = a.remount(FaultInjector::disabled());
        assert_eq!(b.load(0), 0, "reboot reads the media");
        assert!(!b.is_crashed());
        assert!(b.try_set(0, 1, "site.a").unwrap());
    }

    #[test]
    fn torn_commit_persists_only_a_prefix() {
        let plan = FaultPlan::parse("torn@multi*1").unwrap();
        let a = Arena::new(4, plan.injector());
        let updates = [
            Update::new(0, WordOp::Write(7)),
            Update::new(1, WordOp::Set(0xF0)),
            Update::new(2, WordOp::Write(9)),
            Update::new(3, WordOp::Write(11)),
        ];
        let err = a.commit(&updates, "multi").unwrap_err();
        assert!(matches!(err, AllocError::Crashed { torn: true, .. }));
        // torn_prefix persists words/2 = 2 of the 4 words.
        assert_eq!(a.durable(0), 7);
        assert_eq!(a.durable(1), 0xF0);
        assert_eq!(a.durable(2), 0);
        assert_eq!(a.durable(3), 0);
        // The shadow saw the full update before the crash.
        assert_eq!(a.load(3), 11);
    }

    #[test]
    fn remount_carries_wear_and_persist_counters() {
        let plan = FaultPlan::parse("panic@die*1").unwrap();
        let a = Arena::new(2, plan.injector());
        a.try_set(0, 1, "warm").unwrap();
        a.try_set(0, 2, "warm").unwrap();
        let _ = a.try_set(1, 1, "die");
        let b = a.remount(FaultInjector::disabled());
        assert_eq!(b.persist_count(), 2);
        assert_eq!(b.wear_of(0), 2);
        assert_eq!(b.max_wear(), 2);
    }

    #[test]
    fn apply_durable_skips_probes_and_lands_on_media() {
        let plan = FaultPlan::parse("panic@everything").unwrap();
        let a = Arena::new(1, plan.injector());
        a.apply_durable(&[Update::new(0, WordOp::Write(42))]);
        assert_eq!(a.durable(0), 42);
        assert!(!a.is_crashed());
    }
}
