//! The two-level hierarchy: L1 (no-write-allocate) over L2
//! (write-allocate, LRU), both write-back, per Table II.
//!
//! Main-memory transactions are produced exactly where the paper's trace
//! definition places them: L2 (last-level) read-fills on misses, and
//! write-backs of dirty L2 victims.

use crate::set_assoc::{AccessOutcome, SetAssocCache};
use nvsim_types::{CacheConfig, MemTransaction, VirtAddr, WriteAllocate};
use serde::{Deserialize, Serialize};

/// Hit/miss counters for the hierarchy.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Read-fill transactions sent to memory.
    pub mem_reads: u64,
    /// Write-back transactions sent to memory.
    pub mem_writes: u64,
    /// Prefetch fills issued (included in `mem_reads`).
    pub prefetches: u64,
    /// Demand accesses that hit a previously prefetched line.
    pub prefetch_hits: u64,
}

impl HierarchyStats {
    /// L1 hit rate in `[0, 1]`.
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// Fraction of references that reached main memory.
    pub fn memory_intensity(&self, total_refs: u64) -> f64 {
        if total_refs == 0 {
            0.0
        } else {
            (self.mem_reads + self.mem_writes) as f64 / total_refs as f64
        }
    }
}

/// Deepest level that served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Served by L1.
    L1,
    /// Served by L2.
    L2,
    /// Went to main memory.
    Memory,
}

/// The two-level cache hierarchy.
///
/// ```
/// use nvsim_cache::{CacheHierarchy, HitLevel};
/// use nvsim_types::{CacheConfig, VirtAddr};
///
/// let mut h = CacheHierarchy::new(&CacheConfig::default());
/// let mut traffic = Vec::new();
/// let cold = h.access(VirtAddr::new(0x1000), false, &mut |t| traffic.push(t));
/// let warm = h.access(VirtAddr::new(0x1008), false, &mut |t| traffic.push(t));
/// assert_eq!(cold, HitLevel::Memory); // first touch goes to memory
/// assert_eq!(warm, HitLevel::L1);     // same line now hits
/// assert_eq!(traffic.len(), 1);
/// ```
pub struct CacheHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    l1_write_allocate: bool,
    /// Next-line prefetch degree: on an L2 demand miss to line X, lines
    /// X+1..=X+degree are fetched into L2 if absent. 0 disables (the
    /// Table II configuration; §V names prefetching as a latency-hiding
    /// feature, and the ablation benches measure it).
    prefetch_degree: u32,
    /// Line addresses currently resident in L2 because of a prefetch (for
    /// usefulness accounting).
    prefetched: std::collections::HashSet<u64>,
    stats: HierarchyStats,
}

impl CacheHierarchy {
    /// Builds the hierarchy from a Table II configuration.
    ///
    /// # Panics
    /// Panics if the two levels have different line sizes (not modelled).
    pub fn new(config: &CacheConfig) -> Self {
        assert_eq!(
            config.l1.line_size, config.l2.line_size,
            "mixed line sizes are not modelled"
        );
        CacheHierarchy {
            l1: SetAssocCache::new(&config.l1),
            l2: SetAssocCache::new(&config.l2),
            l1_write_allocate: config.l1.write_allocate == WriteAllocate::Allocate,
            prefetch_degree: 0,
            prefetched: std::collections::HashSet::new(),
            stats: HierarchyStats::default(),
        }
    }

    /// Enables next-line prefetching at the given degree.
    pub fn with_prefetch(mut self, degree: u32) -> Self {
        self.prefetch_degree = degree;
        self
    }

    /// Line size shared by both levels.
    pub fn line_size(&self) -> u64 {
        self.l1.line_size()
    }

    /// Runs one reference (already line-aligned by the caller — see
    /// [`crate::sink::CacheFilterSink`] for splitting) through the
    /// hierarchy, emitting any main-memory transactions to `emit`, and
    /// returns the deepest level that had to serve it.
    pub fn access(
        &mut self,
        addr: VirtAddr,
        is_write: bool,
        emit: &mut impl FnMut(MemTransaction),
    ) -> HitLevel {
        let line = addr.align_down(self.line_size());
        if self.l1.access(line, is_write) == AccessOutcome::Hit {
            self.stats.l1_hits += 1;
            return HitLevel::L1;
        }
        self.stats.l1_misses += 1;

        if is_write && !self.l1_write_allocate {
            // No-write-allocate L1: the write is forwarded to L2 without
            // allocating an L1 line.
            return self.l2_write(line, emit);
        }

        // Read miss (or write miss with allocation): fetch through L2 and
        // install in L1.
        let level = self.l2_read(line, emit);
        if let Some((victim, dirty)) = self.l1.fill(line, is_write) {
            if dirty {
                // Write the victim back into L2 (write-back L1).
                self.l2_write(victim, emit);
            }
        }
        level
    }

    /// A write arriving at L2 (forwarded L1 write miss, or L1 dirty
    /// victim). Write-allocate: a missing line is fetched from memory.
    fn l2_write(&mut self, line: VirtAddr, emit: &mut impl FnMut(MemTransaction)) -> HitLevel {
        if self.l2.access(line, true) == AccessOutcome::Hit {
            self.stats.l2_hits += 1;
            self.note_prefetch_hit(line);
            return HitLevel::L2;
        }
        self.stats.l2_misses += 1;
        // Fetch-on-write: the rest of the line comes from memory.
        self.stats.mem_reads += 1;
        emit(MemTransaction::read_fill(line));
        self.install_l2(line, true, emit);
        self.issue_prefetches(line, emit);
        HitLevel::Memory
    }

    /// A read arriving at L2 (L1 read miss).
    fn l2_read(&mut self, line: VirtAddr, emit: &mut impl FnMut(MemTransaction)) -> HitLevel {
        if self.l2.access(line, false) == AccessOutcome::Hit {
            self.stats.l2_hits += 1;
            self.note_prefetch_hit(line);
            return HitLevel::L2;
        }
        self.stats.l2_misses += 1;
        self.stats.mem_reads += 1;
        emit(MemTransaction::read_fill(line));
        self.install_l2(line, false, emit);
        self.issue_prefetches(line, emit);
        HitLevel::Memory
    }

    /// Marks a demand hit on a prefetched line as useful.
    fn note_prefetch_hit(&mut self, line: VirtAddr) {
        if self.prefetched.remove(&line.raw()) {
            self.stats.prefetch_hits += 1;
        }
    }

    /// Next-line prefetch after a demand miss to `line`.
    fn issue_prefetches(&mut self, line: VirtAddr, emit: &mut impl FnMut(MemTransaction)) {
        for k in 1..=u64::from(self.prefetch_degree) {
            let target = line + k * self.line_size();
            if self.l2.contains(target) {
                continue;
            }
            self.stats.prefetches += 1;
            self.stats.mem_reads += 1;
            emit(MemTransaction::read_fill(target));
            self.install_l2(target, false, emit);
            self.prefetched.insert(target.raw());
        }
    }

    fn install_l2(&mut self, line: VirtAddr, dirty: bool, emit: &mut impl FnMut(MemTransaction)) {
        if let Some((victim, victim_dirty)) = self.l2.fill(line, dirty) {
            self.prefetched.remove(&victim.raw());
            // Non-inclusive hierarchy: an L2 victim may still sit in L1; a
            // real design would either back-invalidate or keep it — we
            // back-invalidate and merge its dirtiness into the write-back,
            // keeping the single-writeback invariant simple.
            let l1_state = self.l1.invalidate(victim);
            let any_dirty = victim_dirty || l1_state.is_some_and(|(_, d)| d);
            if any_dirty {
                self.stats.mem_writes += 1;
                emit(MemTransaction::writeback(victim));
            }
        }
    }

    /// Flushes every dirty line out to memory (end-of-simulation drain).
    pub fn drain(&mut self, emit: &mut impl FnMut(MemTransaction)) {
        // L1 dirty lines propagate into L2 conceptually; both end at memory,
        // so emit each distinct dirty line once.
        let mut l1_dirty = Vec::new();
        self.l1.drain_dirty(|a| l1_dirty.push(a));
        let mut emitted = std::collections::HashSet::new();
        for a in l1_dirty {
            if emitted.insert(a.raw()) {
                self.stats.mem_writes += 1;
                emit(MemTransaction::writeback(a));
            }
        }
        let mut l2_dirty = Vec::new();
        self.l2.drain_dirty(|a| l2_dirty.push(a));
        for a in l2_dirty {
            if emitted.insert(a.raw()) {
                self.stats.mem_writes += 1;
                emit(MemTransaction::writeback(a));
            }
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim_types::TransactionKind;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(&CacheConfig::default())
    }

    fn collect(h: &mut CacheHierarchy, addr: u64, write: bool) -> Vec<MemTransaction> {
        let mut out = Vec::new();
        h.access(VirtAddr::new(addr), write, &mut |t| out.push(t));
        out
    }

    #[test]
    fn cold_read_misses_to_memory_then_hits() {
        let mut h = hierarchy();
        let t = collect(&mut h, 0x1000, false);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].kind, TransactionKind::ReadFill);
        assert_eq!(t[0].addr, VirtAddr::new(0x1000));
        // Second access: L1 hit, no traffic.
        assert!(collect(&mut h, 0x1008, false).is_empty());
        let s = h.stats();
        assert_eq!((s.l1_hits, s.l1_misses), (1, 1));
        assert_eq!(s.mem_reads, 1);
    }

    #[test]
    fn write_miss_does_not_allocate_in_l1() {
        let mut h = hierarchy();
        // Cold write: L1 no-write-allocate -> L2 write-allocate -> fetch.
        let t = collect(&mut h, 0x2000, true);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].kind, TransactionKind::ReadFill);
        // A read of the same line still misses L1 (no allocation happened)
        // but hits L2.
        let t2 = collect(&mut h, 0x2000, false);
        assert!(t2.is_empty());
        let s = h.stats();
        assert_eq!(s.l1_misses, 2);
        assert_eq!(s.l2_hits, 1);
        assert_eq!(s.l2_misses, 1);
    }

    #[test]
    fn write_hit_in_l1_is_silent() {
        let mut h = hierarchy();
        collect(&mut h, 0x3000, false); // install via read
        assert!(collect(&mut h, 0x3000, true).is_empty());
        assert_eq!(h.stats().l1_hits, 1);
    }

    #[test]
    fn dirty_l2_eviction_writes_back() {
        let mut h = hierarchy();
        // Dirty one line via a forwarded write.
        collect(&mut h, 0x0, true);
        // Blow the L2 set containing 0x0 with conflicting reads.
        // L2: 1024 sets, 16 ways, 64B lines -> same-set stride = 1024*64.
        let stride = 1024 * 64;
        let mut writebacks = 0;
        for i in 1..=17u64 {
            for t in collect(&mut h, i * stride, false) {
                if t.kind == TransactionKind::Writeback {
                    writebacks += 1;
                    assert_eq!(t.addr, VirtAddr::new(0x0));
                }
            }
        }
        assert_eq!(writebacks, 1);
    }

    #[test]
    fn clean_evictions_are_silent() {
        let mut h = hierarchy();
        let stride = 1024 * 64;
        for i in 0..40u64 {
            for t in collect(&mut h, i * stride, false) {
                assert_eq!(t.kind, TransactionKind::ReadFill);
            }
        }
        assert_eq!(h.stats().mem_writes, 0);
    }

    #[test]
    fn l1_dirty_victim_lands_in_l2_not_memory() {
        let mut h = hierarchy();
        // Install + dirty a line in L1 (read then write-hit).
        collect(&mut h, 0x0, false);
        collect(&mut h, 0x0, true);
        // Evict it from L1 with conflicting reads (L1: 128 sets -> stride
        // 128*64 = 8 KiB). 4 ways, so 4 more fills force the eviction.
        let stride = 128 * 64;
        let mut mem_writes = 0;
        for i in 1..=4u64 {
            for t in collect(&mut h, i * stride, false) {
                if t.kind == TransactionKind::Writeback {
                    mem_writes += 1;
                }
            }
        }
        // The victim went to L2 (which holds it), not memory.
        assert_eq!(mem_writes, 0);
        // And reading it again hits L2.
        let before = h.stats().mem_reads;
        collect(&mut h, 0x0, false);
        assert_eq!(h.stats().mem_reads, before);
    }

    #[test]
    fn drain_flushes_each_dirty_line_once() {
        let mut h = hierarchy();
        collect(&mut h, 0x0, true); // dirty in L2 (no-write-allocate path)
        collect(&mut h, 0x1000, false);
        collect(&mut h, 0x1000, true); // dirty in L1
        let mut out = Vec::new();
        h.drain(&mut |t| out.push(t));
        let mut addrs: Vec<u64> = out.iter().map(|t| t.addr.raw()).collect();
        addrs.sort_unstable();
        assert_eq!(addrs, vec![0x0, 0x1000]);
        assert!(out.iter().all(|t| t.kind == TransactionKind::Writeback));
        // Drain again: nothing left.
        let mut again = Vec::new();
        h.drain(&mut |t| again.push(t));
        assert!(again.is_empty());
    }

    #[test]
    fn prefetcher_converts_misses_into_l2_hits() {
        let mut base = CacheHierarchy::new(&CacheConfig::default());
        let mut pf = CacheHierarchy::new(&CacheConfig::default()).with_prefetch(4);
        // Sequential read stream: the next-line prefetcher should cover
        // most demand misses.
        for addr in (0..(1u64 << 20)).step_by(64) {
            base.access(VirtAddr::new(addr), false, &mut |_| {});
            pf.access(VirtAddr::new(addr), false, &mut |_| {});
        }
        let b = base.stats();
        let p = pf.stats();
        assert_eq!(b.prefetches, 0);
        assert!(p.prefetches > 1000);
        assert!(p.prefetch_hits > p.prefetches / 2, "useless prefetches");
        // Demand misses to memory drop dramatically.
        assert!(p.l2_misses < b.l2_misses / 2, "{} vs {}", p.l2_misses, b.l2_misses);
        // Total memory reads stay about the same (the same lines are
        // fetched, just earlier).
        let ratio = p.mem_reads as f64 / b.mem_reads as f64;
        assert!((0.9..1.2).contains(&ratio), "mem read ratio {ratio}");
    }

    #[test]
    fn prefetcher_off_by_default() {
        let mut h = hierarchy();
        for addr in (0..(64u64 << 10)).step_by(64) {
            h.access(VirtAddr::new(addr), false, &mut |_| {});
        }
        assert_eq!(h.stats().prefetches, 0);
    }

    #[test]
    fn streaming_workload_filters_most_refs() {
        // Sequential read over 8 MiB: only one memory read per 64B line.
        let mut h = hierarchy();
        let mut mem = 0u64;
        let mut refs = 0u64;
        for addr in (0..(8 << 20)).step_by(8) {
            refs += 1;
            h.access(VirtAddr::new(addr), false, &mut |_| mem += 1);
        }
        assert_eq!(mem, (8 << 20) / 64);
        let intensity = h.stats().memory_intensity(refs);
        assert!((intensity - 1.0 / 8.0).abs() < 1e-9);
    }
}
