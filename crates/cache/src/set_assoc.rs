//! One set-associative, write-back cache level with true-LRU replacement.

use nvsim_types::{CacheLevelConfig, VirtAddr};

/// One cache line's bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Line {
    /// Line-granularity tag: the full line index (address >> line bits).
    /// Storing the whole index rather than a set-relative tag keeps
    /// reconstruction of evicted addresses trivial.
    line_index: u64,
    dirty: bool,
    last_use: u64,
    valid: bool,
}

const INVALID: Line = Line {
    line_index: 0,
    dirty: false,
    last_use: 0,
    valid: false,
};

/// Result of a cache access or fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent.
    Miss,
}

/// A set-associative cache level.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    lines: Vec<Line>,
    sets: u64,
    ways: usize,
    line_size: u64,
    line_shift: u32,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Builds a cache from a level configuration.
    pub fn new(config: &CacheLevelConfig) -> Self {
        let sets = config.num_sets();
        let ways = config.associativity as usize;
        SetAssocCache {
            lines: vec![INVALID; (sets as usize) * ways],
            sets,
            ways,
            line_size: config.line_size,
            line_shift: config.line_size.trailing_zeros(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    #[inline]
    fn line_index_of(&self, addr: VirtAddr) -> u64 {
        addr.raw() >> self.line_shift
    }

    #[inline]
    fn set_of(&self, line_index: u64) -> usize {
        (line_index % self.sets) as usize
    }

    #[inline]
    fn set_slice(&mut self, set: usize) -> &mut [Line] {
        let start = set * self.ways;
        &mut self.lines[start..start + self.ways]
    }

    /// Probes for the line containing `addr`; on hit, updates recency and
    /// (for writes) the dirty bit. Does **not** allocate.
    pub fn access(&mut self, addr: VirtAddr, is_write: bool) -> AccessOutcome {
        self.tick += 1;
        let tick = self.tick;
        let line_index = self.line_index_of(addr);
        let set = self.set_of(line_index);
        for line in self.set_slice(set) {
            if line.valid && line.line_index == line_index {
                line.last_use = tick;
                line.dirty |= is_write;
                self.hits += 1;
                return AccessOutcome::Hit;
            }
        }
        self.misses += 1;
        AccessOutcome::Miss
    }

    /// Installs the line containing `addr`, evicting the LRU way if the set
    /// is full. Returns the evicted line as `(line_base_addr, was_dirty)`.
    ///
    /// # Panics
    /// Panics in debug builds if the line is already present (fills must
    /// follow misses).
    pub fn fill(&mut self, addr: VirtAddr, dirty: bool) -> Option<(VirtAddr, bool)> {
        self.tick += 1;
        let tick = self.tick;
        let line_index = self.line_index_of(addr);
        let set = self.set_of(line_index);
        let line_shift = self.line_shift;
        let slice = self.set_slice(set);
        debug_assert!(
            !slice.iter().any(|l| l.valid && l.line_index == line_index),
            "fill of already-present line"
        );
        // Prefer an invalid way; otherwise evict the LRU way.
        let victim = match slice.iter_mut().find(|l| !l.valid) {
            Some(v) => v,
            None => slice
                .iter_mut()
                .min_by_key(|l| l.last_use)
                .expect("associativity >= 1"),
        };
        let evicted = victim
            .valid
            .then(|| (VirtAddr::new(victim.line_index << line_shift), victim.dirty));
        *victim = Line {
            line_index,
            dirty,
            last_use: tick,
            valid: true,
        };
        evicted
    }

    /// `true` if the line containing `addr` is present (no recency update).
    pub fn contains(&self, addr: VirtAddr) -> bool {
        let line_index = self.line_index_of(addr);
        let set = self.set_of(line_index);
        self.lines[set * self.ways..(set + 1) * self.ways]
            .iter()
            .any(|l| l.valid && l.line_index == line_index)
    }

    /// Invalidates the line containing `addr`, returning `(addr, dirty)` if
    /// it was present.
    pub fn invalidate(&mut self, addr: VirtAddr) -> Option<(VirtAddr, bool)> {
        let line_index = self.line_index_of(addr);
        let set = self.set_of(line_index);
        let line_shift = self.line_shift;
        for line in self.set_slice(set) {
            if line.valid && line.line_index == line_index {
                let out = (VirtAddr::new(line.line_index << line_shift), line.dirty);
                line.valid = false;
                line.dirty = false;
                return Some(out);
            }
        }
        None
    }

    /// Drains all valid dirty lines, invoking `f` with each line base
    /// address; used to flush residual writebacks at end of simulation.
    pub fn drain_dirty(&mut self, mut f: impl FnMut(VirtAddr)) {
        let line_shift = self.line_shift;
        for line in &mut self.lines {
            if line.valid && line.dirty {
                f(VirtAddr::new(line.line_index << line_shift));
                line.dirty = false;
            }
        }
    }

    /// `(hits, misses)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim_types::{CacheConfig, WriteAllocate};

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways x 64B lines = 256 B.
        SetAssocCache::new(&nvsim_types::CacheLevelConfig {
            size_bytes: 256,
            associativity: 2,
            line_size: 64,
            write_allocate: WriteAllocate::Allocate,
            hit_latency_cycles: 1,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        let a = VirtAddr::new(0x1000);
        assert_eq!(c.access(a, false), AccessOutcome::Miss);
        assert_eq!(c.fill(a, false), None);
        assert_eq!(c.access(a, false), AccessOutcome::Hit);
        assert_eq!(c.access(a + 63, false), AccessOutcome::Hit); // same line
        assert_eq!(c.access(a + 64, false), AccessOutcome::Miss); // next line
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines with even line index: 0x0000, 0x0080, 0x0100...
        let l0 = VirtAddr::new(0x0000);
        let l1 = VirtAddr::new(0x0080);
        let l2 = VirtAddr::new(0x0100);
        c.fill(l0, false);
        c.fill(l1, false);
        // Touch l0 so l1 is LRU.
        c.access(l0, false);
        let evicted = c.fill(l2, false).unwrap();
        assert_eq!(evicted.0, l1);
        assert!(c.contains(l0));
        assert!(c.contains(l2));
        assert!(!c.contains(l1));
    }

    #[test]
    fn dirty_propagates_through_eviction() {
        let mut c = tiny();
        let a = VirtAddr::new(0x0000);
        c.fill(a, false);
        c.access(a, true); // dirty it
        c.fill(VirtAddr::new(0x0080), false);
        let (victim, dirty) = c.fill(VirtAddr::new(0x0100), false).unwrap();
        assert_eq!(victim, a);
        assert!(dirty);
    }

    #[test]
    fn fill_dirty_marks_dirty() {
        let mut c = tiny();
        let a = VirtAddr::new(0x40);
        c.fill(a, true);
        let inv = c.invalidate(a).unwrap();
        assert!(inv.1);
        assert!(!c.contains(a));
        assert!(c.invalidate(a).is_none());
    }

    #[test]
    fn drain_dirty_emits_each_dirty_line_once() {
        let mut c = tiny();
        c.fill(VirtAddr::new(0x0), true);
        c.fill(VirtAddr::new(0x40), false);
        c.fill(VirtAddr::new(0x80), true);
        let mut drained = Vec::new();
        c.drain_dirty(|a| drained.push(a.raw()));
        drained.sort_unstable();
        assert_eq!(drained, vec![0x0, 0x80]);
        let mut again = Vec::new();
        c.drain_dirty(|a| again.push(a));
        assert!(again.is_empty());
    }

    #[test]
    fn table_ii_l1_geometry_loads() {
        let cfg = CacheConfig::default();
        let l1 = SetAssocCache::new(&cfg.l1);
        assert_eq!(l1.line_size(), 64);
        // Fill 4 lines in the same set (stride = sets * line = 128*64).
        let mut c = l1;
        for i in 0..4u64 {
            assert_eq!(c.fill(VirtAddr::new(i * 128 * 64), false), None);
        }
        // Fifth conflicting fill evicts.
        assert!(c.fill(VirtAddr::new(4 * 128 * 64), false).is_some());
    }

    #[test]
    fn resident_lines_bounded_by_capacity() {
        let mut c = tiny();
        for i in 0..100u64 {
            let a = VirtAddr::new(i * 64);
            if c.access(a, false) == AccessOutcome::Miss {
                c.fill(a, false);
            }
        }
        assert!(c.resident_lines() <= 4);
    }
}
