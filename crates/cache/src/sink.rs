//! Event-sink adapter: runs the instrumentation stream through the cache
//! hierarchy and forwards the filtered main-memory transactions.

use crate::hierarchy::{CacheHierarchy, HierarchyStats};
use nvsim_obs::{ArgValue, Histogram, Metrics, Timeline};
use nvsim_trace::{Event, EventSink};
use nvsim_types::{CacheConfig, MemRef, MemTransaction, TransactionKind};

/// Consumer of main-memory transactions (implemented by the power
/// simulator and by simple collectors).
pub trait TransactionSink {
    /// One filtered main-memory transaction.
    fn on_transaction(&mut self, t: MemTransaction);
}

/// Collects transactions into a vector (tests, small traces).
#[derive(Debug, Default)]
pub struct VecTransactionSink {
    /// The collected transactions.
    pub transactions: Vec<MemTransaction>,
}

impl TransactionSink for VecTransactionSink {
    fn on_transaction(&mut self, t: MemTransaction) {
        self.transactions.push(t);
    }
}

/// Counts transactions by kind.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingTransactionSink {
    /// Read fills observed.
    pub reads: u64,
    /// Writebacks (and write-throughs) observed.
    pub writes: u64,
}

impl TransactionSink for CountingTransactionSink {
    fn on_transaction(&mut self, t: MemTransaction) {
        match t.kind {
            TransactionKind::ReadFill => self.reads += 1,
            _ => self.writes += 1,
        }
    }
}

/// An [`EventSink`] that filters the reference stream through the cache
/// hierarchy (paper §III, Figure 1: instrumentation → cache simulator →
/// memory traces → power simulator).
pub struct CacheFilterSink<S> {
    hierarchy: CacheHierarchy,
    downstream: S,
    refs_seen: u64,
    /// Drain residual dirty lines when the program ends, so the trace
    /// includes the final writeback burst.
    drain_on_finish: bool,
    metrics: Metrics,
    ref_bytes: Histogram,
    timeline: Timeline,
}

impl<S: TransactionSink> CacheFilterSink<S> {
    /// Builds a filter with the Table II configuration.
    pub fn new(config: &CacheConfig, downstream: S) -> Self {
        CacheFilterSink {
            hierarchy: CacheHierarchy::new(config),
            downstream,
            refs_seen: 0,
            drain_on_finish: true,
            metrics: Metrics::disabled(),
            ref_bytes: Histogram::default(),
            timeline: Timeline::disabled(),
        }
    }

    /// Binds the filter to an observability registry. The reference-size
    /// histogram `cache.ref_bytes` records live; the `cache.*` hit/miss
    /// and traffic counters are exported when the stream finishes (they
    /// mirror [`HierarchyStats`], which the hierarchy already keeps).
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.metrics = metrics.clone();
        self.ref_bytes = metrics.histogram("cache.ref_bytes");
    }

    /// Binds the filter to an event timeline: every dirty line leaving
    /// the hierarchy (a `Writeback` or `WriteThrough` transaction)
    /// becomes a `dirty_eviction` instant under the `cache` category,
    /// and the end-of-run drain renders as a `drain` span. Past the
    /// timeline's capacity, instants count as dropped instead — spans
    /// always record, so the trace stays balanced.
    pub fn set_timeline(&mut self, timeline: &Timeline) {
        self.timeline = timeline.clone();
    }

    fn export_metrics(&self) {
        if !self.metrics.is_enabled() {
            return;
        }
        let s = self.hierarchy.stats();
        self.metrics.counter("cache.refs").add(self.refs_seen);
        self.metrics.counter("cache.l1_hits").add(s.l1_hits);
        self.metrics.counter("cache.l1_misses").add(s.l1_misses);
        self.metrics.counter("cache.l2_hits").add(s.l2_hits);
        self.metrics.counter("cache.l2_misses").add(s.l2_misses);
        self.metrics.counter("cache.mem_reads").add(s.mem_reads);
        self.metrics.counter("cache.mem_writes").add(s.mem_writes);
        self.metrics.counter("cache.prefetches").add(s.prefetches);
        self.metrics
            .counter("cache.prefetch_hits")
            .add(s.prefetch_hits);
    }

    /// Disables the end-of-run dirty-line drain.
    pub fn without_final_drain(mut self) -> Self {
        self.drain_on_finish = false;
        self
    }

    /// The downstream sink.
    pub fn downstream(&self) -> &S {
        &self.downstream
    }

    /// Consumes the filter, returning the downstream sink.
    pub fn into_downstream(self) -> S {
        self.downstream
    }

    /// Hierarchy statistics.
    pub fn stats(&self) -> HierarchyStats {
        self.hierarchy.stats()
    }

    /// References processed.
    pub fn refs_seen(&self) -> u64 {
        self.refs_seen
    }

    fn feed(&mut self, r: &MemRef) {
        self.refs_seen += 1;
        self.ref_bytes.record(u64::from(r.size));
        let line_size = self.hierarchy.line_size();
        let downstream = &mut self.downstream;
        let timeline = &self.timeline;
        let mut emit = |t: MemTransaction| {
            if timeline.is_enabled() && t.kind != TransactionKind::ReadFill {
                timeline.instant(
                    "dirty_eviction",
                    "cache",
                    &[("addr", ArgValue::U64(t.addr.raw()))],
                );
            }
            downstream.on_transaction(t)
        };
        self.hierarchy.access(r.addr, r.kind.is_write(), &mut emit);
        if r.crosses_line(line_size) {
            // A straddling access touches the next line too (PIN reports
            // one reference; the cache sees two line probes).
            let next = r.last_byte().align_down(line_size);
            self.hierarchy.access(next, r.kind.is_write(), &mut emit);
        }
    }
}

impl<S: TransactionSink> EventSink for CacheFilterSink<S> {
    fn on_batch(&mut self, refs: &[MemRef]) {
        for r in refs {
            self.feed(r);
        }
    }

    fn on_control(&mut self, _event: &Event) {}

    fn on_finish(&mut self) {
        if self.drain_on_finish {
            self.timeline.begin("drain", "cache");
            let downstream = &mut self.downstream;
            let timeline = &self.timeline;
            let mut drained = 0u64;
            self.hierarchy.drain(&mut |t| {
                drained += 1;
                if timeline.is_enabled() {
                    timeline.instant(
                        "dirty_eviction",
                        "cache",
                        &[("addr", ArgValue::U64(t.addr.raw()))],
                    );
                }
                downstream.on_transaction(t)
            });
            self.timeline
                .end_with("drain", "cache", &[("writebacks", ArgValue::U64(drained))]);
        }
        self.export_metrics();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim_trace::{Tracer, TracedVec};
    use nvsim_types::VirtAddr;

    #[test]
    fn filter_reduces_traffic() {
        let mut sink = CacheFilterSink::new(&CacheConfig::default(), CountingTransactionSink::default());
        {
            let mut t = Tracer::new(&mut sink);
            let mut v = TracedVec::<f64>::global(&mut t, "v", 4096).unwrap();
            // Two passes: first cold, second fully cached (32 KiB fits L2).
            for _ in 0..2 {
                for i in 0..4096 {
                    let x = v.get(&mut t, i);
                    v.set(&mut t, i, x + 1.0);
                }
            }
            t.finish();
        }
        let refs = sink.refs_seen();
        assert_eq!(refs, 4 * 4096);
        let stats = sink.stats();
        // 4096 doubles = 512 lines: cold read fills only.
        assert_eq!(stats.mem_reads, 512);
        let counts = *sink.downstream();
        assert_eq!(counts.reads, 512);
        // Final drain wrote every dirtied line back.
        assert_eq!(counts.writes, 512);
    }

    #[test]
    fn line_crossing_ref_probes_both_lines() {
        let mut sink = CacheFilterSink::new(&CacheConfig::default(), CountingTransactionSink::default())
            .without_final_drain();
        {
            let mut t = Tracer::new(&mut sink);
            t.read(VirtAddr::new(0x40_0000 + 60), 8); // crosses 64B boundary
            t.finish();
        }
        assert_eq!(sink.downstream().reads, 2);
    }

    #[test]
    fn without_drain_suppresses_final_writebacks() {
        let mut sink = CacheFilterSink::new(&CacheConfig::default(), CountingTransactionSink::default())
            .without_final_drain();
        {
            let mut t = Tracer::new(&mut sink);
            let mut v = TracedVec::<f64>::global(&mut t, "v", 8).unwrap();
            v.fill(&mut t, 1.0);
            t.finish();
        }
        assert_eq!(sink.downstream().writes, 0);
    }

    #[test]
    fn metrics_export_mirrors_hierarchy_stats() {
        let m = nvsim_obs::Metrics::enabled();
        let mut sink =
            CacheFilterSink::new(&CacheConfig::default(), CountingTransactionSink::default());
        sink.set_metrics(&m);
        {
            let mut t = Tracer::new(&mut sink);
            let mut v = TracedVec::<f64>::global(&mut t, "v", 1024).unwrap();
            for i in 0..1024 {
                v.set(&mut t, i, i as f64);
            }
            t.finish();
        }
        let stats = sink.stats();
        let snap = m.snapshot();
        assert_eq!(snap.counter("cache.refs"), Some(sink.refs_seen()));
        assert_eq!(snap.counter("cache.l1_hits"), Some(stats.l1_hits));
        assert_eq!(snap.counter("cache.l2_misses"), Some(stats.l2_misses));
        assert_eq!(snap.counter("cache.mem_writes"), Some(stats.mem_writes));
        let sizes = snap.histogram("cache.ref_bytes").expect("ref sizes");
        assert_eq!(sizes.count, sink.refs_seen());
        assert_eq!(sizes.max, 8);
    }

    #[test]
    fn timeline_sees_evictions_and_drain_span() {
        use nvsim_obs::{EventKind, Timeline};
        let tl = Timeline::enabled();
        let mut sink =
            CacheFilterSink::new(&CacheConfig::default(), CountingTransactionSink::default());
        sink.set_timeline(&tl);
        {
            let mut t = Tracer::new(&mut sink);
            let mut v = TracedVec::<f64>::global(&mut t, "v", 64).unwrap();
            v.fill(&mut t, 1.0); // dirties 8 lines, written back by the drain
            t.finish();
        }
        let events = tl.events();
        let evictions = events
            .iter()
            .filter(|e| e.name == "dirty_eviction" && e.cat == "cache")
            .count() as u64;
        assert_eq!(evictions, sink.downstream().writes);
        assert!(evictions > 0);
        let drain_end = events
            .iter()
            .find(|e| e.name == "drain" && e.kind == EventKind::End)
            .expect("drain span closed");
        assert_eq!(
            drain_end.args[0],
            ("writebacks".to_string(), nvsim_obs::ArgValue::U64(evictions))
        );
    }

    #[test]
    fn vec_sink_records_order() {
        let mut sink = CacheFilterSink::new(&CacheConfig::default(), VecTransactionSink::default())
            .without_final_drain();
        {
            let mut t = Tracer::new(&mut sink);
            t.read(VirtAddr::new(0x40_0000), 8);
            t.read(VirtAddr::new(0x40_0000 + 4096), 8);
            t.finish();
        }
        let txns = &sink.downstream().transactions;
        assert_eq!(txns.len(), 2);
        assert!(txns[0].addr < txns[1].addr);
    }
}
