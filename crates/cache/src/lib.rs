//! # nvsim-cache
//!
//! The configurable cache-hierarchy simulator embedded in NV-SCAVENGER
//! (paper §III): "It takes memory references from the instrumentation tool
//! as the input, and outputs memory traces filtered by the cache hierarchy.
//! As a result, memory traces represent main memory accesses due to last
//! level cache misses and cache evictions."
//!
//! Geometry and policies follow Table II: a 32 KB, 4-way, 64-byte-line L1
//! data cache with **no-write-allocate**, and a 1 MB, 16-way, LRU L2 with
//! **write-allocate**. Both levels are write-back. The output transaction
//! stream feeds the DRAMSim2-style power simulator (`nvsim-mem`).
//!
//! ```
//! use nvsim_cache::{CacheHierarchy, HitLevel};
//! use nvsim_types::{CacheConfig, VirtAddr};
//!
//! let mut cache = CacheHierarchy::new(&CacheConfig::default());
//! let mut to_memory = Vec::new();
//! let addr = VirtAddr::new(0x1000);
//! let cold = cache.access(addr, false, &mut |t| to_memory.push(t));
//! let hot = cache.access(addr, false, &mut |t| to_memory.push(t));
//! assert_eq!(cold, HitLevel::Memory); // cold miss: one main-memory fill
//! assert_eq!(hot, HitLevel::L1);      // re-reference filtered by L1
//! assert_eq!(to_memory.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hierarchy;
pub mod locality;
pub mod set_assoc;
pub mod sink;

pub use hierarchy::{CacheHierarchy, HierarchyStats, HitLevel};
pub use locality::{LocalitySink, ReuseAnalyzer, ReuseHistogram, SpatialAnalyzer, SpatialReport};
pub use set_assoc::{AccessOutcome, SetAssocCache};
pub use sink::{CacheFilterSink, CountingTransactionSink, TransactionSink, VecTransactionSink};
