//! # nvsim-cache
//!
//! The configurable cache-hierarchy simulator embedded in NV-SCAVENGER
//! (paper §III): "It takes memory references from the instrumentation tool
//! as the input, and outputs memory traces filtered by the cache hierarchy.
//! As a result, memory traces represent main memory accesses due to last
//! level cache misses and cache evictions."
//!
//! Geometry and policies follow Table II: a 32 KB, 4-way, 64-byte-line L1
//! data cache with **no-write-allocate**, and a 1 MB, 16-way, LRU L2 with
//! **write-allocate**. Both levels are write-back. The output transaction
//! stream feeds the DRAMSim2-style power simulator (`nvsim-mem`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hierarchy;
pub mod locality;
pub mod set_assoc;
pub mod sink;

pub use hierarchy::{CacheHierarchy, HierarchyStats, HitLevel};
pub use locality::{LocalitySink, ReuseAnalyzer, ReuseHistogram, SpatialAnalyzer, SpatialReport};
pub use set_assoc::{AccessOutcome, SetAssocCache};
pub use sink::{CacheFilterSink, CountingTransactionSink, TransactionSink, VecTransactionSink};
