//! Locality quantification: reuse distances and spatial strides.
//!
//! §II justifies the horizontal hybrid design by appeal to measured
//! locality: "Previous work has shown that real world applications can
//! exhibit very low spatial and temporal locality \[Weinberg et al.\].
//! This is especially true for some large-scale scientific simulations
//! with irregular memory access patterns."
//!
//! This module implements the two classic instruments:
//!
//! * **Temporal locality** — the LRU *reuse distance* (Mattson stack
//!   distance) of every reference at cache-line granularity, computed in
//!   O(log n) per reference with a Fenwick tree over access timestamps.
//!   The resulting histogram predicts the hit rate of *any* fully-
//!   associative LRU cache size in one pass (the miss-rate curve), and a
//!   Weinberg-style score summarizes it in `[0, 1]`.
//! * **Spatial locality** — a stride histogram between consecutive
//!   references, scored by how much of the traffic lands within a cache
//!   line / page of its predecessor.

use nvsim_types::{MemRef, VirtAddr};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Fenwick (binary indexed) tree counting live timestamps.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(capacity: usize) -> Self {
        Fenwick {
            tree: vec![0; capacity + 1],
        }
    }

    fn grow_to(&mut self, capacity: usize) {
        if capacity + 1 > self.tree.len() {
            // Rebuild: Fenwick trees don't grow in place. Exponential
            // growth keeps the amortized cost constant.
            let mut bigger = Fenwick::new((capacity + 1).next_power_of_two());
            for (i, _) in self.tree.iter().enumerate().skip(1) {
                let count = self.range_count(i, i);
                for _ in 0..count {
                    bigger.add(i, 1);
                }
            }
            *self = bigger;
        }
    }

    #[inline]
    fn add(&mut self, mut i: usize, delta: i64) {
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Count of live entries in `[1, i]`.
    #[inline]
    fn prefix(&self, mut i: usize) -> u64 {
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    fn range_count(&self, lo: usize, hi: usize) -> u64 {
        self.prefix(hi) - self.prefix(lo.saturating_sub(1))
    }
}

/// Histogram of reuse distances with power-of-two buckets, plus cold
/// (first-touch) misses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReuseHistogram {
    /// `buckets[k]` counts references with reuse distance in
    /// `[2^k, 2^(k+1))` distinct lines (bucket 0 is distance 0–1).
    pub buckets: Vec<u64>,
    /// First-touch references (infinite distance).
    pub cold: u64,
    /// Total references.
    pub total: u64,
}

impl ReuseHistogram {
    /// Predicted hit rate of a fully-associative LRU cache holding
    /// `lines` cache lines: the fraction of references whose reuse
    /// distance is below the capacity (stack-distance theory).
    pub fn predicted_hit_rate(&self, lines: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut hits = 0u64;
        for (k, &count) in self.buckets.iter().enumerate() {
            let lo = if k == 0 { 0u64 } else { 1u64 << k };
            let hi = (1u64 << (k + 1)).saturating_sub(1);
            if hi < lines {
                hits += count;
            } else if lo < lines {
                // Bucket straddles the capacity: assume uniform spread.
                let span = (hi - lo + 1) as f64;
                hits += ((lines - lo) as f64 / span * count as f64) as u64;
            }
        }
        hits as f64 / self.total as f64
    }

    /// Weinberg-style temporal score in `[0, 1]`: each reuse weighted by
    /// how near it is (distance `d` contributes `1/log2(d+2)`), cold
    /// misses contribute 0.
    pub fn temporal_score(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut score = 0.0;
        for (k, &count) in self.buckets.iter().enumerate() {
            let midpoint = if k == 0 { 1.0 } else { 1.5 * (1u64 << k) as f64 };
            score += count as f64 / (midpoint + 2.0).log2();
        }
        score / self.total as f64
    }
}

/// Streaming reuse-distance analyzer at cache-line granularity.
pub struct ReuseAnalyzer {
    line_shift: u32,
    /// Line -> timestamp of its last access.
    last_access: HashMap<u64, usize>,
    fenwick: Fenwick,
    clock: usize,
    histogram: ReuseHistogram,
}

impl ReuseAnalyzer {
    /// Creates an analyzer for `line_size`-byte lines (power of two).
    pub fn new(line_size: u64) -> Self {
        assert!(line_size.is_power_of_two());
        ReuseAnalyzer {
            line_shift: line_size.trailing_zeros(),
            last_access: HashMap::new(),
            fenwick: Fenwick::new(1 << 16),
            clock: 0,
            histogram: ReuseHistogram {
                buckets: vec![0; 40],
                cold: 0,
                total: 0,
            },
        }
    }

    /// Feeds one reference.
    pub fn feed(&mut self, addr: VirtAddr) {
        let line = addr.raw() >> self.line_shift;
        self.clock += 1;
        self.fenwick.grow_to(self.clock);
        self.histogram.total += 1;
        match self.last_access.insert(line, self.clock) {
            None => {
                self.histogram.cold += 1;
            }
            Some(prev) => {
                // Reuse distance = number of distinct lines touched since
                // the previous access = live timestamps after `prev`.
                let distance = self.fenwick.range_count(prev + 1, self.clock - 1);
                let bucket = (64 - (distance + 1).leading_zeros() - 1) as usize;
                let last = self.histogram.buckets.len() - 1;
                self.histogram.buckets[bucket.min(last)] += 1;
                // The old timestamp dies.
                self.fenwick.add(prev, -1);
            }
        }
        self.fenwick.add(self.clock, 1);
    }

    /// The histogram so far.
    pub fn histogram(&self) -> &ReuseHistogram {
        &self.histogram
    }

    /// Distinct lines touched.
    pub fn footprint_lines(&self) -> usize {
        self.last_access.len()
    }
}

/// Spatial-locality analyzer: stride histogram between consecutive
/// references.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialReport {
    /// References whose address is within the same 64 B line as the
    /// previous reference.
    pub same_line: u64,
    /// Within ±64 B (adjacent line).
    pub adjacent_line: u64,
    /// Within the same 4 KiB page.
    pub same_page: u64,
    /// Anything farther.
    pub far: u64,
    /// Total references (first one excluded).
    pub total: u64,
}

impl SpatialReport {
    /// Weinberg-style spatial score in `[0, 1]`.
    pub fn spatial_score(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.same_line as f64
            + 0.75 * self.adjacent_line as f64
            + 0.25 * self.same_page as f64)
            / self.total as f64
    }
}

/// Streaming spatial analyzer.
#[derive(Debug)]
pub struct SpatialAnalyzer {
    prev: Option<u64>,
    report: SpatialReport,
}

impl Default for SpatialAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl SpatialAnalyzer {
    /// Creates an analyzer.
    pub fn new() -> Self {
        SpatialAnalyzer {
            prev: None,
            report: SpatialReport {
                same_line: 0,
                adjacent_line: 0,
                same_page: 0,
                far: 0,
                total: 0,
            },
        }
    }

    /// Feeds one reference.
    pub fn feed(&mut self, addr: VirtAddr) {
        let a = addr.raw();
        if let Some(p) = self.prev {
            self.report.total += 1;
            let dist = a.abs_diff(p);
            if a >> 6 == p >> 6 {
                self.report.same_line += 1;
            } else if dist <= 128 {
                self.report.adjacent_line += 1;
            } else if a >> 12 == p >> 12 {
                self.report.same_page += 1;
            } else {
                self.report.far += 1;
            }
        }
        self.prev = Some(a);
    }

    /// The report so far.
    pub fn report(&self) -> &SpatialReport {
        &self.report
    }
}

/// An [`EventSink`](crate::sink) companion running both analyzers over an
/// instrumentation stream.
pub struct LocalitySink {
    /// Temporal analyzer (64 B lines).
    pub reuse: ReuseAnalyzer,
    /// Spatial analyzer.
    pub spatial: SpatialAnalyzer,
}

impl Default for LocalitySink {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalitySink {
    /// Creates the sink with 64-byte lines.
    pub fn new() -> Self {
        LocalitySink {
            reuse: ReuseAnalyzer::new(64),
            spatial: SpatialAnalyzer::new(),
        }
    }
}

impl nvsim_trace::EventSink for LocalitySink {
    fn on_batch(&mut self, refs: &[MemRef]) {
        for r in refs {
            self.reuse.feed(r.addr);
            self.spatial.feed(r.addr);
        }
    }

    fn on_control(&mut self, _event: &nvsim_trace::Event) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_scan_has_no_temporal_reuse() {
        let mut a = ReuseAnalyzer::new(64);
        for i in 0..10_000u64 {
            a.feed(VirtAddr::new(i * 64));
        }
        let h = a.histogram();
        assert_eq!(h.cold, 10_000);
        assert_eq!(h.temporal_score(), 0.0);
        assert_eq!(a.footprint_lines(), 10_000);
    }

    #[test]
    fn tight_loop_has_unit_distances() {
        let mut a = ReuseAnalyzer::new(64);
        for _ in 0..1000 {
            a.feed(VirtAddr::new(0));
            a.feed(VirtAddr::new(64));
        }
        let h = a.histogram();
        assert_eq!(h.cold, 2);
        // Every reuse alternates between two lines: distance 1.
        assert_eq!(h.buckets[0] + h.buckets[1], h.total - h.cold);
        assert!(h.temporal_score() > 0.4);
    }

    #[test]
    fn predicted_hit_rate_matches_cyclic_working_set() {
        // Cyclic sweep over W lines: LRU of capacity >= W hits everything
        // (after warmup), capacity < W hits nothing — the classic cliff.
        let w = 256u64;
        let mut a = ReuseAnalyzer::new(64);
        for round in 0..50u64 {
            for i in 0..w {
                a.feed(VirtAddr::new(i * 64));
                let _ = round;
            }
        }
        let h = a.histogram();
        assert!(h.predicted_hit_rate(2 * w) > 0.95);
        assert!(h.predicted_hit_rate(w / 4) < 0.05);
    }

    #[test]
    fn reuse_distance_is_exact_for_known_pattern() {
        // a b c a : the reuse of `a` has distance 2 (b, c touched since).
        let mut an = ReuseAnalyzer::new(64);
        for addr in [0u64, 64, 128, 0] {
            an.feed(VirtAddr::new(addr));
        }
        let h = an.histogram();
        assert_eq!(h.cold, 3);
        // distance 2 -> bucket index 1 ([2,4)).
        assert_eq!(h.buckets[1], 1);
    }

    #[test]
    fn spatial_scores_separate_stream_from_random() {
        let mut stream = SpatialAnalyzer::new();
        for i in 0..10_000u64 {
            stream.feed(VirtAddr::new(i * 8));
        }
        let mut random = SpatialAnalyzer::new();
        let mut x = 0x2545f4914f6cdd1du64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            random.feed(VirtAddr::new(x % (1 << 30)));
        }
        assert!(stream.report().spatial_score() > 0.8);
        assert!(random.report().spatial_score() < 0.1);
    }

    #[test]
    fn fenwick_grows_transparently() {
        let mut a = ReuseAnalyzer::new(64);
        // Far beyond the initial 64K capacity.
        for i in 0..200_000u64 {
            a.feed(VirtAddr::new((i % 1000) * 64));
        }
        let h = a.histogram();
        assert_eq!(h.total, 200_000);
        assert_eq!(h.cold, 1000);
        // Cyclic over 1000 lines: distances are 999 -> bucket [512,1024).
        assert_eq!(h.buckets[9], h.total - h.cold);
    }
}
