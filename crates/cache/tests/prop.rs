//! Property tests of the cache-hierarchy invariants: capacity bounds,
//! writeback soundness (a dirty eviction implies a prior write to that
//! line) and the miss-filter contract (memory reads only for lines not
//! already resident).

use nvsim_cache::CacheHierarchy;
use nvsim_types::{CacheConfig, MemTransaction, TransactionKind, VirtAddr};
use proptest::prelude::*;
use std::collections::HashSet;

fn refs() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..1 << 22, any::<bool>()), 1..2000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn writebacks_only_for_written_lines(ops in refs()) {
        let mut h = CacheHierarchy::new(&CacheConfig::default());
        let mut written: HashSet<u64> = HashSet::new();
        let mut events: Vec<MemTransaction> = Vec::new();
        for &(addr, is_write) in &ops {
            let a = VirtAddr::new(addr & !7);
            if is_write {
                written.insert(a.align_down(64).raw());
            }
            h.access(a, is_write, &mut |t| events.push(t));
        }
        h.drain(&mut |t| events.push(t));
        for e in &events {
            if e.kind == TransactionKind::Writeback {
                prop_assert!(
                    written.contains(&e.addr.raw()),
                    "writeback of never-written line {:#x}",
                    e.addr.raw()
                );
            }
            // All traffic is line-aligned.
            prop_assert!(e.addr.is_aligned(64));
        }
    }

    #[test]
    fn every_line_is_fetched_before_any_writeback(ops in refs()) {
        let mut h = CacheHierarchy::new(&CacheConfig::default());
        let mut fetched: HashSet<u64> = HashSet::new();
        let mut ok = true;
        for &(addr, is_write) in &ops {
            let a = VirtAddr::new(addr & !7);
            h.access(a, is_write, &mut |t| match t.kind {
                TransactionKind::ReadFill => {
                    fetched.insert(t.addr.raw());
                }
                _ => {
                    // A writeback must concern a line that was fetched at
                    // some point (write-allocate fetches on write miss).
                    ok &= fetched.contains(&t.addr.raw());
                }
            });
        }
        prop_assert!(ok, "writeback of a line never fetched");
    }

    #[test]
    fn stats_are_conserved(ops in refs()) {
        let mut h = CacheHierarchy::new(&CacheConfig::default());
        for &(addr, is_write) in &ops {
            h.access(VirtAddr::new(addr & !7), is_write, &mut |_| {});
        }
        let s = h.stats();
        prop_assert_eq!(s.l1_hits + s.l1_misses, ops.len() as u64);
        // Every L2 access comes from an L1 miss (possibly two per miss
        // when an L1 dirty victim is written into L2).
        prop_assert!(s.l2_hits + s.l2_misses >= s.l1_misses);
        prop_assert!(s.l2_hits + s.l2_misses <= 2 * s.l1_misses);
        // Memory reads = L2 misses (every L2 miss fetches exactly once).
        prop_assert_eq!(s.mem_reads, s.l2_misses);
    }

    #[test]
    fn repeat_pass_over_small_set_is_all_hits(lines in 1u64..128, passes in 2u64..5) {
        let mut h = CacheHierarchy::new(&CacheConfig::default());
        let mut traffic = 0u64;
        for pass in 0..passes {
            for i in 0..lines {
                h.access(VirtAddr::new(i * 64), false, &mut |_| {
                    if pass > 0 {
                        traffic += 1;
                    }
                });
            }
        }
        // A set this small (<= 8 KiB) never misses after the cold pass.
        prop_assert_eq!(traffic, 0);
    }
}
