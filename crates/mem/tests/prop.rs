//! Property tests of the memory system: the address decode is a bijection
//! over the device capacity, replay time is monotone and bus-bounded, and
//! power obeys basic sanity (non-negative, monotone in traffic).

use nvsim_mem::{AddressMapping, MappingScheme, MemorySystem};
use nvsim_types::{
    DeviceProfile, MemTransaction, MemoryTechnology, SystemConfig, VirtAddr,
};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn decode_is_injective_over_sampled_lines(seed in any::<u64>()) {
        let sys = SystemConfig::default();
        for scheme in [MappingScheme::RowRankBankCol, MappingScheme::RowColRankBank] {
            let m = AddressMapping::new(scheme, &sys, 64);
            let mut seen = HashSet::new();
            let mut x = seed | 1;
            for _ in 0..2000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let line = (x % (m.capacity_bytes() / 64)) * 64;
                let d = m.decode(VirtAddr::new(line));
                let key = (d.rank, d.bank, d.row, d.col);
                // Distinct lines must decode to distinct coordinates.
                prop_assert!(
                    seen.insert((line, key)) || !seen.contains(&(line ^ 1, key)),
                    "collision"
                );
            }
            // Stronger: full injectivity over a small contiguous window.
            let mut coords = HashSet::new();
            for i in 0..4096u64 {
                let d = m.decode(VirtAddr::new(i * 64));
                prop_assert!(coords.insert((d.rank, d.bank, d.row, d.col)));
            }
        }
    }

    #[test]
    fn replay_time_is_monotone_in_trace_length(n in 10u64..300) {
        let sys = SystemConfig::default();
        let txns: Vec<MemTransaction> = (0..n)
            .map(|i| MemTransaction::read_fill(VirtAddr::new(i * 64)))
            .collect();
        let mut prev = 0.0;
        for take in [n / 2, n] {
            let mut m = MemorySystem::new(DeviceProfile::ddr3(), &sys);
            m.replay(txns.iter().take(take as usize));
            let r = m.finish();
            prop_assert!(r.stats.elapsed_ns >= prev);
            prev = r.stats.elapsed_ns;
        }
    }

    #[test]
    fn power_components_are_nonnegative(
        addrs in proptest::collection::vec((0u64..1 << 28, any::<bool>()), 1..500),
    ) {
        let sys = SystemConfig::default();
        for tech in MemoryTechnology::ALL {
            let mut m = MemorySystem::new(DeviceProfile::for_technology(tech), &sys);
            for &(a, w) in &addrs {
                let addr = VirtAddr::new(a & !63);
                m.process(&if w {
                    MemTransaction::writeback(addr)
                } else {
                    MemTransaction::read_fill(addr)
                });
            }
            let r = m.finish();
            let p = r.power;
            for v in [
                p.burst_read_mw,
                p.burst_write_mw,
                p.act_pre_mw,
                p.background_mw,
                p.refresh_mw,
            ] {
                prop_assert!(v >= 0.0 && v.is_finite());
            }
            prop_assert!(r.total_mw() > 0.0);
            // Replay is at least bus-bound.
            prop_assert!(
                r.stats.elapsed_ns + 1e-9 >= (addrs.len() as f64 - 1.0) * 8.0,
                "{}: {} ns for {} txns",
                tech,
                r.stats.elapsed_ns,
                addrs.len()
            );
        }
    }

    #[test]
    fn nvram_always_beats_dram_on_identical_traces(
        addrs in proptest::collection::vec(0u64..1 << 26, 50..400),
    ) {
        let sys = SystemConfig::default();
        let txns: Vec<MemTransaction> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let addr = VirtAddr::new(a & !63);
                if i % 3 == 0 {
                    MemTransaction::writeback(addr)
                } else {
                    MemTransaction::read_fill(addr)
                }
            })
            .collect();
        let (_, normalized) = nvsim_mem::system::replay_all_technologies(&txns, &sys);
        for (i, &n) in normalized[1..].iter().enumerate() {
            prop_assert!(n < 1.0, "tech {} drew {n} >= DRAM", i + 1);
        }
    }
}
