//! Quick probe: replay a synthetic mixed trace on all four technologies
//! and print the normalized Table VI row the defaults produce.
use nvsim_mem::system::replay_all_technologies;
use nvsim_types::{MemTransaction, SystemConfig, VirtAddr};

fn main() {
    // Mixed-locality trace: streaming fills with interleaved writebacks
    // to a second region, plus scattered accesses.
    let mut txns = Vec::new();
    let mut x: u64 = 12345;
    for i in 0..200_000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let scattered = (x >> 33).is_multiple_of(4);
        let addr = if scattered {
            VirtAddr::new(((x >> 20) % (512 << 20)) & !63)
        } else {
            VirtAddr::new((i * 64) % (96 << 20))
        };
        if (x >> 13) % 5 < 2 {
            txns.push(MemTransaction::writeback(addr));
        } else {
            txns.push(MemTransaction::read_fill(addr));
        }
    }
    let sys = SystemConfig::default();
    let (reports, normalized) = replay_all_technologies(&txns, &sys);
    for (r, n) in reports.iter().zip(&normalized) {
        println!(
            "{:8} norm={:.3} total={:7.1}mW dyn_frac={:.2} elapsed={:.2}ms hits={:.2} dirty_wb={}",
            r.technology,
            n,
            r.total_mw(),
            r.power.dynamic_fraction(),
            r.stats.elapsed_ns / 1e6,
            r.stats.row_hit_rate(),
            r.stats.dirty_writebacks,
        );
    }
}
