//! The *hierarchical* hybrid memory design: DRAM as a cache in front of
//! NVRAM (Qureshi et al., §VIII), built so the paper's §II argument
//! against it can be tested:
//!
//! "A hybrid memory system can be hierarchical, using DRAM as a cache to
//! reduce NVRAM access latency, or horizontally putting NVRAM and DRAM
//! side-by-side behind the bus. ... The first design does not fit well
//! for many scientific applications. For workloads with poor locality,
//! the DRAM cache actually lowers performance and increases energy
//! consumption. ... Therefore, our discussion in this paper focuses on
//! the second hybrid memory system."
//!
//! The model: a set-associative DRAM cache (4 KB blocks, as Qureshi's
//! design caches at page-ish granularity) in front of an NVRAM backing
//! store. Every main-memory transaction first probes the cache; a miss
//! pays the NVRAM access *plus* the block fill, and a dirty eviction pays
//! a block write back to NVRAM. The report gives average access latency
//! and energy per transaction, directly comparable with a flat replay on
//! the same trace.

use crate::calibration::{E_PERIPHERAL_NJ, T_BUS_NS, VDD};
use nvsim_types::{DeviceProfile, MemTransaction};
use serde::{Deserialize, Serialize};

/// Configuration of the DRAM cache layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramCacheConfig {
    /// Cache capacity in bytes (Qureshi-style: ~3% of NVRAM capacity).
    pub capacity_bytes: u64,
    /// Block (fill) size in bytes — large blocks amortize tag overhead
    /// but multiply miss cost for poor locality.
    pub block_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// DRAM access latency, ns.
    pub dram_latency_ns: f64,
}

impl Default for DramCacheConfig {
    fn default() -> Self {
        DramCacheConfig {
            capacity_bytes: 64 << 20,
            block_bytes: 4096,
            ways: 8,
            dram_latency_ns: 10.0,
        }
    }
}

/// Aggregate result of a hierarchical-hybrid replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramCacheReport {
    /// Transactions served.
    pub transactions: u64,
    /// DRAM-cache hits.
    pub hits: u64,
    /// Misses (each pays an NVRAM block fill).
    pub misses: u64,
    /// Dirty block evictions written back to NVRAM.
    pub dirty_evictions: u64,
    /// Average latency per transaction, ns.
    pub avg_latency_ns: f64,
    /// Average energy per transaction, nJ.
    pub avg_energy_nj: f64,
}

impl DramCacheReport {
    /// Cache hit rate.
    pub fn hit_rate(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.hits as f64 / self.transactions as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Block {
    tag: u64,
    dirty: bool,
    valid: bool,
    last_use: u64,
}

/// The hierarchical hybrid: DRAM cache over an NVRAM backing store.
pub struct DramCachedNvram {
    config: DramCacheConfig,
    nvram: DeviceProfile,
    blocks: Vec<Block>,
    sets: u64,
    tick: u64,
    report: DramCacheReport,
    total_latency_ns: f64,
    total_energy_nj: f64,
}

impl DramCachedNvram {
    /// Builds the hierarchy.
    ///
    /// # Panics
    /// Panics if the geometry is not a power-of-two set count.
    pub fn new(config: DramCacheConfig, nvram: DeviceProfile) -> Self {
        let blocks_total = config.capacity_bytes / config.block_bytes;
        let sets = blocks_total / u64::from(config.ways);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        DramCachedNvram {
            blocks: vec![
                Block {
                    tag: 0,
                    dirty: false,
                    valid: false,
                    last_use: 0
                };
                blocks_total as usize
            ],
            sets,
            tick: 0,
            report: DramCacheReport {
                transactions: 0,
                hits: 0,
                misses: 0,
                dirty_evictions: 0,
                avg_latency_ns: 0.0,
                avg_energy_nj: 0.0,
            },
            total_latency_ns: 0.0,
            total_energy_nj: 0.0,
            config,
            nvram,
        }
    }

    /// Energy of moving `bytes` at the NVRAM array (per-64B-burst cell
    /// current over the bus window).
    fn nvram_energy_nj(&self, bytes: u64, write: bool) -> f64 {
        let bursts = bytes.div_ceil(64) as f64;
        let current = if write {
            self.nvram.write_current_ma
        } else {
            self.nvram.read_current_ma
        };
        bursts * (VDD * current * 1e-3 * T_BUS_NS + E_PERIPHERAL_NJ)
    }

    /// DRAM access energy for one 64 B transaction.
    fn dram_energy_nj(&self) -> f64 {
        VDD * 115.0 * 1e-3 * T_BUS_NS + E_PERIPHERAL_NJ
    }

    /// Serves one 64-byte transaction.
    pub fn process(&mut self, txn: &MemTransaction) {
        self.tick += 1;
        self.report.transactions += 1;
        // Pre-compute the energies before borrowing the block set.
        let dram_e = self.dram_energy_nj();
        let fill_e = self.nvram_energy_nj(self.config.block_bytes, false);
        let wb_e = self.nvram_energy_nj(self.config.block_bytes, true);
        let block_addr = txn.addr.raw() / self.config.block_bytes;
        let set = (block_addr % self.sets) as usize;
        let ways = self.config.ways as usize;
        let tick = self.tick;
        let slice = &mut self.blocks[set * ways..(set + 1) * ways];

        // Probe.
        if let Some(b) = slice.iter_mut().find(|b| b.valid && b.tag == block_addr) {
            b.last_use = tick;
            b.dirty |= txn.kind.is_write();
            self.report.hits += 1;
            self.total_latency_ns += self.config.dram_latency_ns;
            self.total_energy_nj += dram_e;
            return;
        }

        // Miss: fill the whole block from NVRAM, evicting LRU.
        self.report.misses += 1;
        let victim = match slice.iter_mut().find(|b| !b.valid) {
            Some(v) => v,
            None => slice.iter_mut().min_by_key(|b| b.last_use).expect("ways >= 1"),
        };
        let mut latency = self.nvram.read_latency_ns
            + self.config.block_bytes as f64 / 64.0 * T_BUS_NS
            + self.config.dram_latency_ns;
        let mut energy = fill_e + dram_e;
        let mut dirty_evicted = false;
        if victim.valid && victim.dirty {
            dirty_evicted = true;
            latency += self.nvram.write_latency_ns;
            energy += wb_e;
        }
        *victim = Block {
            tag: block_addr,
            dirty: txn.kind.is_write(),
            valid: true,
            last_use: tick,
        };
        if dirty_evicted {
            self.report.dirty_evictions += 1;
        }
        self.total_latency_ns += latency;
        self.total_energy_nj += energy;
    }

    /// Finalizes averages and returns the report.
    pub fn finish(mut self) -> DramCacheReport {
        let n = self.report.transactions.max(1) as f64;
        self.report.avg_latency_ns = self.total_latency_ns / n;
        self.report.avg_energy_nj = self.total_energy_nj / n;
        self.report
    }
}

/// Flat (horizontal) baseline on the same trace: every transaction goes
/// straight to the device at 64-byte granularity.
pub fn flat_baseline(txns: &[MemTransaction], device: &DeviceProfile) -> DramCacheReport {
    let mut total_latency = 0.0;
    let mut total_energy = 0.0;
    for t in txns {
        let write = t.kind.is_write();
        total_latency += if write {
            device.write_latency_ns
        } else {
            device.read_latency_ns
        };
        let current = if write {
            device.write_current_ma
        } else {
            device.read_current_ma
        };
        total_energy += VDD * current * 1e-3 * T_BUS_NS + E_PERIPHERAL_NJ;
    }
    let n = txns.len().max(1) as f64;
    DramCacheReport {
        transactions: txns.len() as u64,
        hits: 0,
        misses: txns.len() as u64,
        dirty_evictions: 0,
        avg_latency_ns: total_latency / n,
        avg_energy_nj: total_energy / n,
    }
}

/// Replays a trace through the hierarchical hybrid.
pub fn replay_dram_cache(
    txns: &[MemTransaction],
    config: DramCacheConfig,
    nvram: DeviceProfile,
) -> DramCacheReport {
    let mut h = DramCachedNvram::new(config, nvram);
    for t in txns {
        h.process(t);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim_types::{TransactionKind, VirtAddr};

    fn txn(addr: u64, write: bool) -> MemTransaction {
        MemTransaction {
            addr: VirtAddr::new(addr),
            kind: if write {
                TransactionKind::Writeback
            } else {
                TransactionKind::ReadFill
            },
            issue_cycle: 0,
        }
    }

    /// Good locality: a working set that fits the DRAM cache, revisited.
    fn local_trace(n: u64) -> Vec<MemTransaction> {
        (0..n)
            .map(|i| txn((i * 64) % (16 << 20), i % 4 == 0))
            .collect()
    }

    /// Poor locality: a random walk over 1 GiB (far beyond the cache).
    fn scattered_trace(n: u64) -> Vec<MemTransaction> {
        let mut x = 0x853c49e6748fea9bu64;
        (0..n)
            .map(|i| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                txn((x % (1 << 30)) & !63, i % 4 == 0)
            })
            .collect()
    }

    #[test]
    fn good_locality_wins_with_the_dram_cache() {
        let txns = local_trace(200_000);
        let cached = replay_dram_cache(&txns, DramCacheConfig::default(), DeviceProfile::pcram());
        let flat = flat_baseline(&txns, &DeviceProfile::pcram());
        assert!(cached.hit_rate() > 0.9, "hit rate {}", cached.hit_rate());
        assert!(
            cached.avg_latency_ns < flat.avg_latency_ns,
            "cached {} vs flat {}",
            cached.avg_latency_ns,
            flat.avg_latency_ns
        );
    }

    #[test]
    fn poor_locality_loses_with_the_dram_cache() {
        // The §II claim: for poor locality the DRAM cache *lowers
        // performance and increases energy* vs going to NVRAM directly.
        let txns = scattered_trace(100_000);
        let cached = replay_dram_cache(&txns, DramCacheConfig::default(), DeviceProfile::pcram());
        let flat = flat_baseline(&txns, &DeviceProfile::pcram());
        assert!(cached.hit_rate() < 0.2, "hit rate {}", cached.hit_rate());
        assert!(
            cached.avg_latency_ns > flat.avg_latency_ns,
            "cache should hurt: {} vs {}",
            cached.avg_latency_ns,
            flat.avg_latency_ns
        );
        assert!(
            cached.avg_energy_nj > 2.0 * flat.avg_energy_nj,
            "block fills should burn energy: {} vs {}",
            cached.avg_energy_nj,
            flat.avg_energy_nj
        );
    }

    #[test]
    fn dirty_evictions_pay_nvram_writes() {
        // Write-heavy thrash: every miss eventually evicts dirty.
        let mut txns = Vec::new();
        for i in 0..50_000u64 {
            txns.push(txn((i * 4096) % (1 << 30), true));
        }
        let rep = replay_dram_cache(&txns, DramCacheConfig::default(), DeviceProfile::pcram());
        assert!(rep.dirty_evictions > 10_000);
    }

    #[test]
    fn report_accounting() {
        let txns = local_trace(10_000);
        let rep = replay_dram_cache(&txns, DramCacheConfig::default(), DeviceProfile::sttram());
        assert_eq!(rep.transactions, 10_000);
        assert_eq!(rep.hits + rep.misses, 10_000);
        assert!(rep.avg_latency_ns > 0.0);
        assert!(rep.avg_energy_nj > 0.0);
    }
}
