//! The memory-system façade — the first module of §IV, "integrating the
//! other two, acts as an interface to other full system simulator
//! components or, in our case, to the trace files".

use crate::controller::{ControllerStats, MemoryController};
use crate::mapping::MappingScheme;
use crate::bank::RowPolicy;
use crate::power::{PowerBreakdown, PowerModel};
use nvsim_cache::TransactionSink;
use nvsim_obs::{ArgValue, Metrics, Timeline};
use nvsim_types::{DeviceProfile, MemTransaction, SystemConfig};
use serde::{Deserialize, Serialize};

/// Final report of one trace replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Technology name.
    pub technology: String,
    /// Controller counters.
    pub stats: ControllerStats,
    /// Average-power breakdown.
    pub power: PowerBreakdown,
}

impl PowerReport {
    /// Total average power in mW.
    pub fn total_mw(&self) -> f64 {
        self.power.total_mw()
    }
}

/// A memory system: controller + power model, consuming a transaction
/// stream (it implements [`TransactionSink`], so it can sit directly
/// behind the cache filter, mirroring Figure 1 of the paper).
///
/// ```
/// use nvsim_mem::MemorySystem;
/// use nvsim_types::{DeviceProfile, MemTransaction, SystemConfig, VirtAddr};
///
/// let sys = SystemConfig::default();
/// let mut m = MemorySystem::new(DeviceProfile::pcram(), &sys);
/// for i in 0..1000u64 {
///     m.process(&MemTransaction::read_fill(VirtAddr::new(i * 64)));
/// }
/// let report = m.finish();
/// assert_eq!(report.stats.reads, 1000);
/// assert!(report.total_mw() > 0.0);
/// assert_eq!(report.power.refresh_mw, 0.0); // NVRAM never refreshes
/// ```
pub struct MemorySystem {
    controller: MemoryController,
    model: PowerModel,
    metrics: Metrics,
    timeline: Timeline,
}

impl MemorySystem {
    /// Builds a memory system with DRAMSim2-like defaults for `device`.
    pub fn new(device: DeviceProfile, sys: &SystemConfig) -> Self {
        MemorySystem {
            controller: MemoryController::with_defaults(device.clone(), sys),
            model: PowerModel::new(device, sys.mem_capacity_bytes),
            metrics: Metrics::disabled(),
            timeline: Timeline::disabled(),
        }
    }

    /// Builds a memory system with an explicit mapping scheme and row
    /// policy (for the row-policy ablation).
    pub fn with_policy(
        device: DeviceProfile,
        sys: &SystemConfig,
        scheme: MappingScheme,
        policy: RowPolicy,
    ) -> Self {
        MemorySystem {
            controller: MemoryController::new(device.clone(), sys, scheme, policy, 64),
            model: PowerModel::new(device, sys.mem_capacity_bytes),
            metrics: Metrics::disabled(),
            timeline: Timeline::disabled(),
        }
    }

    /// Binds the system to an observability registry. Counters and
    /// gauges are exported by [`MemorySystem::finish`] under
    /// `mem.<technology>.*` (see `docs/METRICS.md`), so several systems
    /// replaying the same trace on different devices can share one
    /// registry without colliding.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.metrics = metrics.clone();
    }

    /// Binds the system to an event timeline: [`MemorySystem::replay`]
    /// renders as a `replay <tech>` span and [`MemorySystem::finish`]
    /// emits a `power` instant carrying the replay's energy and elapsed
    /// time, all under the `mem` category.
    pub fn set_timeline(&mut self, timeline: &Timeline) {
        self.timeline = timeline.clone();
    }

    fn technology_label(&self) -> String {
        self.controller.device().technology.to_string().to_lowercase()
    }

    fn export_metrics(&self, stats: &ControllerStats, power: &PowerBreakdown) {
        if !self.metrics.is_enabled() {
            return;
        }
        let tech = self
            .controller
            .device()
            .technology
            .to_string()
            .to_lowercase();
        let c = |suffix: &str, v: u64| self.metrics.counter(&format!("mem.{tech}.{suffix}")).add(v);
        c("reads", stats.reads);
        c("writes", stats.writes);
        c("activates", stats.activates);
        c("precharges", stats.precharges);
        c("row_hits", stats.row_hits);
        c("row_conflicts", stats.row_conflicts);
        c("dirty_writebacks", stats.dirty_writebacks);
        c("refreshes", stats.refreshes);
        let g = |suffix: &str, v: f64| {
            self.metrics
                .gauge(&format!("mem.{tech}.{suffix}"))
                .set(v as i64)
        };
        g("elapsed_ns", stats.elapsed_ns);
        g("bank_stall_ns", stats.bank_stall_ns);
        // mW × ns = pJ: the replay's total energy on this device.
        g("energy_pj", power.total_mw() * stats.elapsed_ns);
    }

    /// Replays one transaction.
    pub fn process(&mut self, txn: &MemTransaction) {
        self.controller.process(txn);
    }

    /// Replays a whole trace.
    pub fn replay<'a>(&mut self, txns: impl IntoIterator<Item = &'a MemTransaction>) {
        let span = self.timeline.is_enabled().then(|| {
            let name = format!("replay {}", self.technology_label());
            self.timeline.begin(&name, "mem");
            name
        });
        let mut n = 0u64;
        for t in txns {
            self.process(t);
            n += 1;
        }
        if let Some(name) = span {
            self.timeline
                .end_with(&name, "mem", &[("transactions", ArgValue::U64(n))]);
        }
    }

    /// Finalizes the replay and produces the power report.
    pub fn finish(mut self) -> PowerReport {
        let stats = self.controller.finish();
        let power = self.model.average_power(&stats);
        self.export_metrics(&stats, &power);
        if self.timeline.is_enabled() {
            self.timeline.instant(
                "power",
                "mem",
                &[
                    ("tech", ArgValue::Str(self.technology_label())),
                    ("energy_pj", ArgValue::F64(power.total_mw() * stats.elapsed_ns)),
                    ("elapsed_ns", ArgValue::F64(stats.elapsed_ns)),
                ],
            );
        }
        PowerReport {
            technology: self.controller.device().technology.to_string(),
            stats,
            power,
        }
    }
}

impl TransactionSink for MemorySystem {
    fn on_transaction(&mut self, t: MemTransaction) {
        self.process(&t);
    }
}

/// Replays the same trace on every Table IV technology and returns the
/// reports in `[DDR3, PCRAM, STTRAM, MRAM]` order, plus the power of each
/// normalized by the DDR3 result — one row of Table VI.
pub fn replay_all_technologies(
    txns: &[MemTransaction],
    sys: &SystemConfig,
) -> (Vec<PowerReport>, Vec<f64>) {
    use nvsim_types::MemoryTechnology;
    let reports: Vec<PowerReport> = MemoryTechnology::ALL
        .iter()
        .map(|&t| {
            let mut m = MemorySystem::new(DeviceProfile::for_technology(t), sys);
            m.replay(txns);
            m.finish()
        })
        .collect();
    let dram = reports[0].total_mw();
    let normalized = reports.iter().map(|r| r.total_mw() / dram).collect();
    (reports, normalized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim_types::VirtAddr;

    /// A synthetic cache-filtered trace: mostly-sequential fills over a
    /// working set with periodic writebacks, like a stencil sweep.
    fn synthetic_trace(n: u64) -> Vec<MemTransaction> {
        let mut txns = Vec::with_capacity(n as usize);
        for i in 0..n {
            let addr = VirtAddr::new((i * 64) % (64 << 20));
            if i % 3 == 0 {
                txns.push(MemTransaction::writeback(addr));
            } else {
                txns.push(MemTransaction::read_fill(addr));
            }
        }
        txns
    }

    #[test]
    fn table_vi_shape_nvram_saves_power() {
        let txns = synthetic_trace(50_000);
        let sys = SystemConfig::default();
        let (reports, normalized) = replay_all_technologies(&txns, &sys);
        assert_eq!(reports.len(), 4);
        assert!((normalized[0] - 1.0).abs() < 1e-12, "DRAM is the baseline");
        // Every NVRAM saves substantial power vs DRAM.
        for (i, tech) in ["PCRAM", "STTRAM", "MRAM"].iter().enumerate() {
            let r = normalized[i + 1];
            assert!(r < 0.9, "{tech} normalized power {r} not < 0.9");
            assert!(r > 0.3, "{tech} normalized power {r} implausibly low");
        }
        // Paper ordering: PCRAM draws the least average power (its slow
        // array accesses stretch the replay most); STTRAM and MRAM sit
        // above it and within a few percent of each other.
        assert!(normalized[1] <= normalized[2] + 1e-9);
        assert!(normalized[1] <= normalized[3] + 1e-9);
        assert!((normalized[2] - normalized[3]).abs() < 0.05);
    }

    #[test]
    fn sink_and_replay_agree() {
        let txns = synthetic_trace(1_000);
        let sys = SystemConfig::default();
        let mut a = MemorySystem::new(DeviceProfile::pcram(), &sys);
        a.replay(&txns);
        let ra = a.finish();
        let mut b = MemorySystem::new(DeviceProfile::pcram(), &sys);
        for t in &txns {
            b.on_transaction(*t);
        }
        let rb = b.finish();
        assert_eq!(ra, rb);
    }

    #[test]
    fn metrics_export_is_namespaced_per_technology() {
        let m = nvsim_obs::Metrics::enabled();
        let txns = synthetic_trace(2_000);
        let sys = SystemConfig::default();
        let mut reports = Vec::new();
        for tech in [DeviceProfile::ddr3(), DeviceProfile::pcram()] {
            let mut ms = MemorySystem::new(tech, &sys);
            ms.set_metrics(&m);
            ms.replay(&txns);
            reports.push(ms.finish());
        }
        let snap = m.snapshot();
        assert_eq!(snap.counter("mem.ddr3.reads"), Some(reports[0].stats.reads));
        assert_eq!(
            snap.counter("mem.pcram.writes"),
            Some(reports[1].stats.writes)
        );
        for r in &reports {
            let tech = r.technology.to_lowercase();
            let pj = snap.gauge(&format!("mem.{tech}.energy_pj")).unwrap();
            let expected = r.total_mw() * r.stats.elapsed_ns;
            assert!((pj as f64 - expected).abs() <= 1.0, "{tech}: {pj} vs {expected}");
        }
        // Only the DRAM replay pays refresh; both replays advance time.
        assert!(snap.counter("mem.ddr3.refreshes").unwrap() > 0);
        assert_eq!(snap.counter("mem.pcram.refreshes"), Some(0));
        assert!(snap.gauge("mem.pcram.elapsed_ns").unwrap() > 0);
    }

    #[test]
    fn timeline_gets_replay_span_and_power_instant() {
        use nvsim_obs::{EventKind, Timeline};
        let tl = Timeline::enabled();
        let sys = SystemConfig::default();
        let mut ms = MemorySystem::new(DeviceProfile::pcram(), &sys);
        ms.set_timeline(&tl);
        ms.replay(&synthetic_trace(100));
        let _ = ms.finish();
        let events = tl.events();
        let span: Vec<_> = events.iter().filter(|e| e.name == "replay pcram").collect();
        assert_eq!(span.len(), 2);
        assert_eq!(span[0].kind, EventKind::Begin);
        assert_eq!(span[1].kind, EventKind::End);
        assert_eq!(
            span[1].args[0],
            ("transactions".to_string(), ArgValue::U64(100))
        );
        let power = events
            .iter()
            .find(|e| e.name == "power" && e.cat == "mem")
            .expect("power instant");
        assert_eq!(power.args[0], ("tech".to_string(), ArgValue::Str("pcram".into())));
    }

    #[test]
    fn empty_trace_reports_standby_only() {
        let sys = SystemConfig::default();
        let r = MemorySystem::new(DeviceProfile::ddr3(), &sys).finish();
        assert_eq!(r.stats.transactions(), 0);
        assert!(r.total_mw() > 0.0); // DRAM standby
        let n = MemorySystem::new(DeviceProfile::sttram(), &sys).finish();
        assert_eq!(n.total_mw(), 0.0);
    }
}
