//! The memory controller: address mapping, row policy and bank-state
//! updates (§IV, second module), replayed at full trace speed.
//!
//! Timing model: transactions issue in order, separated by at least the
//! bus burst gap; each transaction additionally waits for its target bank
//! to become ready. Row-buffer hits stream at the bus rate; the device
//! array latencies are paid where row buffers interact with the array —
//! the read latency on every activation and the write latency when a dirty
//! row buffer is written back (the row-buffer organization PCM
//! architecture work assumes, and the reason slow-write NVRAM is usable at
//! all). This is what makes the *elapsed* replay time device-dependent:
//! PCRAM's long array accesses stretch the replay, so its *average* power
//! is lowest — exactly the load effect §VII-D uses to explain why the
//! faster STTRAM/MRAM parts draw slightly more average power than PCRAM.

use crate::bank::{Bank, RowPolicy};
use crate::calibration;
use crate::mapping::{AddressMapping, MappingScheme};
use nvsim_types::{DeviceProfile, MemTransaction, SystemConfig};
use serde::{Deserialize, Serialize};

/// Aggregated controller statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Read transactions served.
    pub reads: u64,
    /// Write transactions served.
    pub writes: u64,
    /// ACTIVATE commands across all banks.
    pub activates: u64,
    /// PRECHARGE commands across all banks.
    pub precharges: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer conflicts.
    pub row_conflicts: u64,
    /// Dirty row-buffer writebacks to the array.
    pub dirty_writebacks: u64,
    /// Refresh commands issued (DRAM only; 0 for NVRAM).
    pub refreshes: u64,
    /// Total ns spent stalled on busy banks.
    pub bank_stall_ns: f64,
    /// End-to-end replay time in ns.
    pub elapsed_ns: f64,
}

impl ControllerStats {
    /// Total transactions.
    pub fn transactions(&self) -> u64 {
        self.reads + self.writes
    }

    /// Row-buffer hit rate over all accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.transactions();
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// The memory controller.
pub struct MemoryController {
    mapping: AddressMapping,
    banks: Vec<Bank>,
    banks_per_rank: u32,
    policy: RowPolicy,
    device: DeviceProfile,
    t_rp_ns: f64,
    /// Earliest time the next transaction may issue (bus constraint).
    next_issue_ns: f64,
    /// Simulated time of the next due refresh (`f64::INFINITY` for NVRAM).
    next_refresh_ns: f64,
    stats: ControllerStats,
}

impl MemoryController {
    /// Builds a controller for `device` over the Table III geometry.
    pub fn new(
        device: DeviceProfile,
        sys: &SystemConfig,
        scheme: MappingScheme,
        policy: RowPolicy,
        line_size: u64,
    ) -> Self {
        let mapping = AddressMapping::new(scheme, sys, line_size);
        let nbanks = (sys.banks * sys.ranks) as usize;
        MemoryController {
            mapping,
            banks: vec![Bank::default(); nbanks],
            banks_per_rank: sys.banks,
            policy,
            t_rp_ns: device.read_latency_ns * calibration::T_RP_FRACTION,
            next_refresh_ns: if device.refresh_interval_ns > 0.0 {
                device.refresh_interval_ns
            } else {
                f64::INFINITY
            },
            device,
            next_issue_ns: 0.0,
            stats: ControllerStats::default(),
        }
    }

    /// Convenience constructor with DRAMSim2-like defaults: open-page
    /// policy and the row:rank:bank:column mapping.
    pub fn with_defaults(device: DeviceProfile, sys: &SystemConfig) -> Self {
        Self::new(
            device,
            sys,
            MappingScheme::RowRankBankCol,
            RowPolicy::OpenPage,
            64,
        )
    }

    /// Serves one transaction, advancing the replay clock.
    pub fn process(&mut self, txn: &MemTransaction) {
        // Refresh: when tREFI elapses, the device (modelled globally for
        // simplicity) blocks new issues for tRFC. NVRAM never pays this
        // (`next_refresh_ns` is infinite).
        while self.next_issue_ns >= self.next_refresh_ns {
            self.stats.refreshes += 1;
            self.next_issue_ns = self.next_refresh_ns + calibration::T_RFC_NS;
            self.next_refresh_ns += self.device.refresh_interval_ns;
        }

        let is_write = txn.kind.is_write();
        let d = self.mapping.decode(txn.addr);
        let bank = &mut self.banks[d.flat_bank(self.banks_per_rank)];

        let issue = self.next_issue_ns;
        let start = issue.max(bank.ready_ns);
        self.stats.bank_stall_ns += start - issue;

        let outcome = bank.access(d.row, is_write, self.policy);
        // Array interaction cost: activations pay the device read latency
        // (the array row is sensed into the row buffer); closing a dirty
        // row additionally pays the device write latency (buffer written
        // back to the array). Row hits only occupy the bank for the burst.
        let row_cost = match outcome {
            crate::bank::RowOutcome::Hit => 0.0,
            crate::bank::RowOutcome::Activate => self.device.read_latency_ns,
            crate::bank::RowOutcome::Conflict { dirty_eviction } => {
                let close = if dirty_eviction {
                    self.device.write_latency_ns * calibration::DIRTY_CLOSE_TIME_FRACTION
                } else {
                    self.t_rp_ns
                };
                close + self.device.read_latency_ns
            }
        };
        let done = start + row_cost + calibration::T_BUS_NS;
        bank.ready_ns = if self.policy == RowPolicy::ClosedPage {
            // Auto-precharge: a dirty close pays the (partial) array write.
            done + if is_write {
                self.device.write_latency_ns * calibration::DIRTY_CLOSE_TIME_FRACTION
            } else {
                self.t_rp_ns
            }
        } else {
            done
        };

        self.next_issue_ns = start + calibration::T_BUS_NS;
        self.stats.elapsed_ns = self.stats.elapsed_ns.max(done);
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
    }

    /// Finalizes counters (folds per-bank stats into the aggregate) and
    /// returns them.
    pub fn finish(&mut self) -> ControllerStats {
        let mut s = self.stats;
        for b in &self.banks {
            let bs = b.stats();
            s.activates += bs.activates;
            s.precharges += bs.precharges;
            s.row_hits += bs.row_hits;
            s.row_conflicts += bs.row_conflicts;
            s.dirty_writebacks += bs.dirty_writebacks;
        }
        s
    }

    /// Device under simulation.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// Replay time so far, ns.
    pub fn elapsed_ns(&self) -> f64 {
        self.stats.elapsed_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim_types::{MemoryTechnology, VirtAddr};

    fn run_stream(device: DeviceProfile, n: u64, stride: u64, write_every: u64) -> ControllerStats {
        let sys = SystemConfig::default();
        let mut mc = MemoryController::with_defaults(device, &sys);
        for i in 0..n {
            let addr = VirtAddr::new(i * stride);
            let txn = if write_every > 0 && i % write_every == 0 {
                MemTransaction::writeback(addr)
            } else {
                MemTransaction::read_fill(addr)
            };
            mc.process(&txn);
        }
        mc.finish()
    }

    #[test]
    fn streaming_reads_hit_open_rows() {
        let s = run_stream(DeviceProfile::ddr3(), 1000, 64, 0);
        assert_eq!(s.reads, 1000);
        assert!(s.row_hit_rate() > 0.9, "hit rate {}", s.row_hit_rate());
        assert!(s.elapsed_ns > 0.0);
    }

    #[test]
    fn random_banks_have_few_conflicts() {
        // Large stride rotates rows within one bank -> all conflicts.
        let s = run_stream(DeviceProfile::ddr3(), 1000, 64 * 128 * 256, 0);
        assert!(s.row_conflicts > 900);
    }

    #[test]
    fn slower_device_stretches_replay() {
        // Row-conflict stride on one bank (row is the top field of the
        // mapping), half the traffic writes: every access closes a row,
        // half of them dirty. This is where array latencies surface.
        let n = 20_000;
        let stride = 64 * 128 * 256; // next row, same bank/rank
        let d = run_stream(DeviceProfile::ddr3(), n, stride, 2);
        let p = run_stream(DeviceProfile::pcram(), n, stride, 2);
        let s = run_stream(DeviceProfile::sttram(), n, stride, 2);
        let m = run_stream(DeviceProfile::mram(), n, stride, 2);
        // PCRAM's long array accesses stretch the replay the most; the
        // STT/MRAM order depends on the dirty-close mix, so they are only
        // required to sit between DRAM and PCRAM and near each other.
        assert!(p.elapsed_ns > s.elapsed_ns, "PCRAM {} vs STT {}", p.elapsed_ns, s.elapsed_ns);
        assert!(p.elapsed_ns > m.elapsed_ns, "PCRAM {} vs MRAM {}", p.elapsed_ns, m.elapsed_ns);
        assert!(s.elapsed_ns > d.elapsed_ns, "STT {} vs DRAM {}", s.elapsed_ns, d.elapsed_ns);
        assert!(m.elapsed_ns > d.elapsed_ns, "MRAM {} vs DRAM {}", m.elapsed_ns, d.elapsed_ns);
        let gap = (s.elapsed_ns - m.elapsed_ns).abs() / d.elapsed_ns;
        assert!(gap < 0.1, "STT and MRAM replay times should be close: {gap}");
    }

    #[test]
    fn elapsed_at_least_bus_bound() {
        let n = 10_000u64;
        let s = run_stream(DeviceProfile::ddr3(), n, 4096, 0);
        assert!(s.elapsed_ns >= (n - 1) as f64 * calibration::T_BUS_NS);
    }

    #[test]
    fn counters_add_up() {
        let s = run_stream(DeviceProfile::sttram(), 500, 64, 2);
        assert_eq!(s.reads + s.writes, 500);
        // Open page: every access either hits the open row or activates.
        assert_eq!(s.row_hits + s.activates, 500);
        // Only conflicts precharge.
        assert_eq!(s.precharges, s.row_conflicts);
    }

    #[test]
    fn closed_page_never_row_hits() {
        let sys = SystemConfig::default();
        let mut mc = MemoryController::new(
            DeviceProfile::ddr3(),
            &sys,
            MappingScheme::RowRankBankCol,
            RowPolicy::ClosedPage,
            64,
        );
        for i in 0..100u64 {
            mc.process(&MemTransaction::read_fill(VirtAddr::new(i * 64)));
        }
        let s = mc.finish();
        assert_eq!(s.row_hits, 0);
        assert_eq!(s.activates, 100);
    }

    #[test]
    fn dram_pays_refresh_stalls_nvram_does_not() {
        // Long enough to span many tREFI intervals.
        let d = run_stream(DeviceProfile::ddr3(), 50_000, 64, 0);
        let m = run_stream(DeviceProfile::mram(), 50_000, 64, 0);
        assert!(d.refreshes > 10, "DRAM refreshes {}", d.refreshes);
        assert_eq!(m.refreshes, 0);
        // The refresh stalls stretch the DRAM replay measurably.
        assert!(d.elapsed_ns > m.elapsed_ns);
    }

    #[test]
    fn all_technologies_replay_deterministically() {
        for t in MemoryTechnology::ALL {
            let a = run_stream(DeviceProfile::for_technology(t), 1000, 64, 4);
            let b = run_stream(DeviceProfile::for_technology(t), 1000, 64, 4);
            assert_eq!(a, b);
        }
    }
}
