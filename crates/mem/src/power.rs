//! The power model of §IV.
//!
//! "Our power simulator for NVRAM includes power components for burst power
//! (i.e., the cost for reading/writing memory cells), background power, and
//! activation/precharge power (depending on the availability of hardware
//! parameters). Refresh power is 0 for NVRAM."
//!
//! Average power over a full-speed trace replay is total energy divided by
//! the replay time the controller measured. Background and refresh power
//! are time-proportional (and zero for NVRAM); burst and activate/precharge
//! energy are event-proportional.

use crate::calibration::{
    DDR3_I_READ_MA, DDR3_I_WRITE_MA, E_ACT_PRE_NJ, E_PERIPHERAL_NJ, PARTIAL_WRITE_FRACTION,
    REFRESH_MW_PER_GB, T_BUS_NS, VDD,
};
use crate::controller::ControllerStats;
use nvsim_types::{DeviceProfile, MemoryTechnology};
use serde::{Deserialize, Serialize};

/// Power decomposed into the §IV components, in milliwatts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Burst power of column reads.
    pub burst_read_mw: f64,
    /// Burst power of column writes.
    pub burst_write_mw: f64,
    /// Activation/precharge power: peripheral command energy plus the
    /// array sense energy of each activation and the array write-pulse
    /// energy of each dirty row-buffer writeback.
    pub act_pre_mw: f64,
    /// Background (leakage + peripheral standby) power.
    pub background_mw: f64,
    /// Refresh power (0 for NVRAM).
    pub refresh_mw: f64,
}

impl PowerBreakdown {
    /// Total average power in mW.
    pub fn total_mw(&self) -> f64 {
        self.burst_read_mw
            + self.burst_write_mw
            + self.act_pre_mw
            + self.background_mw
            + self.refresh_mw
    }

    /// Dynamic (event-driven) fraction of the total.
    pub fn dynamic_fraction(&self) -> f64 {
        let total = self.total_mw();
        if total == 0.0 {
            0.0
        } else {
            (self.burst_read_mw + self.burst_write_mw + self.act_pre_mw) / total
        }
    }
}

/// The power model for one device.
#[derive(Debug, Clone)]
pub struct PowerModel {
    device: DeviceProfile,
    capacity_gb: f64,
}

impl PowerModel {
    /// Creates a model for `device` with `capacity_bytes` of memory.
    pub fn new(device: DeviceProfile, capacity_bytes: u64) -> Self {
        PowerModel {
            device,
            capacity_gb: capacity_bytes as f64 / (1u64 << 30) as f64,
        }
    }

    /// Energy of one column read burst, nJ: technology cell current over
    /// the (protocol-fixed) burst window, plus the shared peripheral
    /// energy. DRAM uses IDD4-class currents; NVRAMs use the §IV cell
    /// currents (identical for PCRAM/STTRAM/MRAM — the upper-bound reuse).
    pub fn read_burst_energy_nj(&self) -> f64 {
        let current_ma = match self.device.technology {
            MemoryTechnology::Ddr3 => DDR3_I_READ_MA,
            _ => self.device.read_current_ma,
        };
        VDD * current_ma * 1e-3 * T_BUS_NS + E_PERIPHERAL_NJ
    }

    /// Energy of one column write burst, nJ (see
    /// [`PowerModel::read_burst_energy_nj`]).
    pub fn write_burst_energy_nj(&self) -> f64 {
        let current_ma = match self.device.technology {
            MemoryTechnology::Ddr3 => DDR3_I_WRITE_MA,
            _ => self.device.write_current_ma,
        };
        VDD * current_ma * 1e-3 * T_BUS_NS + E_PERIPHERAL_NJ
    }

    /// Computes the average-power breakdown for a finished replay.
    ///
    /// # Panics
    /// Panics if the replay time is zero while transactions were served.
    pub fn average_power(&self, stats: &ControllerStats) -> PowerBreakdown {
        if stats.transactions() == 0 {
            return PowerBreakdown {
                background_mw: self.background_mw(),
                refresh_mw: self.refresh_mw(),
                ..PowerBreakdown::default()
            };
        }
        assert!(
            stats.elapsed_ns > 0.0,
            "transactions served but no elapsed time"
        );
        let t_ns = stats.elapsed_ns;
        // nJ / ns = W; ×1000 -> mW.
        let to_mw = 1000.0 / t_ns;
        let act_energy_nj = stats.activates as f64
            * (E_ACT_PRE_NJ + self.array_sense_energy_nj())
            + stats.dirty_writebacks as f64 * self.array_write_energy_nj();
        PowerBreakdown {
            burst_read_mw: stats.reads as f64 * self.read_burst_energy_nj() * to_mw,
            burst_write_mw: stats.writes as f64 * self.write_burst_energy_nj() * to_mw,
            act_pre_mw: act_energy_nj * to_mw,
            background_mw: self.background_mw(),
            refresh_mw: self.refresh_mw(),
        }
    }

    /// Array sense energy of one activation, nJ: the device read current
    /// over the device read latency.
    pub fn array_sense_energy_nj(&self) -> f64 {
        VDD * self.device.read_current_ma * 1e-3 * self.device.read_latency_ns
    }

    /// Array write-pulse energy of one dirty row-buffer writeback, nJ:
    /// the device write current over the device write latency, scaled by
    /// the partial-write coverage.
    pub fn array_write_energy_nj(&self) -> f64 {
        VDD * self.device.write_current_ma
            * 1e-3
            * self.device.write_latency_ns
            * PARTIAL_WRITE_FRACTION
    }

    fn background_mw(&self) -> f64 {
        self.device.standby_power_mw_per_gb * self.capacity_gb
    }

    fn refresh_mw(&self) -> f64 {
        if self.device.refresh_interval_ns > 0.0 {
            REFRESH_MW_PER_GB * self.capacity_gb
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB2: u64 = 2 * 1024 * 1024 * 1024;

    fn stats(reads: u64, writes: u64, activates: u64, elapsed_ns: f64) -> ControllerStats {
        ControllerStats {
            reads,
            writes,
            activates,
            elapsed_ns,
            ..Default::default()
        }
    }

    #[test]
    fn nvram_has_no_background_or_refresh() {
        for t in [MemoryTechnology::Pcram, MemoryTechnology::Sttram, MemoryTechnology::Mram] {
            let m = PowerModel::new(DeviceProfile::for_technology(t), GB2);
            let p = m.average_power(&stats(100, 50, 150, 10_000.0));
            assert_eq!(p.background_mw, 0.0, "{t}");
            assert_eq!(p.refresh_mw, 0.0, "{t}");
            assert!(p.total_mw() > 0.0);
            assert_eq!(p.dynamic_fraction(), 1.0);
        }
    }

    #[test]
    fn dram_pays_background_and_refresh() {
        let m = PowerModel::new(DeviceProfile::ddr3(), GB2);
        let p = m.average_power(&stats(100, 50, 150, 10_000.0));
        assert!(p.background_mw > 0.0);
        assert!(p.refresh_mw > 0.0);
        assert!(p.dynamic_fraction() < 1.0);
    }

    #[test]
    fn write_burst_costs_more_than_read_for_nvram() {
        let m = PowerModel::new(DeviceProfile::pcram(), GB2);
        // 150 mA write vs 40 mA read.
        assert!(m.write_burst_energy_nj() > m.read_burst_energy_nj());
        // All NVRAMs share the burst energies (same currents, same window).
        let s = PowerModel::new(DeviceProfile::sttram(), GB2);
        assert_eq!(m.write_burst_energy_nj(), s.write_burst_energy_nj());
        assert_eq!(m.read_burst_energy_nj(), s.read_burst_energy_nj());
    }

    #[test]
    fn power_scales_inversely_with_elapsed_time() {
        let m = PowerModel::new(DeviceProfile::pcram(), GB2);
        let fast = m.average_power(&stats(1000, 500, 1500, 10_000.0));
        let slow = m.average_power(&stats(1000, 500, 1500, 20_000.0));
        assert!((fast.total_mw() / slow.total_mw() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn power_monotone_in_write_fraction() {
        let m = PowerModel::new(DeviceProfile::pcram(), GB2);
        let read_heavy = m.average_power(&stats(900, 100, 1000, 10_000.0));
        let write_heavy = m.average_power(&stats(100, 900, 1000, 10_000.0));
        assert!(write_heavy.total_mw() > read_heavy.total_mw());
    }

    #[test]
    fn idle_trace_is_background_only() {
        let m = PowerModel::new(DeviceProfile::ddr3(), GB2);
        let p = m.average_power(&ControllerStats::default());
        assert_eq!(p.burst_read_mw, 0.0);
        assert!(p.background_mw > 0.0);
        let nv = PowerModel::new(DeviceProfile::mram(), GB2);
        assert_eq!(nv.average_power(&ControllerStats::default()).total_mw(), 0.0);
    }
}
