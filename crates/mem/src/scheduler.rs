//! Transaction scheduling policies for the memory controller.
//!
//! The base controller issues strictly in order (FCFS). Real controllers
//! — and DRAMSim2 — hold a window of pending transactions and issue
//! *first-ready, first-come-first-served* (FR-FCFS): row-buffer hits jump
//! the queue because they can issue immediately and cheaply. The
//! [`FrFcfsScheduler`] wraps the same bank/timing model with a bounded
//! reorder window and the row-hit-first heuristic, and the `row_policy`
//! bench compares the two.

use crate::bank::{Bank, RowPolicy, RowOutcome};
use crate::calibration;
use crate::controller::ControllerStats;
use crate::mapping::{AddressMapping, DecodedAddr, MappingScheme};
use nvsim_obs::{Histogram, Metrics};
use nvsim_types::{DeviceProfile, MemTransaction, SystemConfig};
use std::collections::VecDeque;

/// A pending transaction with its decode. Arrival order is implicit in
/// the queue position (the FCFS tiebreak picks the lowest index).
#[derive(Debug, Clone, Copy)]
struct Pending {
    is_write: bool,
    decoded: DecodedAddr,
}

/// An FR-FCFS memory controller with a bounded transaction queue.
pub struct FrFcfsScheduler {
    mapping: AddressMapping,
    banks: Vec<Bank>,
    banks_per_rank: u32,
    policy: RowPolicy,
    device: DeviceProfile,
    t_rp_ns: f64,
    queue: VecDeque<Pending>,
    queue_depth: usize,
    next_issue_ns: f64,
    /// Oldest transaction must issue within this many younger issues
    /// (starvation bound, as real controllers cap reordering).
    starvation_cap: u64,
    oldest_bypassed: u64,
    stats: ControllerStats,
    occupancy: Histogram,
}

impl FrFcfsScheduler {
    /// Builds an FR-FCFS controller with the given queue depth.
    pub fn new(
        device: DeviceProfile,
        sys: &SystemConfig,
        scheme: MappingScheme,
        policy: RowPolicy,
        queue_depth: usize,
    ) -> Self {
        assert!(queue_depth >= 1);
        FrFcfsScheduler {
            mapping: AddressMapping::new(scheme, sys, 64),
            banks: vec![Bank::default(); (sys.banks * sys.ranks) as usize],
            banks_per_rank: sys.banks,
            policy,
            t_rp_ns: device.read_latency_ns * calibration::T_RP_FRACTION,
            device,
            queue: VecDeque::with_capacity(queue_depth),
            queue_depth,
            next_issue_ns: 0.0,
            starvation_cap: 4 * queue_depth as u64,
            oldest_bypassed: 0,
            stats: ControllerStats::default(),
            occupancy: Histogram::default(),
        }
    }

    /// Binds the scheduler to an observability registry: the histogram
    /// `mem.<technology>.queue_depth` records the queue occupancy seen
    /// by each arriving transaction.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        let tech = self.device.technology.to_string().to_lowercase();
        self.occupancy = metrics.histogram(&format!("mem.{tech}.queue_depth"));
    }

    /// Enqueues a transaction, draining one slot first if the queue is
    /// full.
    pub fn process(&mut self, txn: &MemTransaction) {
        self.occupancy.record(self.queue.len() as u64);
        if self.queue.len() == self.queue_depth {
            self.issue_one();
        }
        self.queue.push_back(Pending {
            is_write: txn.kind.is_write(),
            decoded: self.mapping.decode(txn.addr),
        });
    }

    /// Drains the queue and returns the final statistics.
    pub fn finish(mut self) -> ControllerStats {
        while !self.queue.is_empty() {
            self.issue_one();
        }
        let mut s = self.stats;
        for b in &self.banks {
            let bs = b.stats();
            s.activates += bs.activates;
            s.precharges += bs.precharges;
            s.row_hits += bs.row_hits;
            s.row_conflicts += bs.row_conflicts;
            s.dirty_writebacks += bs.dirty_writebacks;
        }
        s
    }

    /// Picks the next transaction: a row hit if any (oldest such), else
    /// the oldest, honouring the starvation cap.
    fn pick(&mut self) -> usize {
        if self.oldest_bypassed >= self.starvation_cap {
            self.oldest_bypassed = 0;
            return 0;
        }
        let hit_idx = self.queue.iter().position(|p| {
            let bank = &self.banks[p.decoded.flat_bank(self.banks_per_rank)];
            matches!(
                bank.state(),
                crate::bank::BankState::Active { row, .. } if row == p.decoded.row
            )
        });
        match hit_idx {
            Some(i) => {
                if i > 0 {
                    self.oldest_bypassed += 1;
                } else {
                    self.oldest_bypassed = 0;
                }
                i
            }
            None => {
                self.oldest_bypassed = 0;
                0
            }
        }
    }

    fn issue_one(&mut self) {
        let idx = self.pick();
        let p = self.queue.remove(idx).expect("picked index is valid");
        let bank = &mut self.banks[p.decoded.flat_bank(self.banks_per_rank)];

        let issue = self.next_issue_ns;
        let start = issue.max(bank.ready_ns);
        self.stats.bank_stall_ns += start - issue;

        let outcome = bank.access(p.decoded.row, p.is_write, self.policy);
        let row_cost = match outcome {
            RowOutcome::Hit => 0.0,
            RowOutcome::Activate => self.device.read_latency_ns,
            RowOutcome::Conflict { dirty_eviction } => {
                let close = if dirty_eviction {
                    self.device.write_latency_ns * calibration::DIRTY_CLOSE_TIME_FRACTION
                } else {
                    self.t_rp_ns
                };
                close + self.device.read_latency_ns
            }
        };
        let done = start + row_cost + calibration::T_BUS_NS;
        bank.ready_ns = done;
        self.next_issue_ns = start + calibration::T_BUS_NS;
        self.stats.elapsed_ns = self.stats.elapsed_ns.max(done);
        if p.is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::MemoryController;
    use nvsim_types::VirtAddr;

    /// An interleaved two-stream workload: FCFS ping-pongs between two
    /// rows of the same bank; FR-FCFS batches each row's accesses.
    fn two_stream_trace(n: u64) -> Vec<MemTransaction> {
        // Same bank, two different rows (row is the top mapping field).
        let row_stride = 64 * 128 * 256u64;
        (0..n)
            .map(|i| {
                let row = i % 2;
                let col = (i / 2) % 64;
                MemTransaction::read_fill(VirtAddr::new(row * row_stride + col * 64))
            })
            .collect()
    }

    fn run_frfcfs(txns: &[MemTransaction], depth: usize) -> ControllerStats {
        let sys = SystemConfig::default();
        let mut s = FrFcfsScheduler::new(
            DeviceProfile::ddr3(),
            &sys,
            MappingScheme::RowRankBankCol,
            RowPolicy::OpenPage,
            depth,
        );
        for t in txns {
            s.process(t);
        }
        s.finish()
    }

    fn run_fcfs(txns: &[MemTransaction]) -> ControllerStats {
        let sys = SystemConfig::default();
        let mut mc = MemoryController::with_defaults(DeviceProfile::ddr3(), &sys);
        for t in txns {
            mc.process(t);
        }
        mc.finish()
    }

    #[test]
    fn frfcfs_raises_row_hit_rate_on_interleaved_streams() {
        let txns = two_stream_trace(4000);
        let fcfs = run_fcfs(&txns);
        let fr = run_frfcfs(&txns, 32);
        assert!(fcfs.row_hit_rate() < 0.05, "FCFS hits: {}", fcfs.row_hit_rate());
        assert!(fr.row_hit_rate() > 0.5, "FR-FCFS hits: {}", fr.row_hit_rate());
        assert!(fr.elapsed_ns < fcfs.elapsed_ns);
        // Work conservation: same transactions served.
        assert_eq!(fr.transactions(), fcfs.transactions());
    }

    #[test]
    fn depth_one_degenerates_to_fcfs() {
        // MRAM: no refresh, so the base controller's refresh stalls (not
        // modelled in the scheduler) cannot skew the comparison.
        let txns = two_stream_trace(1000);
        let sys = SystemConfig::default();
        let mut s = FrFcfsScheduler::new(
            DeviceProfile::mram(),
            &sys,
            MappingScheme::RowRankBankCol,
            RowPolicy::OpenPage,
            1,
        );
        for t in &txns {
            s.process(t);
        }
        let fr1 = s.finish();
        let mut mc = MemoryController::with_defaults(DeviceProfile::mram(), &sys);
        for t in &txns {
            mc.process(t);
        }
        let fcfs = mc.finish();
        assert_eq!(fr1.row_hits, fcfs.row_hits);
        assert!((fr1.elapsed_ns - fcfs.elapsed_ns).abs() < 1e-6);
    }

    #[test]
    fn starvation_cap_bounds_bypassing() {
        // One never-hitting straggler behind an endless hit stream: the
        // cap forces it through.
        let sys = SystemConfig::default();
        let mut s = FrFcfsScheduler::new(
            DeviceProfile::ddr3(),
            &sys,
            MappingScheme::RowRankBankCol,
            RowPolicy::OpenPage,
            8,
        );
        let row_stride = 64 * 128 * 256u64;
        // Straggler to row 1.
        s.process(&MemTransaction::read_fill(VirtAddr::new(row_stride)));
        // Open row 0 and stream hits to it.
        for i in 0..4096u64 {
            s.process(&MemTransaction::read_fill(VirtAddr::new((i % 64) * 64)));
        }
        let stats = s.finish();
        assert_eq!(stats.transactions(), 4097);
        // The straggler activated row 1 at some point (2 activations).
        assert!(stats.activates >= 2);
    }

    #[test]
    fn occupancy_histogram_tracks_queue_fill() {
        let m = nvsim_obs::Metrics::enabled();
        let sys = SystemConfig::default();
        let mut s = FrFcfsScheduler::new(
            DeviceProfile::ddr3(),
            &sys,
            MappingScheme::RowRankBankCol,
            RowPolicy::OpenPage,
            8,
        );
        s.set_metrics(&m);
        let txns = two_stream_trace(100);
        for t in &txns {
            s.process(t);
        }
        let _ = s.finish();
        let snap = m.snapshot();
        let h = snap.histogram("mem.ddr3.queue_depth").expect("occupancy");
        assert_eq!(h.count, 100);
        // The queue fills to capacity and stays there under load.
        assert_eq!(h.max, 8);
    }

    #[test]
    fn deeper_queues_never_hurt_elapsed() {
        let txns = two_stream_trace(2000);
        let mut prev = f64::INFINITY;
        for depth in [1usize, 8, 32] {
            let s = run_frfcfs(&txns, depth);
            assert!(s.elapsed_ns <= prev * 1.001, "depth {depth}");
            prev = s.elapsed_ns;
        }
    }
}
