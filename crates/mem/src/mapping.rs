//! Physical address mapping: line address → (rank, bank, row, column).
//!
//! The scheme decides which resources consecutive cache lines land on, and
//! with it the row-buffer hit rate and bank-level parallelism the
//! controller sees. DRAMSim2 ships several orderings; we implement the two
//! that bracket the behaviour space.

use nvsim_types::{SystemConfig, VirtAddr};
use serde::{Deserialize, Serialize};

/// Bit-field ordering of the decomposed address (listed from the most
/// significant field to the least).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingScheme {
    /// `row : rank : bank : column` — consecutive lines walk the columns
    /// of one open row, maximizing row-buffer hits for streaming access.
    RowRankBankCol,
    /// `row : column : rank : bank` — consecutive lines rotate over banks
    /// and ranks, maximizing bank-level parallelism.
    RowColRankBank,
}

/// A decoded device coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodedAddr {
    /// Rank index.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// Line-granularity column within the row.
    pub col: u32,
}

impl DecodedAddr {
    /// Flattened bank index across ranks.
    pub fn flat_bank(&self, banks_per_rank: u32) -> usize {
        (self.rank * banks_per_rank + self.bank) as usize
    }
}

/// Address decoder configured from Table III geometry.
#[derive(Debug, Clone)]
pub struct AddressMapping {
    scheme: MappingScheme,
    line_bits: u32,
    col_bits: u32,
    bank_bits: u32,
    rank_bits: u32,
    row_bits: u32,
}

impl AddressMapping {
    /// Builds a mapping for the given system geometry and cache line size.
    ///
    /// # Panics
    /// Panics if any geometry field is not a power of two.
    pub fn new(scheme: MappingScheme, sys: &SystemConfig, line_size: u64) -> Self {
        // Each column holds one bus transfer (bus_bits/8 bytes); a cache
        // line spans line_size / (bus_bits/8) consecutive columns. We
        // decode at line granularity, so the per-line column field loses
        // those low bits.
        let bus_bytes = u64::from(sys.bus_bits) / 8;
        let cols_per_line = (line_size / bus_bytes).max(1);
        let line_cols = (u64::from(sys.cols) / cols_per_line).max(1);
        for (v, what) in [
            (u64::from(sys.banks), "banks"),
            (u64::from(sys.ranks), "ranks"),
            (u64::from(sys.rows), "rows"),
            (line_cols, "columns per line"),
        ] {
            assert!(v.is_power_of_two(), "{what} must be a power of two, got {v}");
        }
        AddressMapping {
            scheme,
            line_bits: line_size.trailing_zeros(),
            col_bits: line_cols.trailing_zeros(),
            bank_bits: sys.banks.trailing_zeros(),
            rank_bits: sys.ranks.trailing_zeros(),
            row_bits: sys.rows.trailing_zeros(),
        }
    }

    /// Total addressable bytes before the decode wraps.
    pub fn capacity_bytes(&self) -> u64 {
        1u64 << (self.line_bits + self.col_bits + self.bank_bits + self.rank_bits + self.row_bits)
    }

    /// Decodes a byte address (the line offset is discarded; addresses
    /// beyond the capacity wrap, as trace replay treats the device as a
    /// direct-mapped window).
    pub fn decode(&self, addr: VirtAddr) -> DecodedAddr {
        let mut x = addr.raw() >> self.line_bits;
        let mut take = |bits: u32| {
            let v = (x & ((1 << bits) - 1)) as u32;
            x >>= bits;
            v
        };
        match self.scheme {
            MappingScheme::RowRankBankCol => {
                let col = take(self.col_bits);
                let bank = take(self.bank_bits);
                let rank = take(self.rank_bits);
                let row = take(self.row_bits);
                DecodedAddr {
                    rank,
                    bank,
                    row,
                    col,
                }
            }
            MappingScheme::RowColRankBank => {
                let bank = take(self.bank_bits);
                let rank = take(self.rank_bits);
                let col = take(self.col_bits);
                let row = take(self.row_bits);
                DecodedAddr {
                    rank,
                    bank,
                    row,
                    col,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping(scheme: MappingScheme) -> AddressMapping {
        AddressMapping::new(scheme, &SystemConfig::default(), 64)
    }

    #[test]
    fn sequential_lines_stay_in_row_with_col_low() {
        let m = mapping(MappingScheme::RowRankBankCol);
        let a = m.decode(VirtAddr::new(0));
        let b = m.decode(VirtAddr::new(64));
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.rank, b.rank);
        assert_eq!(b.col, a.col + 1);
    }

    #[test]
    fn sequential_lines_rotate_banks_with_bank_low() {
        let m = mapping(MappingScheme::RowColRankBank);
        let a = m.decode(VirtAddr::new(0));
        let b = m.decode(VirtAddr::new(64));
        assert_eq!(b.bank, a.bank + 1);
        assert_eq!(a.row, b.row);
    }

    #[test]
    fn decode_fields_are_in_range() {
        let sys = SystemConfig::default();
        for scheme in [MappingScheme::RowRankBankCol, MappingScheme::RowColRankBank] {
            let m = mapping(scheme);
            for addr in (0..(1u64 << 32)).step_by(997 * 64) {
                let d = m.decode(VirtAddr::new(addr));
                assert!(d.bank < sys.banks);
                assert!(d.rank < sys.ranks);
                assert!(d.row < sys.rows);
            }
        }
    }

    #[test]
    fn capacity_matches_table_iii() {
        // 1024 rows * 16 ranks * 16 banks * (1024 cols * 8 B) = 2 GiB.
        let m = mapping(MappingScheme::RowRankBankCol);
        assert_eq!(m.capacity_bytes(), 2 * 1024 * 1024 * 1024);
    }

    #[test]
    fn flat_bank_is_unique_per_rank_bank() {
        let sys = SystemConfig::default();
        let mut seen = std::collections::HashSet::new();
        for rank in 0..sys.ranks {
            for bank in 0..sys.banks {
                let d = DecodedAddr {
                    rank,
                    bank,
                    row: 0,
                    col: 0,
                };
                assert!(seen.insert(d.flat_bank(sys.banks)));
            }
        }
        assert_eq!(seen.len(), 256);
    }
}
