//! Bank state machines — the "memory ranks" module of §IV, "responsible
//! for tracking down the errors in scheduling, handling the command
//! transactions issued by the memory controller and powering up or down
//! the banks".

use serde::{Deserialize, Serialize};

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowPolicy {
    /// Leave the row open after an access (good for locality).
    OpenPage,
    /// Precharge immediately after every access.
    ClosedPage,
}

/// Bank state: precharged or with one row active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// All rows closed.
    Idle,
    /// `row` is latched in the row buffer; `dirty` records whether the
    /// buffer holds modified data that must be written back to the array
    /// before the row can be replaced (the cost that makes slow-write
    /// NVRAMs stretch the replay).
    Active {
        /// The open row.
        row: u32,
        /// Row buffer holds unwritten modifications.
        dirty: bool,
    },
}

/// Per-bank command counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankStats {
    /// ACTIVATE commands issued.
    pub activates: u64,
    /// PRECHARGE commands issued.
    pub precharges: u64,
    /// Column reads.
    pub reads: u64,
    /// Column writes.
    pub writes: u64,
    /// Accesses that found their row already open.
    pub row_hits: u64,
    /// Accesses that required closing another row first.
    pub row_conflicts: u64,
    /// Row closes that had to write a dirty row buffer back to the array.
    pub dirty_writebacks: u64,
}

/// One bank: state machine plus availability time.
#[derive(Debug, Clone)]
pub struct Bank {
    state: BankState,
    /// Simulated time (ns) at which the bank can accept the next command.
    pub ready_ns: f64,
    stats: BankStats,
}

impl Default for Bank {
    fn default() -> Self {
        Bank {
            state: BankState::Idle,
            ready_ns: 0.0,
            stats: BankStats::default(),
        }
    }
}

/// What an access needed from the bank, as decided by the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// Row already open: column access only.
    Hit,
    /// Bank idle: activate then access.
    Activate,
    /// Different row open: close it (writing the row buffer back to the
    /// array if it was dirty), activate, then access.
    Conflict {
        /// The evicted row buffer was dirty.
        dirty_eviction: bool,
    },
}

impl Bank {
    /// Current state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// Accumulated counters.
    pub fn stats(&self) -> BankStats {
        self.stats
    }

    /// Applies an access to `row` under `policy`, updating state and
    /// counters, and returns what the controller must pay for.
    pub fn access(&mut self, row: u32, is_write: bool, policy: RowPolicy) -> RowOutcome {
        let outcome = match self.state {
            BankState::Active { row: open, .. } if open == row => {
                self.stats.row_hits += 1;
                RowOutcome::Hit
            }
            BankState::Active { dirty, .. } => {
                self.stats.row_conflicts += 1;
                self.stats.precharges += 1;
                self.stats.activates += 1;
                if dirty {
                    self.stats.dirty_writebacks += 1;
                }
                RowOutcome::Conflict {
                    dirty_eviction: dirty,
                }
            }
            BankState::Idle => {
                self.stats.activates += 1;
                RowOutcome::Activate
            }
        };
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let was_dirty_hit = matches!(
            (self.state, outcome),
            (BankState::Active { dirty: true, .. }, RowOutcome::Hit)
        );
        self.state = match policy {
            RowPolicy::OpenPage => BankState::Active {
                row,
                dirty: is_write || was_dirty_hit,
            },
            RowPolicy::ClosedPage => {
                // Auto-precharge after the access; a write closes a dirty
                // buffer and pays the array writeback immediately.
                self.stats.precharges += 1;
                if is_write {
                    self.stats.dirty_writebacks += 1;
                }
                BankState::Idle
            }
        };
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_page_hits_on_same_row() {
        let mut b = Bank::default();
        assert_eq!(b.access(5, false, RowPolicy::OpenPage), RowOutcome::Activate);
        assert_eq!(b.access(5, false, RowPolicy::OpenPage), RowOutcome::Hit);
        assert_eq!(b.access(5, true, RowPolicy::OpenPage), RowOutcome::Hit);
        let s = b.stats();
        assert_eq!(s.activates, 1);
        assert_eq!(s.row_hits, 2);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
    }

    #[test]
    fn open_page_conflict_pays_precharge_and_activate() {
        let mut b = Bank::default();
        b.access(1, false, RowPolicy::OpenPage);
        assert_eq!(
            b.access(2, false, RowPolicy::OpenPage),
            RowOutcome::Conflict {
                dirty_eviction: false
            }
        );
        let s = b.stats();
        assert_eq!(s.activates, 2);
        assert_eq!(s.precharges, 1);
        assert_eq!(s.row_conflicts, 1);
        assert_eq!(s.dirty_writebacks, 0);
        assert_eq!(
            b.state(),
            BankState::Active {
                row: 2,
                dirty: false
            }
        );
    }

    #[test]
    fn dirty_row_eviction_is_flagged() {
        let mut b = Bank::default();
        b.access(1, true, RowPolicy::OpenPage); // open + dirty row 1
        b.access(1, false, RowPolicy::OpenPage); // read hit keeps it dirty
        assert_eq!(
            b.access(2, false, RowPolicy::OpenPage),
            RowOutcome::Conflict {
                dirty_eviction: true
            }
        );
        assert_eq!(b.stats().dirty_writebacks, 1);
        // The newly opened row is clean.
        assert_eq!(
            b.state(),
            BankState::Active {
                row: 2,
                dirty: false
            }
        );
    }

    #[test]
    fn closed_page_always_activates() {
        let mut b = Bank::default();
        assert_eq!(b.access(1, false, RowPolicy::ClosedPage), RowOutcome::Activate);
        assert_eq!(b.state(), BankState::Idle);
        assert_eq!(b.access(1, false, RowPolicy::ClosedPage), RowOutcome::Activate);
        let s = b.stats();
        assert_eq!(s.activates, 2);
        assert_eq!(s.precharges, 2);
        assert_eq!(s.row_hits, 0);
    }
}
