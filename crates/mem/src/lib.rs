//! # nvsim-mem
//!
//! A DRAMSim2-style transaction-level memory-system simulator with power
//! estimation for DRAM and NVRAM devices (paper §IV).
//!
//! The paper's simulator "has three modules": the *memory system* (the
//! interface fed by trace files — [`system::MemorySystem`] here), the
//! *memory controller* ("address mapping, row policy and bank state
//! updates" — [`controller::MemoryController`]), and the *memory ranks*
//! module (bank state machines and command legality — [`bank`]). Power
//! components follow §IV: burst power (reading/writing cells), background
//! power, activation/precharge power, and refresh power, which is zero for
//! NVRAM. The §IV assumptions are kept: identical peripheral circuitry and
//! memory protocol across technologies, PCM set current equal to the reset
//! current (upper bound), and PCM currents (40 mA read / 150 mA write)
//! reused for STTRAM and MRAM (upper bound).
//!
//! ```
//! use nvsim_mem::MemorySystem;
//! use nvsim_types::{DeviceProfile, MemTransaction, SystemConfig, VirtAddr};
//!
//! // Replay the same light trace on DDR3 and PCRAM (Table VI setup).
//! let sys = SystemConfig::default();
//! let mut ddr3 = MemorySystem::new(DeviceProfile::ddr3(), &sys);
//! let mut pcram = MemorySystem::new(DeviceProfile::pcram(), &sys);
//! for i in 0..512u64 {
//!     let t = MemTransaction::read_fill(VirtAddr::new(i * 64));
//!     ddr3.process(&t);
//!     pcram.process(&t);
//! }
//! let (d, p) = (ddr3.finish(), pcram.finish());
//! // §IV: NVRAM pays no refresh and little background power, so it wins
//! // on a read-dominated, low-intensity trace.
//! assert_eq!(p.power.refresh_mw, 0.0);
//! assert!(p.total_mw() < d.total_mw());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod bank;
pub mod calibration;
pub mod controller;
pub mod dram_cache;
pub mod mapping;
pub mod power;
pub mod scheduler;
pub mod system;

pub use bank::{Bank, BankStats, RowPolicy};
pub use controller::{ControllerStats, MemoryController};
pub use dram_cache::{flat_baseline, replay_dram_cache, DramCacheConfig, DramCacheReport};
pub use mapping::{AddressMapping, DecodedAddr, MappingScheme};
pub use power::{PowerBreakdown, PowerModel};
pub use scheduler::FrFcfsScheduler;
pub use system::{MemorySystem, PowerReport};
