//! Calibration constants of the power/timing model.
//!
//! The paper's simulator inherits DRAMSim2's IDD-based power equations; our
//! reproduction condenses them into a component model with a small number
//! of constants. Absolute magnitudes are *not* meaningful — Table VI
//! normalizes by the DRAM result — but the constants fix the relative
//! weight of the components and are documented here in one place.
//!
//! The §IV modelling assumptions are encoded structurally:
//!
//! * **Same peripheral circuitry**: [`E_PERIPHERAL_NJ`] and
//!   [`E_ACT_PRE_NJ`] are technology-independent.
//! * **Same protocol**: the data-bus burst window [`T_BUS_NS`] is
//!   technology-independent, so burst energy differs between technologies
//!   only through the §IV cell currents (40 mA read / 150 mA write for all
//!   NVRAMs; DDR3 IDD4-class currents for DRAM).
//! * **Refresh power is 0 for NVRAM**: refresh is driven by
//!   `DeviceProfile::refresh_interval_ns`, which is zero for NVRAM.

/// Supply voltage in volts (DDR3 class; shared circuitry assumption).
pub const VDD: f64 = 1.5;

/// Data-bus occupancy of one 64-byte burst, in ns (64-bit bus, DDR3-1066
/// class). Also the controller's minimum issue gap.
pub const T_BUS_NS: f64 = 8.0;

/// Peripheral (decoder, row-buffer, I/O) energy per column access, nJ.
/// Identical across technologies per the §IV assumption.
pub const E_PERIPHERAL_NJ: f64 = 2.6;

/// Activate+precharge pair energy, nJ. Identical across technologies
/// (row-buffer and wordline drivers are peripheral circuitry).
pub const E_ACT_PRE_NJ: f64 = 1.4;

/// DDR3 effective burst currents, mA (IDD4R/IDD4W class, background
/// subtracted). NVRAM currents come from the device profile instead.
pub const DDR3_I_READ_MA: f64 = 115.0;
/// See [`DDR3_I_READ_MA`].
pub const DDR3_I_WRITE_MA: f64 = 125.0;

/// DRAM refresh power per gigabyte, mW. Folded with the profile's standby
/// power this makes leakage + refresh "more than 35% of the memory
/// subsystem power consumption for memory-intensive workloads" (§I/§II),
/// which is what Table VI's ~31% saving is made of.
pub const REFRESH_MW_PER_GB: f64 = 10.0;

/// Fraction of the device read latency charged as tRP when closing a
/// *clean* row (closing a dirty row pays the full device write latency).
pub const T_RP_FRACTION: f64 = 0.5;

/// Refresh-cycle time tRFC, ns: how long the device is unavailable while
/// one refresh command executes (DDR3 2Gb-class). Only devices with a
/// nonzero refresh interval pay it; NVRAM never refreshes.
pub const T_RFC_NS: f64 = 160.0;

/// Fraction of a row actually written back to the array when a dirty row
/// buffer closes (energy). Real PCM DIMM designs use differential/partial
/// writes so only modified words pay the write pulse; with 64-byte lines
/// dirtying an 8 KiB row, 1/12 is a conservative coverage estimate.
pub const PARTIAL_WRITE_FRACTION: f64 = 0.08;

/// Fraction of the device write latency a dirty row close occupies the
/// bank for (timing). Partial writes shorten the pulse train the same way
/// they cut its energy; the fraction is larger than
/// [`PARTIAL_WRITE_FRACTION`] because write drivers are narrower than a
/// row.
pub const DIRTY_CLOSE_TIME_FRACTION: f64 = 0.35;
