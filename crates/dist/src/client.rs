//! A minimal std-only HTTP/1.1 client for worker→coordinator RPCs.
//!
//! One request per connection (`Connection: close`), explicit
//! `Content-Length` framing, and read/write timeouts on every socket —
//! a hung coordinator must never wedge a worker, and vice versa. This
//! deliberately stays far simpler than the server side's keep-alive
//! shard loop: worker RPC volume is tiny (a few dozen requests per
//! sweep), so connection reuse buys nothing worth the state machine.
//!
//! [`send_raw_prefix`] is the chaos hook: it writes a request head
//! advertising the *full* body length, sends only a prefix of the
//! body, then drops the connection — exactly what a worker dying
//! mid-upload looks like on the coordinator's wire.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Socket read/write timeout for every RPC.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header value matching `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy — only used for JSON/error text).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn connect(addr: &str) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

fn write_head(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    addr: &str,
    headers: &[(&str, &str)],
    body_len: usize,
) -> std::io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {body_len}\r\nConnection: close\r\n\r\n"));
    stream.write_all(head.as_bytes())
}

/// Sends one request and reads the full response.
///
/// `headers` are extra request headers beyond the `Host`,
/// `Content-Length` and `Connection: close` this client always sends.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<HttpResponse> {
    let mut stream = connect(addr)?;
    write_head(&mut stream, method, path, addr, headers, body.len())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Chaos hook: advertises `body.len()` in `Content-Length`, writes
/// only the first `prefix` bytes of the body, and drops the
/// connection. The receiving parser never completes the request, so
/// the coordinator sees a torn upload — indistinguishable from a
/// worker killed mid-stream.
pub fn send_raw_prefix(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    prefix: usize,
) -> std::io::Result<()> {
    let mut stream = connect(addr)?;
    write_head(&mut stream, method, path, addr, headers, body.len())?;
    stream.write_all(&body[..prefix.min(body.len())])?;
    stream.flush()?;
    stream.shutdown(std::net::Shutdown::Both)
}

fn parse_response(raw: &[u8]) -> Result<HttpResponse, String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("response missing header terminator")?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| "non-utf8 response head")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty response")?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line.split_once(':').ok_or_else(|| format!("bad header {line:?}"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let body = raw[head_end + 4..].to_vec();
    // Connection: close framing — the body is whatever arrived before
    // EOF; trust Content-Length when present to trim trailing bytes.
    let body = match headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        Some(len) if len <= body.len() => body[..len].to_vec(),
        _ => body,
    };
    Ok(HttpResponse { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_parse_status_headers_and_body() {
        let raw = b"HTTP/1.1 409 Conflict\r\nContent-Type: application/json\r\nContent-Length: 13\r\n\r\n{\"ok\": false}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 409);
        assert_eq!(r.header("content-type"), Some("application/json"));
        assert_eq!(r.header("Content-Type"), Some("application/json"));
        assert_eq!(r.text(), "{\"ok\": false}");
    }

    #[test]
    fn truncated_heads_are_rejected() {
        assert!(parse_response(b"HTTP/1.1 200 OK\r\n").is_err());
        assert!(parse_response(b"").is_err());
    }

    #[test]
    fn content_length_trims_extra_bytes() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nokEXTRA";
        assert_eq!(parse_response(raw).unwrap().body, b"ok");
    }
}
