//! # nvsim-dist
//!
//! The distributed sweep fleet: a coordinator/worker subsystem that
//! runs the paper's full evaluation grid across processes (or hosts)
//! and merges the results into a `dataset.nvstore` **byte-identical**
//! to a serial `run_all --store` run.
//!
//! The design is a classic work-queue with fenced leases:
//!
//! * the [`coordinator`] owns the 36-cell evaluation grid
//!   ([`nv_scavenger::eval_grid`]), hands out cell batches under
//!   heartbeat-renewed leases, accepts CRC-framed binary result shards
//!   ([`wire`]), journals each accepted shard for crash recovery, and
//!   assembles the grid in stable order through the serial store-merge
//!   path;
//! * a [`worker`] loops `lease → run cells → upload shards` until the
//!   coordinator reports the grid done, heartbeating inline so its
//!   death is detected by silence;
//! * the [`protocol`] is JSON over the `nvsim-serve` HTTP layer for
//!   control messages, exact binary for result payloads;
//! * every state transition publishes `dist.*` events on the
//!   `nvsim-obs` bus, scrapeable in Prometheus format from the
//!   coordinator's `/metrics`.
//!
//! Fault tolerance is lease-expiry plus fencing tokens: a worker that
//! stops heartbeating loses its cells back to the queue, and if it
//! later wakes up and uploads anyway, its stale token bounces off the
//! fence (`409`, counted). A killed coordinator restarts with
//! `--resume` and reloads every journaled shard that passes its CRC.
//!
//! See `docs/DISTRIBUTED.md` for the protocol reference and the
//! failure matrix.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod coordinator;
pub mod protocol;
pub mod wire;
pub mod worker;

pub use coordinator::{start, CoordinatorHandle, DistConfig};
pub use protocol::{LeaseGrant, LeaseReply, Progress};
pub use wire::{decode_shard, encode_shard, Wire, WireError};
pub use worker::{run as run_worker, WorkerConfig, WorkerReport};
