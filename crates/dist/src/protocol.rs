//! The coordinator/worker JSON protocol: message shapes, emitters and
//! parsers.
//!
//! Control-plane messages (lease grants, heartbeats, progress) are
//! small and human-debuggable, so they travel as JSON over the
//! nvsim-serve HTTP layer. Result shards do **not** — those use the
//! exact binary codec in [`crate::wire`], because JSON cannot
//! round-trip every float a shard carries. This module owns the
//! translation between protocol structs and JSON text in both
//! directions; the strings are hand-emitted (the vendored serde
//! surface has no derive-based serializer) and parsed back through
//! `serde_json::Value`.
//!
//! ## Endpoints
//!
//! | Method & path          | Body                 | Reply |
//! |------------------------|----------------------|-------|
//! | `POST /lease`          | `{"max_cells": N}`   | [`LeaseReply`]: a grant, a retry hint, or `{"done": true}` |
//! | `POST /heartbeat`      | `{"token": T}`       | `{"ok": true, "lease_ms": N}`, or 410 once the lease is gone |
//! | `POST /shards/<cell>`  | binary shard frame   | `{"ok": true}`, 409 on a stale fencing token, 400 on a bad frame |
//! | `GET /progress`        | —                    | grid counts + per-state cells |
//!
//! Every worker request carries `X-Request-Id`; shard uploads add
//! `X-Fencing-Token`. The fencing token is the zombie fence: each
//! lease gets a fresh token from a global monotone counter, and a
//! shard upload is only accepted while its token is the cell's
//! *current* lease — a worker that lost its lease to expiry can never
//! double-write a cell someone else re-ran.

use nvsim_apps::AppScale;
use serde_json::Value;

/// Header carrying the upload's lease token.
pub const FENCING_HEADER: &str = "x-fencing-token";
/// Header correlating worker RPCs with coordinator events.
pub const REQUEST_ID_HEADER: &str = "x-request-id";

/// Stable wire key for an [`AppScale`] (`test`, `small`, `bench`).
pub fn scale_key(scale: AppScale) -> &'static str {
    match scale {
        AppScale::Test => "test",
        AppScale::Small => "small",
        AppScale::Bench => "bench",
    }
}

/// Inverse of [`scale_key`].
pub fn parse_scale(key: &str) -> Option<AppScale> {
    match key {
        "test" => Some(AppScale::Test),
        "small" => Some(AppScale::Small),
        "bench" => Some(AppScale::Bench),
        _ => None,
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A batch of cells leased to one worker, with everything the worker
/// needs to run them: the run configuration, the lease deadline it
/// must heartbeat within, and the fencing token it must present when
/// uploading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseGrant {
    /// Coordinator's run identifier (workers tag their events with it).
    pub run_id: String,
    /// Application scale every cell must run at.
    pub scale: AppScale,
    /// Iteration count every cell must run at.
    pub iterations: u32,
    /// Milliseconds before the lease expires without a heartbeat.
    pub lease_ms: u64,
    /// Fencing token for this lease — send as `X-Fencing-Token`.
    pub token: u64,
    /// Worker id assigned by the coordinator (for correlation).
    pub worker: u64,
    /// Cell names to run, in the order granted.
    pub cells: Vec<String>,
}

/// Coordinator's answer to `POST /lease`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseReply {
    /// Every cell is finished (or quarantined): the worker can exit.
    Done,
    /// Nothing grantable right now (all remaining cells are leased
    /// out); ask again after `retry_ms`.
    Retry {
        /// Suggested back-off before the next lease request.
        retry_ms: u64,
    },
    /// Work to do.
    Grant(LeaseGrant),
}

impl LeaseReply {
    /// Emits the reply as a JSON document.
    pub fn emit(&self) -> String {
        match self {
            LeaseReply::Done => "{\"done\": true}".to_string(),
            LeaseReply::Retry { retry_ms } => format!("{{\"retry_ms\": {retry_ms}}}"),
            LeaseReply::Grant(g) => {
                let cells: Vec<String> =
                    g.cells.iter().map(|c| format!("\"{}\"", json_escape(c))).collect();
                format!(
                    concat!(
                        "{{\"run_id\": \"{}\", \"scale\": \"{}\", \"iterations\": {}, ",
                        "\"lease_ms\": {}, \"token\": {}, \"worker\": {}, \"cells\": [{}]}}"
                    ),
                    json_escape(&g.run_id),
                    scale_key(g.scale),
                    g.iterations,
                    g.lease_ms,
                    g.token,
                    g.worker,
                    cells.join(", ")
                )
            }
        }
    }

    /// Parses a reply emitted by [`LeaseReply::emit`].
    pub fn parse(body: &str) -> Result<LeaseReply, String> {
        let v: Value = serde_json::from_str(body).map_err(|e| format!("lease reply: {e}"))?;
        if v.get("done").and_then(Value::as_bool) == Some(true) {
            return Ok(LeaseReply::Done);
        }
        if let Some(ms) = v.get("retry_ms").and_then(Value::as_u64) {
            return Ok(LeaseReply::Retry { retry_ms: ms });
        }
        let field_u64 = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("lease grant missing {name}"))
        };
        let field_str = |name: &str| {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("lease grant missing {name}"))
        };
        let scale_str = field_str("scale")?;
        let cells = v
            .get("cells")
            .and_then(Value::as_array)
            .ok_or("lease grant missing cells")?
            .iter()
            .map(|c| c.as_str().map(str::to_string).ok_or("non-string cell"))
            .collect::<Result<Vec<String>, _>>()?;
        Ok(LeaseReply::Grant(LeaseGrant {
            run_id: field_str("run_id")?,
            scale: parse_scale(&scale_str).ok_or_else(|| format!("bad scale {scale_str:?}"))?,
            iterations: field_u64("iterations")? as u32,
            lease_ms: field_u64("lease_ms")?,
            token: field_u64("token")?,
            worker: field_u64("worker")?,
            cells,
        }))
    }
}

/// Emits the `POST /lease` request body.
pub fn emit_lease_request(max_cells: usize) -> String {
    format!("{{\"max_cells\": {max_cells}}}")
}

/// Parses the `POST /lease` request body.
pub fn parse_lease_request(body: &str) -> Result<usize, String> {
    let v: Value = serde_json::from_str(body).map_err(|e| format!("lease request: {e}"))?;
    let n = v
        .get("max_cells")
        .and_then(Value::as_u64)
        .ok_or("lease request missing max_cells")?;
    if n == 0 {
        return Err("max_cells must be positive".to_string());
    }
    Ok(n.min(1024) as usize)
}

/// Emits the `POST /heartbeat` request body.
pub fn emit_heartbeat(token: u64) -> String {
    format!("{{\"token\": {token}}}")
}

/// Parses the `POST /heartbeat` request body into the lease token.
pub fn parse_heartbeat(body: &str) -> Result<u64, String> {
    let v: Value = serde_json::from_str(body).map_err(|e| format!("heartbeat: {e}"))?;
    v.get("token")
        .and_then(Value::as_u64)
        .ok_or_else(|| "heartbeat missing token".to_string())
}

/// Grid progress as reported by `GET /progress`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Progress {
    /// Total cells in the grid.
    pub total: u64,
    /// Cells waiting for a lease.
    pub pending: u64,
    /// Cells currently leased out.
    pub leased: u64,
    /// Cells whose shard has been accepted.
    pub done: u64,
    /// Cells that exhausted their retry budget.
    pub quarantined: u64,
}

impl Progress {
    /// `true` once no cell can change state any more.
    pub fn complete(&self) -> bool {
        self.done + self.quarantined == self.total
    }

    /// Emits the progress document.
    pub fn emit(&self) -> String {
        format!(
            concat!(
                "{{\"total\": {}, \"pending\": {}, \"leased\": {}, ",
                "\"done\": {}, \"quarantined\": {}}}"
            ),
            self.total, self.pending, self.leased, self.done, self.quarantined
        )
    }

    /// Parses a document emitted by [`Progress::emit`].
    pub fn parse(body: &str) -> Result<Progress, String> {
        let v: Value = serde_json::from_str(body).map_err(|e| format!("progress: {e}"))?;
        let field = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("progress missing {name}"))
        };
        Ok(Progress {
            total: field("total")?,
            pending: field("pending")?,
            leased: field("leased")?,
            done: field("done")?,
            quarantined: field("quarantined")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_replies_round_trip() {
        let grant = LeaseReply::Grant(LeaseGrant {
            run_id: "dist-1".to_string(),
            scale: AppScale::Test,
            iterations: 2,
            lease_ms: 5000,
            token: 7,
            worker: 3,
            cells: vec!["table1/Nek5000".to_string(), "fig2/CAM".to_string()],
        });
        for reply in [grant, LeaseReply::Done, LeaseReply::Retry { retry_ms: 250 }] {
            assert_eq!(LeaseReply::parse(&reply.emit()).unwrap(), reply);
        }
    }

    #[test]
    fn every_scale_has_a_stable_key() {
        for scale in [AppScale::Test, AppScale::Small, AppScale::Bench] {
            assert_eq!(parse_scale(scale_key(scale)), Some(scale));
        }
        assert_eq!(parse_scale("huge"), None);
    }

    #[test]
    fn heartbeat_lease_request_and_progress_round_trip() {
        assert_eq!(parse_heartbeat(&emit_heartbeat(41)).unwrap(), 41);
        assert_eq!(parse_lease_request(&emit_lease_request(4)).unwrap(), 4);
        assert!(parse_lease_request("{\"max_cells\": 0}").is_err());
        let p = Progress { total: 36, pending: 10, leased: 4, done: 21, quarantined: 1 };
        assert_eq!(Progress::parse(&p.emit()).unwrap(), p);
        assert!(!p.complete());
        let done = Progress { total: 36, done: 35, quarantined: 1, ..Progress::default() };
        assert!(done.complete());
    }

    #[test]
    fn escaping_covers_quotes_and_control_bytes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{01}"), "\\u0001");
        // A grant holding an escaped run_id survives the round trip.
        let reply = LeaseReply::Grant(LeaseGrant {
            run_id: "run \"quoted\"\n".to_string(),
            scale: AppScale::Bench,
            iterations: 1,
            lease_ms: 100,
            token: 1,
            worker: 1,
            cells: vec![],
        });
        assert_eq!(LeaseReply::parse(&reply.emit()).unwrap(), reply);
    }
}
