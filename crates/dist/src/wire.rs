//! The exact binary shard codec workers stream results back in.
//!
//! JSON cannot carry every value a [`CellResult`] holds — an untouched
//! read-only object reports `rw_ratio = inf`, which no JSON number
//! round-trips — and the distributed store's byte-identity guarantee
//! leaves no room for "close enough" floats. So shards travel as an
//! exact big-endian binary encoding in the style of
//! [`nv_scavenger::resilience::CellRecord`]: integers as fixed-width
//! big-endian, floats as their IEEE-754 bit patterns, strings and
//! sequences length-prefixed, enums as one-byte tags. The frame wraps
//! the payload with a magic, a length and a CRC32
//! ([`nvsim_trace::crc32`]), so a shard torn mid-upload or corrupted in
//! flight is *detected and rejected*, never half-merged.

use nv_scavenger::eval_cells::CellResult;
use nv_scavenger::experiments::{
    AllocRecoveryRow, AllocRow, AppObjectsReport, Fig12Report, Fig2Report, Fig7Report,
    SuitabilityRow, Table1Row, Table5Row, Table6Row, VarianceReport,
};
use nvsim_trace::crc32;
use nvsim_types::{AccessCounts, Region};

/// Frame magic: "NVDS" (NVsim Distributed Shard).
pub const SHARD_MAGIC: [u8; 4] = *b"NVDS";

/// Hard cap on a decoded collection length — a corrupt length prefix
/// must fail cleanly, not attempt a multi-gigabyte allocation.
const MAX_COUNT: u64 = 1 << 32;

/// A decode failure: what was being read and why it stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode: {}", self.0)
    }
}

/// Bounded cursor over an encoded payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn need(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                WireError(format!(
                    "truncated: need {n} bytes at offset {} of {}",
                    self.at,
                    self.buf.len()
                ))
            })?;
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    /// `true` once every byte has been consumed — a complete decode
    /// must end here, or the payload carried trailing garbage.
    pub fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

/// The codec: every shard-borne type encodes itself into a byte vector
/// and decodes from a [`Reader`], field by field, in declaration order.
pub trait Wire: Sized {
    /// Appends the big-endian encoding of `self`.
    fn put(&self, out: &mut Vec<u8>);
    /// Decodes one value, advancing the reader.
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

impl Wire for u8 {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(r.need(1)?[0])
    }
}

impl Wire for u32 {
    fn put(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let b = r.need(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
}

impl Wire for u16 {
    fn put(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let b = r.need(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }
}

impl Wire for u64 {
    fn put(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let b = r.need(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_be_bytes(raw))
    }
}

impl Wire for f64 {
    // Bit-exact: NaN payloads, signed zeros and infinities (read-only
    // objects report rw_ratio = inf) all survive the round trip.
    fn put(&self, out: &mut Vec<u8>) {
        self.to_bits().put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::take(r)?))
    }
}

impl Wire for bool {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::take(r)? {
            0 => Ok(false),
            1 => Ok(true),
            n => Err(WireError(format!("bool tag {n}"))),
        }
    }
}

impl Wire for String {
    fn put(&self, out: &mut Vec<u8>) {
        (self.len() as u64).put(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = u64::take(r)?;
        if len > MAX_COUNT {
            return Err(WireError(format!("string length {len} over cap")));
        }
        let bytes = r.need(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| WireError(format!("bad utf8: {e}")))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.put(out);
            }
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::take(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::take(r)?)),
            n => Err(WireError(format!("option tag {n}"))),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn put(&self, out: &mut Vec<u8>) {
        (self.len() as u64).put(out);
        for item in self {
            item.put(out);
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let count = u64::take(r)?;
        if count > MAX_COUNT {
            return Err(WireError(format!("collection length {count} over cap")));
        }
        let mut items = Vec::with_capacity(count.min(4096) as usize);
        for _ in 0..count {
            items.push(T::take(r)?);
        }
        Ok(items)
    }
}

impl Wire for [f64; 4] {
    fn put(&self, out: &mut Vec<u8>) {
        for v in self {
            v.put(out);
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok([
            f64::take(r)?,
            f64::take(r)?,
            f64::take(r)?,
            f64::take(r)?,
        ])
    }
}

impl Wire for (f64, f64, f64) {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
        self.2.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((f64::take(r)?, f64::take(r)?, f64::take(r)?))
    }
}

impl Wire for Region {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Region::Stack => 0,
            Region::Heap => 1,
            Region::Global => 2,
        });
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::take(r)? {
            0 => Ok(Region::Stack),
            1 => Ok(Region::Heap),
            2 => Ok(Region::Global),
            n => Err(WireError(format!("region tag {n}"))),
        }
    }
}

impl Wire for nvsim_placement::Decision {
    fn put(&self, out: &mut Vec<u8>) {
        use nvsim_placement::Decision::*;
        out.push(match self {
            NvramUntouched => 0,
            NvramReadOnly => 1,
            NvramHighRatio => 2,
            Dram => 3,
        });
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        use nvsim_placement::Decision::*;
        match u8::take(r)? {
            0 => Ok(NvramUntouched),
            1 => Ok(NvramReadOnly),
            2 => Ok(NvramHighRatio),
            3 => Ok(Dram),
            n => Err(WireError(format!("decision tag {n}"))),
        }
    }
}

/// Implements [`Wire`] for a struct by encoding the listed fields in
/// order. The field list is positional: keep it in declaration order so
/// encodings stay stable.
macro_rules! wire_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl Wire for $ty {
            fn put(&self, out: &mut Vec<u8>) {
                $(self.$field.put(out);)+
            }
            fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok(Self { $($field: Wire::take(r)?),+ })
            }
        }
    };
}

wire_struct!(AccessCounts { reads, writes });
wire_struct!(nvsim_objects::report::ObjectSummary {
    name,
    region,
    size_bytes,
    counts,
    rw_ratio,
    reference_rate,
    iterations_touched,
    only_pre_post,
    short_term_heap,
});
wire_struct!(nvsim_objects::report::UsageDistribution { bytes_by_steps });
wire_struct!(nvsim_objects::report::VarianceHistogram { buckets, fraction });
wire_struct!(nvsim_cpu::CpuResult {
    cycles,
    refs,
    instructions,
    mem_accesses,
    mshr_stall_cycles,
    window_stall_cycles,
});
wire_struct!(nvsim_cpu::LatencyPoint {
    technology,
    latency_ns,
    result,
    normalized_runtime,
});
wire_struct!(nvsim_placement::SuitabilityReport {
    decisions,
    total_bytes,
    nvram_bytes,
    untouched_bytes,
    read_only_bytes,
    high_ratio_bytes,
});
wire_struct!(Table1Row {
    app,
    input,
    description,
    paper_footprint_mb,
    measured_footprint_bytes,
    scale_divisor,
});
wire_struct!(Table5Row {
    app,
    rw_ratio,
    rw_ratio_first,
    reference_percentage,
    paper,
});
wire_struct!(Fig2Report {
    objects,
    objects_ratio_gt10,
    refs_ratio_gt10,
    objects_ratio_gt50,
    refs_ratio_gt50,
});
wire_struct!(AppObjectsReport {
    app,
    objects,
    total_bytes,
    read_only_bytes,
    high_ratio_bytes,
    objects_ratio_gt1,
});
wire_struct!(Fig7Report {
    app,
    distribution,
    untouched_fraction,
});
wire_struct!(VarianceReport {
    app,
    rw_ratio,
    ref_rate,
    min_stable_fraction,
});
wire_struct!(Table6Row {
    app,
    normalized,
    paper,
    transactions,
});
wire_struct!(Fig12Report { app, points });
wire_struct!(SuitabilityRow {
    app,
    category2,
    category1,
});
wire_struct!(AllocRow {
    app,
    region_frames,
    backed_frames,
    free_frames,
    fragmentation_pct,
    largest_free_run,
    free_runs,
    persists,
    max_word_wear,
    mean_word_wear,
    checkpoints,
    checkpoint_peak_frames,
    recovery_words_scanned,
    recovered_frames,
});
wire_struct!(AllocRecoveryRow {
    region_frames,
    allocated_frames,
    words_scanned,
    est_us,
});

impl Wire for CellResult {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            CellResult::Table1(v) => {
                out.push(0);
                v.put(out);
            }
            CellResult::Table5(v) => {
                out.push(1);
                v.put(out);
            }
            CellResult::Fig2(v) => {
                out.push(2);
                v.put(out);
            }
            CellResult::Figs3_6(v) => {
                out.push(3);
                v.put(out);
            }
            CellResult::Fig7(v) => {
                out.push(4);
                v.put(out);
            }
            CellResult::Figs8_11(v) => {
                out.push(5);
                v.put(out);
            }
            CellResult::Table6(v) => {
                out.push(6);
                v.put(out);
            }
            CellResult::Fig12(v) => {
                out.push(7);
                v.put(out);
            }
            CellResult::Suitability(v) => {
                out.push(8);
                v.put(out);
            }
            CellResult::Alloc(v) => {
                out.push(9);
                v.put(out);
            }
            CellResult::AllocRecovery(v) => {
                out.push(10);
                v.put(out);
            }
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match u8::take(r)? {
            0 => CellResult::Table1(Wire::take(r)?),
            1 => CellResult::Table5(Wire::take(r)?),
            2 => CellResult::Fig2(Wire::take(r)?),
            3 => CellResult::Figs3_6(Wire::take(r)?),
            4 => CellResult::Fig7(Wire::take(r)?),
            5 => CellResult::Figs8_11(Wire::take(r)?),
            6 => CellResult::Table6(Wire::take(r)?),
            7 => CellResult::Fig12(Wire::take(r)?),
            8 => CellResult::Suitability(Wire::take(r)?),
            9 => CellResult::Alloc(Wire::take(r)?),
            10 => CellResult::AllocRecovery(Wire::take(r)?),
            n => Err(WireError(format!("cell result tag {n}")))?,
        })
    }
}

/// Wraps a payload in the shard frame: magic, payload length (u32 BE),
/// CRC32 of the payload (u32 BE), payload.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(&SHARD_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a frame and returns the payload. Rejects a bad magic, a
/// length that disagrees with the buffer (a torn upload shows up here),
/// and a CRC mismatch.
pub fn unframe(buf: &[u8]) -> Result<&[u8], WireError> {
    if buf.len() < 12 {
        return Err(WireError(format!("frame of {} bytes is too short", buf.len())));
    }
    if buf[0..4] != SHARD_MAGIC {
        return Err(WireError("bad shard magic".to_string()));
    }
    let len = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if buf.len() != 12 + len {
        return Err(WireError(format!(
            "frame length {len} disagrees with body of {} bytes",
            buf.len() - 12
        )));
    }
    let want = u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]);
    let payload = &buf[12..];
    let got = crc32(payload);
    if got != want {
        return Err(WireError(format!("crc mismatch: {got:08x} != {want:08x}")));
    }
    Ok(payload)
}

/// Encodes one framed shard: the cell name (self-describing, so a
/// journaled shard file identifies itself) followed by the result.
pub fn encode_shard(cell_name: &str, result: &CellResult) -> Vec<u8> {
    let mut payload = Vec::new();
    cell_name.to_string().put(&mut payload);
    result.put(&mut payload);
    frame(&payload)
}

/// Decodes a framed shard back into `(cell name, result)`, insisting
/// the payload is fully consumed.
pub fn decode_shard(buf: &[u8]) -> Result<(String, CellResult), WireError> {
    let payload = unframe(buf)?;
    let mut r = Reader::new(payload);
    let name = String::take(&mut r)?;
    let result = CellResult::take(&mut r)?;
    if !r.done() {
        return Err(WireError("trailing bytes after shard payload".to_string()));
    }
    Ok((name, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_scavenger::eval_cells::{eval_grid, run_eval_cell};
    use nvsim_apps::AppScale;

    #[test]
    fn every_cell_result_round_trips_bit_exactly() {
        // Fig2/figs3_6 cells carry rw_ratio = inf rows (read-only
        // objects) — the exact values JSON would destroy.
        for cell in [
            "table1/GTC",
            "table5/CAM",
            "fig2/CAM",
            "figs3_6/Nek5000",
            "fig7/S3D",
            "figs8_11/GTC",
            "table6/S3D",
            "fig12/GTC",
            "suitability/CAM",
            "alloc/GTC",
            "alloc_recovery/global",
        ] {
            let cell = nv_scavenger::EvalCell::parse(cell).unwrap();
            let result = run_eval_cell(cell, AppScale::Test, 2).unwrap();
            let wire = encode_shard(&cell.name(), &result);
            let (name, decoded) = decode_shard(&wire).unwrap();
            assert_eq!(name, cell.name());
            assert_eq!(decoded, result, "{cell}");
            // Determinism: re-encoding yields the same bytes.
            assert_eq!(wire, encode_shard(&cell.name(), &decoded));
        }
    }

    #[test]
    fn infinities_survive_the_float_codec() {
        for v in [f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0, 1.5e-300] {
            let mut out = Vec::new();
            v.put(&mut out);
            let got = f64::take(&mut Reader::new(&out)).unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn torn_and_corrupt_frames_are_rejected() {
        let cell = nv_scavenger::EvalCell::parse("alloc_recovery/global").unwrap();
        let result = run_eval_cell(cell, AppScale::Test, 1).unwrap();
        let wire = encode_shard(&cell.name(), &result);
        // Every proper prefix — a torn upload — must fail to unframe.
        for cut in 0..wire.len() {
            assert!(decode_shard(&wire[..cut]).is_err(), "prefix {cut} accepted");
        }
        // A single flipped payload bit must fail the CRC.
        let mut bad = wire.clone();
        let mid = 12 + (bad.len() - 12) / 2;
        bad[mid] ^= 0x01;
        let err = decode_shard(&bad).unwrap_err();
        assert!(err.0.contains("crc"), "{err}");
        // Trailing garbage is refused too.
        let mut long = wire.clone();
        long.push(0);
        assert!(decode_shard(&long).is_err());
    }

    #[test]
    fn the_whole_grid_encodes_distinctly() {
        let mut seen = std::collections::HashSet::new();
        for cell in eval_grid() {
            let result = run_eval_cell(cell, AppScale::Test, 1).unwrap();
            let wire = encode_shard(&cell.name(), &result);
            assert!(seen.insert(wire), "cell {cell} encoded identically to another");
        }
    }
}
