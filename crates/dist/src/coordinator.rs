//! The coordinator: owns the evaluation grid, leases cells to workers,
//! accepts result shards, and merges them into the dataset store.
//!
//! ## Lease lifecycle
//!
//! Every cell moves `Pending → Leased → Done`, with two escape hatches:
//! a lease whose holder stops heartbeating expires (`Leased → Pending`,
//! publishing `dist.lease.expired`), and a cell that burns through its
//! retry budget is quarantined so one poisoned cell cannot wedge the
//! sweep. Expiry is checked lazily at the head of every state-changing
//! request *and* by [`CoordinatorHandle::wait_complete`], so leases die
//! on schedule even on an otherwise idle coordinator.
//!
//! ## Fencing
//!
//! Each grant carries a token from a global monotone counter, and a
//! shard upload is accepted only while its token is the cell's
//! *current* lease. A zombie worker — one that stalled past its lease,
//! lost the cell, and woke up mid-upload — presents a stale token and
//! gets `409`, counted under `dist.shards.rejected`. This is the
//! classic fenced-lease design: correctness never depends on a dead
//! worker staying dead.
//!
//! ## Journal and resume
//!
//! Accepted shards are journaled to `<journal>/<cell>.shard` (the exact
//! framed bytes, written via [`nvsim_obs::atomic_write`]) *before* the
//! cell is marked done. A coordinator killed mid-sweep restarts with
//! `resume: true`, reloads every frame that passes its CRC, and only
//! re-runs the cells with no valid journal entry — converging on the
//! same merged store as an uninterrupted run.
//!
//! ## Byte-identity
//!
//! [`CoordinatorHandle::finalize`] assembles the shards in stable grid
//! order through [`nv_scavenger::assemble_dataset`] and writes through
//! the same `meta table + section tables → merge_into_dataset_observed`
//! path the serial `run_all --store` uses, so the merged
//! `dataset.nvstore` is byte-identical to a serial run's.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use nv_scavenger::dataset_store as ds;
use nv_scavenger::eval_cells::{eval_grid, CellResult, EvalCell};
use nvsim_apps::AppScale;
use nvsim_obs::{
    atomic_write, Correlation, Event, EventBus, Metrics, PromKind, PromRegistry,
};
use nvsim_serve::http::{Request, Response};
use nvsim_serve::shard::{self, ShardConfig, ShardHandle};
use nvsim_types::NvsimError;

use crate::protocol::{
    self, LeaseGrant, LeaseReply, Progress, FENCING_HEADER, REQUEST_ID_HEADER,
};
use crate::wire;

/// Everything a coordinator needs to run one distributed sweep.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Application scale for every cell.
    pub scale: AppScale,
    /// Iteration count for every cell.
    pub iterations: u32,
    /// Listen address (use port 0 for an OS-assigned port).
    pub listen: String,
    /// Directory the merged `dataset.nvstore` is written into.
    pub store_dir: PathBuf,
    /// Directory accepted shards are journaled into.
    pub journal_dir: PathBuf,
    /// Reload journaled shards before granting any lease.
    pub resume: bool,
    /// Milliseconds a lease lives without a heartbeat.
    pub lease_ms: u64,
    /// Most cells handed out per lease.
    pub batch: usize,
    /// Grant attempts per cell before it is quarantined.
    pub max_attempts: u32,
    /// Serving shards (event-loop threads) to run.
    pub shards: usize,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            scale: AppScale::Test,
            iterations: 2,
            listen: "127.0.0.1:0".to_string(),
            store_dir: PathBuf::from("."),
            journal_dir: PathBuf::from("dist-journal"),
            resume: false,
            lease_ms: 5000,
            batch: 4,
            max_attempts: 3,
            shards: 2,
        }
    }
}

/// Where one cell stands.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SlotState {
    /// Waiting for a lease.
    Pending,
    /// Leased out under this fencing token.
    Leased {
        /// The current lease's fencing token.
        token: u64,
    },
    /// Shard accepted and journaled.
    Done,
    /// Retry budget exhausted; excluded from further leasing.
    Quarantined,
}

struct CellSlot {
    cell: EvalCell,
    state: SlotState,
    attempts: u32,
    result: Option<CellResult>,
}

struct Lease {
    worker: u64,
    deadline: Instant,
}

#[derive(Default)]
struct Inner {
    slots: Vec<CellSlot>,
    /// Active leases by token.
    leases: HashMap<u64, Lease>,
    next_token: u64,
    next_worker: u64,
}

/// Shared coordinator state: the grid, the leases, the instruments.
pub struct State {
    inner: Mutex<Inner>,
    config: DistConfig,
    bus: Arc<EventBus>,
    metrics: Metrics,
    prom: PromRegistry,
}

impl State {
    fn corr(&self, request_id: &str, worker: Option<u64>) -> Correlation {
        self.bus
            .correlation()
            .with_worker(worker)
            .with_request(request_id)
    }

    /// Expires every lease past its deadline, re-queuing (or
    /// quarantining) its unfinished cells.
    fn expire(&self, now: Instant) {
        let mut inner = self.inner.lock().expect("coordinator state poisoned");
        let dead: Vec<u64> = inner
            .leases
            .iter()
            .filter(|(_, l)| l.deadline <= now)
            .map(|(t, _)| *t)
            .collect();
        for token in dead {
            let lease = inner.leases.remove(&token).expect("token listed");
            let max_attempts = self.config.max_attempts;
            let mut lost = 0u64;
            for slot in &mut inner.slots {
                if slot.state == (SlotState::Leased { token }) {
                    lost += 1;
                    slot.state = if slot.attempts >= max_attempts {
                        SlotState::Quarantined
                    } else {
                        SlotState::Pending
                    };
                }
            }
            // An empty lease (every cell already uploaded) expires
            // silently — nothing was lost, nothing to report.
            if lost > 0 {
                self.bus.publish(
                    &self.corr("", Some(lease.worker)),
                    Event::DistLeaseExpired { cells: lost, token },
                );
            }
        }
    }

    /// Answers `POST /lease`.
    fn grant(&self, max_cells: usize, request_id: &str) -> LeaseReply {
        self.expire(Instant::now());
        let mut inner = self.inner.lock().expect("coordinator state poisoned");
        let want = max_cells.min(self.config.batch).max(1);
        let picked: Vec<usize> = inner
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state == SlotState::Pending)
            .map(|(i, _)| i)
            .take(want)
            .collect();
        if picked.is_empty() {
            let settled = inner
                .slots
                .iter()
                .filter(|s| matches!(s.state, SlotState::Done | SlotState::Quarantined))
                .count();
            return if settled == inner.slots.len() {
                LeaseReply::Done
            } else {
                LeaseReply::Retry {
                    retry_ms: (self.config.lease_ms / 10).max(25),
                }
            };
        }
        inner.next_token += 1;
        let token = inner.next_token;
        inner.next_worker += 1;
        let worker = inner.next_worker;
        let mut cells = Vec::with_capacity(picked.len());
        for i in picked {
            inner.slots[i].state = SlotState::Leased { token };
            inner.slots[i].attempts += 1;
            cells.push(inner.slots[i].cell.name());
        }
        inner.leases.insert(
            token,
            Lease {
                worker,
                deadline: Instant::now() + Duration::from_millis(self.config.lease_ms),
            },
        );
        drop(inner);
        self.bus.publish(
            &self.corr(request_id, Some(worker)),
            Event::DistLeaseGranted {
                cells: cells.len() as u64,
                token,
            },
        );
        LeaseReply::Grant(LeaseGrant {
            run_id: self.bus.correlation().run_id,
            scale: self.config.scale,
            iterations: self.config.iterations,
            lease_ms: self.config.lease_ms,
            token,
            worker,
            cells,
        })
    }

    /// Answers `POST /heartbeat`: extends the lease, or reports it gone.
    fn heartbeat(&self, token: u64) -> Option<u64> {
        self.expire(Instant::now());
        let mut inner = self.inner.lock().expect("coordinator state poisoned");
        let lease_ms = self.config.lease_ms;
        inner.leases.get_mut(&token).map(|lease| {
            lease.deadline = Instant::now() + Duration::from_millis(lease_ms);
            lease_ms
        })
    }

    /// Answers `POST /shards/<cell>`: validates the frame and the
    /// fencing token, journals the shard, marks the cell done.
    fn accept_shard(&self, path_cell: &str, token: u64, body: &[u8], request_id: &str) -> Response {
        let reject = |reason: &str, status: u16, worker: Option<u64>| {
            self.bus.publish(
                &self.corr(request_id, worker).with_cell(path_cell),
                Event::DistShardRejected {
                    reason: reason.to_string(),
                    token,
                },
            );
            Response::error(status, format!("shard rejected: {reason}"))
        };
        let (name, result) = match wire::decode_shard(body) {
            Ok(decoded) => decoded,
            Err(e) => return reject(&format!("bad frame: {e}"), 400, None),
        };
        if name != path_cell {
            return reject(
                &format!("path names cell {path_cell:?} but payload names {name:?}"),
                400,
                None,
            );
        }
        let Some(cell) = EvalCell::parse(&name) else {
            return reject("unknown cell", 404, None);
        };
        if result.section() != cell.section {
            return reject("result section does not match cell", 400, None);
        }

        self.expire(Instant::now());
        let mut inner = self.inner.lock().expect("coordinator state poisoned");
        let at = inner
            .slots
            .iter()
            .position(|s| s.cell == cell)
            .expect("parsed cell is on the grid");
        match inner.slots[at].state {
            SlotState::Leased { token: current } if current == token => {}
            SlotState::Done => {
                drop(inner);
                return reject("cell already complete", 409, None);
            }
            SlotState::Quarantined => {
                drop(inner);
                return reject("cell quarantined", 409, None);
            }
            // Pending (the lease expired) or leased under a newer
            // token: either way this upload's token is not the cell's
            // current lease — the zombie fence.
            _ => {
                drop(inner);
                return reject("stale fencing token", 409, None);
            }
        }
        let worker = inner.leases.get(&token).map(|l| l.worker);

        // Journal before acknowledging: an accepted shard must survive
        // a coordinator kill. The journaled bytes are the frame
        // exactly as received (CRC and all), so resume re-validates.
        let path = self.config.journal_dir.join(journal_file(&name));
        if let Err(e) = atomic_write(&path, body) {
            drop(inner);
            return reject(&format!("journal write failed: {e}"), 500, worker);
        }

        inner.slots[at].state = SlotState::Done;
        inner.slots[at].result = Some(result);
        // Once every cell of a lease is done the lease has no Leased
        // slots left, so its eventual expiry is silent.
        drop(inner);
        self.bus.publish(
            &self.corr(request_id, worker).with_cell(&name),
            Event::DistShardReceived {
                bytes: body.len() as u64,
                token,
            },
        );
        Response::json("{\"ok\": true}")
    }

    /// Current grid progress.
    fn progress(&self) -> Progress {
        let inner = self.inner.lock().expect("coordinator state poisoned");
        let mut p = Progress {
            total: inner.slots.len() as u64,
            ..Progress::default()
        };
        for slot in &inner.slots {
            match slot.state {
                SlotState::Pending => p.pending += 1,
                SlotState::Leased { .. } => p.leased += 1,
                SlotState::Done => p.done += 1,
                SlotState::Quarantined => p.quarantined += 1,
            }
        }
        p
    }

    /// Reloads journaled shards, marking every cell with a valid frame
    /// done. Corrupt or torn files are ignored (their cells re-run).
    /// Returns how many cells were recovered.
    fn resume_load(&self) -> std::io::Result<u64> {
        let mut recovered = 0;
        let entries = match std::fs::read_dir(&self.config.journal_dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("shard") {
                continue;
            }
            let bytes = std::fs::read(&path)?;
            let Ok((name, result)) = wire::decode_shard(&bytes) else {
                continue;
            };
            let Some(cell) = EvalCell::parse(&name) else {
                continue;
            };
            if result.section() != cell.section {
                continue;
            }
            let mut inner = self.inner.lock().expect("coordinator state poisoned");
            if let Some(slot) = inner.slots.iter_mut().find(|s| s.cell == cell) {
                if slot.state != SlotState::Done {
                    slot.state = SlotState::Done;
                    slot.result = Some(result);
                    recovered += 1;
                }
            }
        }
        Ok(recovered)
    }
}

/// Journal file name for a cell (`table1/Nek5000` → `table1__Nek5000.shard`).
fn journal_file(cell_name: &str) -> String {
    format!("{}.shard", cell_name.replace('/', "__"))
}

/// The per-shard application: routes coordinator endpoints.
struct CoordinatorApp {
    state: Arc<State>,
}

impl shard::ShardApp for CoordinatorApp {
    fn handle(&mut self, req: &Request) -> Response {
        let request_id = req.header(REQUEST_ID_HEADER).unwrap_or("").to_string();
        let resp = match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/lease") => {
                match protocol::parse_lease_request(&String::from_utf8_lossy(&req.body)) {
                    Ok(max_cells) => Response::json(self.state.grant(max_cells, &request_id).emit()),
                    Err(e) => Response::error(400, e),
                }
            }
            ("POST", "/heartbeat") => {
                match protocol::parse_heartbeat(&String::from_utf8_lossy(&req.body)) {
                    Ok(token) => match self.state.heartbeat(token) {
                        Some(lease_ms) => {
                            Response::json(format!("{{\"ok\": true, \"lease_ms\": {lease_ms}}}"))
                        }
                        None => Response::error(410, "lease gone"),
                    },
                    Err(e) => Response::error(400, e),
                }
            }
            ("POST", path) if path.starts_with("/shards/") => {
                let cell = &path["/shards/".len()..];
                match req.header(FENCING_HEADER).and_then(|v| v.parse::<u64>().ok()) {
                    Some(token) => self.state.accept_shard(cell, token, &req.body, &request_id),
                    None => Response::error(400, "missing or unparsable X-Fencing-Token"),
                }
            }
            ("GET", "/progress") => Response::json(self.state.progress().emit()),
            ("GET", "/healthz") => Response::json("{\"ok\": true}"),
            ("GET", "/metrics") => self.metrics_route(req),
            (_, path) => Response::error(404, format!("no route {path}")),
        };
        if request_id.is_empty() {
            resp
        } else {
            resp.with_request_id(request_id)
        }
    }

    fn bad(&mut self, status: u16, reason: &str) -> Response {
        Response::error(status, reason)
    }

    fn shed(&mut self) -> Response {
        Response::error(503, "coordinator at capacity")
    }
}

impl CoordinatorApp {
    fn metrics_route(&self, req: &Request) -> Response {
        let state = &self.state;
        state
            .metrics
            .gauge("dist.events.dropped")
            .set(i64::try_from(state.bus.dropped()).unwrap_or(i64::MAX));
        let format = req
            .query
            .iter()
            .find(|(k, _)| k == "format")
            .map(|(_, v)| v.as_str())
            .unwrap_or("json");
        match format {
            "json" => Response::json(state.metrics.snapshot().to_json()),
            "prometheus" => {
                let mut resp = Response::text(state.prom.encode(&state.metrics.snapshot()));
                resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
                resp
            }
            other => Response::error(400, format!("unknown metrics format {other:?}")),
        }
    }
}

/// Registers every `dist.*` instrument up front so a first `/metrics`
/// scrape shows the full set at zero.
fn register_dist_metrics(metrics: &Metrics) {
    for name in [
        "dist.leases.granted",
        "dist.cells.leased",
        "dist.leases.expired",
        "dist.shards.received",
        "dist.shards.rejected",
    ] {
        metrics.counter(name);
    }
    metrics.gauge("dist.events.dropped");
}

/// The Prometheus families the coordinator's `/metrics` exposes.
fn dist_prom_registry() -> PromRegistry {
    let mut prom = PromRegistry::new();
    let counters = [
        (
            "nvsim_dist_leases_granted_total",
            "Cell-batch leases granted to workers.",
            "dist.leases.granted",
        ),
        (
            "nvsim_dist_cells_leased_total",
            "Cells handed out across all leases (one cell may lease more than once).",
            "dist.cells.leased",
        ),
        (
            "nvsim_dist_leases_expired_total",
            "Leases expired after missed heartbeats, their cells re-queued.",
            "dist.leases.expired",
        ),
        (
            "nvsim_dist_shards_received_total",
            "Result shards accepted, journaled and merged.",
            "dist.shards.received",
        ),
        (
            "nvsim_dist_shards_rejected_total",
            "Result shards refused: stale fencing token, bad frame, or duplicate.",
            "dist.shards.rejected",
        ),
    ];
    for (name, help, source) in counters {
        prom.register(name, help, PromKind::Counter, source)
            .expect("static family");
    }
    prom.register(
        "nvsim_dist_events_dropped",
        "Events discarded by the bus; nonzero means the dist.* series undercount.",
        PromKind::Gauge,
        "dist.events.dropped",
    )
    .expect("static family");
    prom
}

/// A running coordinator.
pub struct CoordinatorHandle {
    addr: SocketAddr,
    state: Arc<State>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl CoordinatorHandle {
    /// The bound address (useful with a `:0` listen request).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared metrics handle (the same registry `/metrics` serves).
    pub fn metrics(&self) -> Metrics {
        self.state.metrics.clone()
    }

    /// Current grid progress.
    pub fn progress(&self) -> Progress {
        self.state.progress()
    }

    /// Serves until every cell is done or quarantined, expiring stale
    /// leases as time passes. Returns the final progress, or the
    /// progress at `timeout` if the grid did not settle in time.
    pub fn wait_complete(&self, timeout: Duration) -> Progress {
        let deadline = Instant::now() + timeout;
        loop {
            self.state.expire(Instant::now());
            let p = self.state.progress();
            if p.complete() || Instant::now() >= deadline {
                return p;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn stop_serving(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.state.bus.flush();
    }

    /// Stops serving, assembles the shards in stable grid order, and
    /// writes the merged store — the same
    /// `meta table + section tables → merge_into_dataset_observed`
    /// path `run_all --store` takes, so the result is byte-identical
    /// to a serial run.
    ///
    /// # Errors
    /// Any cell still unfinished (including quarantined cells), or a
    /// store I/O failure.
    pub fn finalize(mut self) -> Result<PathBuf, NvsimError> {
        self.stop_serving();
        let state = &self.state;
        let inner = state.inner.lock().expect("coordinator state poisoned");
        let mut results = Vec::with_capacity(inner.slots.len());
        for slot in &inner.slots {
            if let (SlotState::Done, Some(result)) = (&slot.state, &slot.result) {
                results.push((slot.cell, result.clone()));
            }
        }
        drop(inner);
        let dataset =
            nv_scavenger::assemble_dataset(state.config.scale, state.config.iterations, &results)
                .map_err(|reason| {
                    NvsimError::InvalidConfig(format!("incomplete distributed sweep: {reason}"))
                })?;
        let mut tables = vec![ds::meta_table(dataset.scale_divisor, dataset.iterations)];
        tables.extend(ds::table1_tables(&dataset.table1));
        tables.extend(ds::table5_tables(&dataset.table5));
        tables.extend(ds::fig2_tables(&dataset.fig2));
        tables.extend(ds::figs3_6_tables(&dataset.figs3_6));
        tables.extend(ds::fig7_tables(&dataset.fig7));
        tables.extend(ds::figs8_11_tables(&dataset.figs8_11));
        tables.extend(ds::table6_tables(&dataset.table6));
        tables.extend(ds::fig12_tables(&dataset.fig12));
        tables.extend(ds::suitability_tables(&dataset.suitability));
        tables.extend(ds::alloc_tables(&dataset.alloc));
        std::fs::create_dir_all(&state.config.store_dir).map_err(|e| NvsimError::Io {
            path: state.config.store_dir.display().to_string(),
            cause: e.to_string(),
        })?;
        nv_scavenger::merge_into_dataset_observed(
            &state.config.store_dir,
            tables,
            &state.bus,
            &state.bus.correlation(),
        )
    }

    /// Stops serving *without* writing the store — a simulated
    /// coordinator crash. The journal keeps every accepted shard, so a
    /// new coordinator with `resume: true` over the same journal
    /// directory converges.
    pub fn kill(mut self) {
        self.stop_serving();
    }
}

impl Drop for CoordinatorHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_serving();
        }
    }
}

/// Starts a coordinator: binds the listener, optionally reloads the
/// journal, and begins serving leases.
///
/// # Errors
/// Listener bind or journal-directory I/O failures.
pub fn start(
    config: DistConfig,
    bus: Arc<EventBus>,
    metrics: Metrics,
) -> Result<CoordinatorHandle, NvsimError> {
    let io_err = |path: &Path, e: std::io::Error| NvsimError::Io {
        path: path.display().to_string(),
        cause: e.to_string(),
    };
    std::fs::create_dir_all(&config.journal_dir).map_err(|e| io_err(&config.journal_dir, e))?;
    // Fencing across restarts: each incarnation issues tokens from its
    // own disjoint range (generation << 32), so a zombie worker's token
    // from a killed coordinator can never alias a fresh lease.
    let epoch_path = config.journal_dir.join("epoch");
    let generation = std::fs::read_to_string(&epoch_path)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0)
        + 1;
    atomic_write(&epoch_path, generation.to_string().as_bytes())
        .map_err(|e| io_err(&epoch_path, e))?;
    register_dist_metrics(&metrics);
    let slots = eval_grid()
        .into_iter()
        .map(|cell| CellSlot {
            cell,
            state: SlotState::Pending,
            attempts: 0,
            result: None,
        })
        .collect();
    let resume = config.resume;
    let shards = config.shards.max(1);
    let listen = config.listen.clone();
    let state = Arc::new(State {
        inner: Mutex::new(Inner {
            slots,
            next_token: generation << 32,
            ..Inner::default()
        }),
        config,
        bus,
        metrics,
        prom: dist_prom_registry(),
    });
    if resume {
        state
            .resume_load()
            .map_err(|e| io_err(&state.config.journal_dir, e))?;
    }

    let listener = TcpListener::bind(&listen).map_err(|e| NvsimError::Io {
        path: listen.clone(),
        cause: e.to_string(),
    })?;
    let addr = listener.local_addr().map_err(|e| NvsimError::Io {
        path: listen,
        cause: e.to_string(),
    })?;
    let stop = Arc::new(AtomicBool::new(false));
    let shard_config = ShardConfig {
        max_conns: 64,
        idle_timeout: Duration::from_secs(10),
        keep_alive: true,
    };
    let mut shard_handles: Vec<ShardHandle> = Vec::with_capacity(shards);
    for id in 0..shards {
        let app = CoordinatorApp {
            state: Arc::clone(&state),
        };
        let handle = shard::spawn(id, shard_config.clone(), app, Arc::clone(&stop))
            .map_err(|e| NvsimError::Io {
                path: format!("dist-shard-{id}"),
                cause: e.to_string(),
            })?;
        shard_handles.push(handle);
    }
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("dist-accept".into())
        .spawn(move || {
            let mut next = 0usize;
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                shard_handles[next % shard_handles.len()].dispatch(stream);
                next += 1;
            }
            for handle in shard_handles {
                handle.join();
            }
        })
        .map_err(|e| NvsimError::Io {
            path: "dist-accept thread".to_string(),
            cause: e.to_string(),
        })?;

    Ok(CoordinatorHandle {
        addr,
        state,
        stop,
        accept_thread: Some(accept_thread),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state(lease_ms: u64, max_attempts: u32, dir: &Path) -> Arc<State> {
        let metrics = Metrics::enabled();
        let bus = Arc::new(
            EventBus::builder("dist-test")
                .subscribe(Box::new(nvsim_obs::MetricsAggregator::new(metrics.clone())))
                .build(),
        );
        register_dist_metrics(&metrics);
        let slots = eval_grid()
            .into_iter()
            .map(|cell| CellSlot {
                cell,
                state: SlotState::Pending,
                attempts: 0,
                result: None,
            })
            .collect();
        Arc::new(State {
            inner: Mutex::new(Inner {
                slots,
                ..Inner::default()
            }),
            config: DistConfig {
                lease_ms,
                max_attempts,
                journal_dir: dir.to_path_buf(),
                ..DistConfig::default()
            },
            bus,
            metrics,
            prom: dist_prom_registry(),
        })
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dist-coord-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn leases_cover_the_grid_without_overlap() {
        let dir = tmp("cover");
        let state = test_state(60_000, 3, &dir);
        let mut seen = std::collections::HashSet::new();
        let mut grants = 0;
        loop {
            match state.grant(4, "t-1") {
                LeaseReply::Grant(g) => {
                    grants += 1;
                    assert!(g.cells.len() <= 4);
                    for cell in g.cells {
                        assert!(seen.insert(cell.clone()), "{cell} leased twice");
                    }
                }
                LeaseReply::Retry { .. } => break,
                LeaseReply::Done => panic!("done while cells are leased"),
            }
        }
        assert_eq!(seen.len(), eval_grid().len());
        assert_eq!(grants, (eval_grid().len() + 3) / 4);
        let p = state.progress();
        assert_eq!(p.leased, p.total);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missed_heartbeats_requeue_and_eventually_quarantine() {
        let dir = tmp("expire");
        let state = test_state(1, 2, &dir);
        // Attempt 1: lease the whole grid, let it expire.
        while let LeaseReply::Grant(_) = state.grant(1024, "t-1") {}
        std::thread::sleep(Duration::from_millis(10));
        state.expire(Instant::now());
        let p = state.progress();
        assert_eq!(p.pending, p.total, "expired cells re-queue");
        // Attempt 2 is the last under max_attempts = 2: expiry now
        // quarantines instead of re-queuing.
        while let LeaseReply::Grant(_) = state.grant(1024, "t-2") {}
        std::thread::sleep(Duration::from_millis(10));
        state.expire(Instant::now());
        let p = state.progress();
        assert_eq!(p.quarantined, p.total);
        // Every cell settled → lease requests answer Done.
        assert_eq!(state.grant(4, "t-3"), LeaseReply::Done);
        assert!(state.metrics.counter("dist.leases.expired").get() >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tokens_bounce_off_the_fence() {
        let dir = tmp("fence");
        let state = test_state(1, 5, &dir);
        let LeaseReply::Grant(first) = state.grant(1, "t-1") else {
            panic!("no grant");
        };
        let cell = first.cells[0].clone();
        let ec = EvalCell::parse(&cell).expect("grid cell");
        let result = nv_scavenger::run_eval_cell(ec, AppScale::Test, 2).expect("cell runs");
        let body = wire::encode_shard(&cell, &result);
        // Let the first lease expire, then re-lease the same cell.
        std::thread::sleep(Duration::from_millis(10));
        state.expire(Instant::now());
        let LeaseReply::Grant(second) = state.grant(1, "t-2") else {
            panic!("no second grant");
        };
        assert_eq!(second.cells[0], cell);
        assert_ne!(second.token, first.token);
        // The zombie's upload (old token) is fenced out...
        let resp = state.accept_shard(&cell, first.token, &body, "t-1");
        assert_eq!(resp.status, 409, "{}", resp.body);
        // ...the current holder's goes through...
        let resp = state.accept_shard(&cell, second.token, &body, "t-2");
        assert_eq!(resp.status, 200, "{}", resp.body);
        // ...and a duplicate of a done cell is refused.
        let resp = state.accept_shard(&cell, second.token, &body, "t-2");
        assert_eq!(resp.status, 409, "{}", resp.body);
        assert_eq!(state.metrics.counter("dist.shards.rejected").get(), 2);
        assert_eq!(state.metrics.counter("dist.shards.received").get(), 1);
        // The journal holds the exact accepted frame.
        let journaled =
            std::fs::read(dir.join(journal_file(&cell))).expect("journal entry written");
        assert_eq!(journaled, body);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_frames_are_rejected_without_state_change() {
        let dir = tmp("torn");
        let state = test_state(60_000, 3, &dir);
        let LeaseReply::Grant(g) = state.grant(1, "t-1") else {
            panic!("no grant");
        };
        let cell = g.cells[0].clone();
        let ec = EvalCell::parse(&cell).expect("grid cell");
        let result = nv_scavenger::run_eval_cell(ec, AppScale::Test, 2).expect("cell runs");
        let body = wire::encode_shard(&cell, &result);
        let resp = state.accept_shard(&cell, g.token, &body[..body.len() / 2], "t-1");
        assert_eq!(resp.status, 400, "{}", resp.body);
        // The cell is still leased to the same token — a retry with the
        // full frame succeeds.
        let resp = state.accept_shard(&cell, g.token, &body, "t-1");
        assert_eq!(resp.status, 200, "{}", resp.body);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_reloads_only_valid_journal_frames() {
        let dir = tmp("resume");
        let state = test_state(60_000, 3, &dir);
        // Journal two cells: one valid, one torn.
        let cells = ["table1/GTC", "fig2/CAM"];
        let frames: Vec<Vec<u8>> = cells
            .iter()
            .map(|c| {
                let ec = EvalCell::parse(c).expect("grid cell");
                let r = nv_scavenger::run_eval_cell(ec, AppScale::Test, 2).expect("cell runs");
                wire::encode_shard(c, &r)
            })
            .collect();
        atomic_write(&dir.join(journal_file(cells[0])), &frames[0]).expect("journal");
        atomic_write(&dir.join(journal_file(cells[1])), &frames[1][..frames[1].len() / 2])
            .expect("journal");
        assert_eq!(state.resume_load().expect("resume scans"), 1);
        let p = state.progress();
        assert_eq!(p.done, 1);
        assert_eq!(p.pending, p.total - 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
