//! `nvsim-dist` — run the paper's evaluation grid as a distributed
//! fleet: one coordinator, N workers, a byte-identical merged store.
//!
//! ```text
//! nvsim-dist coordinator --store DIR [--listen HOST:PORT] [--scale S]
//!                        [--iterations N] [--journal DIR] [--resume]
//!                        [--lease-ms MS] [--batch N] [--retries N]
//!                        [--shards N] [--local-workers N] [--events PATH]
//! nvsim-dist worker --coordinator HOST:PORT [--jobs N] [--label L]
//!                   [--faults SPEC[,SPEC...]] [--connect-retry-ms MS]
//! ```
//!
//! The coordinator serves leases until every cell of the grid is done,
//! then merges the shards and writes `DIR/dataset.nvstore` — the same
//! bytes `run_all --scale S --iterations N --store DIR` writes. With
//! `--local-workers N` it also spawns N in-process worker threads, so
//! a single invocation runs the whole fleet on one machine.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use nvsim_dist::{coordinator, protocol, worker, DistConfig, WorkerConfig};
use nvsim_faults::{FaultInjector, FaultPlan};
use nvsim_obs::{EventBus, JsonlSink, Metrics, MetricsAggregator};

const USAGE: &str = "usage: nvsim-dist coordinator --store DIR [--listen HOST:PORT]\n\
\x20                  [--scale test|small|bench] [--iterations N]\n\
\x20                  [--journal DIR] [--resume] [--lease-ms MS] [--batch N]\n\
\x20                  [--retries N] [--shards N] [--local-workers N]\n\
\x20                  [--events PATH]\n\
\x20      nvsim-dist worker --coordinator HOST:PORT [--jobs N] [--label L]\n\
\x20                  [--faults SPEC[,SPEC...]] [--connect-retry-ms MS]\n\
value flags accept both spellings: --batch N and --batch=N\n\
coordinator:\n\
  --store DIR        directory the merged dataset.nvstore is written to\n\
  --listen HOST:PORT bind address (default 127.0.0.1:7780; port 0 = OS pick)\n\
  --scale S          application scale: test, small, bench (default test)\n\
  --iterations N     main-loop iterations per cell (default 2)\n\
  --journal DIR      shard journal directory (default DIR/dist-journal)\n\
  --resume           reload journaled shards before leasing\n\
  --lease-ms MS      lease lifetime without a heartbeat (default 5000)\n\
  --batch N          most cells per lease (default 4)\n\
  --retries N        lease attempts per cell before quarantine (default 3)\n\
  --shards N         serving event-loop shards (default 2)\n\
  --local-workers N  also run N in-process workers (single-machine fleet)\n\
  --events PATH      append dist.* lifecycle events to PATH as JSONL\n\
worker:\n\
  --coordinator A    coordinator address, host:port (required)\n\
  --jobs N           cells requested per lease (default 2)\n\
  --label L          request-id label for this worker (default pid)\n\
  --faults SPEC      arm chaos points, e.g. panic@dist.cell,torn@dist.upload\n\
  --connect-retry-ms MS  keep retrying refused connections this long\n\
\x20                  (default 10000; covers a coordinator restart)";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn value(
    flag: &str,
    inline: &mut Option<String>,
    it: &mut impl Iterator<Item = String>,
    what: &str,
) -> String {
    match inline.take() {
        Some(v) if !v.is_empty() => v,
        Some(_) => die(&format!("{flag} needs {what}")),
        None => it
            .next()
            .unwrap_or_else(|| die(&format!("{flag} needs {what}"))),
    }
}

fn count(flag: &str, raw: &str) -> u64 {
    raw.parse()
        .unwrap_or_else(|_| die(&format!("{flag} needs a number, got {raw:?}")))
}

fn main() {
    let mut it = std::env::args().skip(1);
    match it.next().as_deref() {
        Some("coordinator") => coordinator_main(it),
        Some("worker") => worker_main(it),
        Some(other) => die(&format!("unknown subcommand {other:?}")),
        None => die("a subcommand is required"),
    }
}

fn coordinator_main(mut it: impl Iterator<Item = String>) {
    let mut config = DistConfig {
        listen: "127.0.0.1:7780".to_string(),
        ..DistConfig::default()
    };
    let mut store: Option<PathBuf> = None;
    let mut journal: Option<PathBuf> = None;
    let mut local_workers = 0usize;
    let mut events: Option<PathBuf> = None;
    while let Some(raw) = it.next() {
        let (flag, mut inline) = match raw.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f.to_string(), Some(v.to_string())),
            _ => (raw.clone(), None),
        };
        match flag.as_str() {
            "--store" => {
                store = Some(PathBuf::from(value(&flag, &mut inline, &mut it, "a directory")))
            }
            "--listen" => config.listen = value(&flag, &mut inline, &mut it, "HOST:PORT"),
            "--scale" => {
                let raw = value(&flag, &mut inline, &mut it, "test|small|bench");
                config.scale = protocol::parse_scale(&raw)
                    .unwrap_or_else(|| die(&format!("unknown scale {raw:?}")));
            }
            "--iterations" => {
                config.iterations =
                    count(&flag, &value(&flag, &mut inline, &mut it, "a count")) as u32
            }
            "--journal" => {
                journal = Some(PathBuf::from(value(&flag, &mut inline, &mut it, "a directory")))
            }
            "--resume" => config.resume = true,
            "--lease-ms" => {
                config.lease_ms = count(&flag, &value(&flag, &mut inline, &mut it, "milliseconds"))
            }
            "--batch" => {
                config.batch = count(&flag, &value(&flag, &mut inline, &mut it, "a count")) as usize
            }
            "--retries" => {
                config.max_attempts =
                    count(&flag, &value(&flag, &mut inline, &mut it, "a count")) as u32
            }
            "--shards" => {
                config.shards = count(&flag, &value(&flag, &mut inline, &mut it, "a count")) as usize
            }
            "--local-workers" => {
                local_workers =
                    count(&flag, &value(&flag, &mut inline, &mut it, "a count")) as usize
            }
            "--events" => {
                events = Some(PathBuf::from(value(&flag, &mut inline, &mut it, "a path")))
            }
            other => die(&format!("unknown coordinator flag {other:?}")),
        }
    }
    let store = store.unwrap_or_else(|| die("--store is required"));
    config.store_dir = store.clone();
    config.journal_dir = journal.unwrap_or_else(|| store.join("dist-journal"));

    let metrics = Metrics::enabled();
    let mut builder = EventBus::builder(format!("dist-{}", std::process::id()))
        .subscribe(Box::new(MetricsAggregator::new(metrics.clone())));
    if let Some(path) = &events {
        let sink = JsonlSink::create(path)
            .unwrap_or_else(|e| die(&format!("open {}: {e}", path.display())));
        builder = builder.subscribe(Box::new(sink));
    }
    let bus = Arc::new(builder.build());

    let handle = coordinator::start(config, bus, metrics)
        .unwrap_or_else(|e| die(&format!("start coordinator: {e}")));
    eprintln!("coordinating on {}", handle.addr());

    let mut local = Vec::new();
    for i in 0..local_workers {
        let worker_config = WorkerConfig {
            coordinator: handle.addr().to_string(),
            label: format!("local-{i}"),
            ..WorkerConfig::default()
        };
        local.push(
            std::thread::Builder::new()
                .name(format!("dist-worker-{i}"))
                .spawn(move || worker::run(&worker_config, &FaultInjector::disabled()))
                .unwrap_or_else(|e| die(&format!("spawn worker: {e}"))),
        );
    }

    // Serve until the grid settles (effectively no deadline: operators
    // kill a stuck fleet; tests pass real timeouts through the library).
    let progress = handle.wait_complete(Duration::from_secs(86_400 * 365));
    for thread in local {
        match thread.join() {
            Ok(Ok(report)) => eprintln!(
                "local worker done: {} cells over {} leases",
                report.cells_done, report.leases
            ),
            Ok(Err(e)) => eprintln!("local worker failed: {e}"),
            Err(_) => eprintln!("local worker panicked"),
        }
    }
    if progress.quarantined > 0 {
        eprintln!("{} cells quarantined; store not written", progress.quarantined);
        std::process::exit(1);
    }
    match handle.finalize() {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("finalize failed: {e}");
            std::process::exit(1);
        }
    }
}

fn worker_main(mut it: impl Iterator<Item = String>) {
    let mut config = WorkerConfig {
        label: format!("w{}", std::process::id()),
        ..WorkerConfig::default()
    };
    let mut coordinator_addr: Option<String> = None;
    let mut faults = FaultInjector::disabled();
    while let Some(raw) = it.next() {
        let (flag, mut inline) = match raw.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f.to_string(), Some(v.to_string())),
            _ => (raw.clone(), None),
        };
        match flag.as_str() {
            "--coordinator" => {
                coordinator_addr = Some(value(&flag, &mut inline, &mut it, "HOST:PORT"))
            }
            "--jobs" => {
                config.jobs = count(&flag, &value(&flag, &mut inline, &mut it, "a count")) as usize
            }
            "--label" => config.label = value(&flag, &mut inline, &mut it, "a label"),
            "--faults" => {
                let spec = value(&flag, &mut inline, &mut it, "a fault plan");
                let plan = FaultPlan::parse(&spec)
                    .unwrap_or_else(|e| die(&format!("bad fault plan {spec:?}: {e}")));
                faults = plan.injector();
            }
            "--connect-retry-ms" => {
                config.connect_retry = Duration::from_millis(count(
                    &flag,
                    &value(&flag, &mut inline, &mut it, "milliseconds"),
                ))
            }
            other => die(&format!("unknown worker flag {other:?}")),
        }
    }
    config.coordinator = coordinator_addr.unwrap_or_else(|| die("--coordinator is required"));
    match worker::run(&config, &faults) {
        Ok(report) => {
            eprintln!(
                "worker {}: {} cells over {} leases ({} uploads rejected)",
                config.label, report.cells_done, report.leases, report.uploads_rejected
            );
        }
        Err(e) => {
            eprintln!("worker {} failed: {e}", config.label);
            std::process::exit(1);
        }
    }
}
