//! The worker: leases cells, runs the replay engine on each, and
//! streams exact binary shards back to the coordinator.
//!
//! ## Heartbeats are inline, on purpose
//!
//! The worker has no background heartbeat thread. It heartbeats from
//! the work loop itself — once before each cell and once after each
//! upload — so a worker that dies (panics, is killed, loses power)
//! *stops heartbeating as a side effect of being dead*. A detached
//! heartbeat thread would keep a dead worker's lease alive forever,
//! which is exactly the failure the lease exists to detect.
//!
//! ## Fault points
//!
//! Two nvsim-faults injection points model worker death:
//!
//! * `dist.cell` — armed with `panic`, the worker dies right before
//!   running a cell, abandoning the whole lease (its lease expires and
//!   the cells re-queue);
//! * `dist.upload` — armed with `torn`, the worker sends only a prefix
//!   of the shard frame (with the full `Content-Length` declared, so
//!   the coordinator's parser waits in vain), drops the connection and
//!   dies — a worker killed mid-upload on the wire.

use std::time::{Duration, Instant};

use nv_scavenger::eval_cells::EvalCell;
use nvsim_faults::FaultInjector;
use nvsim_types::NvsimError;

use crate::client;
use crate::protocol::{
    self, LeaseGrant, LeaseReply, FENCING_HEADER, REQUEST_ID_HEADER,
};

/// Everything one worker needs.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address, `host:port`.
    pub coordinator: String,
    /// Most cells requested per lease.
    pub jobs: usize,
    /// Label stamped into every RPC's `X-Request-Id`.
    pub label: String,
    /// How long to keep retrying a refused connection before giving
    /// up — covers the window where a killed coordinator is being
    /// restarted with `--resume`.
    pub connect_retry: Duration,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            coordinator: "127.0.0.1:0".to_string(),
            jobs: 2,
            label: "w".to_string(),
            connect_retry: Duration::from_secs(10),
        }
    }
}

/// What one worker did before exiting cleanly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Leases obtained.
    pub leases: u64,
    /// Cells run and uploaded successfully.
    pub cells_done: u64,
    /// Uploads refused by the coordinator (fencing, duplicates).
    pub uploads_rejected: u64,
}

/// One RPC with connection-refused retry. A refused connection within
/// the retry window means the coordinator is (re)starting, not gone.
fn rpc_with_retry(
    config: &WorkerConfig,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<client::HttpResponse> {
    let deadline = Instant::now() + config.connect_retry;
    loop {
        match client::request(&config.coordinator, method, path, headers, body) {
            Ok(resp) => return Ok(resp),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(e),
        }
    }
}

fn io_err(path: &str, e: impl std::fmt::Display) -> NvsimError {
    NvsimError::Io {
        path: path.to_string(),
        cause: e.to_string(),
    }
}

/// Runs the worker loop until the coordinator answers `done`.
///
/// `faults` arms the chaos points (`dist.cell`, `dist.upload`); pass
/// [`FaultInjector::disabled`] for a production worker. A fired crash
/// point makes this function return early with the lease abandoned —
/// callers treat that as the worker having died.
///
/// # Errors
/// Coordinator unreachable past the retry window, or a protocol
/// violation (unparsable reply).
pub fn run(config: &WorkerConfig, faults: &FaultInjector) -> Result<WorkerReport, NvsimError> {
    let mut report = WorkerReport::default();
    let mut seq = 0u64;
    let mut rid = move |kind: &str, label: &str| {
        seq += 1;
        format!("{label}-{kind}-{seq}")
    };
    loop {
        let request_id = rid("lease", &config.label);
        let reply = match rpc_with_retry(
            config,
            "POST",
            "/lease",
            &[(REQUEST_ID_HEADER, &request_id)],
            protocol::emit_lease_request(config.jobs.max(1)).as_bytes(),
        ) {
            Ok(reply) => reply,
            // A coordinator that vanishes between leases, after this
            // worker uploaded everything it was assigned, has finalized
            // and gone away — that's a clean end of the fleet, not a
            // failure. Unreachable *before* any lease is still an error.
            Err(_) if report.leases > 0 => return Ok(report),
            Err(e) => return Err(io_err("/lease", e)),
        };
        if reply.status != 200 {
            return Err(io_err("/lease", format!("status {}", reply.status)));
        }
        let reply = LeaseReply::parse(&reply.text()).map_err(|e| io_err("/lease", e))?;
        match reply {
            LeaseReply::Done => return Ok(report),
            LeaseReply::Retry { retry_ms } => {
                std::thread::sleep(Duration::from_millis(retry_ms.min(1000)));
            }
            LeaseReply::Grant(grant) => {
                report.leases += 1;
                if !run_lease(config, faults, &grant, &mut report, &mut rid)? {
                    // A chaos point fired: this worker is "dead". Its
                    // lease expires on its own.
                    return Ok(report);
                }
            }
        }
    }
}

/// Runs every cell of one lease. Returns `Ok(false)` when a chaos
/// point killed the worker mid-lease.
fn run_lease(
    config: &WorkerConfig,
    faults: &FaultInjector,
    grant: &LeaseGrant,
    report: &mut WorkerReport,
    rid: &mut impl FnMut(&str, &str) -> String,
) -> Result<bool, NvsimError> {
    let token = grant.token.to_string();
    for cell_name in &grant.cells {
        // Inline heartbeat: proves this worker is still alive before it
        // sinks time into the next cell. 410 means the lease already
        // expired — stop working on it, the cells are someone else's.
        let request_id = rid("hb", &config.label);
        let hb = rpc_with_retry(
            config,
            "POST",
            "/heartbeat",
            &[(REQUEST_ID_HEADER, &request_id)],
            protocol::emit_heartbeat(grant.token).as_bytes(),
        )
        .map_err(|e| io_err("/heartbeat", e))?;
        if hb.status == 410 {
            return Ok(true);
        }
        if hb.status != 200 {
            return Err(io_err("/heartbeat", format!("status {}", hb.status)));
        }

        // Chaos: worker dies before running the cell.
        if faults.crashes("dist.cell") {
            return Ok(false);
        }

        let cell = EvalCell::parse(cell_name)
            .ok_or_else(|| NvsimError::NotFound(format!("leased unknown cell {cell_name}")))?;
        let result = nv_scavenger::run_eval_cell(cell, grant.scale, grant.iterations)?;
        let frame = crate::wire::encode_shard(cell_name, &result);

        let path = format!("/shards/{}", cell_name.replace('/', "%2F"));
        let request_id = rid("shard", &config.label);
        let headers = [
            (REQUEST_ID_HEADER, request_id.as_str()),
            (FENCING_HEADER, token.as_str()),
        ];

        // Chaos: worker dies mid-upload, tearing the frame on the wire.
        if let Some(prefix) = faults.torn_prefix("dist.upload", frame.len()) {
            let _ = client::send_raw_prefix(
                &config.coordinator,
                "POST",
                &path,
                &headers,
                &frame,
                prefix,
            );
            return Ok(false);
        }

        let resp = rpc_with_retry(config, "POST", &path, &headers, &frame)
            .map_err(|e| io_err(&path, e))?;
        match resp.status {
            200 => report.cells_done += 1,
            // Fenced out or duplicate: the cell is (or will be) covered
            // by another lease. Count it and move on.
            409 => report.uploads_rejected += 1,
            status => return Err(io_err(&path, format!("status {status}: {}", resp.text()))),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_distinct_and_labeled() {
        let mut seq = 0u64;
        let mut rid = move |kind: &str, label: &str| {
            seq += 1;
            format!("{label}-{kind}-{seq}")
        };
        let a = rid("lease", "w0");
        let b = rid("hb", "w0");
        assert_ne!(a, b);
        assert!(a.starts_with("w0-lease-"));
        assert!(b.starts_with("w0-hb-"));
    }

    #[test]
    fn unreachable_coordinators_error_after_the_retry_window() {
        let config = WorkerConfig {
            // A port from the discard range with nothing listening.
            coordinator: "127.0.0.1:9".to_string(),
            connect_retry: Duration::from_millis(50),
            ..WorkerConfig::default()
        };
        let err = run(&config, &FaultInjector::disabled());
        assert!(err.is_err());
    }
}
