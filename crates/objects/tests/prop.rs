//! Property tests pinning the §III-D fast paths to their reference
//! semantics: the bucket index must agree with a linear scan, the LRU
//! cache must be transparent, and common-block merging must produce a
//! disjoint cover.

use nvsim_objects::global::merge_overlapping;
use nvsim_objects::{LruObjectCache, ObjectId, RangeIndex};
use nvsim_trace::GlobalSymbol;
use nvsim_types::{AddrRange, VirtAddr};
use proptest::prelude::*;

fn object_set() -> impl Strategy<Value = Vec<AddrRange>> {
    proptest::collection::vec((0u64..1 << 24, 1u64..1 << 16), 1..100).prop_map(|raw| {
        raw.into_iter()
            .map(|(base, len)| {
                AddrRange::from_base_size(VirtAddr::new(0x1000 + base * 16), len)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn bucket_index_matches_linear_scan(
        ranges in object_set(),
        probes in proptest::collection::vec(0u64..1 << 29, 1..200),
    ) {
        let mut idx = RangeIndex::new(VirtAddr::new(0x1000));
        for (i, r) in ranges.iter().enumerate() {
            idx.insert(*r, ObjectId(i as u32));
        }
        for &p in &probes {
            let addr = VirtAddr::new(0x1000 + p);
            let fast = idx.lookup(addr, |_| true);
            let slow = idx.lookup_linear(addr, |_| true);
            // Both must agree on *whether* anything contains the address;
            // with overlapping objects the specific winner may differ, but
            // the winner must actually contain the address.
            prop_assert_eq!(fast.is_some(), slow.is_some());
            if let Some(id) = fast {
                prop_assert!(ranges[id.0 as usize].contains(addr));
            }
        }
    }

    #[test]
    fn bucket_index_respects_accept_filter(
        ranges in object_set(),
        probes in proptest::collection::vec(0u64..1 << 29, 1..100),
        reject_mod in 2usize..5,
    ) {
        let mut idx = RangeIndex::new(VirtAddr::new(0x1000));
        for (i, r) in ranges.iter().enumerate() {
            idx.insert(*r, ObjectId(i as u32));
        }
        for &p in &probes {
            let addr = VirtAddr::new(0x1000 + p);
            let accept = |id: ObjectId| !(id.0 as usize).is_multiple_of(reject_mod);
            if let Some(id) = idx.lookup(addr, accept) {
                prop_assert!(accept(id));
                prop_assert!(ranges[id.0 as usize].contains(addr));
            } else {
                // Linear scan with the same filter also finds nothing.
                prop_assert!(idx.lookup_linear(addr, accept).is_none());
            }
        }
    }

    #[test]
    fn lru_cache_is_transparent(
        entries in proptest::collection::vec((0u64..1 << 20, 1u64..4096), 1..50),
        probes in proptest::collection::vec(0u64..1 << 21, 1..200),
        ways in 1usize..16,
    ) {
        // Entries with disjoint ranges (stride them apart).
        let ranges: Vec<AddrRange> = entries
            .iter()
            .enumerate()
            .map(|(i, &(_, len))| {
                AddrRange::from_base_size(VirtAddr::new((i as u64) << 24), len)
            })
            .collect();
        let mut lru = LruObjectCache::new(ways);
        for (i, r) in ranges.iter().enumerate() {
            lru.insert(*r, ObjectId(i as u32));
        }
        for &p in &probes {
            let addr = VirtAddr::new(p << 12);
            if let Some(id) = lru.lookup(addr) {
                // A hit must be correct (the point of cache transparency).
                prop_assert!(ranges[id.0 as usize].contains(addr));
            }
        }
    }

    #[test]
    fn merged_globals_are_disjoint_and_cover(
        symbols in proptest::collection::vec((0u64..1 << 20, 1u64..1 << 12), 1..60),
    ) {
        let syms: Vec<GlobalSymbol> = symbols
            .iter()
            .enumerate()
            .map(|(i, &(base, size))| GlobalSymbol {
                name: format!("sym{i}"),
                base: VirtAddr::new(0x40_0000 + base),
                size,
            })
            .collect();
        let merged = merge_overlapping(&syms);
        // Pairwise disjoint and sorted.
        for pair in merged.windows(2) {
            prop_assert!(pair[0].range.end <= pair[1].range.start);
        }
        // Every input byte is covered by exactly one merged object.
        for s in &syms {
            let r = AddrRange::from_base_size(s.base, s.size);
            let covering: Vec<_> = merged
                .iter()
                .filter(|m| m.range.contains_range(&r))
                .collect();
            prop_assert_eq!(covering.len(), 1, "symbol {:?} not covered once", s.name);
        }
        // Merge counts add up to the number of (nonzero) inputs.
        let total: usize = merged.iter().map(|m| m.merged_count).sum();
        prop_assert_eq!(total, syms.len());
    }
}
