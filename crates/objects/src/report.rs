//! Report/query structures extracting the paper's figures from a registry.

use crate::object::MemoryObject;
use crate::registry::ObjectRegistry;
use nvsim_types::{AccessCounts, Region};
use serde::{Deserialize, Serialize};

/// Flat per-object summary — one row of Figures 2–6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectSummary {
    /// Object name.
    pub name: String,
    /// Region the object lives in.
    pub region: Region,
    /// Object size in bytes (metric 2).
    pub size_bytes: u64,
    /// Main-loop totals.
    pub counts: AccessCounts,
    /// Read/write ratio (metric 1); `None` if untouched, `inf` if
    /// read-only.
    pub rw_ratio: Option<f64>,
    /// Fraction of all main-loop references that hit this object
    /// (metric 3, averaged over the window).
    pub reference_rate: f64,
    /// Iterations in which the object was touched.
    pub iterations_touched: u32,
    /// `true` if touched only outside the main loop (Figure 7's step 0).
    pub only_pre_post: bool,
    /// `true` for short-term heap objects excluded from Figure 7.
    pub short_term_heap: bool,
}

impl ObjectSummary {
    /// Builds a summary row given the window-wide reference total.
    pub fn from_object(obj: &MemoryObject, window_total_refs: u64) -> Self {
        let touched_main = obj.metrics.total.total() > 0;
        let touched_pre_post = obj.pre_post.total() > 0;
        ObjectSummary {
            name: obj.name.clone(),
            region: obj.region,
            size_bytes: obj.metrics.size_bytes,
            counts: obj.metrics.total,
            rw_ratio: obj.metrics.read_write_ratio(),
            reference_rate: if window_total_refs == 0 {
                0.0
            } else {
                obj.metrics.total.total() as f64 / window_total_refs as f64
            },
            iterations_touched: obj.metrics.iterations_touched,
            only_pre_post: !touched_main && touched_pre_post,
            short_term_heap: obj.short_term_heap,
        }
    }
}

/// Aggregate statistics for one region — the inputs to Table V and the
/// prose observations of §VII-B.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionReport {
    /// Region summarized.
    pub region: Region,
    /// Main-loop totals across the region.
    pub counts: AccessCounts,
    /// Fraction of all main-loop references landing in the region.
    pub reference_percentage: f64,
    /// Objects tracked in the region.
    pub object_count: usize,
    /// Total bytes of tracked objects.
    pub total_bytes: u64,
    /// Bytes of objects that were read-only during the main loop.
    pub read_only_bytes: u64,
    /// Bytes of objects with finite read/write ratio > 50 (the §VII-B
    /// NVRAM candidate pool, distinct from the read-only pool).
    pub high_ratio_bytes: u64,
}

/// Builds per-object summaries for a region, sorted by descending
/// reference count.
pub fn object_summaries(reg: &ObjectRegistry, region: Region) -> Vec<ObjectSummary> {
    let window_total = reg.total_refs();
    let mut rows: Vec<ObjectSummary> = reg
        .objects_in(region)
        .map(|o| ObjectSummary::from_object(o, window_total))
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.counts.total()));
    rows
}

/// Builds the aggregate region report.
pub fn region_report(reg: &ObjectRegistry, region: Region) -> RegionReport {
    let counts = reg.region_total(region);
    let total = reg.total_refs();
    let mut object_count = 0;
    let mut total_bytes = 0;
    let mut read_only_bytes = 0;
    let mut high_ratio_bytes = 0;
    for o in reg.objects_in(region) {
        object_count += 1;
        total_bytes += o.metrics.size_bytes;
        if o.is_read_only_in_main_loop() {
            read_only_bytes += o.metrics.size_bytes;
        }
        // The >50 pool is distinct from the read-only pool (§VII-B
        // reports them separately), so infinite ratios are excluded.
        if matches!(o.metrics.read_write_ratio(), Some(r) if r > 50.0 && r.is_finite()) {
            high_ratio_bytes += o.metrics.size_bytes;
        }
    }
    RegionReport {
        region,
        counts,
        reference_percentage: if total == 0 {
            0.0
        } else {
            counts.total() as f64 / total as f64
        },
        object_count,
        total_bytes,
        read_only_bytes,
        high_ratio_bytes,
    }
}

/// The cumulative distribution of memory usage across time steps
/// (Figure 7). A point `(x, y)` means `y` bytes of memory objects were
/// used in no more than `x` iterations; `x = 0` covers objects touched
/// only in the pre/post phases (or never). Short-term heap objects are
/// excluded, as in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageDistribution {
    /// `bytes_by_steps[x]` = total bytes of objects used in exactly `x`
    /// iterations.
    pub bytes_by_steps: Vec<u64>,
}

impl UsageDistribution {
    /// Builds the distribution over all long-term objects in a registry.
    pub fn from_registry(reg: &ObjectRegistry) -> Self {
        let iters = reg.iterations_seen() as usize;
        let mut bytes_by_steps = vec![0u64; iters + 1];
        for o in reg.objects() {
            if o.short_term_heap {
                continue;
            }
            let steps = (o.metrics.iterations_touched as usize).min(iters);
            bytes_by_steps[steps] += o.metrics.size_bytes;
        }
        UsageDistribution { bytes_by_steps }
    }

    /// Cumulative bytes used in no more than `x` iterations.
    pub fn cumulative(&self, x: usize) -> u64 {
        self.bytes_by_steps
            .iter()
            .take(x.saturating_add(1))
            .sum()
    }

    /// Total bytes covered by the distribution.
    pub fn total(&self) -> u64 {
        self.bytes_by_steps.iter().sum()
    }

    /// Bytes of objects not used in the main computation at all — the pool
    /// §VII-C finds "suitable for being placed in NVRAMs with their low
    /// standby power".
    pub fn untouched_in_main(&self) -> u64 {
        self.bytes_by_steps[0]
    }
}

/// Variance histogram for Figures 8–11: per iteration, the distribution of
/// normalized values (value in iteration *i* divided by iteration 1) over
/// all objects, bucketed as the paper plots them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarianceHistogram {
    /// Bucket upper bounds: `[1, 2)`, `[2, 4)`, `[4, 8)`, `>= 8`, plus a
    /// `< 1` bucket stored first.
    pub buckets: Vec<String>,
    /// `fraction[iter][bucket]` — fraction of qualifying objects whose
    /// normalized value falls in the bucket at that iteration.
    pub fraction: Vec<Vec<f64>>,
}

/// Which normalized series Figures 8–11 plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarianceMetric {
    /// Read/write ratio normalized to iteration 1.
    RwRatio,
    /// Memory reference rate normalized to iteration 1.
    RefRate,
}

const BUCKET_NAMES: [&str; 5] = ["<1", "[1,2)", "[2,4)", "[4,8)", ">=8"];

fn bucket_of(v: f64) -> usize {
    if v < 1.0 {
        0
    } else if v < 2.0 {
        1
    } else if v < 4.0 {
        2
    } else if v < 8.0 {
        3
    } else {
        4
    }
}

impl VarianceHistogram {
    /// Builds the histogram over all objects in `region` with a usable
    /// first iteration.
    pub fn from_registry(
        reg: &ObjectRegistry,
        region: Region,
        metric: VarianceMetric,
    ) -> Self {
        let iters = reg.iterations_seen() as usize;
        let mut counts = vec![[0u64; 5]; iters];
        let mut qualifying = vec![0u64; iters];
        for o in reg.objects_in(region) {
            let series = match metric {
                VarianceMetric::RwRatio => o.metrics.rw_ratio_normalized(),
                VarianceMetric::RefRate => o.metrics.ref_rate_normalized(),
            };
            for (i, v) in series.iter().enumerate().take(iters) {
                if let Some(v) = v {
                    counts[i][bucket_of(*v)] += 1;
                    qualifying[i] += 1;
                }
            }
        }
        let fraction = counts
            .iter()
            .zip(&qualifying)
            .map(|(c, &q)| {
                c.iter()
                    .map(|&n| if q == 0 { 0.0 } else { n as f64 / q as f64 })
                    .collect()
            })
            .collect();
        VarianceHistogram {
            buckets: BUCKET_NAMES.iter().map(|s| s.to_string()).collect(),
            fraction,
        }
    }

    /// Fraction of objects in the `[1,2)` bucket at iteration `i` — the
    /// paper's ">60% of memory objects stay within [1,2)" check.
    pub fn stable_fraction(&self, i: usize) -> f64 {
        self.fraction.get(i).map_or(0.0, |row| row[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use nvsim_trace::{AllocSite, Phase, TracedVec, Tracer};

    fn build_registry() -> ObjectRegistry {
        let mut reg = ObjectRegistry::new(RegistryConfig::default());
        {
            let mut t = Tracer::new(&mut reg);
            // hot: read every iteration; cold: written only pre-phase;
            // once: touched in a single iteration.
            let mut hot = TracedVec::<f64>::global(&mut t, "hot", 128).unwrap();
            let mut cold = TracedVec::<f64>::global(&mut t, "cold", 512).unwrap();
            let mut once = TracedVec::<f64>::global(&mut t, "once", 64).unwrap();
            let mut short = TracedVec::<f64>::heap(&mut t, AllocSite::new("tmp.rs", 1), 256)
                .unwrap();

            t.phase(Phase::PreComputeBegin);
            cold.fill(&mut t, 0.5);

            for iter in 0..4u32 {
                t.phase(Phase::IterationBegin(iter));
                for i in 0..16 {
                    let v = hot.get(&mut t, i);
                    hot.set(&mut t, i, v + 1.0);
                }
                if iter == 2 {
                    once.set(&mut t, 0, 9.0);
                }
                if iter == 0 {
                    // Short-term heap churn inside the loop.
                    short.set(&mut t, 0, 1.0);
                }
                t.phase(Phase::IterationEnd(iter));
            }
            // Free `short` inside... it was allocated pre-phase, so free it
            // pre-classified as long-term. Allocate + free one in-loop:
            t.phase(Phase::IterationBegin(4));
            let tmp = TracedVec::<f64>::heap(&mut t, AllocSite::new("tmp.rs", 2), 128).unwrap();
            tmp.free(&mut t).unwrap();
            t.phase(Phase::IterationEnd(4));
            short.free(&mut t).unwrap();
            t.finish();
        }
        reg
    }

    #[test]
    fn summaries_sorted_by_traffic() {
        let reg = build_registry();
        let rows = object_summaries(&reg, Region::Global);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].name, "hot");
        assert!(rows[0].counts.total() > rows[1].counts.total());
        let cold = rows.iter().find(|r| r.name == "cold").unwrap();
        assert!(cold.only_pre_post);
        assert_eq!(cold.rw_ratio, None);
    }

    #[test]
    fn region_report_aggregates() {
        let reg = build_registry();
        let rep = region_report(&reg, Region::Global);
        assert_eq!(rep.object_count, 3);
        assert_eq!(rep.total_bytes, (128 + 512 + 64) * 8);
        // "once" was only written (ratio 0); "hot" has ratio 1; no
        // read-only objects in the main loop.
        assert_eq!(rep.read_only_bytes, 0);
        assert!(rep.reference_percentage > 0.9); // almost all refs are global
    }

    #[test]
    fn usage_distribution_matches_touch_counts() {
        let reg = build_registry();
        let dist = UsageDistribution::from_registry(&reg);
        assert_eq!(dist.bytes_by_steps.len(), 6); // 5 iterations + step 0
        // cold (4096 B) used in 0 iterations; short (2048 B) is long-term
        // heap touched in 1 iteration; once (512 B) in 1; hot (1024 B) in 4.
        assert_eq!(dist.untouched_in_main(), 512 * 8);
        assert_eq!(dist.bytes_by_steps[1], 64 * 8 + 256 * 8);
        assert_eq!(dist.bytes_by_steps[4], 128 * 8);
        // tmp (1024 B) is short-term and excluded.
        assert_eq!(dist.total(), (128 + 512 + 64 + 256) as u64 * 8);
        // cumulative is monotone.
        for x in 0..5 {
            assert!(dist.cumulative(x) <= dist.cumulative(x + 1));
        }
    }

    #[test]
    fn variance_histogram_stable_for_steady_objects() {
        let reg = build_registry();
        let h = VarianceHistogram::from_registry(&reg, Region::Global, VarianceMetric::RwRatio);
        // "hot" is perfectly steady (ratio 1 every iteration): it lands in
        // [1,2) at every iteration where it qualifies.
        for i in 0..4 {
            assert!(h.stable_fraction(i) > 0.99, "iteration {i}: {h:?}");
        }
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0.5), 0);
        assert_eq!(bucket_of(1.0), 1);
        assert_eq!(bucket_of(1.999), 1);
        assert_eq!(bucket_of(2.0), 2);
        assert_eq!(bucket_of(7.999), 3);
        assert_eq!(bucket_of(8.0), 4);
        assert_eq!(bucket_of(1e9), 4);
    }
}
