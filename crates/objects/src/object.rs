//! Memory-object identities and records.

use nvsim_types::{AccessCounts, AddrRange, ObjectMetrics, Region};
use nvsim_trace::RoutineId;
use serde::{Deserialize, Serialize};

/// Index of an object in the registry arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// Arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What kind of program entity an object represents.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectKind {
    /// All stack frames of one routine, aggregated (§III-A: the routine's
    /// start address is its signature; Figure 2 reports per-routine stack
    /// objects).
    StackRoutine {
        /// The routine whose frames this object aggregates.
        routine: RoutineId,
    },
    /// One heap allocation context (§III-B: objects with the same signature
    /// across execution phases are regarded as the same object).
    Heap {
        /// Hash of the full signature (base, size, site, call stack).
        signature_hash: u64,
    },
    /// One global symbol, possibly the union of several overlapping
    /// common-block views (§III-C).
    Global,
}

/// One tracked memory object and its accumulated statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryObject {
    /// Arena id.
    pub id: ObjectId,
    /// Human-readable name: symbol name (global), `file:line` allocation
    /// context (heap), or routine name (stack).
    pub name: String,
    /// Segment this object lives in.
    pub region: Region,
    /// Kind-specific identity.
    pub kind: ObjectKind,
    /// Address range. For stack-routine objects this is the *maximal frame
    /// extent observed* and is informational only (attribution goes through
    /// the shadow stack, not the range index).
    pub range: AddrRange,
    /// Dead-object flag (§III-B): set when a heap object is freed so that a
    /// later allocation reusing the address is not confused with it.
    pub live: bool,
    /// Aggregated metrics across the instrumented window.
    pub metrics: ObjectMetrics,
    /// Counts accumulated in the current (open) iteration.
    pub pending: AccessCounts,
    /// References observed outside the main loop (pre-compute +
    /// post-process; the "step 0" bucket of Figure 7).
    pub pre_post: AccessCounts,
    /// `true` if the object is a heap object that was both allocated and
    /// freed inside the main loop — the "short-term heap memory objects"
    /// Figure 7 excludes.
    pub short_term_heap: bool,
    /// `true` if the (heap) object's most recent allocation happened inside
    /// the main computation loop.
    pub allocated_in_main: bool,
}

impl MemoryObject {
    /// Creates a fresh object record.
    pub fn new(
        id: ObjectId,
        name: String,
        region: Region,
        kind: ObjectKind,
        range: AddrRange,
    ) -> Self {
        let size = range.len();
        MemoryObject {
            id,
            name,
            region,
            kind,
            range,
            live: true,
            metrics: ObjectMetrics::new(size),
            pending: AccessCounts::ZERO,
            pre_post: AccessCounts::ZERO,
            short_term_heap: false,
            allocated_in_main: false,
        }
    }

    /// Total main-loop references plus pre/post references.
    pub fn lifetime_total(&self) -> u64 {
        self.metrics.total.total() + self.pre_post.total()
    }

    /// `true` if the object was never written during the main loop (but was
    /// read at least once) — the paper's read-only classification for
    /// Figures 3–6, which considers main-loop behaviour.
    pub fn is_read_only_in_main_loop(&self) -> bool {
        self.metrics.total.is_read_only()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim_types::VirtAddr;

    #[test]
    fn new_object_is_live_with_sized_metrics() {
        let o = MemoryObject::new(
            ObjectId(0),
            "x".into(),
            Region::Global,
            ObjectKind::Global,
            AddrRange::from_base_size(VirtAddr::new(0x40_0000), 4096),
        );
        assert!(o.live);
        assert_eq!(o.metrics.size_bytes, 4096);
        assert_eq!(o.lifetime_total(), 0);
        assert!(!o.is_read_only_in_main_loop());
    }

    #[test]
    fn lifetime_total_includes_pre_post() {
        let mut o = MemoryObject::new(
            ObjectId(1),
            "y".into(),
            Region::Heap,
            ObjectKind::Heap { signature_hash: 1 },
            AddrRange::from_base_size(VirtAddr::new(0x10_0000_0000), 64),
        );
        o.pre_post.record(false);
        o.metrics.total.record(true);
        assert_eq!(o.lifetime_total(), 2);
    }
}
