//! The bucketed address-space index of §III-D.
//!
//! "To speed up searching, we divide the memory address space into many
//! buckets and distribute the memory objects into the buckets based on
//! their address range. To decide which memory object a memory reference
//! belongs to, we apply a memory masking scheme to the reference address to
//! choose the bucket corresponding to this address, and then search for
//! memory objects within the chosen bucket. To avoid clustering memory
//! objects into very few buckets and invalidating the bucket scheme, we
//! dynamically divide the memory address space so that the memory objects
//! can be evenly distributed between buckets."
//!
//! The index covers one segment (heap or global). Buckets are fixed in
//! count; the bucket *size* (a power of two, applied by shift — the paper's
//! "masking scheme") adapts: when the populated span outgrows the covered
//! span the index rebuilds with a larger shift, and when average bucket
//! occupancy exceeds a threshold it rebuilds with a smaller shift (down to
//! a floor) to spread objects out.

use crate::object::ObjectId;
use nvsim_obs::Histogram;
use nvsim_types::{AddrRange, VirtAddr};

/// Number of buckets. Power of two so the bucket choice is shift+mask.
const NUM_BUCKETS: usize = 4096;
/// Rebuild to smaller buckets when average live occupancy exceeds this.
const MAX_AVG_OCCUPANCY: usize = 8;
/// Smallest bucket size: 4 KiB.
const MIN_SHIFT: u32 = 12;

/// A bucketed index from addresses to the objects whose ranges cover them.
#[derive(Debug, Clone)]
pub struct RangeIndex {
    /// Base address the bucket grid is anchored at.
    base: VirtAddr,
    /// log2 of the bucket size.
    shift: u32,
    buckets: Vec<Vec<(AddrRange, ObjectId)>>,
    /// All entries, for rebuilds (range, id).
    entries: Vec<(AddrRange, ObjectId)>,
    /// Statistics: lookups and entries scanned, for the §III-D ablation.
    lookups: u64,
    scanned: u64,
    rebuilds: u64,
    /// Optional per-lookup probe-length histogram (no-op by default).
    probe: Histogram,
}

impl RangeIndex {
    /// Creates an index anchored at `segment_start` with minimal buckets.
    pub fn new(segment_start: VirtAddr) -> Self {
        RangeIndex {
            base: segment_start,
            shift: MIN_SHIFT,
            buckets: vec![Vec::new(); NUM_BUCKETS],
            entries: Vec::new(),
            lookups: 0,
            scanned: 0,
            rebuilds: 0,
            probe: Histogram::default(),
        }
    }

    /// Sets the histogram receiving the number of entries scanned by
    /// each lookup — the §III-D "searching within the chosen bucket"
    /// cost, observable without re-running the ablation.
    pub fn set_probe_histogram(&mut self, probe: Histogram) {
        self.probe = probe;
    }

    #[inline]
    fn bucket_of(&self, addr: VirtAddr) -> Option<usize> {
        let off = addr.raw().checked_sub(self.base.raw())?;
        let idx = (off >> self.shift) as usize;
        if idx < NUM_BUCKETS {
            Some(idx)
        } else {
            None
        }
    }

    /// Span covered by the current grid.
    fn covered_end(&self) -> VirtAddr {
        VirtAddr::new(self.base.raw() + ((NUM_BUCKETS as u64) << self.shift))
    }

    /// Inserts an object range. Triggers a rebuild if the range falls
    /// outside the covered span or occupancy is too high.
    pub fn insert(&mut self, range: AddrRange, id: ObjectId) {
        self.entries.push((range, id));
        if range.end > self.covered_end() {
            self.grow_to_cover(range.end);
        } else {
            self.place(range, id);
            self.maybe_shrink_buckets();
        }
    }

    /// Removes an object (e.g. when a stale entry must disappear entirely;
    /// dead heap objects normally stay indexed and are filtered by
    /// liveness at lookup).
    pub fn remove(&mut self, id: ObjectId) {
        self.entries.retain(|&(_, e)| e != id);
        for b in &mut self.buckets {
            b.retain(|&(_, e)| e != id);
        }
    }

    fn place(&mut self, range: AddrRange, id: ObjectId) {
        let first = self
            .bucket_of(range.start)
            .expect("range start below index base");
        let last = self
            .bucket_of(VirtAddr::new(range.end.raw().saturating_sub(1).max(range.start.raw())))
            .unwrap_or(NUM_BUCKETS - 1);
        for b in first..=last {
            self.buckets[b].push((range, id));
        }
    }

    fn grow_to_cover(&mut self, end: VirtAddr) {
        while end > self.covered_end() {
            self.shift += 1;
        }
        self.rebuild();
    }

    fn maybe_shrink_buckets(&mut self) {
        // Average occupancy over *populated* buckets; a high average means
        // objects cluster and lookups degrade to linear scans.
        let populated: usize = self.buckets.iter().filter(|b| !b.is_empty()).count();
        if populated == 0 {
            return;
        }
        let total: usize = self.buckets.iter().map(|b| b.len()).sum();
        if total / populated > MAX_AVG_OCCUPANCY && self.shift > MIN_SHIFT {
            // Only worth shrinking if the span allows it.
            let span = self
                .entries
                .iter()
                .map(|(r, _)| r.end.raw())
                .max()
                .unwrap_or(self.base.raw())
                - self.base.raw();
            let needed_shift = span
                .next_power_of_two()
                .trailing_zeros()
                .saturating_sub(NUM_BUCKETS.trailing_zeros())
                .max(MIN_SHIFT);
            if needed_shift < self.shift {
                self.shift = needed_shift;
                self.rebuild();
            }
        }
    }

    fn rebuild(&mut self) {
        self.rebuilds += 1;
        for b in &mut self.buckets {
            b.clear();
        }
        let entries = std::mem::take(&mut self.entries);
        for &(range, id) in &entries {
            self.place(range, id);
        }
        self.entries = entries;
    }

    /// Finds all objects whose range contains `addr`, invoking `f` for each
    /// until it returns `true` (found). Returns the matching id, if any.
    ///
    /// The caller filters by liveness: several objects (one live, others
    /// dead) may cover the same address after heap reuse (§III-B).
    pub fn lookup(&mut self, addr: VirtAddr, mut accept: impl FnMut(ObjectId) -> bool) -> Option<ObjectId> {
        self.lookups += 1;
        let bucket = self.bucket_of(addr)?;
        let mut probed = 0u64;
        let mut found = None;
        for &(range, id) in &self.buckets[bucket] {
            probed += 1;
            if range.contains(addr) && accept(id) {
                found = Some(id);
                break;
            }
        }
        self.scanned += probed;
        self.probe.record(probed);
        found
    }

    /// Linear-scan reference implementation, used by property tests to
    /// validate the index and by the ablation benchmark as the baseline.
    pub fn lookup_linear(&self, addr: VirtAddr, mut accept: impl FnMut(ObjectId) -> bool) -> Option<ObjectId> {
        for &(range, id) in &self.entries {
            if range.contains(addr) && accept(id) {
                return Some(id);
            }
        }
        None
    }

    /// (lookups, entries scanned, rebuilds) — ablation counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.lookups, self.scanned, self.rebuilds)
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(base: u64, size: u64) -> AddrRange {
        AddrRange::from_base_size(VirtAddr::new(base), size)
    }

    #[test]
    fn lookup_finds_containing_object() {
        let mut idx = RangeIndex::new(VirtAddr::new(0x1000));
        idx.insert(range(0x1000, 0x100), ObjectId(0));
        idx.insert(range(0x2000, 0x100), ObjectId(1));
        assert_eq!(idx.lookup(VirtAddr::new(0x1080), |_| true), Some(ObjectId(0)));
        assert_eq!(idx.lookup(VirtAddr::new(0x20ff), |_| true), Some(ObjectId(1)));
        assert_eq!(idx.lookup(VirtAddr::new(0x3000), |_| true), None);
        assert_eq!(idx.lookup(VirtAddr::new(0x0), |_| true), None);
    }

    #[test]
    fn accept_filter_skips_rejected() {
        let mut idx = RangeIndex::new(VirtAddr::new(0x1000));
        // Two objects covering the same address (dead + live heap reuse).
        idx.insert(range(0x1000, 0x100), ObjectId(0));
        idx.insert(range(0x1000, 0x100), ObjectId(1));
        let found = idx.lookup(VirtAddr::new(0x1010), |id| id == ObjectId(1));
        assert_eq!(found, Some(ObjectId(1)));
    }

    #[test]
    fn grows_to_cover_far_ranges() {
        let mut idx = RangeIndex::new(VirtAddr::new(0));
        idx.insert(range(0, 64), ObjectId(0));
        // Far beyond the initial 4096 * 4KiB = 16 MiB coverage.
        idx.insert(range(1 << 34, 4096), ObjectId(1));
        assert_eq!(idx.lookup(VirtAddr::new(32), |_| true), Some(ObjectId(0)));
        assert_eq!(
            idx.lookup(VirtAddr::new((1 << 34) + 100), |_| true),
            Some(ObjectId(1))
        );
        let (_, _, rebuilds) = idx.stats();
        assert!(rebuilds >= 1);
    }

    #[test]
    fn spanning_object_found_from_every_bucket() {
        let mut idx = RangeIndex::new(VirtAddr::new(0));
        // 64 KiB object spans multiple 4 KiB buckets.
        idx.insert(range(0x1000, 0x10000), ObjectId(7));
        for probe in [0x1000u64, 0x4000, 0x8000, 0x10fff] {
            assert_eq!(idx.lookup(VirtAddr::new(probe), |_| true), Some(ObjectId(7)));
        }
    }

    #[test]
    fn remove_erases_entry() {
        let mut idx = RangeIndex::new(VirtAddr::new(0));
        idx.insert(range(0x1000, 0x100), ObjectId(0));
        idx.remove(ObjectId(0));
        assert_eq!(idx.lookup(VirtAddr::new(0x1010), |_| true), None);
        assert!(idx.is_empty());
    }

    #[test]
    fn matches_linear_reference() {
        let mut idx = RangeIndex::new(VirtAddr::new(0));
        let ranges: Vec<AddrRange> = (0..200)
            .map(|i| range(0x1000 + i * 0x200, 0x180))
            .collect();
        for (i, r) in ranges.iter().enumerate() {
            idx.insert(*r, ObjectId(i as u32));
        }
        for probe in (0..0x20000u64).step_by(37) {
            let a = VirtAddr::new(probe);
            let fast = idx.lookup(a, |_| true);
            let slow = idx.lookup_linear(a, |_| true);
            assert_eq!(fast, slow, "divergence at {a}");
        }
    }
}
