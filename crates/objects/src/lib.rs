//! # nvsim-objects
//!
//! The memory-object attribution engine of NV-SCAVENGER (paper §III).
//!
//! A *memory object* is the granularity at which the paper studies access
//! patterns: "an application data structure, such as a data array, that
//! saves the computation state, or ... a stack frame associated with a
//! subroutine invocation". This crate implements:
//!
//! * [`object`] — object identities, kinds and records;
//! * [`shadow`] — the shadow call stack used to attribute stack references
//!   to routine frames (§III-A, slow method);
//! * [`heap`] — heap-object signatures with dead-object flags, address
//!   reuse and same-context deduplication (§III-B);
//! * [`global`] — global symbols with FORTRAN common-block overlap merging
//!   (§III-C);
//! * [`bucket`] — the bucketed address-space index of §III-D;
//! * [`lru`] — the small LRU software cache of §III-D ("a shortcut for
//!   updating access records for most often used memory objects");
//! * [`registry`] — the [`ObjectRegistry`] event sink tying it together
//!   and collecting per-iteration statistics;
//! * [`report`] — query structures for the paper's figures;
//! * [`churn`] — the heap allocation-lifecycle summary behind Figure 7's
//!   short-term/long-term split.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bucket;
pub mod churn;
pub mod global;
pub mod heap;
pub mod lru;
pub mod object;
pub mod registry;
pub mod report;
pub mod shadow;

pub use bucket::RangeIndex;
pub use churn::{ChurnRow, HeapChurnReport};
pub use heap::HeapSignature;
pub use lru::LruObjectCache;
pub use object::{MemoryObject, ObjectId, ObjectKind};
pub use registry::{ObjectRegistry, RegistryConfig};
pub use report::{ObjectSummary, RegionReport, UsageDistribution};
pub use shadow::ShadowStack;
