//! The small LRU software cache of §III-D.
//!
//! "We also employ a small software cache using LRU algorithm to save
//! information for most often used memory objects. This scheme provides a
//! shortcut for updating access records for memory objects."
//!
//! The cache holds a handful of `(range, id)` pairs; a lookup scans them
//! linearly (a few comparisons — cheaper than the bucket walk) and promotes
//! hits with a monotone use counter. The cache is *transparent*: it may
//! only serve entries that the authoritative index would also return, so
//! stale entries are invalidated on object death.

use crate::object::ObjectId;
use nvsim_types::{AddrRange, VirtAddr};

/// Default number of cached objects. Hot loops touch a small working set
/// of arrays, so a handful of slots captures most references.
pub const DEFAULT_WAYS: usize = 8;

#[derive(Debug, Clone, Copy)]
struct Slot {
    range: AddrRange,
    id: ObjectId,
    last_use: u64,
}

/// A tiny fully-associative LRU cache mapping address ranges to object ids.
#[derive(Debug, Clone)]
pub struct LruObjectCache {
    slots: Vec<Slot>,
    ways: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl LruObjectCache {
    /// Creates a cache with `ways` slots.
    pub fn new(ways: usize) -> Self {
        assert!(ways > 0, "LRU cache needs at least one slot");
        LruObjectCache {
            slots: Vec::with_capacity(ways),
            ways,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up the object covering `addr`, promoting it on hit.
    #[inline]
    pub fn lookup(&mut self, addr: VirtAddr) -> Option<ObjectId> {
        self.tick += 1;
        for slot in &mut self.slots {
            if slot.range.contains(addr) {
                slot.last_use = self.tick;
                self.hits += 1;
                return Some(slot.id);
            }
        }
        self.misses += 1;
        None
    }

    /// Inserts a mapping, evicting the least recently used slot if full.
    pub fn insert(&mut self, range: AddrRange, id: ObjectId) {
        self.tick += 1;
        if let Some(slot) = self.slots.iter_mut().find(|s| s.id == id) {
            slot.range = range;
            slot.last_use = self.tick;
            return;
        }
        if self.slots.len() < self.ways {
            self.slots.push(Slot {
                range,
                id,
                last_use: self.tick,
            });
        } else {
            let victim = self
                .slots
                .iter_mut()
                .min_by_key(|s| s.last_use)
                .expect("cache is non-empty");
            *victim = Slot {
                range,
                id,
                last_use: self.tick,
            };
        }
    }

    /// Drops any entry for `id` (object died or was resized).
    pub fn invalidate(&mut self, id: ObjectId) {
        self.slots.retain(|s| s.id != id);
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// `(hits, misses)` — ablation counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl Default for LruObjectCache {
    fn default() -> Self {
        Self::new(DEFAULT_WAYS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(base: u64, size: u64) -> AddrRange {
        AddrRange::from_base_size(VirtAddr::new(base), size)
    }

    #[test]
    fn hit_after_insert() {
        let mut c = LruObjectCache::new(2);
        c.insert(range(0x1000, 0x100), ObjectId(1));
        assert_eq!(c.lookup(VirtAddr::new(0x1050)), Some(ObjectId(1)));
        assert_eq!(c.lookup(VirtAddr::new(0x2000)), None);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruObjectCache::new(2);
        c.insert(range(0x1000, 0x100), ObjectId(1));
        c.insert(range(0x2000, 0x100), ObjectId(2));
        // Touch 1 so 2 becomes LRU.
        assert!(c.lookup(VirtAddr::new(0x1000)).is_some());
        c.insert(range(0x3000, 0x100), ObjectId(3));
        assert_eq!(c.lookup(VirtAddr::new(0x2000)), None); // evicted
        assert_eq!(c.lookup(VirtAddr::new(0x1000)), Some(ObjectId(1)));
        assert_eq!(c.lookup(VirtAddr::new(0x3000)), Some(ObjectId(3)));
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = LruObjectCache::new(2);
        c.insert(range(0x1000, 0x100), ObjectId(1));
        c.insert(range(0x5000, 0x100), ObjectId(1)); // object moved
        assert_eq!(c.lookup(VirtAddr::new(0x1000)), None);
        assert_eq!(c.lookup(VirtAddr::new(0x5000)), Some(ObjectId(1)));
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut c = LruObjectCache::default();
        c.insert(range(0x1000, 0x100), ObjectId(1));
        c.invalidate(ObjectId(1));
        assert_eq!(c.lookup(VirtAddr::new(0x1000)), None);
    }

    #[test]
    fn hit_rate_tracks() {
        let mut c = LruObjectCache::default();
        assert_eq!(c.hit_rate(), 0.0);
        c.insert(range(0, 64), ObjectId(0));
        c.lookup(VirtAddr::new(0));
        c.lookup(VirtAddr::new(128));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_ways_panics() {
        let _ = LruObjectCache::new(0);
    }
}
