//! The [`ObjectRegistry`]: NV-SCAVENGER's attribution engine as an event
//! sink.
//!
//! The registry consumes the instrumentation stream and maintains, per
//! memory object, the three metrics of §II evaluated per main-loop
//! iteration. It combines every §III mechanism: the shadow stack (stack
//! attribution), heap signatures with dead-object flags (heap attribution),
//! common-block merging (global attribution), and the §III-D fast path —
//! bucketed address index plus a small LRU object cache — in front of the
//! authoritative search.

use crate::bucket::RangeIndex;
use crate::global::merge_overlapping;
use crate::heap::HeapSignature;
use crate::lru::LruObjectCache;
use crate::object::{MemoryObject, ObjectId, ObjectKind};
use crate::shadow::ShadowStack;
use nvsim_obs::Metrics;
use nvsim_trace::{Event, EventSink, GlobalSymbol, Phase, RoutineId};
use nvsim_types::{
    AccessCounts, AddrRange, AddressSpaceLayout, IterationStats, MemRef, Region,
};
use std::collections::HashMap;

/// Which execution phase the program is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecPhase {
    /// Before the first iteration (initialization, input parsing).
    Pre,
    /// Inside main-loop iteration `i`.
    Main(u32),
    /// Between iterations of the main loop.
    BetweenIterations,
    /// After the main loop (aggregation, output).
    Post,
}

/// Configuration of the registry, exposing the §III-D engineering choices
/// for ablation.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Slots in the LRU hot-object cache; 0 disables the cache.
    pub lru_ways: usize,
    /// Use the bucketed address index (`false` falls back to the linear
    /// object scan the paper calls a "naive design").
    pub use_bucket_index: bool,
    /// Attribute stack references (the "stack tool").
    pub track_stack: bool,
    /// Attribute heap references (the "heap tool").
    pub track_heap: bool,
    /// Attribute global references (the "global tool").
    pub track_global: bool,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            lru_ways: crate::lru::DEFAULT_WAYS,
            use_bucket_index: true,
            track_stack: true,
            track_heap: true,
            track_global: true,
        }
    }
}

impl RegistryConfig {
    /// Configuration for one of the three parallel tools of §III-D.
    pub fn only(region: Region) -> Self {
        RegistryConfig {
            track_stack: region == Region::Stack,
            track_heap: region == Region::Heap,
            track_global: region == Region::Global,
            ..Default::default()
        }
    }
}

/// The object registry / attribution engine.
///
/// ```
/// use nvsim_objects::{ObjectRegistry, RegistryConfig};
/// use nvsim_trace::{Tracer, TracedVec, Phase};
/// use nvsim_types::Region;
///
/// let mut reg = ObjectRegistry::new(RegistryConfig::default());
/// {
///     let mut t = Tracer::new(&mut reg);
///     let v = TracedVec::<f64>::global(&mut t, "table", 64).unwrap();
///     t.phase(Phase::IterationBegin(0));
///     let _ = v.get(&mut t, 0);
///     t.phase(Phase::IterationEnd(0));
///     t.finish();
/// }
/// let obj = reg.objects_in(Region::Global).next().unwrap();
/// assert_eq!(obj.name, "table");
/// assert!(obj.is_read_only_in_main_loop());
/// ```
pub struct ObjectRegistry {
    config: RegistryConfig,
    layout: AddressSpaceLayout,
    objects: Vec<MemoryObject>,

    // Stack attribution.
    shadow: ShadowStack,
    routine_objects: HashMap<RoutineId, ObjectId>,

    // Heap attribution.
    heap_index: RangeIndex,
    heap_signatures: HashMap<HeapSignature, ObjectId>,

    // Global attribution.
    global_index: RangeIndex,

    lru: LruObjectCache,

    phase: ExecPhase,
    iterations_seen: u32,
    /// References in the currently open iteration (rate denominator).
    iteration_refs: u64,
    /// Main-loop reference totals per region (stack, heap, global).
    region_totals: [AccessCounts; 3],
    /// References that could not be attributed to any object.
    unattributed: u64,
    finished: bool,
    metrics: Metrics,
}

impl ObjectRegistry {
    /// Creates a registry with the default layout.
    pub fn new(config: RegistryConfig) -> Self {
        let layout = AddressSpaceLayout::default();
        ObjectRegistry {
            lru: LruObjectCache::new(config.lru_ways.max(1)),
            config,
            layout,
            objects: Vec::new(),
            shadow: ShadowStack::new(),
            routine_objects: HashMap::new(),
            heap_index: RangeIndex::new(layout.heap.start),
            heap_signatures: HashMap::new(),
            global_index: RangeIndex::new(layout.global.start),
            phase: ExecPhase::Pre,
            iterations_seen: 0,
            iteration_refs: 0,
            region_totals: [AccessCounts::ZERO; 3],
            unattributed: 0,
            finished: false,
            metrics: Metrics::disabled(),
        }
    }

    /// Binds the registry to an observability registry. The bucket-index
    /// probe-length histograms (`objects.heap_probe_len`,
    /// `objects.global_probe_len`) record live; the `objects.*` counters
    /// and the object-size histogram are exported when the traced
    /// program finishes (see `docs/METRICS.md`).
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.metrics = metrics.clone();
        self.heap_index
            .set_probe_histogram(metrics.histogram("objects.heap_probe_len"));
        self.global_index
            .set_probe_histogram(metrics.histogram("objects.global_probe_len"));
    }

    fn export_metrics(&self) {
        if !self.metrics.is_enabled() {
            return;
        }
        let c = |name: &str, v: u64| self.metrics.counter(name).add(v);
        c("objects.tracked", self.objects.len() as u64);
        c("objects.unattributed", self.unattributed);
        let (lru_hits, lru_misses) = self.lru.stats();
        c("objects.lru_hits", lru_hits);
        c("objects.lru_misses", lru_misses);
        let ((hl, hs, hr), (gl, gs, gr)) = self.index_stats();
        c("objects.heap_index_lookups", hl);
        c("objects.heap_index_scanned", hs);
        c("objects.heap_index_rebuilds", hr);
        c("objects.global_index_lookups", gl);
        c("objects.global_index_scanned", gs);
        c("objects.global_index_rebuilds", gr);
        self.metrics
            .gauge("objects.iterations")
            .set(i64::from(self.iterations_seen));
        let sizes = self.metrics.histogram("objects.size_bytes");
        for o in &self.objects {
            sizes.record(o.range.len());
        }
    }

    fn new_object(
        &mut self,
        name: String,
        region: Region,
        kind: ObjectKind,
        range: AddrRange,
    ) -> ObjectId {
        let id = ObjectId(self.objects.len() as u32);
        let mut obj = MemoryObject::new(id, name, region, kind, range);
        // Backfill empty per-iteration slots for iterations that completed
        // before the object existed, keeping indices aligned.
        obj.metrics.per_iteration =
            vec![IterationStats::default(); self.iterations_seen as usize];
        self.objects.push(obj);
        id
    }

    #[inline]
    fn in_main_loop(&self) -> bool {
        matches!(self.phase, ExecPhase::Main(_))
    }

    #[inline]
    fn record(&mut self, id: ObjectId, is_write: bool) {
        let obj = &mut self.objects[id.index()];
        if matches!(self.phase, ExecPhase::Main(_)) {
            obj.pending.record(is_write);
        } else {
            obj.pre_post.record(is_write);
        }
    }

    fn attribute_stack(&mut self, r: &MemRef) -> Option<ObjectId> {
        let frame = self.shadow.attribute(r.addr)?;
        let id = *self.routine_objects.get(&frame.routine)?;
        Some(id)
    }

    fn attribute_indexed(&mut self, region: Region, r: &MemRef) -> Option<ObjectId> {
        // LRU shortcut first (§III-D), validated against liveness.
        if self.config.lru_ways > 0 {
            if let Some(id) = self.lru.lookup(r.addr) {
                if self.objects[id.index()].live {
                    return Some(id);
                }
            }
        }
        let objects = &self.objects;
        let index = match region {
            Region::Heap => &mut self.heap_index,
            Region::Global => &mut self.global_index,
            Region::Stack => unreachable!("stack goes through the shadow stack"),
        };
        let found = if self.config.use_bucket_index {
            index.lookup(r.addr, |id| objects[id.index()].live)
        } else {
            index.lookup_linear(r.addr, |id| objects[id.index()].live)
        }?;
        if self.config.lru_ways > 0 {
            self.lru.insert(self.objects[found.index()].range, found);
        }
        Some(found)
    }

    fn handle_ref(&mut self, r: &MemRef) {
        let Some(region) = self.layout.region_of(r.addr) else {
            self.unattributed += 1;
            return;
        };
        let tracked = match region {
            Region::Stack => self.config.track_stack,
            Region::Heap => self.config.track_heap,
            Region::Global => self.config.track_global,
        };
        if self.in_main_loop() {
            self.iteration_refs += 1;
            self.region_totals[region_slot(region)].record(r.kind.is_write());
        }
        if !tracked {
            return;
        }
        let id = match region {
            Region::Stack => self.attribute_stack(r),
            _ => self.attribute_indexed(region, r),
        };
        match id {
            Some(id) => self.record(id, r.kind.is_write()),
            None => self.unattributed += 1,
        }
    }

    fn close_iteration(&mut self) {
        let denom = self.iteration_refs;
        for obj in &mut self.objects {
            let stats = IterationStats::from_counts(obj.pending, denom);
            if obj.pending.total() > 0 {
                obj.metrics.iterations_touched += 1;
            }
            obj.metrics.total += obj.pending;
            obj.metrics.per_iteration.push(stats);
            obj.pending = AccessCounts::ZERO;
        }
        self.iterations_seen += 1;
        self.iteration_refs = 0;
    }

    fn handle_alloc(&mut self, base: nvsim_types::VirtAddr, size: u64, site: &nvsim_trace::AllocSite) {
        if !self.config.track_heap {
            return;
        }
        let sig = HeapSignature::new(base, size, site, self.shadow.signature());
        if let Some(&id) = self.heap_signatures.get(&sig) {
            // Same program context (§III-B): same object, revived.
            let in_main = self.in_main_loop();
            let obj = &mut self.objects[id.index()];
            obj.live = true;
            obj.allocated_in_main = in_main;
            return;
        }
        let digest = sig.digest();
        let name = sig.display_name();
        let range = AddrRange::from_base_size(base, size);
        let id = self.new_object(name, Region::Heap, ObjectKind::Heap { signature_hash: digest }, range);
        self.objects[id.index()].allocated_in_main = self.in_main_loop();
        self.heap_index.insert(range, id);
        self.heap_signatures.insert(sig, id);
    }

    fn handle_free(&mut self, base: nvsim_types::VirtAddr) {
        if !self.config.track_heap {
            return;
        }
        // Find the live heap object starting at `base`.
        let objects = &self.objects;
        let found = self.heap_index.lookup(base, |id| {
            let o = &objects[id.index()];
            o.live && o.range.start == base
        });
        if let Some(id) = found {
            let in_main = self.in_main_loop();
            let obj = &mut self.objects[id.index()];
            obj.live = false;
            if obj.allocated_in_main && in_main {
                obj.short_term_heap = true;
            }
            self.lru.invalidate(id);
        }
    }

    fn handle_enter(&mut self, routine: RoutineId, frame_base: nvsim_types::VirtAddr, sp: nvsim_types::VirtAddr) {
        self.shadow.push(routine, frame_base, sp);
        if !self.config.track_stack {
            return;
        }
        let frame_len = frame_base.raw() - sp.raw();
        match self.routine_objects.get(&routine) {
            Some(&id) => {
                let obj = &mut self.objects[id.index()];
                // Track the maximal frame extent as the object size.
                obj.metrics.size_bytes = obj.metrics.size_bytes.max(frame_len);
                obj.range = AddrRange::new(sp, frame_base);
            }
            None => {
                let id = self.new_object(
                    format!("rtn#{}", routine.0),
                    Region::Stack,
                    ObjectKind::StackRoutine { routine },
                    AddrRange::new(sp, frame_base),
                );
                self.routine_objects.insert(routine, id);
            }
        }
    }
}

#[inline]
fn region_slot(region: Region) -> usize {
    match region {
        Region::Stack => 0,
        Region::Heap => 1,
        Region::Global => 2,
    }
}

impl EventSink for ObjectRegistry {
    fn on_globals(&mut self, symbols: &[GlobalSymbol]) {
        if !self.config.track_global {
            return;
        }
        for m in merge_overlapping(symbols) {
            let id = self.new_object(m.name, Region::Global, ObjectKind::Global, m.range);
            self.global_index.insert(m.range, id);
        }
    }

    fn on_batch(&mut self, refs: &[MemRef]) {
        for r in refs {
            self.handle_ref(r);
        }
    }

    fn on_control(&mut self, event: &Event) {
        match event {
            Event::RoutineEnter {
                routine,
                frame_base,
                sp,
            } => self.handle_enter(*routine, *frame_base, *sp),
            Event::RoutineExit { .. } => {
                self.shadow.pop();
            }
            Event::HeapAlloc { base, size, site } => self.handle_alloc(*base, *size, site),
            Event::HeapFree { base } => self.handle_free(*base),
            Event::Phase(p) => match p {
                Phase::PreComputeBegin => self.phase = ExecPhase::Pre,
                Phase::IterationBegin(i) => {
                    debug_assert_eq!(*i, self.iterations_seen, "iterations must be sequential");
                    self.phase = ExecPhase::Main(*i);
                    self.iteration_refs = 0;
                }
                Phase::IterationEnd(_) => {
                    self.close_iteration();
                    self.phase = ExecPhase::BetweenIterations;
                }
                Phase::PostProcessBegin => self.phase = ExecPhase::Post,
                Phase::ProgramEnd => {}
            },
            Event::Ref(_) => unreachable!("refs arrive via on_batch"),
        }
    }

    fn on_finish(&mut self) {
        self.finished = true;
        self.export_metrics();
    }
}

impl ObjectRegistry {
    /// All tracked objects.
    pub fn objects(&self) -> &[MemoryObject] {
        &self.objects
    }

    /// Objects in one region.
    pub fn objects_in(&self, region: Region) -> impl Iterator<Item = &MemoryObject> {
        self.objects.iter().filter(move |o| o.region == region)
    }

    /// Object for a routine's aggregated stack frames, if tracked.
    pub fn stack_object(&self, routine: RoutineId) -> Option<&MemoryObject> {
        self.routine_objects
            .get(&routine)
            .map(|id| &self.objects[id.index()])
    }

    /// Completed main-loop iterations.
    pub fn iterations_seen(&self) -> u32 {
        self.iterations_seen
    }

    /// Main-loop reference totals for a region.
    pub fn region_total(&self, region: Region) -> AccessCounts {
        self.region_totals[region_slot(region)]
    }

    /// Total main-loop references across regions.
    pub fn total_refs(&self) -> u64 {
        self.region_totals.iter().map(|c| c.total()).sum()
    }

    /// References that hit no tracked object (or unmapped addresses).
    pub fn unattributed(&self) -> u64 {
        self.unattributed
    }

    /// `true` once the traced program ended.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Renames per-routine stack objects using the tracer's routine table
    /// (the PIN-style start-address → name resolution of §III-A). Call
    /// after the run, before reporting.
    pub fn resolve_stack_names(&mut self, table: &nvsim_trace::RoutineTable) {
        for obj in &mut self.objects {
            if let ObjectKind::StackRoutine { routine } = obj.kind {
                if let Some(info) = table.info(routine) {
                    obj.name = format!("{}::{}", info.image, info.name);
                }
            }
        }
    }

    /// LRU cache statistics `(hits, misses)` — §III-D ablation.
    pub fn lru_stats(&self) -> (u64, u64) {
        self.lru.stats()
    }

    /// Bucket-index statistics `(lookups, scanned, rebuilds)` per region
    /// index `(heap, global)`.
    pub fn index_stats(&self) -> ((u64, u64, u64), (u64, u64, u64)) {
        (self.heap_index.stats(), self.global_index.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim_trace::{AllocSite, TracedVec, Tracer};

    /// Drives a small traced program through a registry and returns it.
    fn run_program(config: RegistryConfig) -> ObjectRegistry {
        let mut reg = ObjectRegistry::new(config);
        {
            let mut t = Tracer::new(&mut reg);
            let rid = t.register_routine("app", "kernel");
            let mut g = TracedVec::<f64>::global(&mut t, "grid", 64).unwrap();
            let mut h =
                TracedVec::<f64>::heap(&mut t, AllocSite::new("app.rs", 10), 32).unwrap();

            t.phase(Phase::PreComputeBegin);
            g.fill(&mut t, 1.0); // 64 pre-phase writes

            for iter in 0..3 {
                t.phase(Phase::IterationBegin(iter));
                let mut frame = t.call(rid, 256).unwrap();
                let mut local = TracedVec::<f64>::on_stack(&mut frame, 8);
                for i in 0..8 {
                    let v = g.get(&mut t, i); // global read
                    local.set(&mut t, i, v); // stack write
                    let lv = local.get(&mut t, i); // stack read
                    h.set(&mut t, i, lv); // heap write
                }
                t.ret(rid).unwrap();
                t.phase(Phase::IterationEnd(iter));
            }

            t.phase(Phase::PostProcessBegin);
            let _ = h.get(&mut t, 0);
            h.free(&mut t).unwrap();
            t.finish();
        }
        reg
    }

    #[test]
    fn end_to_end_attribution() {
        let reg = run_program(RegistryConfig::default());
        assert!(reg.finished());
        assert_eq!(reg.iterations_seen(), 3);

        // Global object: 8 reads per iteration, no main-loop writes.
        let g = reg.objects_in(Region::Global).next().unwrap();
        assert_eq!(g.metrics.total, AccessCounts::new(24, 0));
        assert!(g.is_read_only_in_main_loop());
        assert_eq!(g.pre_post, AccessCounts::new(0, 64));
        assert_eq!(g.metrics.iterations_touched, 3);

        // Heap object: 8 writes per iteration + 1 post read; freed post.
        let h = reg.objects_in(Region::Heap).next().unwrap();
        assert_eq!(h.metrics.total, AccessCounts::new(0, 24));
        assert_eq!(h.pre_post, AccessCounts::new(1, 0));
        assert!(!h.live);
        assert!(!h.short_term_heap); // allocated pre, freed post

        // Stack object: 8 reads + 8 writes per iteration.
        let s = reg.objects_in(Region::Stack).next().unwrap();
        assert_eq!(s.metrics.total, AccessCounts::new(24, 24));
        assert_eq!(s.metrics.size_bytes, 256);

        // Region totals for the main loop: 24 refs/iter * 3 iters... each
        // inner step: 1 global R, 1 stack W, 1 stack R, 1 heap W = 4 refs
        // * 8 steps * 3 iters = 96.
        assert_eq!(reg.total_refs(), 96);
        assert_eq!(reg.region_total(Region::Stack).total(), 48);
        assert_eq!(reg.region_total(Region::Heap).total(), 24);
        assert_eq!(reg.region_total(Region::Global).total(), 24);
        assert_eq!(reg.unattributed(), 0);
    }

    #[test]
    fn per_iteration_series_are_aligned() {
        let reg = run_program(RegistryConfig::default());
        for obj in reg.objects() {
            assert_eq!(obj.metrics.per_iteration.len(), 3, "object {}", obj.name);
        }
        let g = reg.objects_in(Region::Global).next().unwrap();
        for s in &g.metrics.per_iteration {
            assert_eq!(s.counts, AccessCounts::new(8, 0));
            assert!((s.reference_rate - 8.0 / 32.0).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_scan_matches_bucket_index() {
        let with_index = run_program(RegistryConfig::default());
        let without = run_program(RegistryConfig {
            use_bucket_index: false,
            lru_ways: 0,
            ..Default::default()
        });
        for (a, b) in with_index.objects().iter().zip(without.objects()) {
            assert_eq!(a.metrics.total, b.metrics.total, "object {}", a.name);
            assert_eq!(a.pre_post, b.pre_post);
        }
    }

    #[test]
    fn region_filtered_tools_only_track_their_region() {
        let stack_only = run_program(RegistryConfig::only(Region::Stack));
        assert_eq!(stack_only.objects_in(Region::Heap).count(), 0);
        assert_eq!(stack_only.objects_in(Region::Global).count(), 0);
        let s = stack_only.objects_in(Region::Stack).next().unwrap();
        assert_eq!(s.metrics.total, AccessCounts::new(24, 24));

        let heap_only = run_program(RegistryConfig::only(Region::Heap));
        assert_eq!(heap_only.objects_in(Region::Stack).count(), 0);
        let h = heap_only.objects_in(Region::Heap).next().unwrap();
        assert_eq!(h.metrics.total, AccessCounts::new(0, 24));
    }

    #[test]
    fn heap_reuse_same_context_is_same_object() {
        let mut reg = ObjectRegistry::new(RegistryConfig::default());
        {
            let mut t = Tracer::new(&mut reg);
            let site = AllocSite::new("loop.rs", 5);
            for iter in 0..3 {
                t.phase(Phase::IterationBegin(iter));
                // Same size + site + (empty) callstack and — thanks to
                // first-fit reuse — the same base each round.
                let mut v = TracedVec::<f64>::heap(&mut t, site, 16).unwrap();
                v.set(&mut t, 0, 1.0);
                v.free(&mut t).unwrap();
                t.phase(Phase::IterationEnd(iter));
            }
            t.finish();
        }
        let heap_objs: Vec<_> = reg.objects_in(Region::Heap).collect();
        assert_eq!(heap_objs.len(), 1, "same-context allocations must merge");
        let o = heap_objs[0];
        assert_eq!(o.metrics.total, AccessCounts::new(0, 3));
        assert!(o.short_term_heap);
    }

    #[test]
    fn heap_reuse_different_context_is_distinct() {
        let mut reg = ObjectRegistry::new(RegistryConfig::default());
        {
            let mut t = Tracer::new(&mut reg);
            t.phase(Phase::IterationBegin(0));
            let a = TracedVec::<f64>::heap(&mut t, AllocSite::new("a.rs", 1), 16).unwrap();
            let base_a = a.base();
            a.free(&mut t).unwrap();
            // Different site; first-fit hands back the same address.
            let b = TracedVec::<f64>::heap(&mut t, AllocSite::new("b.rs", 2), 16).unwrap();
            assert_eq!(b.base(), base_a);
            let _ = b.get(&mut t, 0);
            t.phase(Phase::IterationEnd(0));
            t.finish();
        }
        let heap_objs: Vec<_> = reg.objects_in(Region::Heap).collect();
        assert_eq!(heap_objs.len(), 2);
        // The read lands on the live (second) object, not the dead one.
        let dead = heap_objs.iter().find(|o| !o.live).unwrap();
        let live = heap_objs.iter().find(|o| o.live).unwrap();
        assert_eq!(dead.metrics.total.total(), 0);
        assert_eq!(live.metrics.total, AccessCounts::new(1, 0));
    }

    #[test]
    fn objects_created_mid_run_have_aligned_series() {
        let mut reg = ObjectRegistry::new(RegistryConfig::default());
        {
            let mut t = Tracer::new(&mut reg);
            let site = AllocSite::new("late.rs", 9);
            t.phase(Phase::IterationBegin(0));
            t.phase(Phase::IterationEnd(0));
            t.phase(Phase::IterationBegin(1));
            let mut v = TracedVec::<f64>::heap(&mut t, site, 8).unwrap();
            v.set(&mut t, 0, 2.0);
            t.phase(Phase::IterationEnd(1));
            t.finish();
        }
        let o = reg.objects_in(Region::Heap).next().unwrap();
        assert_eq!(o.metrics.per_iteration.len(), 2);
        assert_eq!(o.metrics.per_iteration[0].counts.total(), 0);
        assert_eq!(o.metrics.per_iteration[1].counts.total(), 1);
        assert_eq!(o.metrics.iterations_touched, 1);
    }

    #[test]
    fn metrics_export_mirrors_introspection() {
        let m = Metrics::enabled();
        let mut reg = ObjectRegistry::new(RegistryConfig::default());
        reg.set_metrics(&m);
        {
            let mut t = Tracer::new(&mut reg);
            let mut g = TracedVec::<f64>::global(&mut t, "grid", 64).unwrap();
            let h = TracedVec::<f64>::heap(&mut t, AllocSite::new("app.rs", 1), 32).unwrap();
            t.phase(Phase::IterationBegin(0));
            g.fill(&mut t, 1.0);
            let _ = h.get(&mut t, 0);
            t.phase(Phase::IterationEnd(0));
            t.finish();
        }
        let snap = m.snapshot();
        assert_eq!(snap.counter("objects.tracked"), Some(reg.objects().len() as u64));
        assert_eq!(snap.counter("objects.unattributed"), Some(reg.unattributed()));
        let (lru_hits, lru_misses) = reg.lru_stats();
        assert_eq!(snap.counter("objects.lru_hits"), Some(lru_hits));
        assert_eq!(snap.counter("objects.lru_misses"), Some(lru_misses));
        let ((hl, hs, _), _) = reg.index_stats();
        assert_eq!(snap.counter("objects.heap_index_lookups"), Some(hl));
        assert_eq!(snap.counter("objects.heap_index_scanned"), Some(hs));
        // Probe lengths recorded live match the scanned totals.
        let probes = snap.histogram("objects.heap_probe_len").expect("probes");
        assert_eq!(probes.sum, hs);
        // One size sample per tracked object.
        let sizes = snap.histogram("objects.size_bytes").expect("sizes");
        assert_eq!(sizes.count, reg.objects().len() as u64);
        assert_eq!(snap.gauge("objects.iterations"), Some(1));
    }
}
