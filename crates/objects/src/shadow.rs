//! The shadow call stack of §III-A (slow method).
//!
//! "We instrument all function calls and return points so that we can
//! maintain a shadow stack in NV-SCAVENGER. ... We also record the base
//! frame address at each routine call. For each memory reference, we
//! traverse through our call stack to attribute the effective memory
//! address to the corresponding routine's frame. It is possible that the
//! currently executing routine may access a frame underneath the current
//! routine's frame. In this case, the memory reference is attributed to the
//! underneath frame. This makes sense when considering data placement,
//! because it is the previously called routine that really allocates data
//! on the stack."

use nvsim_trace::RoutineId;
use nvsim_types::{AddrRange, VirtAddr};

/// One live frame on the shadow stack. The frame occupies
/// `[sp, frame_base)`; `frame_base` equals the caller's stack pointer, so
/// live frames tile the active stack region with no gaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowFrame {
    /// Routine that owns the frame.
    pub routine: RoutineId,
    /// Extent of the frame.
    pub range: AddrRange,
}

/// The shadow stack.
#[derive(Debug, Default, Clone)]
pub struct ShadowStack {
    frames: Vec<ShadowFrame>,
    max_depth: usize,
}

impl ShadowStack {
    /// Creates an empty shadow stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes a frame on routine entry.
    pub fn push(&mut self, routine: RoutineId, frame_base: VirtAddr, sp: VirtAddr) {
        debug_assert!(sp <= frame_base);
        if let Some(top) = self.frames.last() {
            debug_assert_eq!(
                top.range.start, frame_base,
                "new frame must start where the previous one ends"
            );
        }
        self.frames.push(ShadowFrame {
            routine,
            range: AddrRange::new(sp, frame_base),
        });
        self.max_depth = self.max_depth.max(self.frames.len());
    }

    /// Pops the top frame on routine exit; returns it, or `None` if the
    /// stack was empty (unbalanced instrumentation).
    pub fn pop(&mut self) -> Option<ShadowFrame> {
        self.frames.pop()
    }

    /// Attributes an address to the live frame containing it (§III-A:
    /// traversal finds "underneath" frames when the current routine reaches
    /// into its callers' storage). Returns `None` for addresses outside
    /// every live frame.
    ///
    /// Frames are address-ordered (deeper frames at lower addresses), so a
    /// binary search over frame starts finds the candidate in O(log depth).
    #[inline]
    pub fn attribute(&self, addr: VirtAddr) -> Option<ShadowFrame> {
        if self.frames.is_empty() {
            return None;
        }
        // frames[0].range is the outermost (highest addresses); the vector
        // is sorted descending by range.start.
        let idx = self.frames.partition_point(|f| f.range.start > addr);
        // `idx` is the first frame with start <= addr — the deepest frame
        // that could contain it.
        let f = self.frames.get(idx)?;
        f.range.contains(addr).then_some(*f)
    }

    /// Current routine (top of stack).
    pub fn current(&self) -> Option<RoutineId> {
        self.frames.last().map(|f| f.routine)
    }

    /// Start addresses of the live routines, outermost first — the
    /// call-stack component of the heap-object signature (§III-B). Routine
    /// ids stand in for start addresses (they map 1:1 through the routine
    /// table).
    pub fn signature(&self) -> impl Iterator<Item = RoutineId> + '_ {
        self.frames.iter().map(|f| f.routine)
    }

    /// Live depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Deepest nesting observed.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// `true` if no frames are live.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u32) -> RoutineId {
        RoutineId(i)
    }

    #[test]
    fn attribute_finds_owning_frame() {
        let mut s = ShadowStack::new();
        // main: [900, 1000), callee: [800, 900), leaf: [700, 800)
        s.push(rid(0), VirtAddr::new(1000), VirtAddr::new(900));
        s.push(rid(1), VirtAddr::new(900), VirtAddr::new(800));
        s.push(rid(2), VirtAddr::new(800), VirtAddr::new(700));
        assert_eq!(s.attribute(VirtAddr::new(950)).unwrap().routine, rid(0));
        assert_eq!(s.attribute(VirtAddr::new(800)).unwrap().routine, rid(1));
        assert_eq!(s.attribute(VirtAddr::new(799)).unwrap().routine, rid(2));
        assert_eq!(s.attribute(VirtAddr::new(700)).unwrap().routine, rid(2));
        // Below the deepest sp and at/above the base: unattributed.
        assert!(s.attribute(VirtAddr::new(699)).is_none());
        assert!(s.attribute(VirtAddr::new(1000)).is_none());
    }

    #[test]
    fn underneath_access_goes_to_caller_frame() {
        let mut s = ShadowStack::new();
        s.push(rid(0), VirtAddr::new(1000), VirtAddr::new(900));
        s.push(rid(1), VirtAddr::new(900), VirtAddr::new(850));
        // Current routine is 1, but the address belongs to 0's frame: the
        // reference is attributed to the underneath (caller) frame.
        assert_eq!(s.current(), Some(rid(1)));
        assert_eq!(s.attribute(VirtAddr::new(920)).unwrap().routine, rid(0));
    }

    #[test]
    fn pop_restores_previous_attribution() {
        let mut s = ShadowStack::new();
        s.push(rid(0), VirtAddr::new(1000), VirtAddr::new(900));
        s.push(rid(1), VirtAddr::new(900), VirtAddr::new(800));
        assert_eq!(s.pop().unwrap().routine, rid(1));
        assert!(s.attribute(VirtAddr::new(850)).is_none()); // frame gone
        assert_eq!(s.attribute(VirtAddr::new(950)).unwrap().routine, rid(0));
        assert_eq!(s.depth(), 1);
        assert_eq!(s.max_depth(), 2);
    }

    #[test]
    fn signature_lists_outermost_first() {
        let mut s = ShadowStack::new();
        s.push(rid(3), VirtAddr::new(1000), VirtAddr::new(900));
        s.push(rid(7), VirtAddr::new(900), VirtAddr::new(800));
        let sig: Vec<RoutineId> = s.signature().collect();
        assert_eq!(sig, vec![rid(3), rid(7)]);
    }

    #[test]
    fn pop_empty_returns_none() {
        let mut s = ShadowStack::new();
        assert!(s.pop().is_none());
    }

    #[test]
    fn deep_stack_attribution_is_correct() {
        let mut s = ShadowStack::new();
        let top = 1_000_000u64;
        let mut base = top;
        for i in 0..100 {
            let sp = base - 64;
            s.push(rid(i), VirtAddr::new(base), VirtAddr::new(sp));
            base = sp;
        }
        for i in 0..100u64 {
            let addr = VirtAddr::new(top - i * 64 - 1);
            assert_eq!(s.attribute(addr).unwrap().routine, rid(i as u32));
        }
    }
}
