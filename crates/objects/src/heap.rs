//! Heap-object signatures (§III-B).
//!
//! "To identify a heap memory object, we use multiple fields as its
//! signature, including the base address, the size, the line number and the
//! file name for the function call, and the starting addresses of the
//! routines currently active in the shadow stack. ... it is still possible
//! that memory objects allocated during different execution phases have the
//! same signature ... We regard these different memory objects as the same
//! one in NV-SCAVENGER, because they appear within the same program context
//! and tend to have the same access pattern."

use nvsim_trace::{AllocSite, RoutineId};
use nvsim_types::VirtAddr;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The full signature identifying a heap allocation context.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HeapSignature {
    /// Base address returned by the allocator.
    pub base: VirtAddr,
    /// Allocation size in bytes.
    pub size: u64,
    /// Source file of the allocating call.
    pub file: &'static str,
    /// Line number of the allocating call.
    pub line: u32,
    /// Routines active on the shadow stack at allocation time, outermost
    /// first (standing in for their start addresses).
    pub callstack: Vec<RoutineId>,
}

impl HeapSignature {
    /// Builds a signature from an allocation event and the live call stack.
    pub fn new(
        base: VirtAddr,
        size: u64,
        site: &AllocSite,
        callstack: impl Iterator<Item = RoutineId>,
    ) -> Self {
        HeapSignature {
            base,
            size,
            file: site.file,
            line: site.line,
            callstack: callstack.collect(),
        }
    }

    /// A stable 64-bit digest of the signature, stored on the object record.
    pub fn digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }

    /// Display name for reports: `file:line` plus the innermost routine.
    pub fn display_name(&self) -> String {
        match self.callstack.last() {
            Some(r) => format!("{}:{} (in rtn#{})", self.file, self.line, r.0),
            None => format!("{}:{}", self.file, self.line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(base: u64, size: u64, line: u32, stack: &[u32]) -> HeapSignature {
        HeapSignature::new(
            VirtAddr::new(base),
            size,
            &AllocSite::new("solver.rs", line),
            stack.iter().map(|&i| RoutineId(i)),
        )
    }

    #[test]
    fn same_context_same_signature() {
        // An allocation made in the middle of each computation iteration
        // with the same call stack, base and size (paper's example) hashes
        // identically — the registry will treat it as one object.
        let a = sig(0x1000, 4096, 42, &[0, 3, 7]);
        let b = sig(0x1000, 4096, 42, &[0, 3, 7]);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn each_field_distinguishes() {
        let base = sig(0x1000, 4096, 42, &[0, 3]);
        assert_ne!(base, sig(0x2000, 4096, 42, &[0, 3])); // base
        assert_ne!(base, sig(0x1000, 8192, 42, &[0, 3])); // size
        assert_ne!(base, sig(0x1000, 4096, 43, &[0, 3])); // line
        assert_ne!(base, sig(0x1000, 4096, 42, &[0, 4])); // callstack
        assert_ne!(base, sig(0x1000, 4096, 42, &[0])); // callstack depth
    }

    #[test]
    fn display_name_mentions_site() {
        let s = sig(0x1000, 64, 7, &[2]);
        assert!(s.display_name().contains("solver.rs:7"));
        let empty = sig(0x1000, 64, 7, &[]);
        assert_eq!(empty.display_name(), "solver.rs:7");
    }
}
