//! Global-symbol processing with common-block overlap merging (§III-C).
//!
//! "A common block allows one program unit to have a different view of a
//! shared memory block from other program units. ... different memory
//! identification may point to memory regions with overlapped data blocks.
//! To solve this problem, we regard the memory objects with overlapped data
//! blocks as one single memory object whose address range is the union of
//! individual memory regions. We choose the combined symbol name of
//! individual memory objects to identify the new memory object."

use nvsim_trace::GlobalSymbol;
use nvsim_types::AddrRange;

/// A merged global object: the union of one or more overlapping symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedGlobal {
    /// Combined symbol name (`a+b+c` for merged views).
    pub name: String,
    /// Union address range.
    pub range: AddrRange,
    /// How many raw symbols were merged into this object.
    pub merged_count: usize,
}

/// Merges overlapping global symbols into disjoint objects.
///
/// The result is sorted by base address and its ranges are pairwise
/// disjoint — the invariant the property tests pin down.
pub fn merge_overlapping(symbols: &[GlobalSymbol]) -> Vec<MergedGlobal> {
    let mut sorted: Vec<&GlobalSymbol> = symbols.iter().filter(|s| s.size > 0).collect();
    sorted.sort_by_key(|s| (s.base, s.size));

    let mut merged: Vec<MergedGlobal> = Vec::new();
    for sym in sorted {
        let range = AddrRange::from_base_size(sym.base, sym.size);
        match merged.last_mut() {
            // Overlap (not mere adjacency) merges into the union.
            Some(last) if last.range.overlaps(&range) => {
                last.range = last.range.union(&range);
                last.name.push('+');
                last.name.push_str(&sym.name);
                last.merged_count += 1;
            }
            _ => merged.push(MergedGlobal {
                name: sym.name.clone(),
                range,
                merged_count: 1,
            }),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim_types::VirtAddr;

    fn sym(name: &str, base: u64, size: u64) -> GlobalSymbol {
        GlobalSymbol {
            name: name.into(),
            base: VirtAddr::new(base),
            size,
        }
    }

    #[test]
    fn disjoint_symbols_stay_separate() {
        let merged = merge_overlapping(&[sym("a", 0x1000, 0x100), sym("b", 0x2000, 0x100)]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].name, "a");
        assert_eq!(merged[1].name, "b");
    }

    #[test]
    fn overlapping_views_merge_to_union() {
        // A FORTRAN common block /fields/ re-partitioned by two units:
        //   unit 1: real u(1024)         -> [0x1000, 0x3000)
        //   unit 2: real uv(512), w(512) -> [0x1000, 0x2000), [0x2000, 0x3000)
        let merged = merge_overlapping(&[
            sym("u", 0x1000, 0x2000),
            sym("uv", 0x1000, 0x1000),
            sym("w", 0x2000, 0x1000),
        ]);
        assert_eq!(merged.len(), 1);
        let m = &merged[0];
        assert_eq!(m.range, AddrRange::from_base_size(VirtAddr::new(0x1000), 0x2000));
        assert_eq!(m.merged_count, 3);
        assert!(m.name.contains("u") && m.name.contains("w"));
    }

    #[test]
    fn adjacency_is_not_overlap() {
        let merged = merge_overlapping(&[sym("a", 0x1000, 0x1000), sym("b", 0x2000, 0x1000)]);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn chained_overlaps_collapse() {
        let merged = merge_overlapping(&[
            sym("a", 0x1000, 0x1800),
            sym("b", 0x2000, 0x1800),
            sym("c", 0x3000, 0x1800),
        ]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].range.len(), 0x3800);
    }

    #[test]
    fn zero_sized_symbols_dropped() {
        let merged = merge_overlapping(&[sym("empty", 0x1000, 0), sym("a", 0x1000, 64)]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].name, "a");
    }

    #[test]
    fn result_is_sorted_and_disjoint() {
        let merged = merge_overlapping(&[
            sym("d", 0x5000, 0x100),
            sym("a", 0x1000, 0x100),
            sym("c", 0x4000, 0x200),
            sym("c2", 0x4100, 0x200),
        ]);
        for pair in merged.windows(2) {
            assert!(pair[0].range.end <= pair[1].range.start);
        }
    }
}
