//! Heap-churn analysis: the allocation-lifecycle view behind Figure 7's
//! short-term/long-term distinction.
//!
//! §VII-C: "The short-term heap memory objects are only temporarily
//! allocated and then deallocated in the middle of the computation. Due to
//! the volatility of these memory objects, their cumulative memory size
//! does not represent a real opportunity for NVRAM." This module
//! summarizes the heap's allocation behaviour per site: how often each
//! context allocates, how much, and whether its objects are loop-local.

use crate::registry::ObjectRegistry;
use nvsim_types::Region;
use serde::{Deserialize, Serialize};

/// Per-allocation-context churn summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnRow {
    /// Allocation context (file:line display name).
    pub name: String,
    /// Object size in bytes.
    pub size_bytes: u64,
    /// `true` if the object was allocated and freed inside the main loop.
    pub short_term: bool,
    /// `true` if the object was still live at program end.
    pub live_at_end: bool,
    /// Main-loop references to the object.
    pub main_loop_refs: u64,
}

/// Aggregate heap-churn report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeapChurnReport {
    /// One row per tracked heap object (deduplicated contexts, §III-B).
    pub rows: Vec<ChurnRow>,
    /// Bytes in long-term objects (the Figure 7 population).
    pub long_term_bytes: u64,
    /// Bytes in short-term objects (excluded from Figure 7).
    pub short_term_bytes: u64,
}

impl HeapChurnReport {
    /// Builds the report from a finished registry.
    pub fn from_registry(reg: &ObjectRegistry) -> Self {
        let mut rows = Vec::new();
        let mut long_term_bytes = 0;
        let mut short_term_bytes = 0;
        for o in reg.objects_in(Region::Heap) {
            if o.short_term_heap {
                short_term_bytes += o.metrics.size_bytes;
            } else {
                long_term_bytes += o.metrics.size_bytes;
            }
            rows.push(ChurnRow {
                name: o.name.clone(),
                size_bytes: o.metrics.size_bytes,
                short_term: o.short_term_heap,
                live_at_end: o.live,
                main_loop_refs: o.metrics.total.total(),
            });
        }
        rows.sort_by_key(|r| std::cmp::Reverse(r.main_loop_refs));
        HeapChurnReport {
            rows,
            long_term_bytes,
            short_term_bytes,
        }
    }

    /// Fraction of heap bytes in short-term (loop-local) objects.
    pub fn short_term_fraction(&self) -> f64 {
        let total = self.long_term_bytes + self.short_term_bytes;
        if total == 0 {
            0.0
        } else {
            self.short_term_bytes as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use nvsim_trace::{AllocSite, Phase, TracedVec, Tracer};

    #[test]
    fn classifies_short_and_long_term() {
        let mut reg = ObjectRegistry::new(RegistryConfig::default());
        {
            let mut t = Tracer::new(&mut reg);
            // Long-term: allocated pre-loop, lives to the end.
            let mut long =
                TracedVec::<f64>::heap(&mut t, AllocSite::new("solver.rs", 1), 256).unwrap();
            t.phase(Phase::IterationBegin(0));
            long.set(&mut t, 0, 1.0);
            // Short-term: allocated and freed inside the loop.
            let mut tmp =
                TracedVec::<f64>::heap(&mut t, AllocSite::new("scratch.rs", 2), 64).unwrap();
            tmp.set(&mut t, 0, 2.0);
            tmp.free(&mut t).unwrap();
            t.phase(Phase::IterationEnd(0));
            t.finish();
        }
        let report = HeapChurnReport::from_registry(&reg);
        assert_eq!(report.rows.len(), 2);
        let long = report.rows.iter().find(|r| r.name.contains("solver")).unwrap();
        let short = report.rows.iter().find(|r| r.name.contains("scratch")).unwrap();
        assert!(!long.short_term);
        assert!(long.live_at_end);
        assert!(short.short_term);
        assert!(!short.live_at_end);
        assert_eq!(report.long_term_bytes, 256 * 8);
        assert_eq!(report.short_term_bytes, 64 * 8);
        let f = report.short_term_fraction();
        assert!((f - (512.0 / 2560.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_heap_reports_zero() {
        let reg = ObjectRegistry::new(RegistryConfig::default());
        let report = HeapChurnReport::from_registry(&reg);
        assert!(report.rows.is_empty());
        assert_eq!(report.short_term_fraction(), 0.0);
    }
}
