//! # nvsim-apps
//!
//! Proxy versions of the four mission-critical applications the paper
//! characterizes (§VI): **Nek5000** (spectral-element incompressible-flow
//! solver), **CAM** (community atmosphere model), **GTC** (gyrokinetic
//! particle-in-cell turbulence code) and **S3D** (compressible
//! direct-numerical-simulation combustion solver).
//!
//! The production codes are large Fortran applications we cannot run under
//! binary instrumentation from Rust, so each proxy implements the same
//! computational motifs over the same *data-structure inventory* the paper
//! names — mass matrices, Legendre-transform constants, field-name hash
//! tables, radial interpolation arrays, boundary-condition tables, chemistry
//! look-up tables, particle and grid arrays — with footprints scaled down
//! by a fixed factor at the same per-structure proportions. Each proxy is
//! written so the *shape* of its reference stream matches what the paper
//! measured (Table V stack ratios and reference percentages, the Figures
//! 3–6 read-only and high-ratio pools, the Figure 7 usage distribution and
//! the Figures 8–11 iteration variance). All randomness is seeded; runs
//! are deterministic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod app;
pub mod cam;
pub mod gtc;
pub mod nek5000;
pub mod s3d;

pub use app::{rescale_mb, AppScale, AppSpec, Application, run_to_completion};
pub use cam::Cam;
pub use gtc::Gtc;
pub use nek5000::Nek5000;
pub use s3d::S3d;

/// Constructs all four proxies at a given scale, in Table I order.
pub fn all_apps(scale: AppScale) -> Vec<Box<dyn Application>> {
    vec![
        Box::new(Nek5000::new(scale)),
        Box::new(Cam::new(scale)),
        Box::new(Gtc::new(scale)),
        Box::new(S3d::new(scale)),
    ]
}
