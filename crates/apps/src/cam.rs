//! The CAM proxy: the community atmosphere model (§VI: global climate
//! simulation of "the Earth's past, present, and future climate states").
//!
//! CAM is the paper's showcase for NVRAM-friendly *stack* data (Table V:
//! read/write ratio 20.39 — 11.46 in the first iteration — with 76.3% of
//! references hitting the stack; Figure 2: 43.3% of stack objects have
//! ratios above 10, covering 68.9% of references, and 3.2% exceed 50,
//! covering 8.9%). §VII-A names the three mechanisms, all reproduced here:
//!
//! 1. routines that "store interpolation coefficients derived from input
//!    arguments at the beginning of the routine" into locals that are
//!    "frequently read during computation";
//! 2. routines that "periodically save temporal computation results that
//!    the later computation repeatedly reads";
//! 3. routines that keep "computation dependent constants" on the stack
//!    because "these constants are only needed in this routine".
//!
//! The first main-loop iteration additionally runs each routine's
//! initialization path (extra local writes), which is why its stack ratio
//! (11.46) is roughly half the steady-state one — the proxy reproduces
//! that by double-writing the coefficient arrays on step 0.
//!
//! Global inventory from §VII-B: Legendre-transform constants, cosine and
//! sine of the global-grid longitudes, a hash table of field names "to
//! accelerate output processing" and index arrays (all read-only, 15.5% of
//! the footprint); physics-grid longitudes (ratio > 50, 4.8 MB); state
//! fields; and ~11.5% of the footprint (diagnostic/restart buffers) that
//! the main loop never touches.

use crate::app::{phased_run, AppScale, AppSpec, Application};
use nvsim_trace::{AllocSite, ArgValue, RoutineId, TracedVec, Tracer};
use nvsim_types::NvsimError;

/// One physics routine of the proxy: writes `coef_len` stack coefficients
/// at entry, then performs `read_rounds` read passes over them — giving
/// the routine's stack object a read/write ratio ≈ `read_rounds`.
#[derive(Debug, Clone, Copy)]
struct PhysRoutine {
    name: &'static str,
    coef_len: usize,
    read_rounds: usize,
    /// Invocations per time step (scaled by problem size).
    weight: usize,
}

/// The routine table: 31 stack objects spanning the Figure 2 ratio
/// distribution — one above 50, twelve more above 10, eighteen below.
const PHYSICS: [PhysRoutine; 31] = [
    PhysRoutine { name: "radctl_interp", coef_len: 48, read_rounds: 75, weight: 3 },
    PhysRoutine { name: "radcswmx", coef_len: 48, read_rounds: 53, weight: 4 },
    PhysRoutine { name: "radclwmx", coef_len: 48, read_rounds: 50, weight: 4 },
    PhysRoutine { name: "zm_convr", coef_len: 48, read_rounds: 47, weight: 4 },
    PhysRoutine { name: "cldwat_pcond", coef_len: 48, read_rounds: 44, weight: 4 },
    PhysRoutine { name: "vertinterp", coef_len: 48, read_rounds: 41, weight: 5 },
    PhysRoutine { name: "trcab", coef_len: 48, read_rounds: 38, weight: 4 },
    PhysRoutine { name: "aer_optics", coef_len: 48, read_rounds: 35, weight: 4 },
    PhysRoutine { name: "esinti_satvap", coef_len: 48, read_rounds: 31, weight: 5 },
    PhysRoutine { name: "gffgch", coef_len: 48, read_rounds: 27, weight: 4 },
    PhysRoutine { name: "clybry_fam", coef_len: 48, read_rounds: 24, weight: 4 },
    PhysRoutine { name: "sulchem_rates", coef_len: 48, read_rounds: 20, weight: 4 },
    PhysRoutine { name: "hetero_uptake", coef_len: 48, read_rounds: 17, weight: 4 },
    PhysRoutine { name: "grcalc", coef_len: 32, read_rounds: 10, weight: 6 },
    PhysRoutine { name: "quad_loop", coef_len: 32, read_rounds: 10, weight: 6 },
    PhysRoutine { name: "linemsdyn", coef_len: 32, read_rounds: 9, weight: 6 },
    PhysRoutine { name: "tfilt_massfix", coef_len: 32, read_rounds: 9, weight: 6 },
    PhysRoutine { name: "scan2_ew", coef_len: 32, read_rounds: 8, weight: 6 },
    PhysRoutine { name: "dyn_grid_map", coef_len: 32, read_rounds: 8, weight: 6 },
    PhysRoutine { name: "herzint", coef_len: 32, read_rounds: 8, weight: 6 },
    PhysRoutine { name: "vdiff_solve", coef_len: 32, read_rounds: 7, weight: 6 },
    PhysRoutine { name: "srfxfer", coef_len: 32, read_rounds: 7, weight: 6 },
    PhysRoutine { name: "ccm_cpslec", coef_len: 32, read_rounds: 7, weight: 6 },
    PhysRoutine { name: "ozone_data", coef_len: 32, read_rounds: 6, weight: 6 },
    PhysRoutine { name: "cldfrc_land", coef_len: 32, read_rounds: 6, weight: 6 },
    PhysRoutine { name: "trbintd", coef_len: 32, read_rounds: 6, weight: 6 },
    PhysRoutine { name: "pbl_height", coef_len: 32, read_rounds: 5, weight: 6 },
    PhysRoutine { name: "qneg3_guard", coef_len: 32, read_rounds: 5, weight: 6 },
    PhysRoutine { name: "outfld_copy", coef_len: 32, read_rounds: 5, weight: 6 },
    PhysRoutine { name: "diag_dynvar", coef_len: 32, read_rounds: 4, weight: 6 },
    PhysRoutine { name: "hycoef_update", coef_len: 32, read_rounds: 4, weight: 6 },
];

/// The CAM proxy application.
pub struct Cam {
    scale: AppScale,
}

impl Cam {
    /// Creates the proxy at `scale`.
    pub fn new(scale: AppScale) -> Self {
        Cam { scale }
    }

    /// Columns of the physics grid at this scale. The divisor is the sum
    /// of the per-structure weights in [`State::build`] (≈5.75 × the field
    /// element count), so the total footprint lands at Table I's 608 MB.
    fn ncols(&self) -> usize {
        (self.scale.elems(608.0 / 5.75) / 16).max(64)
    }
}

struct State {
    // State fields (mixed access).
    t3: TracedVec<f64>,
    u3: TracedVec<f64>,
    v3: TracedVec<f64>,
    q3: TracedVec<f64>,
    // Read-only pool (15.5% of footprint).
    legendre: TracedVec<f64>,
    cos_lon: TracedVec<f64>,
    sin_lon: TracedVec<f64>,
    field_hash: TracedVec<u64>,
    // Ratio>50 pool (4.8 MB in the paper).
    phys_grid_lon: TracedVec<f64>,
    // Physical invariants (§VII-B: "thermal conductivity for soil
    // minerals and saturated soils in CAM").
    soil_cond: TracedVec<f64>,
    // Untouched pool (11.5%).
    diag_buf: TracedVec<f64>,
    restart_buf: TracedVec<f64>,
    // Long-term heap chunk store.
    chunk_store: TracedVec<f64>,
}

impl State {
    fn build(t: &mut Tracer<'_>, ncols: usize) -> Result<Self, NvsimError> {
        let n = ncols * 16;
        let ro = |t: &mut Tracer<'_>, name: &str, len: usize| TracedVec::<f64>::global(t, name, len);
        Ok(State {
            t3: ro(t, "t3", n)?,
            u3: ro(t, "u3", n)?,
            v3: ro(t, "v3", n)?,
            q3: ro(t, "q3", n)?,
            legendre: ro(t, "legendre_coef", n / 2)?,
            cos_lon: ro(t, "cos_lon", n / 6)?,
            sin_lon: ro(t, "sin_lon", n / 6)?,
            field_hash: TracedVec::global(t, "field_name_hash", n / 24)?,
            phys_grid_lon: ro(t, "phys_grid_lon", n / 24)?,
            soil_cond: ro(t, "soil_thermal_cond", 128)?,
            diag_buf: ro(t, "diag_buf", n * 7 / 20)?,
            restart_buf: ro(t, "restart_buf", n * 7 / 20)?,
            chunk_store: TracedVec::heap(t, AllocSite::new("cam/phys_grid.rs", 101), n / 8)?,
        })
    }
}

impl Application for Cam {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "CAM",
            description: "Atmosphere model",
            input: "Default test case",
            paper_footprint_mb: 608.0,
            scale: self.scale,
        }
    }

    fn run(&mut self, t: &mut Tracer<'_>, iterations: u32) -> Result<(), NvsimError> {
        let ncols = self.ncols();
        let routines: Vec<RoutineId> = PHYSICS
            .iter()
            .map(|r| t.register_routine("cam", r.name))
            .collect();
        let rtn_init = t.register_routine("cam", "inital");
        let rtn_dyn = t.register_routine("cam", "dyn_run");
        let rtn_post = t.register_routine("cam", "wshist");

        let mut st = State::build(t, ncols)?;

        phased_run(
            t,
            &mut st,
            iterations,
            |t, st| pre_compute(t, rtn_init, st),
            |t, st, step| {
                t.annotate(
                    "cam.timestep",
                    &[
                        ("step", ArgValue::U64(u64::from(step))),
                        ("columns", ArgValue::U64(ncols as u64)),
                        ("physics_routines", ArgValue::U64(routines.len() as u64)),
                        // Step 0 runs each routine's init path (§VII-A),
                        // halving the stack read/write ratio.
                        ("init_pass", ArgValue::U64(u64::from(step == 0))),
                    ],
                );
                time_step(t, &routines, rtn_dyn, st, ncols, step)
            },
            |t, st| post_process(t, rtn_post, st),
        )
    }
}

fn pre_compute(
    t: &mut Tracer<'_>,
    rtn: RoutineId,
    st: &mut State,
) -> Result<(), NvsimError> {
    let mut frame = t.call(rtn, 256)?;
    let mut tmp = TracedVec::<f64>::on_stack(&mut frame, 8);
    for i in 0..st.legendre.len() {
        st.legendre.set(t, i, (i as f64 * 0.01).sin());
    }
    for i in 0..st.cos_lon.len() {
        let theta = i as f64 * 0.001;
        st.cos_lon.set(t, i, theta.cos());
        st.sin_lon.set(t, i, theta.sin());
    }
    for i in 0..st.field_hash.len() {
        st.field_hash
            .set(t, i, (i as u64).wrapping_mul(0x9e3779b97f4a7c15));
    }
    for i in 0..st.phys_grid_lon.len() {
        st.phys_grid_lon.set(t, i, i as f64);
    }
    for i in 0..st.soil_cond.len() {
        st.soil_cond.set(t, i, 0.25 + (i % 16) as f64 * 0.01);
    }
    for i in 0..st.t3.len() {
        st.t3.set(t, i, 280.0);
        st.u3.set(t, i, 1.0);
        st.v3.set(t, i, -1.0);
        st.q3.set(t, i, 1e-3);
        tmp.update(t, i % 8, |a| a + 1.0);
    }
    for i in 0..st.chunk_store.len() {
        st.chunk_store.set(t, i, 0.0);
    }
    t.ret(rtn)
}

/// One physics routine invocation: coefficient setup (stack writes), the
/// read-heavy compute loop (stack reads), and a light touch of the global
/// state so the column physics stays connected to the fields.
fn physics_call(
    t: &mut Tracer<'_>,
    rid: RoutineId,
    r: &PhysRoutine,
    st: &mut State,
    col: usize,
    first_iteration: bool,
) -> Result<(), NvsimError> {
    let mut frame = t.call(rid, (r.coef_len as u64 + 8) * 8)?;
    let mut coef = TracedVec::<f64>::on_stack(&mut frame, r.coef_len);
    // §VII-A mechanism 1: derive coefficients from the inputs at entry.
    let n = st.t3.len();
    for i in 0..r.coef_len {
        let base = st.t3.get(t, (col + i) % n);
        let k = st.soil_cond.get(t, (col + i) % st.soil_cond.len());
        coef.set(t, i, base * 0.5 + i as f64 + k);
    }
    if first_iteration {
        // Initialization path: saved-state setup adds ~0.8 extra local
        // write passes in the first iteration only, which is what halves
        // CAM's first-iteration stack ratio (Table V: 11.46 vs 20.39).
        for i in 0..(r.coef_len * 4) / 5 {
            let v = st.q3.get(t, (col + i) % n);
            coef.set(t, i, v);
        }
    }
    // Mechanism 2/3: the compute loop re-reads the locals many times.
    let mut acc = 0.0;
    for round in 0..r.read_rounds {
        for i in 0..r.coef_len {
            acc += coef.get(t, (i + round) % r.coef_len);
        }
    }
    // Column tendency update: physics writes back a quarter of the
    // column it read, keeping the state fields at moderate ratios.
    for i in 0..r.coef_len / 4 {
        st.t3.set(t, (col + i * 4) % n, acc * 1e-9 + 280.0);
    }
    t.ret(rid)
}

/// Spectral dynamics sweep: global-heavy (three passes over the state
/// with the Legendre/longitude constants), pulling the stack share down
/// to the measured 76% and exercising the read-only pools. Accumulators
/// live in registers, as the compiled dynamics kernels keep them.
fn dynamics(
    t: &mut Tracer<'_>,
    rtn: RoutineId,
    st: &mut State,
    step: u32,
) -> Result<(), NvsimError> {
    let mut frame = t.call(rtn, 256)?;
    let mut resid = TracedVec::<f64>::on_stack(&mut frame, 8);
    let n = st.t3.len();
    for pass in 0..3u32 {
        let mut acc = 0.0;
        for i in 0..n {
            let leg = st.legendre.get(t, (i + pass as usize) % st.legendre.len());
            let leg2 = st.legendre.get(t, (i * 7) % st.legendre.len());
            let c = st.cos_lon.get(t, i % st.cos_lon.len());
            let sv = st.sin_lon.get(t, i % st.sin_lon.len());
            let u = st.u3.get(t, i);
            let tt = st.t3.get(t, i);
            let q = st.q3.get(t, i);
            let w = u * c + (leg + leg2) * sv + tt * 1e-6 + q;
            st.u3.set(t, i, w * 0.99);
            acc += w;
            if i % 8 == 0 {
                let v = st.v3.get(t, i);
                st.v3.set(t, i, v + w * 1e-6);
            }
            if i % 4 == 0 {
                st.q3.set(t, i, q * (1.0 - w * 1e-9));
            }
            if i % 64 == 0 {
                let h = st.field_hash.get(t, i % st.field_hash.len());
                st.q3.set(t, i, q * (1.0 + (h % 3) as f64 * 1e-9));
            }
        }
        resid.set(t, pass as usize % 8, acc);
    }
    // Sparse writes keep phys_grid_lon above ratio 50 but written.
    for i in 0..st.phys_grid_lon.len() {
        let v = st.phys_grid_lon.get(t, i);
        let v2 = st.phys_grid_lon.get(t, (i + 1) % st.phys_grid_lon.len());
        if i % 128 == (step as usize) % 128 {
            st.phys_grid_lon.set(t, i, v + v2 * 1e-9);
        }
    }
    t.ret(rtn)
}

fn time_step(
    t: &mut Tracer<'_>,
    routines: &[RoutineId],
    rtn_dyn: RoutineId,
    st: &mut State,
    ncols: usize,
    step: u32,
) -> Result<(), NvsimError> {
    let first = step == 0;
    // Short-term heap chunk buffer, alloc/freed each step.
    let mut chunk =
        TracedVec::<f64>::heap(t, AllocSite::new("cam/physpkg.rs", 210), 512)?;
    let calls_scale = (ncols / 64).max(1);
    for (rid, r) in routines.iter().zip(&PHYSICS) {
        for c in 0..r.weight * calls_scale {
            physics_call(t, *rid, r, st, c * 97 + step as usize, first)?;
        }
    }
    dynamics(t, rtn_dyn, st, step)?;
    for i in 0..chunk.len() {
        chunk.set(t, i, i as f64);
    }
    let cs = st.chunk_store.len();
    for i in (0..cs).step_by(2) {
        let v = chunk.get(t, i % chunk.len());
        st.chunk_store.set(t, i, v);
    }
    chunk.free(t)?;
    Ok(())
}

fn post_process(
    t: &mut Tracer<'_>,
    rtn: RoutineId,
    st: &mut State,
) -> Result<(), NvsimError> {
    let mut frame = t.call(rtn, 128)?;
    let mut acc = TracedVec::<f64>::on_stack(&mut frame, 4);
    for i in 0..st.diag_buf.len() {
        let v = st.t3.get(t, i % st.t3.len());
        st.diag_buf.set(t, i, v);
        acc.update(t, i % 4, |a| a + v);
    }
    for i in 0..st.restart_buf.len() {
        let v = st.u3.get(t, i % st.u3.len());
        st.restart_buf.set(t, i, v);
    }
    t.ret(rtn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::run_to_completion;
    use nvsim_trace::CountingSink;

    #[test]
    fn runs_and_is_read_dominated() {
        let mut app = Cam::new(AppScale::Test);
        let mut sink = CountingSink::default();
        run_to_completion(&mut app, &mut sink, 2).unwrap();
        assert!(sink.refs > 10_000);
        // CAM is the most read-heavy app in Table V.
        assert!(sink.reads as f64 / sink.writes as f64 > 3.0);
    }

    #[test]
    fn routine_table_matches_figure_2_structure() {
        // The lifetime ratio of a routine's stack object is diluted by the
        // first-iteration init writes (~0.8 extra passes over 10
        // iterations), so the >N populations are judged on that basis.
        let lifetime = |r: &&PhysRoutine| r.read_rounds as f64 * 10.0 / 10.8;
        let over_10 = PHYSICS.iter().filter(|r| lifetime(r) > 10.0).count();
        let over_50 = PHYSICS.iter().filter(|r| lifetime(r) > 50.0).count();
        // Figure 2: 43.3% of stack objects above ratio 10; 3.2% above 50.
        assert_eq!(over_10, 13);
        assert_eq!(over_50, 1);
        assert_eq!(PHYSICS.len(), 31);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut app = Cam::new(AppScale::Test);
            let mut sink = CountingSink::default();
            run_to_completion(&mut app, &mut sink, 2).unwrap();
            (sink.refs, sink.reads, sink.writes)
        };
        assert_eq!(run(), run());
    }
}
