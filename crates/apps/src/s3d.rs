//! The S3D proxy: massively parallel direct numerical simulation of
//! compressible reacting flows (§VI: "full compressible Navier-Stokes,
//! total energy, species and mass continuity equations coupled with
//! detailed chemistry").
//!
//! Reproduced characteristics:
//!
//! * Table V: stack read/write ratio 6.04 with 63.1% of references to the
//!   stack — the Runge-Kutta stage temporaries and stencil gathers live in
//!   locals;
//! * §VII-B: "look-up tables that contain coefficients for linear
//!   interpolation" are the read-only pool;
//! * Figure 7: a small pool (7.1 MB in the paper) is untouched by the main
//!   loop (I/O staging buffers);
//! * Figures 10: reference rates are essentially constant across
//!   iterations — the stencil sweep does identical work every step, so
//!   the proxy's main loop is deliberately step-independent.

use crate::app::{phased_run, AppScale, AppSpec, Application};
use nvsim_trace::{AllocSite, ArgValue, RoutineId, TracedVec, Tracer};
use nvsim_types::NvsimError;

/// Chemical species tracked (reduced mechanism).
const NSPEC: usize = 9;

/// The S3D proxy application.
pub struct S3d {
    scale: AppScale,
}

impl S3d {
    /// Creates the proxy at `scale`.
    pub fn new(scale: AppScale) -> Self {
        S3d { scale }
    }

    /// Grid points at this scale; the divisor is the sum of per-structure
    /// weights in [`State::build`] (≈13.7 elements per point), matching
    /// Table I's 512 MB.
    fn npoints(&self) -> usize {
        self.scale.elems(512.0 / 13.7).max(512)
    }
}

struct State {
    /// Species mass fractions, `npoints × NSPEC`.
    yspecies: TracedVec<f64>,
    /// Temperature field.
    temp: TracedVec<f64>,
    /// Pressure field.
    pressure: TracedVec<f64>,
    /// Velocity (one component kept; the proxy is 1-D in memory).
    u: TracedVec<f64>,
    /// Reaction-rate accumulator.
    rr: TracedVec<f64>,
    /// Chemistry interpolation look-up table (read-only, §VII-B).
    chemtab: TracedVec<f64>,
    /// Transport-coefficient look-up table (read-only).
    transtab: TracedVec<f64>,
    /// I/O staging buffer: untouched by the main loop (Figure 7 pool).
    io_buf: TracedVec<f64>,
    /// Long-term heap Runge-Kutta carry-over.
    rk_carry: TracedVec<f64>,
}

impl State {
    fn build(t: &mut Tracer<'_>, n: usize) -> Result<Self, NvsimError> {
        Ok(State {
            yspecies: TracedVec::global(t, "yspecies", n * NSPEC)?,
            temp: TracedVec::global(t, "temp", n)?,
            pressure: TracedVec::global(t, "pressure", n)?,
            u: TracedVec::global(t, "u", n)?,
            rr: TracedVec::global(t, "rr_r", n)?,
            chemtab: TracedVec::global(t, "chemtab", (n / 16).max(128))?,
            transtab: TracedVec::global(t, "transtab", (n / 32).max(64))?,
            io_buf: TracedVec::global(t, "io_buf", (n / 9).max(64))?,
            rk_carry: TracedVec::heap(t, AllocSite::new("s3d/rk.rs", 33), n / 2)?,
        })
    }
}

impl Application for S3d {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "S3D",
            description: "Turbulence combustion simulation",
            input: "Grid dimensions: 60x60x60",
            paper_footprint_mb: 512.0,
            scale: self.scale,
        }
    }

    fn run(&mut self, t: &mut Tracer<'_>, iterations: u32) -> Result<(), NvsimError> {
        let n = self.npoints();
        let rtn_init = t.register_routine("s3d", "initialize_field");
        let rtn_rhsf = t.register_routine("s3d", "rhsf");
        let rtn_chem = t.register_routine("s3d", "getrates");
        let rtn_rk = t.register_routine("s3d", "rk_integrate");
        let rtn_post = t.register_routine("s3d", "write_savefile");

        let mut st = State::build(t, n)?;

        phased_run(
            t,
            &mut st,
            iterations,
            |t, st| initialize(t, rtn_init, st, n),
            |t, st, step| {
                t.annotate(
                    "s3d.timestep",
                    &[
                        ("step", ArgValue::U64(u64::from(step))),
                        ("grid_points", ArgValue::U64(n as u64)),
                        ("species", ArgValue::U64(NSPEC as u64)),
                    ],
                );
                // Step-independent work: S3D's reference rates stay flat
                // across iterations (Figure 10).
                rhsf(t, rtn_rhsf, st, n)?;
                getrates(t, rtn_chem, st, n)?;
                rk_integrate(t, rtn_rk, st, n)
            },
            |t, st| write_savefile(t, rtn_post, st),
        )
    }
}

fn initialize(
    t: &mut Tracer<'_>,
    rtn: RoutineId,
    st: &mut State,
    n: usize,
) -> Result<(), NvsimError> {
    let mut frame = t.call(rtn, 128)?;
    let mut prof = TracedVec::<f64>::on_stack(&mut frame, 8);
    for i in 0..n {
        let x = i as f64 / n as f64;
        prof.set(t, i % 8, x);
        let p = prof.get(t, i % 8);
        st.temp.set(t, i, 800.0 + 400.0 * p);
        st.pressure.set(t, i, 101325.0);
        st.u.set(t, i, p * 10.0);
        st.rr.set(t, i, 0.0);
        for s in 0..NSPEC {
            st.yspecies.set(t, i * NSPEC + s, 1.0 / NSPEC as f64);
        }
    }
    for i in 0..st.chemtab.len() {
        st.chemtab.set(t, i, (i as f64 * 0.1).exp().recip());
    }
    for i in 0..st.transtab.len() {
        st.transtab.set(t, i, 1.0 + i as f64 * 1e-3);
    }
    for i in 0..st.rk_carry.len() {
        st.rk_carry.set(t, i, 0.0);
    }
    t.ret(rtn)
}

/// Stencil RHS evaluation: gathers an 8-point neighbourhood into stack
/// locals, differentiates out of the locals, writes the flux back.
fn rhsf(t: &mut Tracer<'_>, rtn: RoutineId, st: &mut State, n: usize) -> Result<(), NvsimError> {
    const STEN: usize = 8;
    for block in 0..(n / 64).max(1) {
        let mut frame = t.call(rtn, ((STEN + 24) * 8) as u64)?;
        let mut sten = TracedVec::<f64>::on_stack(&mut frame, STEN);
        let mut deriv = TracedVec::<f64>::on_stack(&mut frame, 16);
        for pt in 0..64 {
            let i = (block * 64 + pt) % n;
            // Gather the temperature stencil into locals; the momentum
            // and species stencils are consumed directly from the fields
            // (they feed long accumulation chains kept in registers).
            let mut flux = 0.0;
            for k in 0..STEN {
                let v = st.temp.get(t, (i + k) % n);
                sten.set(t, k, v);
                flux += st.u.get(t, (i + k) % n) * 0.125;
                flux += st.pressure.get(t, (i + k) % n) * 1e-9;
                flux += st.yspecies.get(t, ((i + k) % n) * NSPEC) * 1e-3;
            }
            // Differentiate: first, second and cross derivatives re-read
            // the stencil locals pass after pass.
            let mut d1 = 0.0;
            let mut d2 = 0.0;
            let mut d3 = 0.0;
            for k in 0..STEN {
                let v = sten.get(t, k);
                d1 += v * (k as f64 - 3.5);
                let w = sten.get(t, STEN - 1 - k);
                d2 += (v - w) * 0.5;
            }
            for k in 0..STEN {
                let v = sten.get(t, k);
                let w = sten.get(t, k.saturating_sub(1));
                d3 += (v - w) * (k as f64);
            }
            for k in (0..STEN).step_by(2) {
                d3 += sten.get(t, k) * 0.25;
            }
            deriv.set(t, pt % 16, d1);
            let dd = deriv.get(t, pt % 16);
            let tr = st.transtab.get(t, i % st.transtab.len());
            st.u.update(t, i, |uv| uv + (dd + d2 + d3 + flux) * tr * 1e-9);
        }
        t.ret(rtn)?;
    }
    Ok(())
}

/// Chemistry source terms: table interpolation per point, species rates
/// accumulated in stack locals and re-read (ratio ≈ 6 on the frame).
fn getrates(
    t: &mut Tracer<'_>,
    rtn: RoutineId,
    st: &mut State,
    n: usize,
) -> Result<(), NvsimError> {
    for block in 0..(n / 128).max(1) {
        let mut frame = t.call(rtn, ((NSPEC + 8) * 8) as u64)?;
        let mut rates = TracedVec::<f64>::on_stack(&mut frame, NSPEC);
        for pt in 0..128 {
            let i = (block * 128 + pt) % n;
            let temp = st.temp.get(t, i);
            let idx = (temp as usize) % st.chemtab.len();
            let a = st.chemtab.get(t, idx);
            let b = st.chemtab.get(t, (idx + 1) % st.chemtab.len());
            // Rate evaluation into locals; each species is read in mass
            // and molar form, with a per-species transport coefficient.
            for s in 0..NSPEC {
                let y = st.yspecies.get(t, i * NSPEC + s);
                let ym = st.yspecies.get(t, i * NSPEC + (s + 1) % NSPEC);
                let mu = st.transtab.get(t, (i + s) % st.transtab.len());
                rates.set(t, s, (y + ym * 1e-3) * (a + b) * 0.5 * mu);
            }
            // Re-read the local rates for the Jacobian-ish accumulation.
            let mut sum = 0.0;
            for round in 0..8 {
                for s in 0..NSPEC {
                    sum += rates.get(t, (s + round) % NSPEC);
                }
            }
            st.rr.set(t, i, sum);
        }
        t.ret(rtn)?;
    }
    Ok(())
}

/// Runge-Kutta stage: advances the species with a short-term stage buffer.
fn rk_integrate(
    t: &mut Tracer<'_>,
    rtn: RoutineId,
    st: &mut State,
    n: usize,
) -> Result<(), NvsimError> {
    let mut stage =
        TracedVec::<f64>::heap(t, AllocSite::new("s3d/rk.rs", 90), (n / 4).max(64))?;
    let mut frame = t.call(rtn, 256)?;
    let mut carry = TracedVec::<f64>::on_stack(&mut frame, 16);
    for i in 0..n {
        let r = st.rr.get(t, i);
        carry.set(t, i % 16, r);
        let c = carry.get(t, i % 16);
        let c2 = carry.get(t, (i + 1) % 16);
        for s in 0..NSPEC.min(5) {
            st.yspecies.update(t, i * NSPEC + s, |y| y + (c + c2) * 1e-12);
        }
        if i % 4 == 0 {
            stage.set(t, (i / 4) % stage.len(), c);
        }
        if i % 2 == 0 {
            let sv = stage.get(t, (i / 4) % stage.len());
            st.rk_carry.set(t, (i / 2) % st.rk_carry.len(), sv);
        }
        // Energy and state equation update every point (RK stage).
        st.temp.update(t, i, |tv| tv + (c + c2) * 1e-10);
        if i % 2 == 0 {
            st.pressure.update(t, i, |pv| pv * (1.0 + c * 1e-15));
        }
    }
    t.ret(rtn)?;
    stage.free(t)?;
    Ok(())
}

fn write_savefile(
    t: &mut Tracer<'_>,
    rtn: RoutineId,
    st: &mut State,
) -> Result<(), NvsimError> {
    let mut frame = t.call(rtn, 64)?;
    let mut chk = TracedVec::<f64>::on_stack(&mut frame, 2);
    for i in 0..st.io_buf.len() {
        let v = st.temp.get(t, i % st.temp.len());
        st.io_buf.set(t, i, v);
        chk.update(t, 0, |a| a + v);
    }
    t.ret(rtn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::run_to_completion;
    use nvsim_trace::CountingSink;

    #[test]
    fn runs_with_read_dominance() {
        let mut app = S3d::new(AppScale::Test);
        let mut sink = CountingSink::default();
        run_to_completion(&mut app, &mut sink, 2).unwrap();
        assert!(sink.refs > 10_000);
        let ratio = sink.reads as f64 / sink.writes as f64;
        assert!(ratio > 2.0 && ratio < 12.0, "S3D ratio {ratio}");
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut app = S3d::new(AppScale::Test);
            let mut sink = CountingSink::default();
            run_to_completion(&mut app, &mut sink, 2).unwrap();
            (sink.refs, sink.reads, sink.writes)
        };
        assert_eq!(run(), run());
    }
}
