//! The Nek5000 proxy: spectral-element unsteady incompressible flow
//! (§VI: "thermal hydraulics of reactor cores, transition in vascular
//! flows, ocean current modeling and combustion").
//!
//! Data-structure inventory reproduced from §VII-B:
//!
//! * *auxiliary read-only structures*: inverse mass matrix `binvm1` and the
//!   "element-lagged" mass matrix `blagged`, both derived from the mass
//!   matrix during pre-compute;
//! * *computing-dependent read-only data*: the boundary-condition table
//!   `cbc` (70 condition types) and the velocity/temperature mass matrix
//!   `bm1`;
//! * *high read/write-ratio data* (38.6 MB in the paper): geometry arrays
//!   `xm1`/`ym1`, read across every element sweep but written only by the
//!   sparse mesh-update path;
//! * *data untouched in the main loop* (~24.3% of the footprint): the
//!   diagonal-preconditioner prep array `prelag` (pre-compute only) and the
//!   MPI aggregation buffer `post_buf` (post-processing only);
//! * FORTRAN common-block overlays: the `/scrns/` scratch block viewed
//!   both whole (`scrns`) and re-partitioned (`scrns_lo`, `scrns_hi`);
//! * heap: a long-term coarse-solver work array and a short-term
//!   projection buffer allocated and freed inside each time step.
//!
//! The dominant kernel is `ax_helm` (element-local Helmholtz operator
//! application): per element it copies the derivative matrix and the
//! element's velocity into stack locals, applies a dense small operator
//! out of those locals, and writes the result back — which is what makes
//! references to stack data 75.6% of the total with a read/write ratio of
//! ~6.3 (Table V). The pressure solve runs a conjugate-gradient loop whose
//! iteration count varies deterministically with the time step,
//! reproducing the "quite diverse reference rates across iterations" the
//! paper observes for Nek5000 (Figures 7/8).

use crate::app::{phased_run, AppScale, AppSpec, Application};
use nvsim_trace::{AllocSite, ArgValue, TracedVec, Tracer};
use nvsim_types::NvsimError;

/// Points per spectral element (8×8 collocation grid).
const NP: usize = 64;

/// Proxy workload shape parameters (tuned so the Table V row lands on the
/// paper's measurements; see EXPERIMENTS.md).
mod shape {
    /// Extra read passes over the element-local result in `ax_helm`.
    pub const AX_LOCAL_READS: usize = 11;
    /// Read passes over the gathered residual in the CG smoother.
    pub const CG_LOCAL_READS: usize = 6;
    /// Base conjugate-gradient iterations per pressure solve.
    pub const CG_BASE: u32 = 6;
    /// Deterministic CG iteration jitter (varies the per-step work).
    pub const CG_JITTER: [u32; 10] = [6, 5, 1, 9, 3, 12, 2, 7, 0, 10];
    /// Fraction (1/N) of geometry entries rewritten per step — keeps the
    /// geometry arrays in the ratio>50 pool rather than read-only.
    pub const GEOM_WRITE_STRIDE: usize = 128;
}

/// The Nek5000 proxy application.
pub struct Nek5000 {
    scale: AppScale,
}

impl Nek5000 {
    /// Creates the proxy at `scale`.
    pub fn new(scale: AppScale) -> Self {
        Nek5000 { scale }
    }

    fn nelt(&self) -> usize {
        // The per-structure weights in `State::build` sum to ~10.9 field
        // elements per grid point, so footprint/10.9 per unit field lands
        // the total at Table I's 824 MB.
        (self.scale.elems(824.0 / 10.9) / NP).max(4)
    }
}

/// All global state of the proxy, built during setup.
struct State {
    // Velocity + temperature fields (active, mixed access).
    vx: TracedVec<f64>,
    vy: TracedVec<f64>,
    vz: TracedVec<f64>,
    temp: TracedVec<f64>,
    pr: TracedVec<f64>,
    // Lagged fields (active, mixed).
    vxlag: TracedVec<f64>,
    vylag: TracedVec<f64>,
    vzlag: TracedVec<f64>,
    // Read-only pool (7.1% of footprint in the paper).
    bm1: TracedVec<f64>,
    binvm1: TracedVec<f64>,
    blagged: TracedVec<f64>,
    cbc: TracedVec<u64>,
    // High-ratio pool (38.6 MB in the paper).
    xm1: TracedVec<f64>,
    ym1: TracedVec<f64>,
    // Derivative matrix: tiny, extremely hot, read-only.
    dxm1: TracedVec<f64>,
    // Untouched-in-main-loop pool (~24.3%).
    prelag: TracedVec<f64>,
    post_buf: TracedVec<f64>,
    // Physical invariants (§VII-B third read-only class).
    strain_inv: TracedVec<f64>,
    convect_char: TracedVec<f64>,
    // Common-block scratch (overlay-merged).
    scrns: TracedVec<f64>,
    // Long-term heap work array.
    crs_work: TracedVec<f64>,
}

impl State {
    fn build(t: &mut Tracer<'_>, nelt: usize) -> Result<Self, NvsimError> {
        let n = nelt * NP;
        let field = |t: &mut Tracer<'_>, name: &str| TracedVec::<f64>::global(t, name, n);
        let vx = field(t, "vx")?;
        let vy = field(t, "vy")?;
        let vz = field(t, "vz")?;
        let temp = field(t, "t")?;
        let pr = field(t, "pr")?;
        let vxlag = field(t, "vxlag")?;
        let vylag = TracedVec::global(t, "vylag", n / 2)?;
        let vzlag = TracedVec::global(t, "vzlag", n / 4)?;
        let bm1 = TracedVec::global(t, "bm1", n / 4)?;
        let binvm1 = TracedVec::global(t, "binvm1", n / 4)?;
        let blagged = TracedVec::global(t, "blagged", n / 4)?;
        let cbc = TracedVec::global(t, "cbc", 70)?;
        let xm1 = TracedVec::global(t, "xm1", n / 4)?;
        let ym1 = TracedVec::global(t, "ym1", n / 4)?;
        let dxm1 = TracedVec::global(t, "dxm1", NP)?;
        // Untouched pool sized to ~24% of the total footprint (together
        // with `bm1`, which is consumed during pre-compute only).
        let prelag = TracedVec::global(t, "prelag", n + n / 5)?;
        let post_buf = TracedVec::global(t, "post_buf", n + n / 5)?;
        let strain_inv = TracedVec::global(t, "strain_rate_inv", 96)?;
        let convect_char = TracedVec::global(t, "convective_char", 64)?;
        // /scrns/ common block with overlapping re-partitioned views.
        let scrns = TracedVec::global(t, "scrns", n / 8)?;
        let half = (n / 8) / 2 * 8; // byte offset of the second view
        t.define_global_overlay("scrns_lo", scrns.base(), half as u64)?;
        t.define_global_overlay(
            "scrns_hi",
            scrns.base() + half as u64,
            (n as u64 / 8 * 8) - half as u64,
        )?;
        let crs_work = TracedVec::heap(t, AllocSite::new("nek5000/crs.rs", 42), n / 4)?;
        Ok(State {
            vx,
            vy,
            vz,
            temp,
            pr,
            vxlag,
            vylag,
            vzlag,
            bm1,
            binvm1,
            blagged,
            cbc,
            xm1,
            ym1,
            dxm1,
            prelag,
            post_buf,
            strain_inv,
            convect_char,
            scrns,
            crs_work,
        })
    }
}

impl Application for Nek5000 {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "Nek5000",
            description: "Fluid flow simulation",
            input: "2D eddy problem",
            paper_footprint_mb: 824.0,
            scale: self.scale,
        }
    }

    fn run(&mut self, t: &mut Tracer<'_>, iterations: u32) -> Result<(), NvsimError> {
        let nelt = self.nelt();
        let rtn_setup = t.register_routine("nek5000", "setdef");
        let rtn_ax = t.register_routine("nek5000", "ax_helm");
        let rtn_cg = t.register_routine("nek5000", "cggo");
        let rtn_bc = t.register_routine("nek5000", "bcdirvc");
        let rtn_post = t.register_routine("nek5000", "prepost");

        let mut st = State::build(t, nelt)?;

        phased_run(
            t,
            &mut st,
            iterations,
            |t, st| pre_compute(t, rtn_setup, st, nelt),
            |t, st, step| {
                let cg_iters =
                    shape::CG_BASE + shape::CG_JITTER[step as usize % shape::CG_JITTER.len()];
                t.annotate(
                    "nek5000.timestep",
                    &[
                        ("step", ArgValue::U64(u64::from(step))),
                        ("elements", ArgValue::U64(nelt as u64)),
                        // The varying CG depth is what produces Nek5000's
                        // diverse per-iteration reference rates (Figure 8).
                        ("cg_iterations", ArgValue::U64(u64::from(cg_iters))),
                    ],
                );
                time_step(t, rtn_ax, rtn_cg, rtn_bc, st, nelt, step)
            },
            |t, st| post_process(t, rtn_post, st),
        )
    }
}

/// Pre-compute: derive the mass matrices and fill the fields. Touches the
/// `prelag` prep array so it shows up in Figure 7's step-0 pool.
fn pre_compute(
    t: &mut Tracer<'_>,
    rtn: nvsim_trace::RoutineId,
    st: &mut State,
    nelt: usize,
) -> Result<(), NvsimError> {
    let mut frame = t.call(rtn, 512)?;
    let mut acc = TracedVec::<f64>::on_stack(&mut frame, 8);
    for i in 0..st.bm1.len() {
        st.bm1.set(t, i, 1.0 + (i % 7) as f64);
        let m = st.bm1.get(t, i);
        st.binvm1.set(t, i, 1.0 / m);
        st.blagged.set(t, i, m * 0.98);
    }
    for i in 0..st.dxm1.len() {
        st.dxm1.set(t, i, (i as f64).cos());
    }
    for i in 0..st.cbc.len() {
        st.cbc.set(t, i, i as u64 % 7);
    }
    for i in 0..st.xm1.len() {
        st.xm1.set(t, i, i as f64 * 0.5);
        st.ym1.set(t, i, i as f64 * 0.25);
    }
    for i in 0..nelt * NP {
        st.vx.set(t, i, (i % 17) as f64 * 0.1);
        st.vy.set(t, i, 0.0);
        st.vz.set(t, i, 0.0);
        st.temp.set(t, i, 300.0);
        st.pr.set(t, i, 1.0);
        st.vxlag.set(t, i, 0.0);
        if i < st.vylag.len() {
            st.vylag.set(t, i, 0.0);
        }
        if i < st.vzlag.len() {
            st.vzlag.set(t, i, 0.0);
        }
    }
    for i in 0..st.strain_inv.len() {
        st.strain_inv.set(t, i, (i as f64 + 1.0).ln());
    }
    for i in 0..st.convect_char.len() {
        st.convect_char.set(t, i, 0.5 + i as f64 * 1e-3);
    }
    // Diagonal preconditioner prep: the pre-compute-only pool.
    for i in 0..st.prelag.len() {
        st.prelag.set(t, i, 2.0);
        acc.update(t, i % 8, |a| a + 1.0);
    }
    for i in 0..st.crs_work.len() {
        st.crs_work.set(t, i, 0.0);
    }
    t.ret(rtn)
}

/// The Helmholtz operator sweep: the stack-dominant kernel.
fn ax_helm(
    t: &mut Tracer<'_>,
    rtn: nvsim_trace::RoutineId,
    st: &mut State,
    nelt: usize,
    src_is_vx: bool,
) -> Result<(), NvsimError> {
    for e in 0..nelt {
        let mut frame = t.call(rtn, (3 * NP + 16) as u64 * 8)?;
        let mut d_loc = TracedVec::<f64>::on_stack(&mut frame, NP);
        let mut u_loc = TracedVec::<f64>::on_stack(&mut frame, NP);
        let mut w_loc = TracedVec::<f64>::on_stack(&mut frame, NP);
        // Copy the derivative matrix and the element data into locals —
        // the Fortran idiom the paper's high-ratio stack routines use.
        for i in 0..NP {
            let d = st.dxm1.get(t, i);
            d_loc.set(t, i, d);
            let u = if src_is_vx {
                st.vx.get(t, e * NP + i)
            } else {
                st.temp.get(t, e * NP + i)
            };
            u_loc.set(t, i, u);
        }
        // Dense element-local operator: every output point reads a row of
        // the derivative matrix against the local field.
        for i in 0..NP {
            let mut acc = 0.0;
            for k in 0..shape::AX_LOCAL_READS {
                let j = (i + k * 5) % NP;
                acc += d_loc.get(t, j) * u_loc.get(t, j);
            }
            w_loc.set(t, i, acc);
        }
        // Mass application and writeback.
        for i in 0..NP {
            let b = st.binvm1.get(t, (e * NP + i) % st.binvm1.len());
            let bl = st.blagged.get(t, (e * NP + i) % st.blagged.len());
            let w = w_loc.get(t, i) * (1.0 + bl * 1e-12);
            if src_is_vx {
                st.vy.set(t, e * NP + i, w * b);
            } else {
                st.temp.set(t, e * NP + i, w * b * 0.5);
            }
        }
        t.ret(rtn)?;
    }
    Ok(())
}

/// Pressure conjugate-gradient solve with a step-dependent iteration
/// count: the source of Nek5000's diverse per-iteration reference rates.
fn pressure_solve(
    t: &mut Tracer<'_>,
    rtn: nvsim_trace::RoutineId,
    st: &mut State,
    nelt: usize,
    step: u32,
) -> Result<(), NvsimError> {
    let cg_iters = shape::CG_BASE + shape::CG_JITTER[step as usize % shape::CG_JITTER.len()];
    let n = nelt * NP;
    // Short-term heap projection buffer: allocated and freed inside the
    // time step (excluded from Figure 7 as "short-term").
    let mut proj =
        TracedVec::<f64>::heap(t, AllocSite::new("nek5000/hmholtz.rs", 77), n / 4)?;
    for _ in 0..cg_iters {
        let mut frame = t.call(rtn, 1024)?;
        let mut r_loc = TracedVec::<f64>::on_stack(&mut frame, 96);
        // Strided residual gather into stack, local smoothing, scatter.
        for b in 0..(n / 96).max(1) {
            for i in 0..96 {
                let idx = (b * 96 + i) % n;
                let p = st.pr.get(t, idx);
                r_loc.set(t, i, p);
            }
            let mut acc = 0.0;
            for round in 0..shape::CG_LOCAL_READS {
                for i in 0..96 {
                    acc += r_loc.get(t, (i + round * 17) % 96);
                }
            }
            for i in 0..96 {
                let w = st.crs_work.get(t, (b * 96 + i) % st.crs_work.len());
                st.pr.set(t, (b * 96 + i) % n, acc * (1.0 + w * 1e-9) / 96.0);
            }
            let scr = st.scrns.len();
            st.scrns.set(t, b % scr, acc);
            proj.set(t, b % proj.len(), acc);
        }
        t.ret(rtn)?;
    }
    proj.free(t)?;
    Ok(())
}

/// Boundary-condition application: reads the condition table and geometry
/// densely, writes geometry sparsely (keeping it in the ratio>50 pool).
fn bc_apply(
    t: &mut Tracer<'_>,
    rtn: nvsim_trace::RoutineId,
    st: &mut State,
    step: u32,
) -> Result<(), NvsimError> {
    let mut frame = t.call(rtn, 512)?;
    let mut c_loc = TracedVec::<f64>::on_stack(&mut frame, 16);
    for i in 0..16 {
        let c = st.cbc.get(t, i % st.cbc.len()) as f64;
        c_loc.set(t, i, c);
    }
    let n = st.xm1.len();
    for i in 0..n {
        let x = st.xm1.get(t, i);
        let y = st.ym1.get(t, i);
        let c = c_loc.get(t, i % 16)
            + st.strain_inv.get(t, i % st.strain_inv.len()) * 1e-9
            + st.convect_char.get(t, i % st.convect_char.len()) * 1e-9;
        if i % shape::GEOM_WRITE_STRIDE == (step as usize) % shape::GEOM_WRITE_STRIDE {
            st.xm1.set(t, i, x + c * 1e-6);
            st.ym1.set(t, i, y + c * 1e-6);
        }
    }
    t.ret(rtn)
}

fn time_step(
    t: &mut Tracer<'_>,
    rtn_ax: nvsim_trace::RoutineId,
    rtn_cg: nvsim_trace::RoutineId,
    rtn_bc: nvsim_trace::RoutineId,
    st: &mut State,
    nelt: usize,
    step: u32,
) -> Result<(), NvsimError> {
    ax_helm(t, rtn_ax, st, nelt, true)?;
    ax_helm(t, rtn_ax, st, nelt, false)?;
    pressure_solve(t, rtn_cg, st, nelt, step)?;
    bc_apply(t, rtn_bc, st, step)?;
    // Lag update: light streaming pass.
    let n = nelt * NP;
    for i in (0..n).step_by(4) {
        let v = st.vx.get(t, i);
        st.vxlag.set(t, i, v);
        let z = st.vz.get(t, i);
        st.vz.set(t, i, z * 0.999);
        st.vx.set(t, i, v * 0.999 + z * 1e-3);
        if i / 2 < st.vylag.len() {
            let y = st.vy.get(t, i);
            st.vylag.set(t, i / 2, y);
        }
        if i / 4 < st.vzlag.len() {
            st.vzlag.set(t, i / 4, z);
        }
    }
    Ok(())
}

/// Post-processing: aggregate into the post-only buffer (Figure 7 pool).
fn post_process(
    t: &mut Tracer<'_>,
    rtn: nvsim_trace::RoutineId,
    st: &mut State,
) -> Result<(), NvsimError> {
    let mut frame = t.call(rtn, 256)?;
    let mut sum = TracedVec::<f64>::on_stack(&mut frame, 8);
    for i in 0..st.post_buf.len() {
        let v = st.vx.get(t, i % st.vx.len());
        st.post_buf.set(t, i, v);
        sum.update(t, i % 8, |a| a + v);
    }
    t.ret(rtn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::run_to_completion;
    use nvsim_trace::CountingSink;

    #[test]
    fn runs_and_produces_references() {
        let mut app = Nek5000::new(AppScale::Test);
        let mut sink = CountingSink::default();
        run_to_completion(&mut app, &mut sink, 3).unwrap();
        assert!(sink.refs > 10_000);
        assert!(sink.finished);
        assert!(sink.reads > sink.writes);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut app = Nek5000::new(AppScale::Test);
            let mut sink = CountingSink::default();
            run_to_completion(&mut app, &mut sink, 2).unwrap();
            (sink.refs, sink.reads, sink.writes, sink.controls)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spec_matches_table_i() {
        let app = Nek5000::new(AppScale::Bench);
        let spec = app.spec();
        assert_eq!(spec.paper_footprint_mb, 824.0);
        assert_eq!(spec.input, "2D eddy problem");
    }
}
