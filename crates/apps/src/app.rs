//! The application abstraction and run harness.

use nvsim_trace::{Phase, Tracer};
use nvsim_types::NvsimError;
use serde::{Deserialize, Serialize};

/// Footprint scaling relative to the paper's per-task footprints
/// (Table I: Nek5000 824 MB, CAM 608 MB, GTC 218 MB, S3D 512 MB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppScale {
    /// 1/4096 of the paper footprint — unit tests and smoke runs.
    Test,
    /// 1/256 of the paper footprint — fast experiment sweeps.
    Small,
    /// 1/64 of the paper footprint — the default experiment scale.
    Bench,
}

impl AppScale {
    /// The divisor applied to the paper's footprints.
    pub fn divisor(self) -> u64 {
        match self {
            AppScale::Test => 4096,
            AppScale::Small => 256,
            AppScale::Bench => 64,
        }
    }

    /// Scales a paper-reported megabyte figure to bytes at this scale.
    pub fn bytes(self, paper_mb: f64) -> u64 {
        ((paper_mb * 1024.0 * 1024.0) / self.divisor() as f64) as u64
    }

    /// Scales a paper-reported megabyte figure to a number of `f64`
    /// elements at this scale.
    pub fn elems(self, paper_mb: f64) -> usize {
        (self.bytes(paper_mb) / 8) as usize
    }

    /// Rescales a byte count measured at this scale back to paper-unit
    /// megabytes — the inverse of [`AppScale::bytes`]. This is THE
    /// rescaling every table, figure, store query and serve endpoint
    /// must apply; keep it here so the ×64 (bench), ×256 (small), ×4096
    /// (test) factors live in exactly one place.
    pub fn to_paper_mb(self, measured_bytes: u64) -> f64 {
        rescale_mb(measured_bytes, self.divisor())
    }
}

/// Rescales `measured_bytes` captured under footprint divisor `divisor`
/// back to paper-unit megabytes. Shared by [`AppScale::to_paper_mb`] and
/// by report rows that carry their divisor with them (so stored records
/// rescale identically without an `AppScale` in hand).
pub fn rescale_mb(measured_bytes: u64, divisor: u64) -> f64 {
    measured_bytes as f64 * divisor as f64 / (1024.0 * 1024.0)
}

/// Static description of an application (Table I row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Application name.
    pub name: &'static str,
    /// One-line description (Table I column 3).
    pub description: &'static str,
    /// Input/problem description (Table I column 2).
    pub input: &'static str,
    /// Paper-reported memory footprint per task, MB (Table I column 4).
    pub paper_footprint_mb: f64,
    /// Scale the proxy instance runs at.
    pub scale: AppScale,
}

impl AppSpec {
    /// Footprint the proxy targets at its scale, in bytes.
    pub fn scaled_footprint_bytes(&self) -> u64 {
        self.scale.bytes(self.paper_footprint_mb)
    }
}

/// A proxy application.
///
/// `run` must drive the tracer through the §VI phase protocol: one
/// [`Phase::PreComputeBegin`], `iterations` pairs of
/// [`Phase::IterationBegin`]/[`Phase::IterationEnd`], one
/// [`Phase::PostProcessBegin`], and finally [`Tracer::finish`] (the
/// [`run_to_completion`] helper checks this contract in tests).
pub trait Application {
    /// Static metadata.
    fn spec(&self) -> AppSpec;

    /// Runs the full program: pre-compute, `iterations` main-loop
    /// iterations, post-processing.
    fn run(&mut self, t: &mut Tracer<'_>, iterations: u32) -> Result<(), NvsimError>;
}

/// Runs an application against a sink with the standard protocol and
/// finishes the tracer.
pub fn run_to_completion(
    app: &mut dyn Application,
    sink: &mut dyn nvsim_trace::EventSink,
    iterations: u32,
) -> Result<(), NvsimError> {
    let mut tracer = Tracer::new(sink);
    app.run(&mut tracer, iterations)?;
    tracer.finish();
    Ok(())
}

/// Shared helper: emit the standard phase wrapper around a main loop.
/// All three callbacks receive the tracer and the shared application
/// state `ctx`; `step` also receives the iteration index.
pub fn phased_run<C, E>(
    t: &mut Tracer<'_>,
    ctx: &mut C,
    iterations: u32,
    mut pre: impl FnMut(&mut Tracer<'_>, &mut C) -> Result<(), E>,
    mut step: impl FnMut(&mut Tracer<'_>, &mut C, u32) -> Result<(), E>,
    mut post: impl FnMut(&mut Tracer<'_>, &mut C) -> Result<(), E>,
) -> Result<(), E> {
    t.phase(Phase::PreComputeBegin);
    pre(t, ctx)?;
    for i in 0..iterations {
        t.phase(Phase::IterationBegin(i));
        step(t, ctx, i)?;
        t.phase(Phase::IterationEnd(i));
    }
    t.phase(Phase::PostProcessBegin);
    post(t, ctx)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_divisors() {
        assert_eq!(AppScale::Test.divisor(), 4096);
        assert_eq!(AppScale::Bench.divisor(), 64);
        // 824 MB at 1/64 is ~12.9 MB.
        let b = AppScale::Bench.bytes(824.0);
        assert!(b > 12 << 20 && b < 14 << 20);
        assert_eq!(AppScale::Bench.elems(8.0) * 8, AppScale::Bench.bytes(8.0) as usize);
    }

    /// Pins the paper-unit rescale factor in its one shared home: bench
    /// scale is exactly ×64, and `to_paper_mb` inverts `bytes` for every
    /// scale (EXPERIMENTS.md documents this contract for `--json`, the
    /// store, `nvq`, and the serve endpoints alike).
    #[test]
    fn rescale_factor_is_pinned() {
        assert_eq!(rescale_mb(1024 * 1024, 64), 64.0);
        assert_eq!(rescale_mb(0, 64), 0.0);
        // One bench-scale mebibyte rescales to exactly 64 paper MB.
        assert_eq!(AppScale::Bench.to_paper_mb(1024 * 1024), 64.0);
        for scale in [AppScale::Test, AppScale::Small, AppScale::Bench] {
            // bytes() truncates to whole bytes, so round-tripping a
            // whole-MB paper figure is exact for these divisors.
            let bytes = scale.bytes(824.0);
            assert_eq!(scale.to_paper_mb(bytes), 824.0, "{scale:?}");
            assert_eq!(
                rescale_mb(bytes, scale.divisor()),
                scale.to_paper_mb(bytes),
                "{scale:?}"
            );
        }
    }
}
