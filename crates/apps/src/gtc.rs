//! The GTC proxy: gyrokinetic toroidal particle-in-cell turbulence
//! simulation (§VI: "in support of the burning plasma experiment").
//!
//! GTC is the outlier in every one of the paper's measurements, and the
//! proxy reproduces why:
//!
//! * Table V: the lowest stack read/write ratio (3.48) and the lowest
//!   stack reference share (44.3%) — particle data lives in large heap
//!   arrays, and the charge-deposition scatter writes as much as it reads;
//! * Figures 5: it is the one application where most memory objects have
//!   read/write ratios near or below 1 (particle push/scatter updates);
//! * Figure 7 is omitted for GTC because "almost all of its memory objects
//!   are either used throughout the whole computation steps or used as
//!   short-term heap memory objects" — every long-term object here is
//!   touched every iteration;
//! * §VII-B still finds NVRAM candidates: the "auxiliary radial
//!   interpolation arrays used to relate particle positions" are read-only.
//!
//! The inner loops are a real (if miniature) particle-in-cell cycle:
//! charge deposition with bilinear weights, a field solve smoothing pass,
//! and a particle push that gathers the field at particle positions.

use crate::app::{phased_run, AppScale, AppSpec, Application};
use nvsim_trace::{AllocSite, ArgValue, RoutineId, TracedVec, Tracer};
use nvsim_types::NvsimError;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Coordinates stored per particle (matching GTC's `zion` layout).
const ZION_FIELDS: usize = 5;

/// The GTC proxy application.
pub struct Gtc {
    scale: AppScale,
}

impl Gtc {
    /// Creates the proxy at `scale`.
    pub fn new(scale: AppScale) -> Self {
        Gtc { scale }
    }

    /// Particle count: `zion` + `zion0` hold 7.5 elements per particle
    /// and make up ~85% of GTC's Table I footprint (218 MB).
    fn nparticles(&self) -> usize {
        (self.scale.elems(218.0 * 0.85) / 8).max(256)
    }

    /// Grid size: the four grid/aux arrays hold 2.75 elements per cell
    /// and make up the remaining ~15%.
    fn ngrid(&self) -> usize {
        self.scale.elems(218.0 * 0.05).max(128)
    }
}

struct State {
    /// Particle phase-space array (heap — GTC allocates it dynamically).
    zion: TracedVec<f64>,
    /// Previous-RK-stage particle copy.
    zion0: TracedVec<f64>,
    /// Charge density grid (update-heavy: ratio ≈ 1).
    densityi: TracedVec<f64>,
    /// Electrostatic field grid.
    evector: TracedVec<f64>,
    /// Auxiliary radial interpolation arrays (read-only, §VII-B).
    radial_interp: TracedVec<f64>,
    /// Poloidal grid geometry (read-only).
    igrid_map: TracedVec<u64>,
}

impl State {
    fn build(t: &mut Tracer<'_>, npart: usize, ngrid: usize) -> Result<Self, NvsimError> {
        // Globals must be registered before the first traced event (the
        // libdwarf scan happens at program load); heap allocations follow.
        let densityi = TracedVec::global(t, "densityi", ngrid)?;
        let evector = TracedVec::global(t, "evector", ngrid)?;
        let radial_interp = TracedVec::global(t, "radial_interp", ngrid / 2)?;
        let igrid_map = TracedVec::global(t, "igrid_map", ngrid / 4)?;
        Ok(State {
            zion: TracedVec::heap(
                t,
                AllocSite::new("gtc/setup.rs", 61),
                npart * ZION_FIELDS,
            )?,
            zion0: TracedVec::heap(
                t,
                AllocSite::new("gtc/setup.rs", 62),
                npart * ZION_FIELDS / 2,
            )?,
            densityi,
            evector,
            radial_interp,
            igrid_map,
        })
    }
}

impl Application for Gtc {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "GTC",
            description: "Turbulence plasma simulation",
            input: "Poloidal grid points=392, track particles=1, toroidal grids=2, \
                    particle per cell for electron=7",
            paper_footprint_mb: 218.0,
            scale: self.scale,
        }
    }

    fn run(&mut self, t: &mut Tracer<'_>, iterations: u32) -> Result<(), NvsimError> {
        let npart = self.nparticles();
        let ngrid = self.ngrid();
        let rtn_load = t.register_routine("gtc", "load");
        let rtn_charge = t.register_routine("gtc", "chargei");
        let rtn_solve = t.register_routine("gtc", "poisson");
        let rtn_push = t.register_routine("gtc", "pushi");
        let rtn_diag = t.register_routine("gtc", "diagnosis");

        let mut st = State::build(t, npart, ngrid)?;

        phased_run(
            t,
            &mut st,
            iterations,
            |t, st| load_particles(t, rtn_load, st, npart),
            |t, st, step| {
                t.annotate(
                    "gtc.timestep",
                    &[
                        ("step", ArgValue::U64(u64::from(step))),
                        ("particles", ArgValue::U64(npart as u64)),
                        ("grid_cells", ArgValue::U64(ngrid as u64)),
                    ],
                );
                charge_deposit(t, rtn_charge, st, npart, ngrid)?;
                poisson_solve(t, rtn_solve, st, ngrid, step)?;
                push_particles(t, rtn_push, st, npart, ngrid)
            },
            |t, st| diagnosis(t, rtn_diag, st),
        )
    }
}

fn load_particles(
    t: &mut Tracer<'_>,
    rtn: RoutineId,
    st: &mut State,
    npart: usize,
) -> Result<(), NvsimError> {
    let mut rng = ChaCha8Rng::seed_from_u64(0x67_74_63); // "gtc"
    let mut frame = t.call(rtn, 128)?;
    let mut seed_loc = TracedVec::<f64>::on_stack(&mut frame, 4);
    for p in 0..npart {
        for f in 0..ZION_FIELDS {
            let v: f64 = rng.gen_range(0.0..1.0);
            seed_loc.set(t, f % 4, v);
            let sv = seed_loc.get(t, f % 4);
            st.zion.set(t, p * ZION_FIELDS + f, sv);
        }
    }
    for i in 0..st.zion0.len() {
        st.zion0.set(t, i, 0.0);
    }
    for i in 0..st.radial_interp.len() {
        st.radial_interp.set(t, i, (i as f64 * 0.01).sqrt());
    }
    for i in 0..st.igrid_map.len() {
        st.igrid_map.set(t, i, (i as u64 * 7) % st.igrid_map.len() as u64);
    }
    for i in 0..st.densityi.len() {
        st.densityi.set(t, i, 0.0);
        st.evector.set(t, i, 0.0);
    }
    t.ret(rtn)
}

/// Charge deposition: the scatter phase. Each particle reads its
/// coordinates, computes bilinear weights in a few stack locals, and
/// *updates* (read+write) its grid cells — the write-heavy pattern that
/// makes GTC unfriendly to category-1 NVRAM.
fn charge_deposit(
    t: &mut Tracer<'_>,
    rtn: RoutineId,
    st: &mut State,
    npart: usize,
    ngrid: usize,
) -> Result<(), NvsimError> {
    let mut frame = t.call(rtn, 256)?;
    let mut w_loc = TracedVec::<f64>::on_stack(&mut frame, 4);
    for p in 0..npart {
        let x = st.zion.get(t, p * ZION_FIELDS);
        let y = st.zion.get(t, p * ZION_FIELDS + 1);
        let r = st.radial_interp.get(t, p % st.radial_interp.len());
        // Bilinear weights into locals; the deposition loop re-reads the
        // weight set several times (weight, marker correction, charge
        // normalization), giving the frame a modest read/write ratio.
        let cell = ((x * ngrid as f64) as usize + (y * 3.0) as usize) % (ngrid - 1);
        w_loc.set(t, 0, (1.0 - x) * (1.0 - y) * r);
        w_loc.set(t, 1, x * (1.0 - y));
        w_loc.set(t, 2, (1.0 - x) * y);
        w_loc.set(t, 3, x * y);
        let mut norm = 0.0;
        for k in 0..4 {
            norm += w_loc.get(t, k);
        }
        for k in 0..4 {
            let w = w_loc.get(t, k) / norm.max(1e-12);
            st.densityi.update(t, (cell + k) % ngrid, |d| d + w);
        }
        // Charge-conservation check re-reads the weights.
        let mut check = 0.0;
        for k in 0..4 {
            check += w_loc.get(t, k);
        }
        debug_assert!(check.is_finite());
    }
    t.ret(rtn)
}

/// Field solve: an update sweep over the grid (ratio ≈ 1 on the grids).
fn poisson_solve(
    t: &mut Tracer<'_>,
    rtn: RoutineId,
    st: &mut State,
    ngrid: usize,
    step: u32,
) -> Result<(), NvsimError> {
    let mut frame = t.call(rtn, 128)?;
    let mut sten = TracedVec::<f64>::on_stack(&mut frame, 4);
    for i in 0..ngrid {
        let c = st.densityi.get(t, i);
        let l = st.densityi.get(t, (i + ngrid - 1) % ngrid);
        let rr = st.densityi.get(t, (i + 1) % ngrid);
        sten.set(t, 0, c);
        sten.set(t, 1, l + rr);
        let s0 = sten.get(t, 0);
        let s1 = sten.get(t, 1);
        // The smoother applies the stencil twice (Jacobi double sweep).
        let s0b = sten.get(t, 0);
        let s1b = sten.get(t, 1);
        st.evector.set(
            t,
            i,
            0.5 * s0 - 0.25 * s1 + (s0b - s1b) * 1e-9 + step as f64 * 1e-12,
        );
        // Density is consumed and reset: another write.
        st.densityi.set(t, i, c * 0.1);
    }
    t.ret(rtn)
}

/// Particle push: the gather phase. Reads the field at each particle,
/// updates the particle coordinates (read+write on `zion`), and saves the
/// previous stage for half the particles (`zion0`).
fn push_particles(
    t: &mut Tracer<'_>,
    rtn: RoutineId,
    st: &mut State,
    npart: usize,
    ngrid: usize,
) -> Result<(), NvsimError> {
    let mut frame = t.call(rtn, 192)?;
    let mut e_loc = TracedVec::<f64>::on_stack(&mut frame, 2);
    for p in 0..npart {
        let x = st.zion.get(t, p * ZION_FIELDS);
        let cell = ((x * ngrid as f64) as usize) % (ngrid - 1);
        let e0 = st.evector.get(t, cell);
        let e1 = st.evector.get(t, cell + 1);
        e_loc.set(t, 0, e0);
        e_loc.set(t, 1, e1);
        let map = st.igrid_map.get(t, cell % st.igrid_map.len()) as f64;
        for f in 0..ZION_FIELDS {
            // The field locals are re-read for every coordinate update.
            let ea = e_loc.get(t, 0);
            let eb = e_loc.get(t, 1);
            st.zion.update(t, p * ZION_FIELDS + f, |z| {
                (z + (ea + eb) * 1e-4 + map * 1e-9).fract().abs()
            });
        }
        // RK stage save: every particle writes its state into the
        // half-sized previous-stage buffer (two particles share a slot).
        let idx = (p / 2) * ZION_FIELDS;
        for f in 0..ZION_FIELDS.min(st.zion0.len().saturating_sub(idx)) {
            let z = st.zion.get(t, p * ZION_FIELDS + f);
            st.zion0.set(t, idx + f, z);
        }
    }
    t.ret(rtn)
}

fn diagnosis(
    t: &mut Tracer<'_>,
    rtn: RoutineId,
    st: &mut State,
) -> Result<(), NvsimError> {
    let mut frame = t.call(rtn, 64)?;
    let mut acc = TracedVec::<f64>::on_stack(&mut frame, 2);
    for i in (0..st.zion.len()).step_by(ZION_FIELDS) {
        let z = st.zion.get(t, i);
        acc.update(t, 0, |a| a + z);
    }
    t.ret(rtn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::run_to_completion;
    use nvsim_trace::CountingSink;

    #[test]
    fn runs_and_is_write_heavy() {
        let mut app = Gtc::new(AppScale::Test);
        let mut sink = CountingSink::default();
        run_to_completion(&mut app, &mut sink, 2).unwrap();
        assert!(sink.refs > 10_000);
        // GTC has the lowest read/write ratio of the four apps.
        let ratio = sink.reads as f64 / sink.writes as f64;
        assert!(ratio < 4.5, "GTC overall ratio should be low: {ratio}");
    }

    #[test]
    fn deterministic_with_seeded_rng() {
        let run = || {
            let mut app = Gtc::new(AppScale::Test);
            let mut sink = CountingSink::default();
            run_to_completion(&mut app, &mut sink, 2).unwrap();
            (sink.refs, sink.reads, sink.writes)
        };
        assert_eq!(run(), run());
    }
}
