//! Byte and time unit helpers used across reports and configuration.

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// Formats a byte count with a binary-unit suffix, e.g. `1.5 MiB`.
pub fn format_bytes(bytes: u64) -> String {
    if bytes >= GIB {
        format!("{:.2} GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.2} MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.2} KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

/// Converts megabytes (as the paper reports footprints) to bytes.
pub const fn mb(n: u64) -> u64 {
    n * MIB
}

/// Converts nanoseconds to seconds.
pub fn ns_to_s(ns: f64) -> f64 {
    ns * 1e-9
}

/// Converts milliwatts to watts.
pub fn mw_to_w(mw: f64) -> f64 {
    mw * 1e-3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(3 * MIB / 2), "1.50 MiB");
        assert_eq!(format_bytes(GIB), "1.00 GiB");
    }

    #[test]
    fn conversions() {
        assert_eq!(mb(2), 2 * 1024 * 1024);
        assert!((ns_to_s(10.0) - 1e-8).abs() < 1e-20);
        assert!((mw_to_w(1500.0) - 1.5).abs() < 1e-12);
    }
}
