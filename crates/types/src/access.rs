//! Memory references and main-memory transactions.
//!
//! A [`MemRef`] is one dynamic load or store as observed by the
//! instrumentation layer (the analogue of a PIN memory-operand callback,
//! paper §III). A [`MemTransaction`] is a cache-line-granularity main-memory
//! access produced *after* the reference stream has been filtered by the
//! cache hierarchy (paper §III: "memory traces represent main memory
//! accesses due to last level cache misses and cache evictions"), and is
//! what the DRAMSim2-style power simulator consumes (§IV).

use crate::addr::VirtAddr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a memory reference reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// `true` for [`AccessKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("R"),
            AccessKind::Write => f.write_str("W"),
        }
    }
}

/// One dynamic memory reference: effective address, size in bytes, and kind.
///
/// The stack-attribution fast path (§III-A, first method) additionally needs
/// the current stack-pointer value at the time of the reference, so it is
/// carried inline; it is `VirtAddr::NULL` for streams whose producer does
/// not model a stack pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRef {
    /// Effective virtual address of the access.
    pub addr: VirtAddr,
    /// Access size in bytes (1–64 for ordinary scalar/vector accesses).
    pub size: u32,
    /// Load or store.
    pub kind: AccessKind,
    /// Stack-pointer value when the access executed (`NULL` if unknown).
    pub sp: VirtAddr,
}

impl MemRef {
    /// Convenience constructor for a read without stack-pointer context.
    #[inline]
    pub fn read(addr: VirtAddr, size: u32) -> Self {
        MemRef {
            addr,
            size,
            kind: AccessKind::Read,
            sp: VirtAddr::NULL,
        }
    }

    /// Convenience constructor for a write without stack-pointer context.
    #[inline]
    pub fn write(addr: VirtAddr, size: u32) -> Self {
        MemRef {
            addr,
            size,
            kind: AccessKind::Write,
            sp: VirtAddr::NULL,
        }
    }

    /// Returns the same reference with the stack pointer filled in.
    #[inline]
    pub fn with_sp(mut self, sp: VirtAddr) -> Self {
        self.sp = sp;
        self
    }

    /// Last byte address touched by this reference.
    #[inline]
    pub fn last_byte(&self) -> VirtAddr {
        VirtAddr::new(self.addr.raw() + u64::from(self.size.max(1)) - 1)
    }

    /// `true` if the access crosses a cache-line boundary of `line_size`.
    #[inline]
    pub fn crosses_line(&self, line_size: u64) -> bool {
        self.addr.line_index(line_size) != self.last_byte().line_index(line_size)
    }
}

/// Kind of a main-memory transaction emitted by the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransactionKind {
    /// Line fill caused by a last-level-cache read or write miss.
    ReadFill,
    /// Writeback of a dirty line evicted from the last-level cache.
    Writeback,
    /// A write that bypasses allocation (no-write-allocate miss that also
    /// misses the lower levels and is sent directly to memory).
    WriteThrough,
}

impl TransactionKind {
    /// `true` if the transaction drives write current at the devices.
    #[inline]
    pub fn is_write(self) -> bool {
        !matches!(self, TransactionKind::ReadFill)
    }
}

/// A cache-line-granularity access to main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemTransaction {
    /// Line-aligned physical/virtual address (the simulators use a unified
    /// flat space, as trace-driven DRAMSim2 does).
    pub addr: VirtAddr,
    /// Transaction kind.
    pub kind: TransactionKind,
    /// Cycle (in CPU cycles of the producing simulation) at which the
    /// transaction entered the memory controller queue; 0 for full-speed
    /// trace replay (paper §IV: "memory requests are processed by the
    /// memory system at full speed").
    pub issue_cycle: u64,
}

impl MemTransaction {
    /// Creates a line fill transaction.
    #[inline]
    pub fn read_fill(addr: VirtAddr) -> Self {
        MemTransaction {
            addr,
            kind: TransactionKind::ReadFill,
            issue_cycle: 0,
        }
    }

    /// Creates a writeback transaction.
    #[inline]
    pub fn writeback(addr: VirtAddr) -> Self {
        MemTransaction {
            addr,
            kind: TransactionKind::Writeback,
            issue_cycle: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_byte_and_line_crossing() {
        let r = MemRef::read(VirtAddr::new(60), 8);
        assert_eq!(r.last_byte(), VirtAddr::new(67));
        assert!(r.crosses_line(64));
        let r = MemRef::read(VirtAddr::new(56), 8);
        assert!(!r.crosses_line(64));
        // zero-size refs are treated as one byte
        let r = MemRef::read(VirtAddr::new(63), 0);
        assert_eq!(r.last_byte(), VirtAddr::new(63));
    }

    #[test]
    fn transaction_write_classification() {
        assert!(!TransactionKind::ReadFill.is_write());
        assert!(TransactionKind::Writeback.is_write());
        assert!(TransactionKind::WriteThrough.is_write());
    }

    #[test]
    fn memref_constructors() {
        let r = MemRef::write(VirtAddr::new(0x100), 4).with_sp(VirtAddr::new(0x7fff));
        assert!(r.kind.is_write());
        assert_eq!(r.sp, VirtAddr::new(0x7fff));
    }
}
