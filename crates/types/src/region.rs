//! Stack / heap / global segmentation of the simulated address space.
//!
//! NV-SCAVENGER differentiates memory objects in the heap, data segment and
//! stack "because it helps us to better understand how the applications use
//! these memory objects" (paper §III). The layout here mirrors a classic
//! Unix process image: globals low, heap growing upward above them, stack
//! growing downward from the top of the canonical user range.

use crate::addr::{AddrRange, VirtAddr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which process segment a memory object (or reference) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Program stack (per-routine frames, §III-A).
    Stack,
    /// Dynamically allocated heap objects (§III-B).
    Heap,
    /// Global data segment: statics, FORTRAN common blocks (§III-C).
    Global,
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Stack => f.write_str("stack"),
            Region::Heap => f.write_str("heap"),
            Region::Global => f.write_str("global"),
        }
    }
}

impl Region {
    /// All regions, in report order.
    pub const ALL: [Region; 3] = [Region::Stack, Region::Heap, Region::Global];
}

/// Fixed layout of the simulated virtual address space.
///
/// The defaults give each segment far more room than any proxy application
/// uses, so segment classification is purely a range check and allocators
/// never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressSpaceLayout {
    /// Global/data segment range.
    pub global: AddrRange,
    /// Heap range (allocator moves upward from `heap.start`).
    pub heap: AddrRange,
    /// Stack range (stack pointer moves downward from `stack.end`).
    pub stack: AddrRange,
}

impl Default for AddressSpaceLayout {
    fn default() -> Self {
        AddressSpaceLayout {
            // 4 GiB of global data starting at 4 MiB (skip the zero page and
            // a text-segment-sized hole so NULL never classifies as global).
            global: AddrRange::new(VirtAddr::new(0x40_0000), VirtAddr::new(0x1_0040_0000)),
            // 1 TiB of heap.
            heap: AddrRange::new(VirtAddr::new(0x10_0000_0000), VirtAddr::new(0x110_0000_0000)),
            // 64 GiB of stack below the canonical top.
            stack: AddrRange::new(
                VirtAddr::new(0x7ff0_0000_0000),
                VirtAddr::new(0x8000_0000_0000),
            ),
        }
    }
}

impl AddressSpaceLayout {
    /// Classifies an address into a region, or `None` for unmapped holes.
    #[inline]
    pub fn region_of(&self, addr: VirtAddr) -> Option<Region> {
        if self.stack.contains(addr) {
            Some(Region::Stack)
        } else if self.heap.contains(addr) {
            Some(Region::Heap)
        } else if self.global.contains(addr) {
            Some(Region::Global)
        } else {
            None
        }
    }

    /// The range backing a given region.
    #[inline]
    pub fn range_of(&self, region: Region) -> AddrRange {
        match region {
            Region::Stack => self.stack,
            Region::Heap => self.heap,
            Region::Global => self.global,
        }
    }

    /// Validates that the three segments are pairwise disjoint.
    pub fn validate(&self) -> Result<(), String> {
        let pairs = [
            (self.global, self.heap, "global/heap"),
            (self.global, self.stack, "global/stack"),
            (self.heap, self.stack, "heap/stack"),
        ];
        for (a, b, what) in pairs {
            if a.overlaps(&b) {
                return Err(format!("segments {what} overlap: {a} vs {b}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_is_disjoint() {
        AddressSpaceLayout::default().validate().unwrap();
    }

    #[test]
    fn classification_matches_ranges() {
        let l = AddressSpaceLayout::default();
        assert_eq!(l.region_of(l.global.start), Some(Region::Global));
        assert_eq!(l.region_of(l.heap.start), Some(Region::Heap));
        assert_eq!(l.region_of(l.stack.end - 1), Some(Region::Stack));
        assert_eq!(l.region_of(VirtAddr::NULL), None);
        assert_eq!(l.region_of(l.global.end), None);
    }

    #[test]
    fn range_of_round_trips() {
        let l = AddressSpaceLayout::default();
        for r in Region::ALL {
            let range = l.range_of(r);
            assert_eq!(l.region_of(range.start), Some(r));
        }
    }

    #[test]
    fn overlap_detected() {
        let mut l = AddressSpaceLayout::default();
        l.heap = AddrRange::new(l.global.start, l.global.end + 10);
        assert!(l.validate().is_err());
    }
}
