//! Workspace error type.

use std::fmt;

/// Errors surfaced by the nvsim toolkit.
///
/// The simulators are deterministic and panic on internal invariant
/// violations (bugs); `NvsimError` covers *user-facing* failure modes:
/// invalid configuration, exhausted synthetic resources, and malformed
/// inputs to report parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NvsimError {
    /// A configuration value is inconsistent or out of range.
    InvalidConfig(String),
    /// A synthetic allocator ran out of address space.
    OutOfAddressSpace {
        /// Segment that was exhausted ("heap", "stack", "global").
        segment: &'static str,
        /// Bytes requested by the failing allocation.
        requested: u64,
    },
    /// An operation referenced an unknown object, routine or symbol.
    NotFound(String),
    /// An operation violated the API contract (e.g. `ret` with an empty
    /// shadow stack, free of an unallocated address).
    Protocol(String),
    /// A sweep worker failed — it panicked or returned an error — while
    /// evaluating one grid cell. The fleet converts caught panics into
    /// this variant so a single bad cell degrades instead of aborting
    /// the whole run.
    WorkerFailed {
        /// Cell or tool that failed (e.g. `GTC/pcram`, `stack tool`).
        cell: String,
        /// Human-readable cause: the panic payload or source error.
        cause: String,
    },
    /// A durable artifact (trace file, journal entry) failed validation:
    /// bad magic, a truncated frame, or a CRC mismatch.
    Corrupt {
        /// Section being decoded when validation failed
        /// (`"event header"`, `"transaction frame 3"`, ...).
        section: String,
        /// Absolute byte offset where the corruption was detected.
        offset: u64,
    },
    /// A file operation failed; carries the path for context so callers
    /// never have to print a bare `No such file or directory`.
    Io {
        /// Path of the file or directory being accessed.
        path: String,
        /// Underlying cause, stringified.
        cause: String,
    },
    /// A transient device or injection-point error. Retryable: the fleet
    /// re-attempts the cell with backoff before quarantining it.
    Transient {
        /// Injection point or device site that reported the error.
        point: String,
    },
}

impl fmt::Display for NvsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvsimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            NvsimError::OutOfAddressSpace { segment, requested } => {
                write!(f, "out of {segment} address space (requested {requested} bytes)")
            }
            NvsimError::NotFound(what) => write!(f, "not found: {what}"),
            NvsimError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NvsimError::WorkerFailed { cell, cause } => {
                write!(f, "worker failed on {cell}: {cause}")
            }
            NvsimError::Corrupt { section, offset } => {
                write!(f, "corrupt {section} at byte {offset}")
            }
            NvsimError::Io { path, cause } => write!(f, "{path}: {cause}"),
            NvsimError::Transient { point } => {
                write!(f, "transient device error at {point}")
            }
        }
    }
}

impl std::error::Error for NvsimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NvsimError::OutOfAddressSpace {
            segment: "heap",
            requested: 4096,
        };
        let s = e.to_string();
        assert!(s.contains("heap"));
        assert!(s.contains("4096"));
        assert!(NvsimError::NotFound("x".into()).to_string().contains("x"));
    }

    #[test]
    fn resilience_variants_name_their_subject() {
        let w = NvsimError::WorkerFailed {
            cell: "GTC/pcram".into(),
            cause: "injected".into(),
        };
        assert!(w.to_string().contains("GTC/pcram"));
        assert!(w.to_string().contains("injected"));

        let c = NvsimError::Corrupt {
            section: "transaction frame 2".into(),
            offset: 117,
        };
        assert!(c.to_string().contains("transaction frame 2"));
        assert!(c.to_string().contains("117"));

        let io = NvsimError::Io {
            path: "/tmp/x.json".into(),
            cause: "permission denied".into(),
        };
        assert!(io.to_string().contains("/tmp/x.json"));

        let t = NvsimError::Transient {
            point: "CAM/mram".into(),
        };
        assert!(t.to_string().contains("CAM/mram"));
    }
}
