//! Workspace error type.

use std::fmt;

/// Errors surfaced by the nvsim toolkit.
///
/// The simulators are deterministic and panic on internal invariant
/// violations (bugs); `NvsimError` covers *user-facing* failure modes:
/// invalid configuration, exhausted synthetic resources, and malformed
/// inputs to report parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NvsimError {
    /// A configuration value is inconsistent or out of range.
    InvalidConfig(String),
    /// A synthetic allocator ran out of address space.
    OutOfAddressSpace {
        /// Segment that was exhausted ("heap", "stack", "global").
        segment: &'static str,
        /// Bytes requested by the failing allocation.
        requested: u64,
    },
    /// An operation referenced an unknown object, routine or symbol.
    NotFound(String),
    /// An operation violated the API contract (e.g. `ret` with an empty
    /// shadow stack, free of an unallocated address).
    Protocol(String),
}

impl fmt::Display for NvsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvsimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            NvsimError::OutOfAddressSpace { segment, requested } => {
                write!(f, "out of {segment} address space (requested {requested} bytes)")
            }
            NvsimError::NotFound(what) => write!(f, "not found: {what}"),
            NvsimError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for NvsimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NvsimError::OutOfAddressSpace {
            segment: "heap",
            requested: 4096,
        };
        let s = e.to_string();
        assert!(s.contains("heap"));
        assert!(s.contains("4096"));
        assert!(NvsimError::NotFound("x".into()).to_string().contains("x"));
    }
}
