//! Virtual addresses and half-open address ranges.
//!
//! All simulators in the workspace operate on a synthetic 64-bit virtual
//! address space laid out by [`crate::region::AddressSpaceLayout`]. Using a
//! newtype rather than a bare `u64` keeps address arithmetic explicit and
//! lets the type system catch unit confusion (address vs. size vs. count).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A virtual memory address in the simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// The zero address. Never allocated by the layout; useful as a sentinel.
    pub const NULL: VirtAddr = VirtAddr(0);

    /// Creates an address from a raw value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Rounds the address down to a multiple of `align` (a power of two).
    ///
    /// # Panics
    /// Panics in debug builds if `align` is not a power of two.
    #[inline]
    pub fn align_down(self, align: u64) -> Self {
        debug_assert!(align.is_power_of_two(), "alignment must be a power of two");
        VirtAddr(self.0 & !(align - 1))
    }

    /// Rounds the address up to a multiple of `align` (a power of two).
    #[inline]
    pub fn align_up(self, align: u64) -> Self {
        debug_assert!(align.is_power_of_two(), "alignment must be a power of two");
        VirtAddr(self.0.checked_add(align - 1).expect("address overflow") & !(align - 1))
    }

    /// Returns `true` if the address is aligned to `align` bytes.
    #[inline]
    pub fn is_aligned(self, align: u64) -> bool {
        debug_assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.0 & (align - 1) == 0
    }

    /// The index of the cache line containing this address, for a given
    /// line size in bytes (power of two).
    #[inline]
    pub fn line_index(self, line_size: u64) -> u64 {
        debug_assert!(line_size.is_power_of_two());
        self.0 >> line_size.trailing_zeros()
    }

    /// Offset of this address from `base`. Panics if `self < base`.
    #[inline]
    pub fn offset_from(self, base: VirtAddr) -> u64 {
        self.0
            .checked_sub(base.0)
            .expect("offset_from: address below base")
    }

    /// Checked addition of a byte offset.
    #[inline]
    pub fn checked_add(self, bytes: u64) -> Option<Self> {
        self.0.checked_add(bytes).map(VirtAddr)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl Add<u64> for VirtAddr {
    type Output = VirtAddr;
    #[inline]
    fn add(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 + rhs)
    }
}

impl AddAssign<u64> for VirtAddr {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<u64> for VirtAddr {
    type Output = VirtAddr;
    #[inline]
    fn sub(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 - rhs)
    }
}

/// A half-open address range `[start, end)`.
///
/// Ranges are the unit of bookkeeping for memory objects: a heap allocation,
/// a stack frame, and a global symbol each own one range. FORTRAN common
/// blocks with overlapping views are merged into a single range that is the
/// union of the individual regions (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddrRange {
    /// First address in the range.
    pub start: VirtAddr,
    /// One past the last address in the range.
    pub end: VirtAddr,
}

impl AddrRange {
    /// Creates a range from `start` (inclusive) to `end` (exclusive).
    ///
    /// # Panics
    /// Panics if `end < start`.
    pub fn new(start: VirtAddr, end: VirtAddr) -> Self {
        assert!(end >= start, "AddrRange end {end} precedes start {start}");
        AddrRange { start, end }
    }

    /// Creates a range from a base address and a size in bytes.
    pub fn from_base_size(base: VirtAddr, size: u64) -> Self {
        AddrRange {
            start: base,
            end: base.checked_add(size).expect("AddrRange overflows u64"),
        }
    }

    /// An empty range at address zero.
    pub const fn empty() -> Self {
        AddrRange {
            start: VirtAddr::NULL,
            end: VirtAddr::NULL,
        }
    }

    /// Size of the range in bytes.
    #[inline]
    pub fn len(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// `true` if the range contains no addresses.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// `true` if `addr` lies inside the range.
    #[inline]
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.start && addr < self.end
    }

    /// `true` if the whole of `other` lies inside `self`.
    #[inline]
    pub fn contains_range(&self, other: &AddrRange) -> bool {
        other.start >= self.start && other.end <= self.end
    }

    /// `true` if the two ranges share at least one address.
    #[inline]
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Smallest range covering both `self` and `other` (the union used when
    /// merging overlapping FORTRAN common-block views, §III-C).
    pub fn union(&self, other: &AddrRange) -> AddrRange {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        AddrRange {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Intersection of the two ranges, or `None` if they are disjoint.
    pub fn intersection(&self, other: &AddrRange) -> Option<AddrRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(AddrRange { start, end })
        } else {
            None
        }
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_down_and_up() {
        let a = VirtAddr::new(0x1003);
        assert_eq!(a.align_down(64), VirtAddr::new(0x1000));
        assert_eq!(a.align_up(64), VirtAddr::new(0x1040));
        assert_eq!(VirtAddr::new(0x1000).align_up(64), VirtAddr::new(0x1000));
        assert!(VirtAddr::new(0x1000).is_aligned(64));
        assert!(!a.is_aligned(64));
    }

    #[test]
    fn line_index_uses_line_size() {
        assert_eq!(VirtAddr::new(0).line_index(64), 0);
        assert_eq!(VirtAddr::new(63).line_index(64), 0);
        assert_eq!(VirtAddr::new(64).line_index(64), 1);
        assert_eq!(VirtAddr::new(1 << 20).line_index(64), 1 << 14);
    }

    #[test]
    fn range_contains_and_overlap() {
        let r = AddrRange::from_base_size(VirtAddr::new(100), 50);
        assert_eq!(r.len(), 50);
        assert!(r.contains(VirtAddr::new(100)));
        assert!(r.contains(VirtAddr::new(149)));
        assert!(!r.contains(VirtAddr::new(150)));
        let s = AddrRange::from_base_size(VirtAddr::new(149), 10);
        assert!(r.overlaps(&s));
        let t = AddrRange::from_base_size(VirtAddr::new(150), 10);
        assert!(!r.overlaps(&t));
    }

    #[test]
    fn union_covers_both() {
        let r = AddrRange::from_base_size(VirtAddr::new(100), 50);
        let s = AddrRange::from_base_size(VirtAddr::new(140), 100);
        let u = r.union(&s);
        assert_eq!(u.start, VirtAddr::new(100));
        assert_eq!(u.end, VirtAddr::new(240));
        assert!(u.contains_range(&r));
        assert!(u.contains_range(&s));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let r = AddrRange::from_base_size(VirtAddr::new(100), 50);
        assert_eq!(r.union(&AddrRange::empty()), r);
        assert_eq!(AddrRange::empty().union(&r), r);
    }

    #[test]
    fn intersection_of_disjoint_is_none() {
        let r = AddrRange::from_base_size(VirtAddr::new(0), 10);
        let s = AddrRange::from_base_size(VirtAddr::new(10), 10);
        assert!(r.intersection(&s).is_none());
        let t = AddrRange::from_base_size(VirtAddr::new(5), 10);
        assert_eq!(
            r.intersection(&t),
            Some(AddrRange::from_base_size(VirtAddr::new(5), 5))
        );
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn reversed_range_panics() {
        let _ = AddrRange::new(VirtAddr::new(10), VirtAddr::new(5));
    }
}
