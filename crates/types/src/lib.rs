//! # nvsim-types
//!
//! Foundation types shared by every crate in the `nv-scavenger-rs` workspace,
//! the Rust reproduction of *"Identifying Opportunities for Byte-Addressable
//! Non-Volatile Memory in Extreme-Scale Scientific Applications"*
//! (Li et al., IPDPS 2012).
//!
//! The crate deliberately contains no simulation logic: it defines the
//! vocabulary the rest of the toolkit speaks —
//!
//! * [`addr`] — virtual addresses and address ranges,
//! * [`access`] — memory references and main-memory transactions,
//! * [`region`] — the stack/heap/global segmentation the paper's tool
//!   (NV-SCAVENGER, §III) attributes references to,
//! * [`device`] — NVRAM device profiles and the three NVRAM categories of
//!   §II (Table IV latencies, PCM currents used in §IV),
//! * [`config`] — the simulated cache/system configuration of Tables II/III,
//! * [`stats`] — read/write counters and the three NVRAM-opportunity
//!   metrics of §II (read/write ratio, object size, reference rate),
//! * [`units`] — byte/time unit helpers.
//!
//! ```
//! use nvsim_types::{AccessCounts, AddrRange, VirtAddr};
//!
//! // A 4 KiB object and the §II suitability metrics over its accesses.
//! let range = AddrRange::from_base_size(VirtAddr::new(0x1000), 4096);
//! assert!(range.contains(VirtAddr::new(0x1fff)));
//! assert_eq!(range.len(), 4096);
//!
//! let mut counts = AccessCounts::new(100, 2);
//! counts.record(true); // one more write
//! assert_eq!(counts.total(), 103);
//! // Read-mostly (ratio >> 1): an NVRAM placement candidate.
//! assert!(counts.read_write_ratio().unwrap() > 30.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access;
pub mod addr;
pub mod config;
pub mod device;
pub mod error;
pub mod region;
pub mod stats;
pub mod units;

pub use access::{AccessKind, MemRef, MemTransaction, TransactionKind};
pub use addr::{AddrRange, VirtAddr};
pub use config::{CacheConfig, CacheLevelConfig, SimConfig, SystemConfig, WriteAllocate};
pub use device::{DeviceProfile, MemoryTechnology, NvramCategory};
pub use error::NvsimError;
pub use region::{AddressSpaceLayout, Region};
pub use stats::{AccessCounts, IterationStats, ObjectMetrics};
