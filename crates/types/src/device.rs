//! Memory-device profiles: DDR3 DRAM and the NVRAM technologies of §II.
//!
//! The paper divides NVRAMs into three categories (§II):
//!
//! 1. long read **and** write latencies (PCRAM, Flash),
//! 2. long write latency but DRAM-like read latency (STTRAM),
//! 3. performance close to (or better than) DRAM (RRAM) — immature, out of
//!    scope for the study.
//!
//! Latencies follow Table IV. Cell currents follow §IV: PCM read 40 mA /
//! write 150 mA, and the same values are reused for STTRAM and MRAM so the
//! power estimate is an upper bound. DRAM additionally pays refresh and
//! leakage (background) power — the paper attributes "more than 35% of the
//! memory subsystem power consumption for memory-intensive workloads" to
//! leakage + refresh — while NVRAM standby power is zero.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The memory technology of a device profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryTechnology {
    /// Conventional DDR3 DRAM (the baseline of Tables IV and VI).
    Ddr3,
    /// Phase-change memory: category 1 (long read and write latencies).
    Pcram,
    /// Spin-torque-transfer RAM: category 2 (long writes, DRAM-like reads).
    Sttram,
    /// Magnetoresistive RAM: near-DRAM latencies in Table IV.
    Mram,
}

impl MemoryTechnology {
    /// All technologies in Table IV/VI report order.
    pub const ALL: [MemoryTechnology; 4] = [
        MemoryTechnology::Ddr3,
        MemoryTechnology::Pcram,
        MemoryTechnology::Sttram,
        MemoryTechnology::Mram,
    ];

    /// `true` for non-volatile technologies.
    pub fn is_nvram(self) -> bool {
        !matches!(self, MemoryTechnology::Ddr3)
    }
}

impl fmt::Display for MemoryTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryTechnology::Ddr3 => f.write_str("DDR3"),
            MemoryTechnology::Pcram => f.write_str("PCRAM"),
            MemoryTechnology::Sttram => f.write_str("STTRAM"),
            MemoryTechnology::Mram => f.write_str("MRAM"),
        }
    }
}

/// The paper's three NVRAM categories (§II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NvramCategory {
    /// Long access latencies for both reads and writes (PCRAM, Flash).
    LongReadWrite,
    /// Long write latency, read latency comparable to DRAM (STTRAM).
    LongWriteOnly,
    /// Performance close to or better than DRAM (RRAM) — immature.
    NearDram,
}

/// Electrical and timing parameters for one memory technology.
///
/// Latencies are device access latencies as in Table IV; currents are the
/// per-operation cell currents of §IV. `refresh_interval_ns == 0` means the
/// device never refreshes (all NVRAMs). `standby_power_mw_per_gb` models
/// leakage + peripheral standby; it is zero for NVRAM per §II ("NVRAMs have
/// zero standby power").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Technology this profile describes.
    pub technology: MemoryTechnology,
    /// Real device read latency in nanoseconds (Table IV, column 2).
    pub read_latency_ns: f64,
    /// Real device write latency in nanoseconds (Table IV, column 3).
    pub write_latency_ns: f64,
    /// Latency used by the performance simulation, which cannot
    /// differentiate reads from writes (Table IV, column 4). Using the write
    /// latency for both makes the simulated slowdown a lower bound on
    /// performance (§V).
    pub perf_sim_latency_ns: f64,
    /// Cell read current in milliamps (§IV: 40 mA for PCM, reused for
    /// STTRAM/MRAM as an upper bound).
    pub read_current_ma: f64,
    /// Cell write current in milliamps (§IV: 150 mA for PCM; the paper
    /// assumes set current equals the larger reset current, again an upper
    /// bound).
    pub write_current_ma: f64,
    /// Average refresh interval per row in nanoseconds; 0 disables refresh.
    pub refresh_interval_ns: f64,
    /// Standby (leakage + refresh-logic) power per gigabyte in milliwatts.
    pub standby_power_mw_per_gb: f64,
    /// Base-10 logarithm of write endurance (§II: PCRAM 8–9.7, DRAM 16).
    pub endurance_log10: f64,
}

impl DeviceProfile {
    /// DDR3 DRAM baseline: 10 ns read/write, refresh enabled, nonzero
    /// standby power. Current values approximate DDR3 IDD4R/IDD4W burst
    /// draw; absolute magnitudes cancel in the normalized Table VI result.
    pub fn ddr3() -> Self {
        DeviceProfile {
            technology: MemoryTechnology::Ddr3,
            read_latency_ns: 10.0,
            write_latency_ns: 10.0,
            perf_sim_latency_ns: 10.0,
            read_current_ma: 40.0,
            write_current_ma: 40.0,
            refresh_interval_ns: 7_800.0, // tREFI for DDR3
            standby_power_mw_per_gb: 62.0,
            endurance_log10: 16.0,
        }
    }

    /// PCRAM: 20 ns read, 100 ns write (Table IV), zero standby/refresh.
    pub fn pcram() -> Self {
        DeviceProfile {
            technology: MemoryTechnology::Pcram,
            read_latency_ns: 20.0,
            write_latency_ns: 100.0,
            perf_sim_latency_ns: 100.0,
            read_current_ma: 40.0,
            write_current_ma: 150.0,
            refresh_interval_ns: 0.0,
            standby_power_mw_per_gb: 0.0,
            endurance_log10: 8.85, // midpoint of 10^8 .. 10^9.7
        }
    }

    /// STTRAM: 10 ns read, 20 ns write (Table IV); PCM currents reused.
    pub fn sttram() -> Self {
        DeviceProfile {
            technology: MemoryTechnology::Sttram,
            read_latency_ns: 10.0,
            write_latency_ns: 20.0,
            perf_sim_latency_ns: 20.0,
            read_current_ma: 40.0,
            write_current_ma: 150.0,
            refresh_interval_ns: 0.0,
            standby_power_mw_per_gb: 0.0,
            endurance_log10: 15.0,
        }
    }

    /// MRAM: 12 ns read and write (Table IV); PCM currents reused.
    pub fn mram() -> Self {
        DeviceProfile {
            technology: MemoryTechnology::Mram,
            read_latency_ns: 12.0,
            write_latency_ns: 12.0,
            perf_sim_latency_ns: 12.0,
            read_current_ma: 40.0,
            write_current_ma: 150.0,
            refresh_interval_ns: 0.0,
            standby_power_mw_per_gb: 0.0,
            endurance_log10: 15.0,
        }
    }

    /// Profile for a technology.
    pub fn for_technology(t: MemoryTechnology) -> Self {
        match t {
            MemoryTechnology::Ddr3 => Self::ddr3(),
            MemoryTechnology::Pcram => Self::pcram(),
            MemoryTechnology::Sttram => Self::sttram(),
            MemoryTechnology::Mram => Self::mram(),
        }
    }

    /// NVRAM category per §II; `None` for DRAM.
    pub fn category(&self) -> Option<NvramCategory> {
        match self.technology {
            MemoryTechnology::Ddr3 => None,
            MemoryTechnology::Pcram => Some(NvramCategory::LongReadWrite),
            MemoryTechnology::Sttram => Some(NvramCategory::LongWriteOnly),
            MemoryTechnology::Mram => Some(NvramCategory::NearDram),
        }
    }

    /// Write/read latency asymmetry.
    pub fn write_read_latency_ratio(&self) -> f64 {
        self.write_latency_ns / self.read_latency_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_latencies() {
        // Exact values from Table IV of the paper.
        let d = DeviceProfile::ddr3();
        assert_eq!((d.read_latency_ns, d.write_latency_ns), (10.0, 10.0));
        let p = DeviceProfile::pcram();
        assert_eq!((p.read_latency_ns, p.write_latency_ns), (20.0, 100.0));
        assert_eq!(p.perf_sim_latency_ns, 100.0);
        let s = DeviceProfile::sttram();
        assert_eq!((s.read_latency_ns, s.write_latency_ns), (10.0, 20.0));
        let m = DeviceProfile::mram();
        assert_eq!((m.read_latency_ns, m.write_latency_ns), (12.0, 12.0));
    }

    #[test]
    fn nvram_has_zero_standby_and_refresh() {
        for t in MemoryTechnology::ALL {
            let p = DeviceProfile::for_technology(t);
            if t.is_nvram() {
                assert_eq!(p.standby_power_mw_per_gb, 0.0, "{t}");
                assert_eq!(p.refresh_interval_ns, 0.0, "{t}");
            } else {
                assert!(p.standby_power_mw_per_gb > 0.0);
                assert!(p.refresh_interval_ns > 0.0);
            }
        }
    }

    #[test]
    fn section_ii_latency_asymmetries() {
        // §II: STT-RAM write latency ~4x DRAM write; PCRAM write 10x, read 2x.
        let d = DeviceProfile::ddr3();
        let p = DeviceProfile::pcram();
        assert_eq!(p.write_latency_ns / d.write_latency_ns, 10.0);
        assert_eq!(p.read_latency_ns / d.read_latency_ns, 2.0);
        assert!(p.write_read_latency_ratio() > 1.0);
    }

    #[test]
    fn categories() {
        assert_eq!(
            DeviceProfile::pcram().category(),
            Some(NvramCategory::LongReadWrite)
        );
        assert_eq!(
            DeviceProfile::sttram().category(),
            Some(NvramCategory::LongWriteOnly)
        );
        assert_eq!(DeviceProfile::ddr3().category(), None);
    }

    #[test]
    fn pcm_currents_are_upper_bound_for_all_nvram() {
        for t in [MemoryTechnology::Pcram, MemoryTechnology::Sttram, MemoryTechnology::Mram] {
            let p = DeviceProfile::for_technology(t);
            assert_eq!(p.read_current_ma, 40.0);
            assert_eq!(p.write_current_ma, 150.0);
        }
    }
}
