//! Access counters and the three NVRAM-opportunity metrics of §II.
//!
//! The paper quantifies NVRAM opportunity per memory object with:
//!
//! 1. **read/write ratio** — higher means less write-intensive, favoured by
//!    NVRAM (especially category 2, STTRAM-like);
//! 2. **memory object size** — static power savings scale with the bytes
//!    parked in NVRAM;
//! 3. **memory reference rate** — a complementary guard: an object with a
//!    high read/write ratio can still contribute a large share of absolute
//!    writes, which category-1 NVRAM must avoid.
//!
//! These are evaluated *per iteration of the main computation loop* and
//! compared across iterations to detect usage variance (§II, §VII-C).

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Raw read/write counters for one object (or one region, or one iteration).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessCounts {
    /// Number of read references.
    pub reads: u64,
    /// Number of write references.
    pub writes: u64,
}

impl AccessCounts {
    /// A zeroed counter.
    pub const ZERO: AccessCounts = AccessCounts { reads: 0, writes: 0 };

    /// Creates counters from explicit values.
    pub fn new(reads: u64, writes: u64) -> Self {
        AccessCounts { reads, writes }
    }

    /// Total references.
    #[inline]
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Read/write ratio (metric 1).
    ///
    /// Objects that are never written are *read-only*; their ratio is
    /// `f64::INFINITY`. Objects never accessed return `None` so callers can
    /// distinguish "untouched" from "read-only".
    #[inline]
    pub fn read_write_ratio(&self) -> Option<f64> {
        if self.total() == 0 {
            None
        } else if self.writes == 0 {
            Some(f64::INFINITY)
        } else {
            Some(self.reads as f64 / self.writes as f64)
        }
    }

    /// `true` if the object was accessed but never written.
    #[inline]
    pub fn is_read_only(&self) -> bool {
        self.reads > 0 && self.writes == 0
    }

    /// Fraction of all writes in `total_writes` attributable to this
    /// counter; 0 when `total_writes` is 0.
    #[inline]
    pub fn write_share(&self, total_writes: u64) -> f64 {
        if total_writes == 0 {
            0.0
        } else {
            self.writes as f64 / total_writes as f64
        }
    }

    /// Records one access.
    #[inline]
    pub fn record(&mut self, is_write: bool) {
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
    }
}

impl AddAssign for AccessCounts {
    #[inline]
    fn add_assign(&mut self, rhs: AccessCounts) {
        self.reads += rhs.reads;
        self.writes += rhs.writes;
    }
}

/// Per-iteration snapshot of one object's three metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Read/write counters accumulated during the iteration.
    pub counts: AccessCounts,
    /// References per instrumented instruction slot ×10⁶ — the "memory
    /// reference rate" (metric 3). The producer decides the denominator
    /// (total references in the iteration); stored pre-computed so snapshots
    /// are self-contained.
    pub reference_rate: f64,
}

impl IterationStats {
    /// Builds a snapshot from counters and the iteration-wide totals.
    pub fn from_counts(counts: AccessCounts, iteration_total_refs: u64) -> Self {
        let reference_rate = if iteration_total_refs == 0 {
            0.0
        } else {
            counts.total() as f64 / iteration_total_refs as f64
        };
        IterationStats {
            counts,
            reference_rate,
        }
    }
}

/// Aggregated metrics for one memory object across the instrumented window:
/// the unit row of Figures 3–6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectMetrics {
    /// Object size in bytes (metric 2).
    pub size_bytes: u64,
    /// Totals across all instrumented iterations.
    pub total: AccessCounts,
    /// Per-iteration snapshots, index 0 = first main-loop iteration.
    pub per_iteration: Vec<IterationStats>,
    /// Number of iterations in which the object was touched at least once.
    pub iterations_touched: u32,
}

impl ObjectMetrics {
    /// Creates empty metrics for an object of `size_bytes`.
    pub fn new(size_bytes: u64) -> Self {
        ObjectMetrics {
            size_bytes,
            total: AccessCounts::ZERO,
            per_iteration: Vec::new(),
            iterations_touched: 0,
        }
    }

    /// Overall read/write ratio across the window.
    pub fn read_write_ratio(&self) -> Option<f64> {
        self.total.read_write_ratio()
    }

    /// Normalized variance series used by Figures 8–11: each iteration's
    /// read/write ratio divided by the first iteration's. Iterations where
    /// either value is unavailable yield `None` entries.
    pub fn rw_ratio_normalized(&self) -> Vec<Option<f64>> {
        let first = self
            .per_iteration
            .first()
            .and_then(|s| s.counts.read_write_ratio())
            .filter(|r| r.is_finite() && *r > 0.0);
        self.per_iteration
            .iter()
            .map(|s| match (first, s.counts.read_write_ratio()) {
                (Some(f), Some(r)) if r.is_finite() => Some(r / f),
                _ => None,
            })
            .collect()
    }

    /// Normalized reference-rate series for Figures 8–11.
    pub fn ref_rate_normalized(&self) -> Vec<Option<f64>> {
        let first = self
            .per_iteration
            .first()
            .map(|s| s.reference_rate)
            .filter(|r| *r > 0.0);
        self.per_iteration
            .iter()
            .map(|s| first.map(|f| s.reference_rate / f))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_cases() {
        assert_eq!(AccessCounts::ZERO.read_write_ratio(), None);
        assert_eq!(
            AccessCounts::new(10, 0).read_write_ratio(),
            Some(f64::INFINITY)
        );
        assert_eq!(AccessCounts::new(20, 4).read_write_ratio(), Some(5.0));
        assert!(AccessCounts::new(10, 0).is_read_only());
        assert!(!AccessCounts::new(0, 0).is_read_only());
        assert!(!AccessCounts::new(10, 1).is_read_only());
    }

    #[test]
    fn record_and_add() {
        let mut c = AccessCounts::ZERO;
        c.record(false);
        c.record(false);
        c.record(true);
        assert_eq!(c, AccessCounts::new(2, 1));
        let mut d = AccessCounts::new(1, 1);
        d += c;
        assert_eq!(d, AccessCounts::new(3, 2));
    }

    #[test]
    fn write_share() {
        let c = AccessCounts::new(100, 25);
        assert_eq!(c.write_share(100), 0.25);
        assert_eq!(c.write_share(0), 0.0);
    }

    #[test]
    fn iteration_stats_rate() {
        let s = IterationStats::from_counts(AccessCounts::new(30, 10), 400);
        assert_eq!(s.reference_rate, 0.1);
        let z = IterationStats::from_counts(AccessCounts::ZERO, 0);
        assert_eq!(z.reference_rate, 0.0);
    }

    #[test]
    fn normalized_series() {
        let mut m = ObjectMetrics::new(4096);
        m.per_iteration = vec![
            IterationStats::from_counts(AccessCounts::new(10, 2), 100), // ratio 5
            IterationStats::from_counts(AccessCounts::new(20, 2), 100), // ratio 10
            IterationStats::from_counts(AccessCounts::new(5, 1), 100),  // ratio 5
        ];
        let norm = m.rw_ratio_normalized();
        assert_eq!(norm, vec![Some(1.0), Some(2.0), Some(1.0)]);
        let rates = m.ref_rate_normalized();
        assert_eq!(rates[0], Some(1.0));
    }

    #[test]
    fn normalized_series_handles_zero_first_iteration() {
        let mut m = ObjectMetrics::new(64);
        m.per_iteration = vec![
            IterationStats::from_counts(AccessCounts::ZERO, 100),
            IterationStats::from_counts(AccessCounts::new(10, 5), 100),
        ];
        assert_eq!(m.rw_ratio_normalized(), vec![None, None]);
        assert_eq!(m.ref_rate_normalized(), vec![None, None]);
    }
}
