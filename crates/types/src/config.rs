//! Simulation configuration mirroring Tables II and III of the paper.
//!
//! Table II (used by both NV-SCAVENGER's embedded cache simulator and the
//! PTLsim performance simulation):
//!
//! * L1 (private): split I/D, 32 KB each, 4-way, 64-byte lines,
//!   **no-write-allocate**;
//! * L2 (private): 1 MB, 16-way, LRU, 64-byte lines, **write-allocate**.
//!
//! Table III (system): 2.266 GHz x86 out-of-order cores, 8-bank L1 with
//! 1-cycle hits, L2 with 5-cycle hits, 64-entry load fill request queue,
//! 64-entry miss buffer, 2 GB devices with 16 banks and 16 ranks, device
//! width 4, 64-bit JEDEC data bus, 1024 rows × 1024 columns.

use crate::device::{DeviceProfile, MemoryTechnology};
use serde::{Deserialize, Serialize};

/// Write-miss allocation policy of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WriteAllocate {
    /// Write misses allocate a line (fetch-on-write).
    Allocate,
    /// Write misses do not allocate; the write is forwarded downstream.
    NoAllocate,
}

/// Geometry and policy of one cache level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Set associativity (ways).
    pub associativity: u32,
    /// Cache line size in bytes (power of two).
    pub line_size: u64,
    /// Write-miss allocation policy.
    pub write_allocate: WriteAllocate,
    /// Hit latency in CPU cycles (Table III).
    pub hit_latency_cycles: u32,
}

impl CacheLevelConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    /// Panics if the geometry does not divide evenly or sets are not a
    /// power of two (required by the index function).
    pub fn num_sets(&self) -> u64 {
        let line_capacity = self.size_bytes / self.line_size;
        assert_eq!(
            self.size_bytes % self.line_size,
            0,
            "cache size must be a multiple of line size"
        );
        let sets = line_capacity / u64::from(self.associativity);
        assert_eq!(
            line_capacity % u64::from(self.associativity),
            0,
            "cache lines must divide evenly into ways"
        );
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// Two-level private cache hierarchy of Table II.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// L1 data cache (the instruction cache is not simulated: the tool
    /// instruments data references only).
    pub l1: CacheLevelConfig,
    /// Unified private L2.
    pub l2: CacheLevelConfig,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            l1: CacheLevelConfig {
                size_bytes: 32 * 1024,
                associativity: 4,
                line_size: 64,
                write_allocate: WriteAllocate::NoAllocate,
                hit_latency_cycles: 1,
            },
            l2: CacheLevelConfig {
                size_bytes: 1024 * 1024,
                associativity: 16,
                line_size: 64,
                write_allocate: WriteAllocate::Allocate,
                hit_latency_cycles: 5,
            },
        }
    }
}

/// System configuration of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Core clock in GHz (Table III: 2.266 GHz).
    pub cpu_ghz: f64,
    /// Hardware threads per core (Table III: one).
    pub threads_per_core: u32,
    /// Number of cores (two quad-core processors).
    pub cores: u32,
    /// Per-core TLB entries.
    pub tlb_entries: u32,
    /// Load fill request queue entries.
    pub load_fill_queue_entries: u32,
    /// Miss buffer entries (bounds memory-level parallelism in §V).
    pub miss_buffer_entries: u32,
    /// Memory device capacity in bytes (Table III: 2 GB).
    pub mem_capacity_bytes: u64,
    /// Banks per rank.
    pub banks: u32,
    /// Ranks per channel.
    pub ranks: u32,
    /// Device width in bits.
    pub device_width: u32,
    /// JEDEC data bus width in bits.
    pub bus_bits: u32,
    /// Rows per bank.
    pub rows: u32,
    /// Columns per row.
    pub cols: u32,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            cpu_ghz: 2.266,
            threads_per_core: 1,
            cores: 8,
            tlb_entries: 32,
            load_fill_queue_entries: 64,
            miss_buffer_entries: 64,
            mem_capacity_bytes: 2 * 1024 * 1024 * 1024,
            banks: 16,
            ranks: 16,
            device_width: 4,
            bus_bits: 64,
            rows: 1024,
            cols: 1024,
        }
    }
}

impl SystemConfig {
    /// CPU cycle time in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.cpu_ghz
    }

    /// Converts a latency in nanoseconds to (rounded-up) CPU cycles.
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * self.cpu_ghz).ceil() as u64
    }
}

/// Top-level simulation configuration bundling Tables II–IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Cache hierarchy (Table II).
    pub cache: CacheConfig,
    /// System parameters (Table III).
    pub system: SystemConfig,
    /// Memory device under study (Table IV).
    pub device: DeviceProfile,
    /// Iterations of the main computation loop to instrument (§VII: "We
    /// collect data for the first 10 iterations").
    pub main_loop_iterations: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cache: CacheConfig::default(),
            system: SystemConfig::default(),
            device: DeviceProfile::ddr3(),
            main_loop_iterations: 10,
        }
    }
}

impl SimConfig {
    /// Same configuration with a different memory device.
    pub fn with_technology(mut self, t: MemoryTechnology) -> Self {
        self.device = DeviceProfile::for_technology(t);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_geometry() {
        let c = CacheConfig::default();
        assert_eq!(c.l1.num_sets(), 128); // 32KB / 64B / 4 ways
        assert_eq!(c.l2.num_sets(), 1024); // 1MB / 64B / 16 ways
        assert_eq!(c.l1.write_allocate, WriteAllocate::NoAllocate);
        assert_eq!(c.l2.write_allocate, WriteAllocate::Allocate);
    }

    #[test]
    fn table_iii_defaults() {
        let s = SystemConfig::default();
        assert_eq!(s.cpu_ghz, 2.266);
        assert_eq!(s.miss_buffer_entries, 64);
        assert_eq!(s.banks, 16);
        assert_eq!(s.ranks, 16);
        assert_eq!(s.rows, 1024);
        assert_eq!(s.cols, 1024);
    }

    #[test]
    fn cycle_conversion_rounds_up() {
        let s = SystemConfig::default();
        // 10ns at 2.266GHz = 22.66 cycles -> 23
        assert_eq!(s.ns_to_cycles(10.0), 23);
        assert_eq!(s.ns_to_cycles(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let mut l = CacheConfig::default().l1;
        l.size_bytes = 48 * 1024; // 192 sets, not a power of two
        let _ = l.num_sets();
    }

    #[test]
    fn config_serializes() {
        let cfg = SimConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
