//! Property tests for the address/range algebra and counters.

use nvsim_types::{AccessCounts, AddrRange, VirtAddr};
use proptest::prelude::*;

fn range_strategy() -> impl Strategy<Value = AddrRange> {
    (0u64..1 << 40, 0u64..1 << 20)
        .prop_map(|(base, len)| AddrRange::from_base_size(VirtAddr::new(base), len))
}

proptest! {
    #[test]
    fn align_down_le_addr_le_align_up(raw in 0u64..1 << 60, shift in 0u32..20) {
        let align = 1u64 << shift;
        let a = VirtAddr::new(raw);
        let down = a.align_down(align);
        let up = a.align_up(align);
        prop_assert!(down <= a);
        prop_assert!(up >= a);
        prop_assert!(down.is_aligned(align));
        prop_assert!(up.is_aligned(align));
        prop_assert!(up.raw() - down.raw() < 2 * align);
    }

    #[test]
    fn union_contains_both(r in range_strategy(), s in range_strategy()) {
        let u = r.union(&s);
        prop_assert!(u.contains_range(&r));
        prop_assert!(u.contains_range(&s));
        // Union is the smallest such range: its ends touch r or s.
        prop_assert!(u.start == r.start || u.start == s.start);
        prop_assert!(u.end == r.end || u.end == s.end);
    }

    #[test]
    fn intersection_is_contained_and_symmetric(r in range_strategy(), s in range_strategy()) {
        let i1 = r.intersection(&s);
        let i2 = s.intersection(&r);
        prop_assert_eq!(i1, i2);
        if let Some(i) = i1 {
            prop_assert!(r.contains_range(&i));
            prop_assert!(s.contains_range(&i));
            prop_assert!(r.overlaps(&s));
        } else {
            prop_assert!(!r.overlaps(&s) || r.is_empty() || s.is_empty());
        }
    }

    #[test]
    fn overlap_iff_some_common_point(r in range_strategy(), s in range_strategy()) {
        let overlaps = r.overlaps(&s);
        let common = r.intersection(&s).is_some();
        prop_assert_eq!(overlaps, common);
    }

    #[test]
    fn contains_respects_bounds(r in range_strategy(), probe in 0u64..1 << 41) {
        let p = VirtAddr::new(probe);
        prop_assert_eq!(r.contains(p), p >= r.start && p < r.end);
    }

    #[test]
    fn counters_accumulate(ops in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut c = AccessCounts::ZERO;
        for &w in &ops {
            c.record(w);
        }
        let writes = ops.iter().filter(|&&w| w).count() as u64;
        prop_assert_eq!(c.writes, writes);
        prop_assert_eq!(c.reads, ops.len() as u64 - writes);
        prop_assert_eq!(c.total(), ops.len() as u64);
        match c.read_write_ratio() {
            None => prop_assert_eq!(c.total(), 0),
            Some(r) if r.is_infinite() => prop_assert!(c.writes == 0 && c.reads > 0),
            Some(r) => {
                prop_assert!((r - c.reads as f64 / c.writes as f64).abs() < 1e-12);
            }
        }
    }
}
