//! Event-sink adapter running the reference stream through the core model.

use crate::model::{CoreParams, CpuResult, OooCore};
use nvsim_trace::{Event, EventSink, Phase};
use nvsim_types::MemRef;

/// An [`EventSink`] that times the traced program on the core model.
///
/// §VII-E: "only one iteration of the main computation loop (or one time
/// step) for one task is simulated" — the sink can therefore be restricted
/// to time only a window of iterations.
pub struct CpuSink {
    core: Option<OooCore>,
    result: Option<CpuResult>,
    /// When set, only references inside `[from, to)` main-loop iterations
    /// are timed.
    window: Option<(u32, u32)>,
    in_window: bool,
}

impl CpuSink {
    /// Times the entire reference stream.
    pub fn new(params: CoreParams) -> Self {
        CpuSink {
            core: Some(OooCore::new(params)),
            result: None,
            window: None,
            in_window: true,
        }
    }

    /// Times only main-loop iterations `from..to` (§VII-E uses one
    /// iteration).
    pub fn for_iterations(params: CoreParams, from: u32, to: u32) -> Self {
        CpuSink {
            core: Some(OooCore::new(params)),
            result: None,
            window: Some((from, to)),
            in_window: false,
        }
    }

    /// The timing result (available after the program finished).
    pub fn result(&self) -> Option<CpuResult> {
        self.result
    }

    fn finalize(&mut self) {
        if let Some(core) = self.core.take() {
            self.result = Some(core.finish());
        }
    }
}

impl EventSink for CpuSink {
    fn on_batch(&mut self, refs: &[MemRef]) {
        if !self.in_window {
            return;
        }
        if let Some(core) = self.core.as_mut() {
            for r in refs {
                core.feed(r);
            }
        }
    }

    fn on_control(&mut self, event: &Event) {
        if let Event::Phase(p) = event {
            match (*p, self.window) {
                (Phase::IterationBegin(i), Some((from, to))) => {
                    self.in_window = i >= from && i < to;
                }
                (Phase::IterationEnd(i), Some((_, to)))
                    if i + 1 >= to => {
                        self.in_window = false;
                    }
                (Phase::ProgramEnd, _) => self.finalize(),
                _ => {}
            }
        }
    }

    fn on_finish(&mut self) {
        self.finalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim_trace::{TracedVec, Tracer};

    fn run(window: Option<(u32, u32)>) -> CpuResult {
        let params = CoreParams::default();
        let mut sink = match window {
            Some((a, b)) => CpuSink::for_iterations(params, a, b),
            None => CpuSink::new(params),
        };
        {
            let mut t = Tracer::new(&mut sink);
            let mut v = TracedVec::<f64>::global(&mut t, "v", 1024).unwrap();
            for iter in 0..4u32 {
                t.phase(Phase::IterationBegin(iter));
                for i in 0..1024 {
                    v.update(&mut t, i, |x| x + 1.0);
                }
                t.phase(Phase::IterationEnd(iter));
            }
            t.finish();
        }
        sink.result().expect("program finished")
    }

    #[test]
    fn whole_program_counts_all_refs() {
        let r = run(None);
        assert_eq!(r.refs, 4 * 1024 * 2);
    }

    #[test]
    fn iteration_window_restricts_timing() {
        let r = run(Some((1, 2)));
        assert_eq!(r.refs, 1024 * 2);
        let r2 = run(Some((0, 4)));
        assert_eq!(r2.refs, 4 * 1024 * 2);
    }
}
