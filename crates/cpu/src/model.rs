//! The out-of-order core interval model.
//!
//! One pass over the reference stream, no event queue: the model tracks
//! the issue clock, a bounded set of outstanding misses (the miss buffer /
//! MSHR file of Table III) and a bounded reorder window. A miss's
//! completion time is its issue time plus the hierarchy latency; the core
//! stalls only when a structural limit binds (window full, miss buffer
//! full) or a dependent load needs an in-flight value. That is the
//! standard interval approximation of an OoO core, and it reproduces the
//! first-order behaviour §V relies on: independent misses overlap, so
//! runtime grows far slower than memory latency.

use nvsim_cache::CacheHierarchy;
use nvsim_types::{CacheConfig, MemRef, SystemConfig};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Core parameters (defaults follow Table III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreParams {
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Reorder-window (ROB) capacity in instructions.
    pub window: u32,
    /// Miss-buffer entries (outstanding cache misses), Table III: 64.
    pub miss_buffer: u32,
    /// Non-memory instructions modelled per memory reference (scientific
    /// kernels run roughly two arithmetic/control instructions per
    /// load/store).
    pub ops_per_ref: f64,
    /// Every `dependence_distance`-th missing load depends on the most
    /// recent in-flight miss (gather/indirect chains); 0 disables
    /// dependences.
    pub dependence_distance: u32,
    /// Main-memory read access latency in ns.
    pub mem_latency_ns: f64,
    /// Main-memory write access latency in ns. `None` means write = read,
    /// which is the paper's §V assumption ("the current simulator does not
    /// differentiate between read and write latencies ... our simulation
    /// in fact provides a performance lower bound"). Setting it to the
    /// device's real write latency while `mem_latency_ns` holds the real
    /// read latency turns the lower bound into the real asymmetric-device
    /// estimate — the extension experiment `fig12_split` measures the gap.
    pub mem_write_latency_ns: Option<f64>,
    /// Core clock in GHz.
    pub cpu_ghz: f64,
    /// L1 hit latency, cycles.
    pub l1_hit_cycles: u32,
    /// L2 hit latency, cycles.
    pub l2_hit_cycles: u32,
    /// Next-line prefetch degree in the cache hierarchy (0 = off, the
    /// Table II baseline). §V lists prefetching among the latency-hiding
    /// features; the `prefetch` bench measures its effect on Figure 12.
    pub prefetch_degree: u32,
}

impl CoreParams {
    /// Defaults from Tables II–IV with a given memory latency.
    pub fn with_latency_ns(mem_latency_ns: f64) -> Self {
        let sys = SystemConfig::default();
        let cache = CacheConfig::default();
        CoreParams {
            issue_width: 4,
            window: 128,
            miss_buffer: sys.miss_buffer_entries,
            ops_per_ref: 2.0,
            dependence_distance: 8,
            mem_latency_ns,
            mem_write_latency_ns: None,
            cpu_ghz: sys.cpu_ghz,
            l1_hit_cycles: cache.l1.hit_latency_cycles,
            l2_hit_cycles: cache.l2.hit_latency_cycles,
            prefetch_degree: 0,
        }
    }

    /// Memory read latency in core cycles (rounded up).
    pub fn mem_latency_cycles(&self) -> u64 {
        (self.mem_latency_ns * self.cpu_ghz).ceil() as u64
    }

    /// Memory write latency in core cycles; equals the read latency when
    /// no separate write latency is configured (§V assumption).
    pub fn mem_write_latency_cycles(&self) -> u64 {
        (self.mem_write_latency_ns.unwrap_or(self.mem_latency_ns) * self.cpu_ghz).ceil() as u64
    }

    /// Configures real asymmetric device latencies from a profile.
    pub fn with_device(device: &nvsim_types::DeviceProfile) -> Self {
        let mut p = Self::with_latency_ns(device.read_latency_ns);
        p.mem_write_latency_ns = Some(device.write_latency_ns);
        p
    }
}

impl Default for CoreParams {
    fn default() -> Self {
        Self::with_latency_ns(10.0)
    }
}

/// Result of one timing run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuResult {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Memory references consumed.
    pub refs: u64,
    /// Modelled instructions (refs × (1 + ops_per_ref)).
    pub instructions: u64,
    /// References that missed to main memory.
    pub mem_accesses: u64,
    /// Cycles lost to full miss buffer.
    pub mshr_stall_cycles: u64,
    /// Cycles lost to full reorder window.
    pub window_stall_cycles: u64,
}

impl CpuResult {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Runtime in nanoseconds for a given clock.
    pub fn runtime_ns(&self, cpu_ghz: f64) -> f64 {
        self.cycles as f64 / cpu_ghz
    }
}

/// The core model. Feed it references, then call [`OooCore::finish`].
///
/// ```
/// use nvsim_cpu::{CoreParams, OooCore};
/// use nvsim_types::{MemRef, VirtAddr};
///
/// let mut core = OooCore::new(CoreParams::with_latency_ns(100.0));
/// for i in 0..10_000u64 {
///     core.feed(&MemRef::read(VirtAddr::new(0x40_0000 + i * 64), 8));
/// }
/// let result = core.finish();
/// assert_eq!(result.refs, 10_000);
/// // 64 MSHRs overlap the misses: far faster than serial latency.
/// assert!(result.cycles < result.mem_accesses * 227);
/// ```
pub struct OooCore {
    params: CoreParams,
    hierarchy: CacheHierarchy,
    /// Issue clock in cycles ×`issue_width` (kept scaled to stay integral).
    issue_subcycles: u64,
    /// Completion cycles of outstanding misses, oldest first.
    mshrs: VecDeque<u64>,
    /// Completion cycles of in-window instructions, program order.
    window: VecDeque<u64>,
    last_miss_completion: u64,
    miss_counter: u32,
    horizon: u64,
    result: CpuResult,
}

impl OooCore {
    /// Creates a core with the Table II cache hierarchy.
    pub fn new(params: CoreParams) -> Self {
        OooCore {
            hierarchy: CacheHierarchy::new(&CacheConfig::default())
                .with_prefetch(params.prefetch_degree),
            issue_subcycles: 0,
            mshrs: VecDeque::with_capacity(params.miss_buffer as usize),
            window: VecDeque::with_capacity(params.window as usize),
            last_miss_completion: 0,
            miss_counter: 0,
            horizon: 0,
            result: CpuResult {
                cycles: 0,
                refs: 0,
                instructions: 0,
                mem_accesses: 0,
                mshr_stall_cycles: 0,
                window_stall_cycles: 0,
            },
            params,
        }
    }

    #[inline]
    fn issue_cycle(&self) -> u64 {
        self.issue_subcycles / u64::from(self.params.issue_width)
    }

    #[inline]
    fn bump_issue(&mut self, instructions: u64) {
        self.issue_subcycles += instructions;
        self.result.instructions += instructions;
    }

    /// Retires instructions that would block the window; returns the
    /// adjusted issue cycle after any stall.
    fn reserve_window_slot(&mut self) {
        if self.window.len() == self.params.window as usize {
            let oldest = self.window.pop_front().expect("window is full");
            let now = self.issue_cycle();
            if oldest > now {
                self.result.window_stall_cycles += oldest - now;
                self.issue_subcycles = oldest * u64::from(self.params.issue_width);
            }
        }
    }

    fn reserve_mshr(&mut self) {
        if self.mshrs.len() == self.params.miss_buffer as usize {
            let oldest = self.mshrs.pop_front().expect("mshr file is full");
            let now = self.issue_cycle();
            if oldest > now {
                self.result.mshr_stall_cycles += oldest - now;
                self.issue_subcycles = oldest * u64::from(self.params.issue_width);
            }
        }
        // Also drop entries that already completed.
        let now = self.issue_cycle();
        while matches!(self.mshrs.front(), Some(&c) if c <= now) {
            self.mshrs.pop_front();
        }
    }

    /// Feeds one memory reference.
    pub fn feed(&mut self, r: &MemRef) {
        self.result.refs += 1;
        // Surrounding compute instructions.
        let ops = (self.params.ops_per_ref * u64::from(self.params.issue_width) as f64) as u64;
        self.issue_subcycles += ops;
        self.result.instructions += self.params.ops_per_ref as u64;

        // The memory instruction itself.
        self.bump_issue(1);
        self.reserve_window_slot();

        // Classify through the hierarchy (transactions are discarded; the
        // power path uses its own filter instance).
        let level = self
            .hierarchy
            .access(r.addr, r.kind.is_write(), &mut |_t| {});
        let missed = level == nvsim_cache::HitLevel::Memory;
        let latency_cycles = match level {
            nvsim_cache::HitLevel::L1 => u64::from(self.params.l1_hit_cycles),
            nvsim_cache::HitLevel::L2 => u64::from(self.params.l2_hit_cycles),
            nvsim_cache::HitLevel::Memory => {
                self.result.mem_accesses += 1;
                let mem = if r.kind.is_write() {
                    self.params.mem_write_latency_cycles()
                } else {
                    self.params.mem_latency_cycles()
                };
                u64::from(self.params.l2_hit_cycles) + mem
            }
        };

        let mut start = self.issue_cycle();
        if missed {
            self.reserve_mshr();
            start = self.issue_cycle();
            // Dependence chain: every k-th miss waits for the previous one.
            self.miss_counter += 1;
            if self.params.dependence_distance > 0
                && self.miss_counter.is_multiple_of(self.params.dependence_distance)
            {
                start = start.max(self.last_miss_completion);
            }
        }
        let completion = start + latency_cycles;
        if missed {
            self.mshrs.push_back(completion);
            self.last_miss_completion = completion;
        }
        self.window.push_back(completion);
        self.horizon = self.horizon.max(completion);
    }

    /// Finalizes the run: waits for the last instruction to complete.
    pub fn finish(mut self) -> CpuResult {
        self.result.cycles = self.issue_cycle().max(self.horizon);
        self.result
    }

    /// Parameters the core was built with.
    pub fn params(&self) -> &CoreParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim_types::VirtAddr;

    /// Streaming reads over `n` distinct lines, then `reuse` passes over
    /// the same footprint.
    fn run_stream(params: CoreParams, lines: u64, passes: u64) -> CpuResult {
        let mut core = OooCore::new(params);
        for _ in 0..passes {
            for i in 0..lines {
                core.feed(&MemRef::read(VirtAddr::new(0x40_0000 + i * 64), 8));
            }
        }
        core.finish()
    }

    #[test]
    fn cached_workload_is_latency_insensitive() {
        // 256 lines = 16 KiB, fits L1/L2: after the cold pass everything
        // hits; runtime is issue-bound.
        let fast = run_stream(CoreParams::with_latency_ns(10.0), 256, 50);
        let slow = run_stream(CoreParams::with_latency_ns(100.0), 256, 50);
        let ratio = slow.cycles as f64 / fast.cycles as f64;
        assert!(ratio < 1.05, "cached workload slowed {ratio}x");
    }

    #[test]
    fn streaming_workload_shows_bounded_sensitivity() {
        // 1M distinct lines: every access misses, but 64 MSHRs overlap
        // them; slowdown is bounded well below the 10x latency ratio.
        let fast = run_stream(CoreParams::with_latency_ns(10.0), 1 << 20, 1);
        let slow = run_stream(CoreParams::with_latency_ns(100.0), 1 << 20, 1);
        assert_eq!(fast.mem_accesses, 1 << 20);
        let ratio = slow.cycles as f64 / fast.cycles as f64;
        assert!(ratio > 1.05, "pure-miss stream must feel latency: {ratio}");
        assert!(ratio < 10.0, "MLP must hide most of the 10x: {ratio}");
    }

    #[test]
    fn dependences_reduce_mlp() {
        let mut chained = CoreParams::with_latency_ns(100.0);
        chained.dependence_distance = 1; // every miss waits for the last
        let mut free = CoreParams::with_latency_ns(100.0);
        free.dependence_distance = 0;
        let dep = run_stream(chained, 1 << 18, 1);
        let indep = run_stream(free, 1 << 18, 1);
        assert!(
            dep.cycles > indep.cycles * 3,
            "chained {} vs independent {}",
            dep.cycles,
            indep.cycles
        );
    }

    #[test]
    fn smaller_miss_buffer_hurts_misses() {
        let mut tiny = CoreParams::with_latency_ns(100.0);
        tiny.miss_buffer = 1;
        tiny.dependence_distance = 0;
        let mut big = CoreParams::with_latency_ns(100.0);
        big.miss_buffer = 64;
        big.dependence_distance = 0;
        let small = run_stream(tiny, 1 << 18, 1);
        let large = run_stream(big, 1 << 18, 1);
        assert!(small.cycles > large.cycles);
        assert!(small.mshr_stall_cycles > 0);
    }

    #[test]
    fn instruction_and_ref_accounting() {
        let r = run_stream(CoreParams::default(), 100, 1);
        assert_eq!(r.refs, 100);
        assert_eq!(r.instructions, 100 * 3); // 2 ops + 1 memory op per ref
        assert!(r.cpi() > 0.0);
        assert!(r.runtime_ns(2.266) > 0.0);
    }

    #[test]
    fn split_write_latency_slows_write_misses_only() {
        use nvsim_types::DeviceProfile;
        // Streaming writes over fresh lines: write misses dominate.
        let run = |params: CoreParams| {
            let mut core = OooCore::new(params);
            for i in 0..(1u64 << 16) {
                core.feed(&MemRef::write(VirtAddr::new(0x40_0000 + i * 64), 8));
            }
            core.finish()
        };
        // §V lower bound uses the perf-sim (write) latency for both; the
        // split model with PCRAM's real 20/100 must sit between the
        // all-20ns and all-100ns bounds.
        let all_read = run(CoreParams::with_latency_ns(20.0));
        let all_write = run(CoreParams::with_latency_ns(100.0));
        let split = run(CoreParams::with_device(&DeviceProfile::pcram()));
        assert!(split.cycles >= all_read.cycles);
        assert!(split.cycles <= all_write.cycles);

        // Pure reads under the split model cost the read latency only.
        let run_reads = |params: CoreParams| {
            let mut core = OooCore::new(params);
            for i in 0..(1u64 << 16) {
                core.feed(&MemRef::read(VirtAddr::new(0x40_0000 + i * 64), 8));
            }
            core.finish()
        };
        let split_reads = run_reads(CoreParams::with_device(&DeviceProfile::pcram()));
        let read_only = run_reads(CoreParams::with_latency_ns(20.0));
        assert_eq!(split_reads.cycles, read_only.cycles);
    }

    #[test]
    fn monotone_in_latency() {
        let mut prev = 0u64;
        for lat in [10.0, 12.0, 20.0, 100.0] {
            let r = run_stream(CoreParams::with_latency_ns(lat), 1 << 16, 2);
            assert!(r.cycles >= prev, "latency {lat} not monotone");
            prev = r.cycles;
        }
    }
}
