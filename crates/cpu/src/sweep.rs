//! The Figure 12 latency sweep: run the same workload with each Table IV
//! memory latency and report normalized runtimes.

use crate::model::{CoreParams, CpuResult};
use nvsim_types::{DeviceProfile, MemoryTechnology};
use serde::{Deserialize, Serialize};

/// One point of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyPoint {
    /// Technology simulated.
    pub technology: String,
    /// Memory latency used (read = write), ns.
    pub latency_ns: f64,
    /// Timing result.
    pub result: CpuResult,
    /// Runtime normalized to the DRAM (10 ns) run.
    pub normalized_runtime: f64,
}

/// Runs `workload` once per Table IV technology, where `workload` receives
/// the core parameters and returns the timing result (typically by driving
/// a proxy application through a [`crate::sink::CpuSink`]).
///
/// Returns points in `[DDR3, MRAM, STTRAM, PCRAM]` order — increasing
/// latency, the order Figure 12 plots.
pub fn sweep_technologies(
    base: &CoreParams,
    mut workload: impl FnMut(CoreParams) -> CpuResult,
) -> Vec<LatencyPoint> {
    let order = [
        MemoryTechnology::Ddr3,
        MemoryTechnology::Mram,
        MemoryTechnology::Sttram,
        MemoryTechnology::Pcram,
    ];
    let mut points = Vec::with_capacity(order.len());
    let mut baseline_cycles = None;
    for tech in order {
        let profile = DeviceProfile::for_technology(tech);
        let mut params = base.clone();
        params.mem_latency_ns = profile.perf_sim_latency_ns;
        let result = workload(params);
        let baseline = *baseline_cycles.get_or_insert(result.cycles.max(1));
        points.push(LatencyPoint {
            technology: tech.to_string(),
            latency_ns: profile.perf_sim_latency_ns,
            result,
            normalized_runtime: result.cycles as f64 / baseline as f64,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::OooCore;
    use nvsim_types::{MemRef, VirtAddr};

    /// A workload with strong reuse (cache-resident inner working set plus
    /// a streaming component), like one main-loop iteration of a solver.
    fn solver_like(params: CoreParams) -> CpuResult {
        let mut core = OooCore::new(params);
        // 512 KiB hot set (L2-resident) with a thin streaming component:
        // ~1% of references miss to memory after the hierarchy, which is
        // the regime the paper's cache-friendly solvers operate in.
        let hot_lines = 8192u64;
        for pass in 0..8u64 {
            for i in 0..hot_lines {
                core.feed(&MemRef::read(VirtAddr::new(0x40_0000 + i * 64), 8));
            }
            // streaming segment: 64 fresh lines per pass
            for i in 0..64u64 {
                let addr = 0x10_0000_0000u64 + (pass * 64 + i) * 64;
                core.feed(&MemRef::read(VirtAddr::new(addr), 8));
            }
        }
        core.finish()
    }

    #[test]
    fn figure_12_shape() {
        let points = sweep_technologies(&CoreParams::default(), solver_like);
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].technology, "DDR3");
        assert!((points[0].normalized_runtime - 1.0).abs() < 1e-12);
        // Latencies in Table IV order of magnitude.
        assert_eq!(points[1].latency_ns, 12.0);
        assert_eq!(points[2].latency_ns, 20.0);
        assert_eq!(points[3].latency_ns, 100.0);
        // Paper shape: MRAM negligible, STTRAM small, PCRAM bounded.
        let mram = points[1].normalized_runtime;
        let stt = points[2].normalized_runtime;
        let pcram = points[3].normalized_runtime;
        assert!(mram < 1.02, "MRAM loss should be negligible: {mram}");
        assert!(stt < 1.10, "STTRAM loss should be small: {stt}");
        assert!(pcram > stt, "PCRAM must be worst: {pcram} vs {stt}");
        assert!(pcram < 1.6, "PCRAM loss must stay bounded: {pcram}");
    }

    #[test]
    fn monotone_in_latency() {
        let points = sweep_technologies(&CoreParams::default(), solver_like);
        for pair in points.windows(2) {
            assert!(pair[1].normalized_runtime >= pair[0].normalized_runtime - 1e-12);
        }
    }
}
