//! # nvsim-cpu
//!
//! A simplified out-of-order core timing model standing in for PTLsim
//! (paper §V). The paper uses full-system cycle-accurate simulation only to
//! ask one question: *how sensitive is application runtime to the main-
//! memory access latency?* (Figure 12 sweeps 10/12/20/100 ns with read
//! latency equal to write latency, per Table IV.)
//!
//! The mechanisms that answer that question are the ones §V names: latency
//! hiding by overlapping with computation, memory-level parallelism
//! (bounded by the 64-entry miss buffer of Table III), and cache locality
//! (the Table II hierarchy filtering most accesses). This crate models
//! exactly those: an issue-width/ROB-window interval model with an MSHR
//! file, fed by the same instrumented reference stream the analysis tools
//! consume.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod model;
pub mod sink;
pub mod sweep;

pub use model::{CoreParams, CpuResult, OooCore};
pub use sink::CpuSink;
pub use sweep::{sweep_technologies, LatencyPoint};
