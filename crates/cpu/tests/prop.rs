//! Property tests of the core timing model: monotonicity in latency and
//! structural resources, and accounting invariants.

use nvsim_cpu::{CoreParams, OooCore};
use nvsim_types::{MemRef, VirtAddr};
use proptest::prelude::*;

/// A bounded random reference stream over a configurable footprint.
fn stream(seed: u64, n: usize, span: u64) -> Vec<MemRef> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = VirtAddr::new((0x40_0000 + (x % span)) & !7);
            if x.count_ones().is_multiple_of(3) {
                MemRef::write(addr, 8)
            } else {
                MemRef::read(addr, 8)
            }
        })
        .collect()
}

fn run(params: CoreParams, refs: &[MemRef]) -> nvsim_cpu::CpuResult {
    let mut core = OooCore::new(params);
    for r in refs {
        core.feed(r);
    }
    core.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn runtime_is_monotone_in_memory_latency(seed in any::<u64>(), span_kb in 1u64..4096) {
        let refs = stream(seed, 20_000, span_kb << 10);
        let mut prev = 0u64;
        for lat in [10.0, 12.0, 20.0, 100.0] {
            let r = run(CoreParams::with_latency_ns(lat), &refs);
            prop_assert!(r.cycles >= prev, "latency {lat}: {} < {prev}", r.cycles);
            prev = r.cycles;
        }
    }

    #[test]
    fn more_mshrs_never_hurt(seed in any::<u64>()) {
        let refs = stream(seed, 20_000, 64 << 20);
        let mut prev = u64::MAX;
        for mshrs in [1u32, 4, 16, 64] {
            let mut p = CoreParams::with_latency_ns(100.0);
            p.miss_buffer = mshrs;
            p.dependence_distance = 0;
            let r = run(p, &refs);
            prop_assert!(r.cycles <= prev, "mshrs {mshrs}: {} > {prev}", r.cycles);
            prev = r.cycles;
        }
    }

    #[test]
    fn accounting_is_exact(seed in any::<u64>(), n in 100usize..5000) {
        let refs = stream(seed, n, 1 << 20);
        let r = run(CoreParams::default(), &refs);
        prop_assert_eq!(r.refs, n as u64);
        prop_assert_eq!(r.instructions, (n * 3) as u64); // 2 ops + 1 mem op
        prop_assert!(r.mem_accesses <= r.refs);
        // Runtime is at least issue-bound and at most fully-serialized.
        let issue_bound = r.instructions / 4;
        prop_assert!(r.cycles >= issue_bound);
        let serial_bound = r.instructions
            + r.mem_accesses * (CoreParams::default().mem_latency_cycles() + 5);
        prop_assert!(r.cycles <= serial_bound);
    }

    #[test]
    fn identical_runs_are_deterministic(seed in any::<u64>()) {
        let refs = stream(seed, 5_000, 8 << 20);
        let a = run(CoreParams::default(), &refs);
        let b = run(CoreParams::default(), &refs);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn split_write_latency_bounded_by_uniform_latencies(seed in any::<u64>()) {
        let refs = stream(seed, 10_000, 64 << 20);
        let lo = run(CoreParams::with_latency_ns(20.0), &refs);
        let hi = run(CoreParams::with_latency_ns(100.0), &refs);
        let split = run(
            CoreParams::with_device(&nvsim_types::DeviceProfile::pcram()),
            &refs,
        );
        prop_assert!(split.cycles >= lo.cycles);
        prop_assert!(split.cycles <= hi.cycles);
    }
}
