//! Durable artifact writes: tmp-file + rename so readers never observe
//! a half-written report.
//!
//! Every emitter in the pipeline — metrics JSON, run reports, Chrome
//! timelines, sweep journals — writes through [`atomic_write`]. The
//! contents land in a sibling temporary file first, are flushed to the
//! device, and only then renamed over the destination. A crash mid-write
//! leaves either the old artifact or the new one, never a torn mix, so
//! a resumed sweep can trust whatever it finds on disk.
//!
//! ```
//! let dir = std::env::temp_dir().join(format!("nvsim-artifact-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("report.json");
//! nvsim_obs::artifact::atomic_write(&path, b"{}\n").unwrap();
//! assert_eq!(std::fs::read(&path).unwrap(), b"{}\n");
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Writes `contents` to `path` atomically: a `.tmp.<pid>` sibling is
/// written and synced, then renamed over the destination. On any error
/// the temporary file is cleaned up and the destination is untouched
/// (either its previous contents or absent).
pub fn atomic_write(path: &Path, contents: &[u8]) -> io::Result<()> {
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{}: path has no file name", path.display()),
        )
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);

    let write_and_sync = |tmp: &Path| -> io::Result<()> {
        let mut f = fs::File::create(tmp)?;
        f.write_all(contents)?;
        f.sync_all()
    };
    let renamed = write_and_sync(&tmp).and_then(|()| fs::rename(&tmp, path));
    if renamed.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    renamed
}

/// [`atomic_write`] for text artifacts, with the path baked into the
/// error message — callers can print the `Err` string as-is and the
/// user sees *which* file failed, not a bare OS error.
pub fn write_text(path: &Path, contents: &str) -> Result<(), String> {
    atomic_write(path, contents.as_bytes()).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nvsim-artifact-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn writes_and_replaces_without_leaving_tmp_files() {
        let dir = scratch("replace");
        let path = dir.join("out.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer contents");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers.len(), 1, "tmp file left behind: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_errors_and_write_text_names_the_path() {
        let dir = scratch("missing");
        let path = dir.join("no-such-subdir").join("out.json");
        assert!(atomic_write(&path, b"x").is_err());
        let msg = write_text(&path, "x").unwrap_err();
        assert!(msg.contains("no-such-subdir"), "{msg}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
