//! Typed pipeline events and the correlation context they carry.
//!
//! A flat metrics snapshot says *how much* happened; it cannot say which
//! run, cell or worker made it happen. This module defines the typed
//! [`Event`] vocabulary of the pipeline — sweep and cell lifecycle,
//! retry/quarantine, fault injection, store writes and merges, query
//! execution, serve requests — and the [`Correlation`] context every
//! event carries, so a single JSONL line answers "what happened, to
//! which cell, on which worker, in which run".
//!
//! Events are published through an [`crate::EventBus`]; the stamped form
//! a subscriber receives is an [`EventRecord`] (sequence number,
//! timestamp, correlation, payload), whose [`EventRecord::to_jsonl`]
//! renders the stable one-line schema documented in `docs/METRICS.md`.
//!
//! ```
//! use nvsim_obs::{Correlation, Event, EventRecord};
//!
//! let corr = Correlation::for_run("run-1")
//!     .with_app("GTC")
//!     .with_cell("GTC/pcram")
//!     .with_worker(Some(2));
//! let record = EventRecord {
//!     seq: 0,
//!     ts_ns: 1_500,
//!     correlation: corr,
//!     event: Event::CellStarted { attempt: 1 },
//! };
//! let line = record.to_jsonl();
//! assert!(line.contains("\"kind\": \"cell.started\""));
//! assert!(line.contains("\"cell\": \"GTC/pcram\""));
//! assert!(line.contains("\"worker\": 2"));
//! ```

use crate::snapshot::escape_json_into;
use std::fmt::Write as _;

/// Version of the JSONL event schema ([`EventRecord::to_jsonl`]'s
/// `schema` field). Bump on any non-additive change.
pub const EVENT_SCHEMA_VERSION: u32 = 1;

/// The correlation context an event carries: which run, application,
/// cell, worker and request it belongs to. Empty strings (and a `None`
/// worker) mean "not applicable" and are omitted from the JSONL line, so
/// a store event is not forced to invent a cell and a serve event is not
/// forced to invent an app.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Correlation {
    /// Identifier of the run that published the event (one per process
    /// invocation, e.g. `run-12345` or `serve-12345`).
    pub run_id: String,
    /// Application name (`GTC`, `CAM`, ...), when the event is scoped to
    /// one.
    pub app: String,
    /// Cell name (`app/technology`, e.g. `GTC/pcram`), when the event is
    /// scoped to one replay cell.
    pub cell: String,
    /// Fleet worker index that published the event, when known.
    pub worker: Option<u64>,
    /// Server-assigned request identifier (echoed to the client as
    /// `X-Request-Id`), when the event belongs to one HTTP request.
    pub request_id: String,
}

impl Correlation {
    /// A correlation rooted at `run_id`, all other fields unset.
    pub fn for_run(run_id: impl Into<String>) -> Self {
        Correlation {
            run_id: run_id.into(),
            ..Correlation::default()
        }
    }

    /// Returns the correlation with the application set.
    pub fn with_app(mut self, app: impl Into<String>) -> Self {
        self.app = app.into();
        self
    }

    /// Returns the correlation with the cell set.
    pub fn with_cell(mut self, cell: impl Into<String>) -> Self {
        self.cell = cell.into();
        self
    }

    /// Returns the correlation with the worker index set.
    pub fn with_worker(mut self, worker: Option<u64>) -> Self {
        self.worker = worker;
        self
    }

    /// Returns the correlation with the request id set.
    pub fn with_request(mut self, request_id: impl Into<String>) -> Self {
        self.request_id = request_id.into();
        self
    }
}

/// One typed pipeline event. The variants cover every producer the
/// pipeline has today: the sweep fleet (lifecycle, retry, quarantine,
/// resume), the fault injector, the columnar store (write, merge), the
/// query engine, and the HTTP serving layer (request lifecycle and the
/// response cache).
///
/// The wire identity of a variant is its [`Event::kind`] string, which
/// is stable: renaming a Rust variant must not change its kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A technology sweep over one captured stream began.
    SweepStarted {
        /// Cells in the sweep grid.
        cells: u64,
    },
    /// The sweep finished (even if some cells were quarantined).
    SweepFinished {
        /// Cells that completed successfully.
        completed: u64,
        /// Cells quarantined after exhausting their retry budget.
        quarantined: u64,
        /// Cells restored from the completion journal.
        resumed: u64,
    },
    /// One attempt at a replay cell began.
    CellStarted {
        /// 1-based attempt number.
        attempt: u32,
    },
    /// A replay cell completed.
    CellFinished {
        /// The attempt that succeeded (1-based).
        attempt: u32,
        /// Transactions replayed.
        transactions: u64,
    },
    /// An attempt failed and the cell will be retried.
    CellRetried {
        /// The attempt that failed (1-based).
        attempt: u32,
        /// The failure, rendered.
        error: String,
    },
    /// The cell exhausted its attempts and was quarantined.
    CellQuarantined {
        /// Total attempts made.
        attempts: u32,
        /// The final failure, rendered.
        error: String,
    },
    /// The cell was restored from the completion journal instead of
    /// being replayed.
    CellResumed {
        /// Transactions the journaled run had replayed.
        transactions: u64,
    },
    /// The fault injector fired at this cell.
    FaultInjected {
        /// Fault kind label (`panic`, `delay`, `corrupt`, `transient`).
        kind: String,
    },
    /// A store file was written (atomically).
    StoreWrite {
        /// Destination path.
        path: String,
        /// Encoded size, bytes.
        bytes: u64,
        /// Tables in the written store.
        tables: u64,
    },
    /// Section tables were merged into an existing (or fresh) store.
    StoreMerge {
        /// Destination path.
        path: String,
        /// Tables upserted by this merge.
        added: u64,
        /// Tables in the store after the merge.
        total: u64,
    },
    /// The query engine executed one query.
    QueryExecuted {
        /// Table queried.
        table: String,
        /// Result rows.
        rows: u64,
    },
    /// The server accepted a request.
    RequestReceived,
    /// The server finished answering a request.
    RequestFinished {
        /// Route class (`index`, `healthz`, `metrics`, `query`,
        /// `section`, `other`) — a bounded label set by construction.
        route: String,
        /// HTTP status answered.
        status: u16,
        /// Wall time from accept to response, nanoseconds.
        latency_ns: u64,
    },
    /// The server shed a request (queue full, answered `503`).
    RequestShed,
    /// The `/query` response cache answered without running the engine.
    CacheHit,
    /// The `/query` response cache had no entry; the engine ran.
    CacheMiss,
    /// A rendered response was inserted into the cache.
    CacheInserted,
    /// The cache evicted entries to make room.
    CacheEvicted {
        /// Entries evicted since the last report.
        n: u64,
    },
    /// The NVRAM page allocator was killed mid-operation by the fault
    /// injector (the arena is frozen until recovery).
    AllocCrashed {
        /// Injection point that fired (e.g. `alloc.bitfield.set`).
        site: String,
        /// Whether only a prefix of a multi-word update was persisted.
        torn: bool,
    },
    /// The NVRAM page allocator rebuilt its volatile state from the
    /// persistent bitfields after a crash (or on a clean remount).
    AllocRecovered {
        /// Frames durably allocated after recovery.
        frames: u64,
        /// Frames rolled back from interrupted journalled operations.
        rolled_back: u64,
        /// Persistent words scanned to rebuild the volatile state.
        words_scanned: u64,
    },
    /// The dist coordinator granted a worker a lease over a cell batch.
    DistLeaseGranted {
        /// Cells in the leased batch.
        cells: u64,
        /// The fencing token guarding the lease's shard uploads.
        token: u64,
    },
    /// A lease missed its heartbeat deadline; its unfinished cells went
    /// back to the pending queue (or quarantine, past the retry budget).
    DistLeaseExpired {
        /// Cells re-queued by the expiry.
        cells: u64,
        /// The fencing token that is now stale.
        token: u64,
    },
    /// The coordinator accepted a worker's CRC-framed result shard.
    DistShardReceived {
        /// Framed shard size, bytes.
        bytes: u64,
        /// The fencing token the upload carried.
        token: u64,
    },
    /// The coordinator refused a shard upload (stale fencing token,
    /// unknown cell, or a frame that failed CRC/decode).
    DistShardRejected {
        /// Why the shard was refused.
        reason: String,
        /// The fencing token the upload carried (0 when absent).
        token: u64,
    },
}

/// Every kind string [`Event::kind`] can produce, in declaration order.
/// Schema validators (the CI observability job) check JSONL lines
/// against this list.
pub const KINDS: &[&str] = &[
    "sweep.started",
    "sweep.finished",
    "cell.started",
    "cell.finished",
    "cell.retried",
    "cell.quarantined",
    "cell.resumed",
    "fault.injected",
    "store.write",
    "store.merge",
    "query.executed",
    "request.received",
    "request.finished",
    "request.shed",
    "cache.hit",
    "cache.miss",
    "cache.inserted",
    "cache.evicted",
    "alloc.crashed",
    "alloc.recovered",
    "dist.lease.granted",
    "dist.lease.expired",
    "dist.shard.received",
    "dist.shard.rejected",
];

impl Event {
    /// The stable dotted kind string of this event.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SweepStarted { .. } => "sweep.started",
            Event::SweepFinished { .. } => "sweep.finished",
            Event::CellStarted { .. } => "cell.started",
            Event::CellFinished { .. } => "cell.finished",
            Event::CellRetried { .. } => "cell.retried",
            Event::CellQuarantined { .. } => "cell.quarantined",
            Event::CellResumed { .. } => "cell.resumed",
            Event::FaultInjected { .. } => "fault.injected",
            Event::StoreWrite { .. } => "store.write",
            Event::StoreMerge { .. } => "store.merge",
            Event::QueryExecuted { .. } => "query.executed",
            Event::RequestReceived => "request.received",
            Event::RequestFinished { .. } => "request.finished",
            Event::RequestShed => "request.shed",
            Event::CacheHit => "cache.hit",
            Event::CacheMiss => "cache.miss",
            Event::CacheInserted => "cache.inserted",
            Event::CacheEvicted { .. } => "cache.evicted",
            Event::AllocCrashed { .. } => "alloc.crashed",
            Event::AllocRecovered { .. } => "alloc.recovered",
            Event::DistLeaseGranted { .. } => "dist.lease.granted",
            Event::DistLeaseExpired { .. } => "dist.lease.expired",
            Event::DistShardReceived { .. } => "dist.shard.received",
            Event::DistShardRejected { .. } => "dist.shard.rejected",
        }
    }

    /// Appends the variant's payload fields as `, "key": value` pairs.
    fn emit_payload(&self, out: &mut String) {
        fn str_field(out: &mut String, key: &str, v: &str) {
            let _ = write!(out, ", \"{key}\": \"");
            escape_json_into(out, v);
            out.push('"');
        }
        match self {
            Event::SweepStarted { cells } => {
                let _ = write!(out, ", \"cells\": {cells}");
            }
            Event::SweepFinished {
                completed,
                quarantined,
                resumed,
            } => {
                let _ = write!(
                    out,
                    ", \"completed\": {completed}, \"quarantined\": {quarantined}, \
                     \"resumed\": {resumed}"
                );
            }
            Event::CellStarted { attempt } => {
                let _ = write!(out, ", \"attempt\": {attempt}");
            }
            Event::CellFinished {
                attempt,
                transactions,
            } => {
                let _ = write!(
                    out,
                    ", \"attempt\": {attempt}, \"transactions\": {transactions}"
                );
            }
            Event::CellRetried { attempt, error } => {
                let _ = write!(out, ", \"attempt\": {attempt}");
                str_field(out, "error", error);
            }
            Event::CellQuarantined { attempts, error } => {
                let _ = write!(out, ", \"attempts\": {attempts}");
                str_field(out, "error", error);
            }
            Event::CellResumed { transactions } => {
                let _ = write!(out, ", \"transactions\": {transactions}");
            }
            Event::FaultInjected { kind } => str_field(out, "fault", kind),
            Event::StoreWrite {
                path,
                bytes,
                tables,
            } => {
                str_field(out, "path", path);
                let _ = write!(out, ", \"bytes\": {bytes}, \"tables\": {tables}");
            }
            Event::StoreMerge { path, added, total } => {
                str_field(out, "path", path);
                let _ = write!(out, ", \"added\": {added}, \"total\": {total}");
            }
            Event::QueryExecuted { table, rows } => {
                str_field(out, "table", table);
                let _ = write!(out, ", \"rows\": {rows}");
            }
            Event::RequestFinished {
                route,
                status,
                latency_ns,
            } => {
                str_field(out, "route", route);
                let _ = write!(out, ", \"status\": {status}, \"latency_ns\": {latency_ns}");
            }
            Event::CacheEvicted { n } => {
                let _ = write!(out, ", \"n\": {n}");
            }
            Event::AllocCrashed { site, torn } => {
                str_field(out, "site", site);
                let _ = write!(out, ", \"torn\": {torn}");
            }
            Event::AllocRecovered {
                frames,
                rolled_back,
                words_scanned,
            } => {
                let _ = write!(
                    out,
                    ", \"frames\": {frames}, \"rolled_back\": {rolled_back}, \
                     \"words_scanned\": {words_scanned}"
                );
            }
            Event::DistLeaseGranted { cells, token }
            | Event::DistLeaseExpired { cells, token } => {
                let _ = write!(out, ", \"cells\": {cells}, \"token\": {token}");
            }
            Event::DistShardReceived { bytes, token } => {
                let _ = write!(out, ", \"bytes\": {bytes}, \"token\": {token}");
            }
            Event::DistShardRejected { reason, token } => {
                str_field(out, "reason", reason);
                let _ = write!(out, ", \"token\": {token}");
            }
            Event::RequestReceived
            | Event::RequestShed
            | Event::CacheHit
            | Event::CacheMiss
            | Event::CacheInserted => {}
        }
    }
}

/// One event as stamped by the bus: a process-wide sequence number, a
/// timestamp relative to bus creation, the correlation context, and the
/// payload.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Publication sequence number (0-based, gap-free per bus).
    pub seq: u64,
    /// Nanoseconds since the bus was created.
    pub ts_ns: u64,
    /// Who/what the event is about.
    pub correlation: Correlation,
    /// The typed payload.
    pub event: Event,
}

impl EventRecord {
    /// Renders the record as one JSON object (no trailing newline):
    ///
    /// ```json
    /// {"schema": 1, "seq": 7, "ts_ns": 1500, "kind": "cell.started",
    ///  "run_id": "run-1", "app": "GTC", "cell": "GTC/pcram",
    ///  "worker": 2, "attempt": 1}
    /// ```
    ///
    /// Field order is fixed — envelope (`schema`, `seq`, `ts_ns`,
    /// `kind`), then the non-empty correlation fields (`run_id`, `app`,
    /// `cell`, `worker`, `request_id`), then the variant's payload.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(
            out,
            "{{\"schema\": {EVENT_SCHEMA_VERSION}, \"seq\": {}, \"ts_ns\": {}, \"kind\": \"{}\"",
            self.seq,
            self.ts_ns,
            self.event.kind()
        );
        let c = &self.correlation;
        for (key, v) in [
            ("run_id", &c.run_id),
            ("app", &c.app),
            ("cell", &c.cell),
        ] {
            if !v.is_empty() {
                let _ = write!(out, ", \"{key}\": \"");
                escape_json_into(&mut out, v);
                out.push('"');
            }
        }
        if let Some(w) = c.worker {
            let _ = write!(out, ", \"worker\": {w}");
        }
        if !c.request_id.is_empty() {
            out.push_str(", \"request_id\": \"");
            escape_json_into(&mut out, &c.request_id);
            out.push('"');
        }
        self.event.emit_payload(&mut out);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<Event> {
        vec![
            Event::SweepStarted { cells: 4 },
            Event::SweepFinished {
                completed: 3,
                quarantined: 1,
                resumed: 0,
            },
            Event::CellStarted { attempt: 1 },
            Event::CellFinished {
                attempt: 1,
                transactions: 99,
            },
            Event::CellRetried {
                attempt: 1,
                error: "boom".into(),
            },
            Event::CellQuarantined {
                attempts: 2,
                error: "boom".into(),
            },
            Event::CellResumed { transactions: 99 },
            Event::FaultInjected {
                kind: "panic".into(),
            },
            Event::StoreWrite {
                path: "d/dataset.nvstore".into(),
                bytes: 4096,
                tables: 12,
            },
            Event::StoreMerge {
                path: "d/dataset.nvstore".into(),
                added: 3,
                total: 12,
            },
            Event::QueryExecuted {
                table: "objects".into(),
                rows: 7,
            },
            Event::RequestReceived,
            Event::RequestFinished {
                route: "query".into(),
                status: 200,
                latency_ns: 1_000,
            },
            Event::RequestShed,
            Event::CacheHit,
            Event::CacheMiss,
            Event::CacheInserted,
            Event::CacheEvicted { n: 2 },
            Event::AllocCrashed {
                site: "alloc.bitfield.set".into(),
                torn: false,
            },
            Event::AllocRecovered {
                frames: 96,
                rolled_back: 4,
                words_scanned: 162,
            },
            Event::DistLeaseGranted { cells: 4, token: 7 },
            Event::DistLeaseExpired { cells: 2, token: 7 },
            Event::DistShardReceived {
                bytes: 512,
                token: 7,
            },
            Event::DistShardRejected {
                reason: "stale fencing token".into(),
                token: 3,
            },
        ]
    }

    #[test]
    fn every_variant_has_a_listed_kind() {
        let variants = all_variants();
        assert_eq!(variants.len(), KINDS.len());
        for (event, kind) in variants.iter().zip(KINDS) {
            assert_eq!(event.kind(), *kind);
        }
        // Kinds are unique.
        let mut sorted: Vec<&str> = KINDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), KINDS.len());
    }

    #[test]
    fn jsonl_carries_envelope_correlation_and_payload() {
        let record = EventRecord {
            seq: 7,
            ts_ns: 1_500,
            correlation: Correlation::for_run("run-1")
                .with_app("GTC")
                .with_cell("GTC/pcram")
                .with_worker(Some(2)),
            event: Event::CellFinished {
                attempt: 1,
                transactions: 42,
            },
        };
        let line = record.to_jsonl();
        assert_eq!(
            line,
            "{\"schema\": 1, \"seq\": 7, \"ts_ns\": 1500, \"kind\": \"cell.finished\", \
             \"run_id\": \"run-1\", \"app\": \"GTC\", \"cell\": \"GTC/pcram\", \
             \"worker\": 2, \"attempt\": 1, \"transactions\": 42}"
        );
    }

    #[test]
    fn empty_correlation_fields_are_omitted() {
        let record = EventRecord {
            seq: 0,
            ts_ns: 0,
            correlation: Correlation::for_run("serve-1").with_request("req-9"),
            event: Event::RequestReceived,
        };
        let line = record.to_jsonl();
        assert!(line.contains("\"request_id\": \"req-9\""), "{line}");
        assert!(!line.contains("\"app\""), "{line}");
        assert!(!line.contains("\"cell\""), "{line}");
        assert!(!line.contains("\"worker\""), "{line}");
    }

    #[test]
    fn jsonl_escapes_strings() {
        let record = EventRecord {
            seq: 0,
            ts_ns: 0,
            correlation: Correlation::for_run("run\"1"),
            event: Event::CellRetried {
                attempt: 1,
                error: "line\nbreak".into(),
            },
        };
        let line = record.to_jsonl();
        assert!(line.contains("run\\\"1"), "{line}");
        assert!(line.contains("line\\nbreak"), "{line}");
        assert!(!line.contains('\n'), "one line per event: {line}");
    }
}
