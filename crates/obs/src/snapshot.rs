//! Point-in-time metric snapshots and their JSON / table renderings.

use crate::histogram::HistogramSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// All instruments of a [`crate::Metrics`] registry at one instant.
/// Maps are ordered by name so both emitters are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Value of the counter `name`, if it was registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Value of the gauge `name`, if it was registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// State of the histogram `name`, if it was registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// `true` when no instrument was ever registered (e.g. the registry
    /// was disabled).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot as a JSON object:
    ///
    /// ```json
    /// {
    ///   "counters": {"trace.refs": 4},
    ///   "gauges": {},
    ///   "histograms": {
    ///     "objects.size_bytes": {
    ///       "count": 4, "sum": 4232, "min": 8, "max": 4096,
    ///       "mean": 1058.0, "p50": 64, "p99": 4096,
    ///       "buckets": [[8, 1], [64, 2], [4096, 1]]
    ///     }
    ///   }
    /// }
    /// ```
    ///
    /// `buckets` lists only occupied buckets as `[upper_bound, count]`
    /// pairs. The emitter is hand-rolled (sorted keys, standard string
    /// escaping) so the crate stays dependency-free.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        emit_map(&mut out, &self.counters, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\n  \"gauges\": {");
        emit_map(&mut out, &self.gauges, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\n  \"histograms\": {");
        emit_map(&mut out, &self.histograms, |out, h| {
            let _ = write!(
                out,
                "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {:.1}, \"p50\": {}, \"p99\": {}, \"buckets\": [",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99)
            );
            let mut first = true;
            for (i, n) in h.buckets.iter().enumerate() {
                if *n > 0 {
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    let bound = HistogramSnapshot::bucket_bound(i);
                    let _ = write!(out, "[{bound}, {n}]");
                }
            }
            out.push_str("]}");
        });
        out.push_str("}\n}\n");
        out
    }

    /// Renders the snapshot as an aligned text table grouped by the
    /// first dotted segment of each name (`trace.refs` files under
    /// `trace`), the format the `profile` binary prints.
    pub fn to_table(&self) -> String {
        let mut groups: BTreeMap<&str, Vec<(String, String)>> = BTreeMap::new();
        for (name, v) in &self.counters {
            groups
                .entry(group_of(name))
                .or_default()
                .push((name.clone(), format_count(*v)));
        }
        for (name, v) in &self.gauges {
            groups
                .entry(group_of(name))
                .or_default()
                .push((name.clone(), format!("{v}")));
        }
        for (name, h) in &self.histograms {
            groups.entry(group_of(name)).or_default().push((
                name.clone(),
                format!(
                    "n={} mean={:.1} p50={} p99={} max={}",
                    format_count(h.count),
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.max
                ),
            ));
        }

        let width = groups
            .values()
            .flatten()
            .map(|(name, _)| name.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (group, mut rows) in groups {
            let _ = writeln!(out, "[{group}]");
            rows.sort();
            for (name, value) in rows {
                let _ = writeln!(out, "  {name:<width$}  {value}");
            }
        }
        out
    }
}

/// First dotted segment of a metric name.
fn group_of(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Groups thousands with `_` so large counters stay readable.
fn format_count(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i) % 3 == 0 {
            out.push('_');
        }
        out.push(c);
    }
    out
}

/// Emits `"key": <value>` pairs of a sorted map into `out`.
fn emit_map<V>(out: &mut String, map: &BTreeMap<String, V>, mut emit: impl FnMut(&mut String, &V)) {
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    \"");
        for c in k.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push_str("\": ");
        emit(out, v);
    }
    if !first {
        out.push_str("\n  ");
    }
}

#[cfg(test)]
mod tests {
    use crate::Metrics;

    #[test]
    fn json_contains_all_sections_sorted() {
        let m = Metrics::enabled();
        m.counter("b.two").add(2);
        m.counter("a.one").inc();
        m.gauge("g.depth").set(-4);
        m.histogram("h.sizes").record(100);
        let json = m.snapshot().to_json();
        assert!(json.contains("\"a.one\": 1"));
        assert!(json.contains("\"b.two\": 2"));
        assert!(json.contains("\"g.depth\": -4"));
        assert!(json.contains("\"count\": 1"));
        let a = json.find("a.one").unwrap();
        let b = json.find("b.two").unwrap();
        assert!(a < b, "keys are sorted");
    }

    #[test]
    fn empty_snapshot_is_valid_json_shell() {
        let json = Metrics::disabled().snapshot().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }

    #[test]
    fn table_groups_by_first_segment() {
        let m = Metrics::enabled();
        m.counter("trace.refs").add(1_234_567);
        m.counter("cache.l1_hits").add(9);
        m.histogram("cache.ref_bytes").record(64);
        let table = m.snapshot().to_table();
        assert!(table.contains("[trace]"));
        assert!(table.contains("[cache]"));
        assert!(table.contains("1_234_567"));
        assert!(table.find("[cache]").unwrap() < table.find("[trace]").unwrap());
    }

    #[test]
    fn keys_are_escaped() {
        let m = Metrics::enabled();
        m.counter("weird\"name").inc();
        let json = m.snapshot().to_json();
        assert!(json.contains("weird\\\"name"));
    }
}
