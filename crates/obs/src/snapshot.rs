//! Point-in-time metric snapshots and their JSON / table renderings.

use crate::histogram::HistogramSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// All instruments of a [`crate::Metrics`] registry at one instant.
/// Maps are ordered by name so both emitters are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Value of the counter `name`, if it was registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Value of the gauge `name`, if it was registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// State of the histogram `name`, if it was registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// `true` when no instrument was ever registered (e.g. the registry
    /// was disabled).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// What happened between `earlier` and `self` — both snapshots of
    /// the *same* registry, `earlier` taken first.
    ///
    /// Counters subtract (saturating, so a missing-then-registered
    /// counter deltas from zero); gauges report the signed change;
    /// histograms subtract bucket-wise (see
    /// [`HistogramSnapshot::delta`]). Every instrument present in
    /// `self` appears in the delta, including zero-change ones, so a
    /// sequence of deltas always sums back to the final snapshot:
    /// this is the invariant the epoch layer (`crate::epoch`) and its
    /// tests rely on.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for (name, v) in &self.counters {
            let before = earlier.counter(name).unwrap_or(0);
            out.counters.insert(name.clone(), v.saturating_sub(before));
        }
        for (name, v) in &self.gauges {
            let before = earlier.gauge(name).unwrap_or(0);
            out.gauges.insert(name.clone(), v.wrapping_sub(before));
        }
        for (name, h) in &self.histograms {
            let d = match earlier.histogram(name) {
                Some(before) => h.delta(before),
                None => h.clone(),
            };
            out.histograms.insert(name.clone(), d);
        }
        out
    }

    /// Merges a shard snapshot into this one, as if the shard's
    /// instruments had recorded into this registry directly: counters
    /// add (wrapping, like the live atomics), gauges take the shard's
    /// value (matching [`crate::Gauge::set`] last-writer-wins
    /// semantics), histograms merge bucket-wise
    /// ([`HistogramSnapshot::absorb`]). Instruments only one side knows
    /// are kept, so absorbing per-worker shards in a stable order yields
    /// the same snapshot a serial run sharing one registry produces.
    pub fn absorb(&mut self, shard: &Snapshot) {
        for (name, v) in &shard.counters {
            let cell = self.counters.entry(name.clone()).or_insert(0);
            *cell = cell.wrapping_add(*v);
        }
        for (name, v) in &shard.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &shard.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.absorb(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Renders the snapshot as a JSON object:
    ///
    /// ```json
    /// {
    ///   "counters": {"trace.refs": 4},
    ///   "gauges": {},
    ///   "histograms": {
    ///     "objects.size_bytes": {
    ///       "count": 4, "sum": 4232, "min": 8, "max": 4096,
    ///       "mean": 1058.0, "p50": 64, "p90": 4096, "p99": 4096,
    ///       "buckets": [[8, 1], [64, 2], [4096, 1]]
    ///     }
    ///   }
    /// }
    /// ```
    ///
    /// `buckets` lists only occupied buckets as `[upper_bound, count]`
    /// pairs. The emitter is hand-rolled (sorted keys, standard string
    /// escaping) so the crate stays dependency-free.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        emit_map(&mut out, &self.counters, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\n  \"gauges\": {");
        emit_map(&mut out, &self.gauges, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\n  \"histograms\": {");
        emit_map(&mut out, &self.histograms, |out, h| {
            let _ = write!(
                out,
                "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99()
            );
            let mut first = true;
            for (i, n) in h.buckets.iter().enumerate() {
                if *n > 0 {
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    let bound = HistogramSnapshot::bucket_bound(i);
                    let _ = write!(out, "[{bound}, {n}]");
                }
            }
            out.push_str("]}");
        });
        out.push_str("}\n}\n");
        out
    }

    /// Renders the snapshot as an aligned text table grouped by the
    /// first dotted segment of each name (`trace.refs` files under
    /// `trace`), the format the `profile` binary prints.
    pub fn to_table(&self) -> String {
        let mut groups: BTreeMap<&str, Vec<(String, String)>> = BTreeMap::new();
        for (name, v) in &self.counters {
            groups
                .entry(group_of(name))
                .or_default()
                .push((name.clone(), format_count(*v)));
        }
        for (name, v) in &self.gauges {
            groups
                .entry(group_of(name))
                .or_default()
                .push((name.clone(), format!("{v}")));
        }
        for (name, h) in &self.histograms {
            groups.entry(group_of(name)).or_default().push((
                name.clone(),
                format!(
                    "n={} mean={:.1} p50={} p90={} p99={} max={}",
                    format_count(h.count),
                    h.mean(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max
                ),
            ));
        }

        let width = groups
            .values()
            .flatten()
            .map(|(name, _)| name.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (group, mut rows) in groups {
            let _ = writeln!(out, "[{group}]");
            rows.sort();
            for (name, value) in rows {
                let _ = writeln!(out, "  {name:<width$}  {value}");
            }
        }
        out
    }
}

/// First dotted segment of a metric name.
fn group_of(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Groups thousands with `_` so large counters stay readable.
fn format_count(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i) % 3 == 0 {
            out.push('_');
        }
        out.push(c);
    }
    out
}

/// Appends `s` to `out` with standard JSON string escaping (shared by
/// every hand-rolled emitter in this crate, which stays dependency-free).
pub(crate) fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Emits `"key": <value>` pairs of a sorted map into `out`.
fn emit_map<V>(out: &mut String, map: &BTreeMap<String, V>, mut emit: impl FnMut(&mut String, &V)) {
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    \"");
        escape_json_into(out, k);
        out.push_str("\": ");
        emit(out, v);
    }
    if !first {
        out.push_str("\n  ");
    }
}

#[cfg(test)]
mod tests {
    use crate::Metrics;

    #[test]
    fn json_contains_all_sections_sorted() {
        let m = Metrics::enabled();
        m.counter("b.two").add(2);
        m.counter("a.one").inc();
        m.gauge("g.depth").set(-4);
        m.histogram("h.sizes").record(100);
        let json = m.snapshot().to_json();
        assert!(json.contains("\"a.one\": 1"));
        assert!(json.contains("\"b.two\": 2"));
        assert!(json.contains("\"g.depth\": -4"));
        assert!(json.contains("\"count\": 1"));
        let a = json.find("a.one").unwrap();
        let b = json.find("b.two").unwrap();
        assert!(a < b, "keys are sorted");
    }

    #[test]
    fn empty_snapshot_is_valid_json_shell() {
        let json = Metrics::disabled().snapshot().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }

    #[test]
    fn table_groups_by_first_segment() {
        let m = Metrics::enabled();
        m.counter("trace.refs").add(1_234_567);
        m.counter("cache.l1_hits").add(9);
        m.histogram("cache.ref_bytes").record(64);
        let table = m.snapshot().to_table();
        assert!(table.contains("[trace]"));
        assert!(table.contains("[cache]"));
        assert!(table.contains("1_234_567"));
        assert!(table.find("[cache]").unwrap() < table.find("[trace]").unwrap());
    }

    #[test]
    fn delta_subtracts_counters_and_histograms() {
        let m = Metrics::enabled();
        let c = m.counter("trace.refs");
        let h = m.histogram("sizes");
        c.add(10);
        h.record(64);
        let first = m.snapshot();
        c.add(5);
        h.record(64);
        h.record(4096);
        m.counter("late.arrival").add(3); // registered after `first`
        let second = m.snapshot();

        let d = second.delta(&first);
        assert_eq!(d.counter("trace.refs"), Some(5));
        assert_eq!(d.counter("late.arrival"), Some(3));
        let dh = d.histogram("sizes").unwrap();
        assert_eq!(dh.count, 2);
        assert_eq!(dh.sum, 64 + 4096);
        // min/max stay whole-run values (not recoverable per window).
        assert_eq!(dh.min, 64);
        assert_eq!(dh.max, 4096);
    }

    #[test]
    fn deltas_sum_back_to_totals() {
        let m = Metrics::enabled();
        let c = m.counter("x");
        let mut last = m.snapshot();
        let mut summed = 0u64;
        for step in 1..=4u64 {
            c.add(step);
            let now = m.snapshot();
            summed += now.delta(&last).counter("x").unwrap();
            last = now;
        }
        assert_eq!(summed, m.snapshot().counter("x").unwrap());
    }

    #[test]
    fn delta_of_gauges_is_signed() {
        let m = Metrics::enabled();
        let g = m.gauge("depth");
        g.set(10);
        let first = m.snapshot();
        g.set(4);
        assert_eq!(m.snapshot().delta(&first).gauge("depth"), Some(-6));
    }

    #[test]
    fn json_surfaces_percentiles() {
        let m = Metrics::enabled();
        let h = m.histogram("lat");
        for _ in 0..99 {
            h.record(8);
        }
        h.record(1 << 20);
        // Values of 8 land in the [8,16) bucket, reported by its bound.
        let json = m.snapshot().to_json();
        assert!(json.contains("\"p50\": 16"));
        assert!(json.contains("\"p90\": 16"));
        assert!(json.contains("\"p99\": 16"));
        let table = m.snapshot().to_table();
        assert!(table.contains("p90=16"));
    }

    #[test]
    fn absorbed_shards_reproduce_a_shared_registry() {
        // One shared registry vs two shards merged in the same order.
        let shared = Metrics::enabled();
        let shard_a = Metrics::enabled();
        let shard_b = Metrics::enabled();
        for m in [&shared, &shard_a] {
            m.counter("trace.refs").add(10);
            m.gauge("mem.elapsed").set(100);
            m.histogram("sizes").record(64);
        }
        for m in [&shared, &shard_b] {
            m.counter("trace.refs").add(5);
            m.counter("cache.refs").add(3);
            m.gauge("mem.elapsed").set(250); // last writer wins
            m.histogram("sizes").record(4096);
        }
        let mut merged = crate::Snapshot::default();
        merged.absorb(&shard_a.snapshot());
        merged.absorb(&shard_b.snapshot());
        assert_eq!(merged, shared.snapshot());
        assert_eq!(merged.to_json(), shared.snapshot().to_json());
    }

    #[test]
    fn keys_are_escaped() {
        let m = Metrics::enabled();
        m.counter("weird\"name").inc();
        let json = m.snapshot().to_json();
        assert!(json.contains("weird\\\"name"));
    }
}
