//! Zero-dependency Prometheus text exposition (format 0.0.4).
//!
//! [`PromRegistry`] maps the dotted metric names of a
//! [`crate::Snapshot`] onto Prometheus metric families — explicit,
//! registered-up-front families with a **label-cardinality budget**, so
//! a scrape can never grow unbounded label sets. Three mapping shapes:
//!
//! 1. **Exact**: one dotted name → one label-less family
//!    (`serve.requests` → `serve_requests_total`).
//! 2. **Labeled prefix**: a family whose series are dotted names under
//!    a prefix, the suffix becoming a label value
//!    (`serve.responses.200` → `serve_responses_total{status="200"}`).
//!    Series must be registered; past the family's budget,
//!    [`PromRegistry::register_series`] errors and unregistered
//!    series found in a snapshot are *dropped* (and counted in a
//!    trailing comment), never exposed.
//! 3. **Auto**: snapshot names matching no registration are exposed as
//!    label-less families under a sanitized name (dots → underscores,
//!    counters suffixed `_total`), so the JSON and Prometheus views
//!    always cover the same instruments.
//!
//! Registered families are emitted even when the snapshot has no data
//! for them yet — a first scrape shows every pre-registered series at
//! zero, which is what makes `rate()` well-defined from the start.
//!
//! Power-of-two histograms ([`crate::Histogram`]) are rendered as
//! cumulative `_bucket{le="..."}` / `_sum` / `_count` series; bucket
//! `i` of the pow2 layout holds integer values `<= 2^i - 1`, so the
//! `le` bound for bucket `i` is `2^i - 1` (bucket 0 is `le="0"`, the
//! overflow bucket folds into `+Inf`).
//!
//! [`lint`] is the encoder's self-check (CI runs it over live scrape
//! output via the `promlint` bin) and [`parse_series`] the golden
//! parser the round-trip tests use.
//!
//! ```
//! use nvsim_obs::{Metrics, PromKind, PromRegistry};
//!
//! let mut prom = PromRegistry::new();
//! prom.register("serve_requests_total", "Requests accepted.",
//!               PromKind::Counter, "serve.requests").unwrap();
//! let metrics = Metrics::enabled();
//! metrics.counter("serve.requests").inc();
//! let text = prom.encode(&metrics.snapshot());
//! assert!(text.contains("serve_requests_total 1"));
//! nvsim_obs::prom::lint(&text).unwrap();
//! ```

use crate::histogram::{HistogramSnapshot, BUCKETS};
use crate::snapshot::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The exposition type of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromKind {
    /// Monotone counter (`_total` by convention).
    Counter,
    /// Signed gauge.
    Gauge,
    /// Cumulative histogram (`_bucket`/`_sum`/`_count`).
    Histogram,
}

impl PromKind {
    fn text(self) -> &'static str {
        match self {
            PromKind::Counter => "counter",
            PromKind::Gauge => "gauge",
            PromKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: PromKind,
    /// Exact mapping: the dotted source name.
    /// Labeled mapping: `None` (sources come from `prefix`).
    source: Option<String>,
    /// Labeled mapping: dotted prefix, label key, budget, registered
    /// label values (sorted).
    labeled: Option<LabeledSpec>,
}

#[derive(Debug)]
struct LabeledSpec {
    prefix: String,
    label: String,
    budget: usize,
    values: Vec<String>,
}

/// Registry of Prometheus families over a [`Snapshot`]'s dotted metric
/// names. Build it once at startup (registration is where budgets are
/// enforced), then [`PromRegistry::encode`] any snapshot — encoding
/// never mutates the registry, so it can be shared immutably.
#[derive(Debug, Default)]
pub struct PromRegistry {
    families: BTreeMap<String, Family>,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escapes a label value per the exposition format: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
fn escape_label_value(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

/// Dotted metric name → Prometheus name: dots become underscores, any
/// other invalid character becomes `_`, a leading digit gains a `_`.
pub fn sanitize_name(dotted: &str) -> String {
    let mut out = String::with_capacity(dotted.len() + 1);
    for (i, c) in dotted.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

impl PromRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PromRegistry::default()
    }

    fn insert_family(&mut self, name: &str, family: Family) -> Result<(), String> {
        if !valid_metric_name(name) {
            return Err(format!("invalid metric name {name:?}"));
        }
        if self.families.contains_key(name) {
            return Err(format!("family {name:?} already registered"));
        }
        self.families.insert(name.to_string(), family);
        Ok(())
    }

    /// Registers a label-less family reading the dotted snapshot name
    /// `source`.
    pub fn register(
        &mut self,
        name: &str,
        help: &str,
        kind: PromKind,
        source: &str,
    ) -> Result<(), String> {
        self.insert_family(
            name,
            Family {
                help: help.to_string(),
                kind,
                source: Some(source.to_string()),
                labeled: None,
            },
        )
    }

    /// Registers a labeled family whose series are the dotted snapshot
    /// names `"{prefix}{value}"`, exposed as `name{label="value"}`. At
    /// most `budget` label values may ever be registered — that is the
    /// cardinality ceiling for the family.
    pub fn register_labeled(
        &mut self,
        name: &str,
        help: &str,
        kind: PromKind,
        prefix: &str,
        label: &str,
        budget: usize,
    ) -> Result<(), String> {
        if !valid_label_name(label) {
            return Err(format!("invalid label name {label:?}"));
        }
        if budget == 0 {
            return Err(format!("family {name:?} budget must be positive"));
        }
        self.insert_family(
            name,
            Family {
                help: help.to_string(),
                kind,
                source: None,
                labeled: Some(LabeledSpec {
                    prefix: prefix.to_string(),
                    label: label.to_string(),
                    budget,
                    values: Vec::new(),
                }),
            },
        )
    }

    /// Registers one label value of a labeled family. Errors if the
    /// family is unknown or label-less, or — the point of the budget —
    /// if the family already holds `budget` distinct values.
    pub fn register_series(&mut self, family: &str, value: &str) -> Result<(), String> {
        let fam = self
            .families
            .get_mut(family)
            .ok_or_else(|| format!("unknown family {family:?}"))?;
        let spec = fam
            .labeled
            .as_mut()
            .ok_or_else(|| format!("family {family:?} takes no labels"))?;
        if spec.values.iter().any(|v| v == value) {
            return Ok(());
        }
        if spec.values.len() >= spec.budget {
            return Err(format!(
                "label cardinality budget exhausted: {family:?} already has {} series \
                 (budget {}), rejecting {}=\"{}\"",
                spec.values.len(),
                spec.budget,
                spec.label,
                value
            ));
        }
        spec.values.push(value.to_string());
        spec.values.sort_unstable();
        Ok(())
    }

    /// Renders `snap` as Prometheus text exposition. Deterministic:
    /// families in name order, series in label-value order. Registered
    /// series absent from the snapshot are emitted at zero; snapshot
    /// entries matching a labeled family's prefix but no registered
    /// series are dropped and counted in a trailing
    /// `# nvsim: dropped N over-budget series` comment.
    pub fn encode(&self, snap: &Snapshot) -> String {
        let mut out = String::with_capacity(4096);
        let mut claimed: Vec<&str> = Vec::new();
        let mut dropped = 0u64;

        for (name, fam) in &self.families {
            emit_help_type(&mut out, name, fam);
            match (&fam.source, &fam.labeled) {
                (Some(source), _) => {
                    claimed.push(source);
                    emit_value(&mut out, name, None, fam.kind, source, snap);
                }
                (None, Some(spec)) => {
                    for value in &spec.values {
                        let source = format!("{}{}", spec.prefix, value);
                        let labelled = (spec.label.as_str(), value.as_str());
                        emit_value(&mut out, name, Some(labelled), fam.kind, &source, snap);
                    }
                    // Snapshot names under the prefix but not registered
                    // are over budget: dropped, never exposed.
                    dropped += unclaimed_under_prefix(snap, spec);
                }
                (None, None) => {}
            }
        }

        // Auto families: snapshot names no registration covers.
        let labeled_prefixes: Vec<&LabeledSpec> = self
            .families
            .values()
            .filter_map(|f| f.labeled.as_ref())
            .collect();
        let mut auto: BTreeMap<String, (PromKind, &str)> = BTreeMap::new();
        let covered = |name: &str| {
            claimed.contains(&name)
                || labeled_prefixes
                    .iter()
                    .any(|spec| name.strip_prefix(spec.prefix.as_str()).is_some())
        };
        for name in snap.counters.keys().filter(|n| !covered(n)) {
            auto.insert(
                format!("{}_total", sanitize_name(name)),
                (PromKind::Counter, name),
            );
        }
        for name in snap.gauges.keys().filter(|n| !covered(n)) {
            auto.insert(sanitize_name(name), (PromKind::Gauge, name));
        }
        for name in snap.histograms.keys().filter(|n| !covered(n)) {
            auto.insert(sanitize_name(name), (PromKind::Histogram, name));
        }
        for (prom_name, (kind, source)) in &auto {
            if self.families.contains_key(prom_name) {
                // A sanitized auto name colliding with a registered
                // family would duplicate its TYPE block; drop instead.
                dropped += 1;
                continue;
            }
            let fam = Family {
                help: format!("Auto-exposed from metric `{source}`."),
                kind: *kind,
                source: None,
                labeled: None,
            };
            emit_help_type(&mut out, prom_name, &fam);
            emit_value(&mut out, prom_name, None, *kind, source, snap);
        }

        if dropped > 0 {
            let _ = writeln!(out, "# nvsim: dropped {dropped} over-budget series");
        }
        out
    }
}

fn unclaimed_under_prefix(snap: &Snapshot, spec: &LabeledSpec) -> u64 {
    let mut n = 0u64;
    let over_budget = |name: &str| {
        name.strip_prefix(spec.prefix.as_str())
            .is_some_and(|suffix| !spec.values.iter().any(|v| v == suffix))
    };
    for name in snap
        .counters
        .keys()
        .chain(snap.gauges.keys())
        .chain(snap.histograms.keys())
    {
        if over_budget(name) {
            n += 1;
        }
    }
    n
}

fn emit_help_type(out: &mut String, name: &str, fam: &Family) {
    let _ = write!(out, "# HELP {name} ");
    // HELP escaping: backslash and newline only.
    for c in fam.help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out.push('\n');
    let _ = writeln!(out, "# TYPE {name} {}", fam.kind.text());
}

fn push_labels(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"");
        escape_label_value(out, v);
        out.push('"');
    }
    out.push('}');
}

fn emit_value(
    out: &mut String,
    name: &str,
    label: Option<(&str, &str)>,
    kind: PromKind,
    source: &str,
    snap: &Snapshot,
) {
    let labels: Vec<(&str, &str)> = label.into_iter().collect();
    match kind {
        PromKind::Counter => {
            let v = snap.counter(source).unwrap_or(0);
            out.push_str(name);
            push_labels(out, &labels);
            let _ = writeln!(out, " {v}");
        }
        PromKind::Gauge => {
            let v = snap.gauge(source).unwrap_or(0);
            out.push_str(name);
            push_labels(out, &labels);
            let _ = writeln!(out, " {v}");
        }
        PromKind::Histogram => {
            let empty = HistogramSnapshot {
                buckets: [0; BUCKETS],
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
            };
            let h = snap.histogram(source).unwrap_or(&empty);
            emit_histogram(out, name, &labels, h);
        }
    }
}

/// Emits one pow2 histogram as cumulative `_bucket` series plus `_sum`
/// and `_count`. The pow2 bucket `i` holds integer values in
/// `[2^(i-1), 2^i)` (bucket 0 holds exactly `{0}`), so its inclusive
/// upper bound — the Prometheus `le` — is `2^i - 1`. The overflow
/// bucket has no finite bound and folds into `+Inf`.
fn emit_histogram(out: &mut String, name: &str, labels: &[(&str, &str)], h: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (i, count) in h.buckets.iter().enumerate().take(BUCKETS - 1) {
        cumulative += count;
        let le = if i == 0 { 0 } else { (1u64 << i) - 1 };
        let _ = write!(out, "{name}_bucket");
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        let le_text = le.to_string();
        with_le.push(("le", &le_text));
        push_labels(out, &with_le);
        let _ = writeln!(out, " {cumulative}");
    }
    let _ = write!(out, "{name}_bucket");
    let mut with_le: Vec<(&str, &str)> = labels.to_vec();
    with_le.push(("le", "+Inf"));
    push_labels(out, &with_le);
    let _ = writeln!(out, " {}", h.count);
    let _ = write!(out, "{name}_sum");
    push_labels(out, labels);
    let _ = writeln!(out, " {}", h.sum);
    let _ = write!(out, "{name}_count");
    push_labels(out, labels);
    let _ = writeln!(out, " {}", h.count);
}

/// One parsed sample: full series identity (name plus label set, as
/// written) and its value.
pub type Series = (String, f64);

/// Parses exposition text into `(series identity, value)` pairs in
/// document order, skipping comments and blank lines. Errors on lines
/// that are neither. This is the golden parser the round-trip tests
/// and the CI scrape check use.
pub fn parse_series(text: &str) -> Result<Vec<Series>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (id, value) = split_sample(line)
            .ok_or_else(|| format!("line {}: unparsable sample {line:?}", lineno + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: bad value in {line:?}", lineno + 1))?;
        out.push((id.to_string(), value));
    }
    Ok(out)
}

/// Splits `name{labels} value` / `name value` at the value separator,
/// respecting quotes inside the label set.
fn split_sample(line: &str) -> Option<(&str, &str)> {
    let bytes = line.as_bytes();
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            _ if escaped => escaped = false,
            b'\\' if in_quotes => escaped = true,
            b'"' => in_quotes = !in_quotes,
            b' ' if !in_quotes => {
                let value = line[i..].trim();
                if value.is_empty() {
                    return None;
                }
                return Some((&line[..i], value));
            }
            _ => {}
        }
    }
    None
}

fn series_base_name(id: &str) -> &str {
    let name = id.split('{').next().unwrap_or(id);
    name.trim_end_matches("_bucket")
        .trim_end_matches("_sum")
        .trim_end_matches("_count")
}

/// The encoder's self-check: validates `text` against the exposition
/// format. Checks metric-name syntax, that every sample is preceded by
/// its family's `# TYPE` (and at most one TYPE per family), duplicate
/// series, and histogram arithmetic (cumulative non-decreasing buckets
/// ending in a `+Inf` equal to `_count`). Returns the first violation.
pub fn lint(text: &str) -> Result<(), String> {
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut seen_series: Vec<String> = Vec::new();
    // Per histogram series (without le): (last cumulative, inf, count).
    let mut hist: BTreeMap<String, (u64, Option<u64>, Option<u64>)> = BTreeMap::new();

    for (lineno, raw) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !valid_metric_name(name) {
                return Err(format!("line {n}: invalid family name {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {n}: unknown type {kind:?}"));
            }
            if typed.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {n}: duplicate TYPE for {name:?}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let Some((id, value)) = split_sample(line) else {
            return Err(format!("line {n}: unparsable sample {line:?}"));
        };
        let name = id.split('{').next().unwrap_or(id);
        if !valid_metric_name(name) {
            return Err(format!("line {n}: invalid metric name {name:?}"));
        }
        let base = series_base_name(id);
        if !typed.contains_key(name) && !typed.contains_key(base) {
            return Err(format!("line {n}: sample {name:?} precedes its TYPE"));
        }
        if seen_series.iter().any(|s| s == id) {
            return Err(format!("line {n}: duplicate series {id:?}"));
        }
        seen_series.push(id.to_string());

        // Histogram arithmetic.
        if typed.get(base).map(String::as_str) == Some("histogram") {
            let v: u64 = value
                .parse::<f64>()
                .map_err(|_| format!("line {n}: bad value in {line:?}"))?
                as u64;
            let key = histogram_key(id, base);
            let entry = hist.entry(key).or_insert((0, None, None));
            if name.ends_with("_bucket") {
                if id.contains("le=\"+Inf\"") {
                    entry.1 = Some(v);
                } else {
                    if v < entry.0 {
                        return Err(format!(
                            "line {n}: histogram buckets regress at {id:?} ({v} < {})",
                            entry.0
                        ));
                    }
                    entry.0 = v;
                }
            } else if name.ends_with("_count") {
                entry.2 = Some(v);
            }
        }
    }

    for (key, (last, inf, count)) in &hist {
        let inf = inf.ok_or_else(|| format!("histogram {key:?} has no +Inf bucket"))?;
        let count = count.ok_or_else(|| format!("histogram {key:?} has no _count"))?;
        if inf != count {
            return Err(format!(
                "histogram {key:?}: +Inf bucket {inf} != _count {count}"
            ));
        }
        if *last > inf {
            return Err(format!(
                "histogram {key:?}: finite buckets ({last}) exceed +Inf ({inf})"
            ));
        }
    }
    Ok(())
}

/// Identity of one histogram series: base name plus its non-`le`
/// labels.
fn histogram_key(id: &str, base: &str) -> String {
    let labels = id.split_once('{').map(|(_, rest)| rest.trim_end_matches('}'));
    let mut key = base.to_string();
    if let Some(labels) = labels {
        let kept: Vec<&str> = labels
            .split(',')
            .filter(|l| !l.trim_start().starts_with("le="))
            .collect();
        if !kept.is_empty() {
            key.push('{');
            key.push_str(&kept.join(","));
            key.push('}');
        }
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn registry() -> PromRegistry {
        let mut prom = PromRegistry::new();
        prom.register(
            "serve_requests_total",
            "Requests accepted.",
            PromKind::Counter,
            "serve.requests",
        )
        .unwrap();
        prom.register(
            "serve_inflight",
            "Requests in flight.",
            PromKind::Gauge,
            "serve.inflight",
        )
        .unwrap();
        prom.register_labeled(
            "serve_responses_total",
            "Responses by status.",
            PromKind::Counter,
            "serve.responses.",
            "status",
            8,
        )
        .unwrap();
        prom.register_series("serve_responses_total", "200").unwrap();
        prom.register_series("serve_responses_total", "404").unwrap();
        prom.register_labeled(
            "serve_latency_ns",
            "Request latency by route.",
            PromKind::Histogram,
            "serve.latency.",
            "route",
            8,
        )
        .unwrap();
        prom.register_series("serve_latency_ns", "query").unwrap();
        prom
    }

    #[test]
    fn pre_registered_series_show_zero_on_empty_snapshot() {
        let text = registry().encode(&Snapshot::default());
        assert!(text.contains("serve_requests_total 0\n"), "{text}");
        assert!(text.contains("serve_inflight 0\n"), "{text}");
        assert!(text.contains("serve_responses_total{status=\"200\"} 0\n"));
        assert!(text.contains("serve_responses_total{status=\"404\"} 0\n"));
        assert!(text.contains("serve_latency_ns_bucket{route=\"query\",le=\"+Inf\"} 0\n"));
        assert!(text.contains("serve_latency_ns_count{route=\"query\"} 0\n"));
        lint(&text).unwrap();
        assert!(parse_series(&text).unwrap().len() >= 4);
    }

    #[test]
    fn golden_exposition_matches_snapshot_arithmetic() {
        let metrics = Metrics::enabled();
        metrics.counter("serve.requests").add(7);
        metrics.counter("serve.responses.200").add(6);
        metrics.counter("serve.responses.404").inc();
        metrics.gauge("serve.inflight").add(2);
        let h = metrics.histogram("serve.latency.query");
        h.record(0); // bucket 0: le="0"
        h.record(1); // bucket 1: le="1"
        h.record(2); // bucket 2: le="3"
        h.record(3); // bucket 2: le="3"
        h.record(1_000_000); // bucket 20: le="1048575"
        let snap = metrics.snapshot();
        let text = registry().encode(&snap);
        lint(&text).unwrap();

        assert!(text.contains("# HELP serve_requests_total Requests accepted.\n"));
        assert!(text.contains("# TYPE serve_requests_total counter\n"));
        assert!(text.contains("serve_requests_total 7\n"));
        assert!(text.contains("serve_responses_total{status=\"200\"} 6\n"));
        assert!(text.contains("serve_responses_total{status=\"404\"} 1\n"));
        assert!(text.contains("serve_inflight 2\n"));
        // Cumulative bucket arithmetic against the JSON snapshot's pow2
        // buckets: le=0 -> 1 obs, le=1 -> 2, le=3 -> 4, le=1048575 -> 5.
        assert!(text.contains("serve_latency_ns_bucket{route=\"query\",le=\"0\"} 1\n"));
        assert!(text.contains("serve_latency_ns_bucket{route=\"query\",le=\"1\"} 2\n"));
        assert!(text.contains("serve_latency_ns_bucket{route=\"query\",le=\"3\"} 4\n"));
        assert!(text.contains("serve_latency_ns_bucket{route=\"query\",le=\"1048575\"} 5\n"));
        assert!(text.contains("serve_latency_ns_bucket{route=\"query\",le=\"+Inf\"} 5\n"));
        let hist = snap.histogram("serve.latency.query").unwrap();
        assert!(text.contains(&format!("serve_latency_ns_sum{{route=\"query\"}} {}\n", hist.sum)));
        assert!(text.contains("serve_latency_ns_count{route=\"query\"} 5\n"));

        // The parse round trip sees the same values.
        let series = parse_series(&text).unwrap();
        let get = |id: &str| {
            series
                .iter()
                .find(|(s, _)| s == id)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing series {id}\n{text}"))
        };
        assert_eq!(get("serve_requests_total"), 7.0);
        assert_eq!(get("serve_responses_total{status=\"404\"}"), 1.0);
        assert_eq!(get("serve_latency_ns_bucket{route=\"query\",le=\"+Inf\"}"), 5.0);
    }

    #[test]
    fn budget_rejects_unbounded_label() {
        let mut prom = PromRegistry::new();
        prom.register_labeled(
            "q_total",
            "Per-user queries — unbounded by nature.",
            PromKind::Counter,
            "q.",
            "user",
            2,
        )
        .unwrap();
        prom.register_series("q_total", "alice").unwrap();
        prom.register_series("q_total", "bob").unwrap();
        // Idempotent re-registration is fine...
        prom.register_series("q_total", "alice").unwrap();
        // ...but a third distinct value breaks the budget.
        let err = prom.register_series("q_total", "mallory").unwrap_err();
        assert!(err.contains("cardinality budget"), "{err}");

        // Unregistered series under the prefix are dropped, not exposed.
        let metrics = Metrics::enabled();
        metrics.counter("q.alice").inc();
        metrics.counter("q.mallory").add(99);
        let text = prom.encode(&metrics.snapshot());
        assert!(text.contains("q_total{user=\"alice\"} 1\n"), "{text}");
        assert!(!text.contains("mallory"), "{text}");
        assert!(text.contains("# nvsim: dropped 1 over-budget series"), "{text}");
        lint(&text).unwrap();
    }

    #[test]
    fn unregistered_names_are_auto_exposed() {
        let metrics = Metrics::enabled();
        metrics.counter("trace.reads").add(3);
        metrics.gauge("replay.active").add(1);
        metrics.histogram("txn.bytes").record(100);
        let text = PromRegistry::new().encode(&metrics.snapshot());
        lint(&text).unwrap();
        assert!(text.contains("# TYPE trace_reads_total counter\n"), "{text}");
        assert!(text.contains("trace_reads_total 3\n"));
        assert!(text.contains("# TYPE replay_active gauge\n"));
        assert!(text.contains("replay_active 1\n"));
        assert!(text.contains("# TYPE txn_bytes histogram\n"));
        assert!(text.contains("txn_bytes_count 1\n"));
    }

    #[test]
    fn registration_validates_names_and_budgets() {
        let mut prom = PromRegistry::new();
        assert!(prom
            .register("bad name", "x", PromKind::Counter, "x")
            .is_err());
        assert!(prom
            .register("2leading", "x", PromKind::Counter, "x")
            .is_err());
        assert!(prom
            .register_labeled("ok_total", "x", PromKind::Counter, "x.", "0bad", 4)
            .is_err());
        assert!(prom
            .register_labeled("ok_total", "x", PromKind::Counter, "x.", "label", 0)
            .is_err());
        prom.register("ok_total", "x", PromKind::Counter, "x").unwrap();
        assert!(prom.register("ok_total", "x", PromKind::Counter, "x").is_err());
        assert!(prom.register_series("ok_total", "v").is_err());
        assert!(prom.register_series("ghost", "v").is_err());
    }

    #[test]
    fn lint_rejects_malformed_expositions() {
        assert!(lint("no_type_yet 1\n").is_err());
        assert!(lint("# TYPE a counter\na 1\na 1\n").is_err(), "duplicate series");
        assert!(lint("# TYPE a counter\n# TYPE a counter\n").is_err(), "duplicate TYPE");
        assert!(lint("# TYPE a wat\n").is_err(), "unknown type");
        assert!(lint("# TYPE 9bad counter\n").is_err(), "bad name");
        assert!(
            lint("# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n").is_err(),
            "regressing buckets"
        );
        assert!(
            lint("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 3\n").is_err(),
            "+Inf != count"
        );
        assert!(
            lint("# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n").is_err(),
            "missing +Inf"
        );
        lint("# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n")
            .unwrap();
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize_name("serve.cache.hits"), "serve_cache_hits");
        assert_eq!(sanitize_name("1weird"), "_1weird");
        assert_eq!(sanitize_name("a-b"), "a_b");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut prom = PromRegistry::new();
        prom.register_labeled("f_total", "x", PromKind::Counter, "f.", "v", 2)
            .unwrap();
        prom.register_series("f_total", "a\"b\\c").unwrap();
        let text = prom.encode(&Snapshot::default());
        assert!(text.contains("f_total{v=\"a\\\"b\\\\c\"} 0\n"), "{text}");
    }
}
