//! Per-main-loop-iteration metric deltas.
//!
//! NV-SCAVENGER's core methodology (§VI) is *iteration-resolved*: the
//! tool reports read/write ratio, reference rate and size per object per
//! main-loop iteration, because aggregate numbers hide the phase
//! behaviour that decides NVRAM suitability. The whole-run
//! [`Snapshot`](crate::Snapshot) loses that structure; an
//! [`EpochRecorder`] restores it by snapshotting one shared
//! [`Metrics`](crate::Metrics) registry at every phase boundary and
//! storing the [`Snapshot::delta`] since the previous boundary as an
//! [`Epoch`].
//!
//! The recorder guarantees a partition: every counter increment lands in
//! exactly one epoch, so for any counter the sum over all epochs equals
//! the whole-run total (the integration tests assert this). The final
//! [`EpochRecorder::finish`] call captures whatever accrued after the
//! last boundary (cache-filter re-run, technology replays, migration)
//! into a trailing [`EpochKind::Tail`] epoch.
//!
//! ```
//! use nvsim_obs::{EpochKind, EpochRecorder, Metrics};
//!
//! let metrics = Metrics::enabled();
//! let recorder = EpochRecorder::new(&metrics);
//! metrics.counter("trace.refs").add(10);
//! recorder.mark(EpochKind::Iteration(0));
//! metrics.counter("trace.refs").add(4);
//! recorder.mark(EpochKind::Iteration(1));
//! metrics.counter("trace.refs").inc(); // post-loop work lands in the tail
//! recorder.finish();
//!
//! let epochs = recorder.epochs();
//! assert_eq!(epochs.len(), 3); // two iterations + tail
//! assert_eq!(epochs[0].delta.counter("trace.refs"), Some(10));
//! assert_eq!(epochs[1].delta.counter("trace.refs"), Some(4));
//! let sum: u64 = epochs.iter().filter_map(|e| e.delta.counter("trace.refs")).sum();
//! assert_eq!(sum, metrics.snapshot().counter("trace.refs").unwrap());
//! ```

use crate::metrics::Metrics;
use crate::snapshot::Snapshot;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What part of the run an epoch covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochKind {
    /// Everything before the first main-loop iteration (allocation,
    /// input parsing — §VI's "pre-computing phase").
    Setup,
    /// One main-loop iteration (0-based).
    Iteration(u32),
    /// The post-processing phase (§VI).
    PostProcess,
    /// Everything after the traced run: cache-filter re-run, technology
    /// replays, migration simulation. Captured by
    /// [`EpochRecorder::finish`] so epoch sums stay exhaustive.
    Tail,
}

impl EpochKind {
    /// Human/report label (`setup`, `iteration 3`, `post_process`,
    /// `tail`).
    pub fn label(&self) -> String {
        match self {
            EpochKind::Setup => "setup".into(),
            EpochKind::Iteration(i) => format!("iteration {i}"),
            EpochKind::PostProcess => "post_process".into(),
            EpochKind::Tail => "tail".into(),
        }
    }

    /// The iteration index, for `Iteration` epochs.
    pub fn iteration(&self) -> Option<u32> {
        match self {
            EpochKind::Iteration(i) => Some(*i),
            _ => None,
        }
    }
}

/// One recorded epoch: the metric delta over a window of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct Epoch {
    /// Which window this is.
    pub kind: EpochKind,
    /// Instrument deltas over the window (see [`Snapshot::delta`]).
    pub delta: Snapshot,
    /// Wall-clock duration of the window, nanoseconds.
    pub wall_ns: u64,
}

impl Epoch {
    /// Read/write ratio of the window, from `trace.reads` /
    /// `trace.writes` deltas. `None` when nothing was traced;
    /// `Some(f64::INFINITY)` for a read-only window.
    pub fn rw_ratio(&self) -> Option<f64> {
        let reads = self.delta.counter("trace.reads").unwrap_or(0);
        let writes = self.delta.counter("trace.writes").unwrap_or(0);
        match (reads, writes) {
            (0, 0) => None,
            (_, 0) => Some(f64::INFINITY),
            (r, w) => Some(r as f64 / w as f64),
        }
    }

    /// References traced during the window (`trace.refs` delta).
    pub fn refs(&self) -> u64 {
        self.delta.counter("trace.refs").unwrap_or(0)
    }
}

#[derive(Debug)]
struct RecorderState {
    metrics: Metrics,
    last: Snapshot,
    last_at: Instant,
    epochs: Vec<Epoch>,
    finished: bool,
}

/// Captures metric deltas at phase boundaries. Cheaply clonable; clones
/// share the epoch list. Created from a disabled registry (or via
/// [`EpochRecorder::disabled`]) every call is a no-op.
#[derive(Debug, Clone, Default)]
pub struct EpochRecorder {
    inner: Option<Arc<Mutex<RecorderState>>>,
}

impl EpochRecorder {
    /// Creates a recorder over `metrics`. The baseline snapshot is taken
    /// now; the first [`EpochRecorder::mark`] captures everything since
    /// this call. A disabled registry yields a disabled recorder.
    pub fn new(metrics: &Metrics) -> Self {
        if !metrics.is_enabled() {
            return Self::disabled();
        }
        EpochRecorder {
            inner: Some(Arc::new(Mutex::new(RecorderState {
                metrics: metrics.clone(),
                last: metrics.snapshot(),
                last_at: Instant::now(),
                epochs: Vec::new(),
                finished: false,
            }))),
        }
    }

    /// Creates a recorder that records nothing.
    pub fn disabled() -> Self {
        EpochRecorder { inner: None }
    }

    /// `true` when marks actually record.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Closes the current window as an epoch of `kind` and opens the
    /// next one.
    pub fn mark(&self, kind: EpochKind) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.lock().expect("epoch recorder poisoned");
        if st.finished {
            return;
        }
        let now_at = Instant::now();
        let now = st.metrics.snapshot();
        let delta = now.delta(&st.last);
        let wall_ns =
            u64::try_from(now_at.duration_since(st.last_at).as_nanos()).unwrap_or(u64::MAX);
        st.epochs.push(Epoch {
            kind,
            delta,
            wall_ns,
        });
        st.last = now;
        st.last_at = now_at;
    }

    /// Captures everything since the last mark into a final
    /// [`EpochKind::Tail`] epoch (skipped when nothing accrued) and
    /// seals the recorder — later marks are ignored. Idempotent.
    pub fn finish(&self) {
        let Some(inner) = &self.inner else { return };
        let already = inner.lock().expect("epoch recorder poisoned").finished;
        if already {
            return;
        }
        self.mark(EpochKind::Tail);
        let mut st = inner.lock().expect("epoch recorder poisoned");
        if let Some(last) = st.epochs.last() {
            if last.kind == EpochKind::Tail
                && last.delta.counters.values().all(|v| *v == 0)
                && last.delta.histograms.values().all(|h| h.count == 0)
            {
                st.epochs.pop();
            }
        }
        st.finished = true;
    }

    /// Epochs recorded so far, in order.
    pub fn epochs(&self) -> Vec<Epoch> {
        self.inner.as_ref().map_or_else(Vec::new, |inner| {
            inner.lock().expect("epoch recorder poisoned").epochs.clone()
        })
    }

    /// Number of epochs recorded so far.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |inner| {
            inner.lock().expect("epoch recorder poisoned").epochs.len()
        })
    }

    /// `true` when no epoch has been recorded (always for disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_silent() {
        let rec = EpochRecorder::new(&Metrics::disabled());
        rec.mark(EpochKind::Iteration(0));
        rec.finish();
        assert!(!rec.is_enabled());
        assert!(rec.is_empty());
    }

    #[test]
    fn epochs_partition_the_run() {
        let m = Metrics::enabled();
        let rec = EpochRecorder::new(&m);
        let c = m.counter("trace.refs");
        c.add(3);
        rec.mark(EpochKind::Setup);
        c.add(7);
        rec.mark(EpochKind::Iteration(0));
        rec.mark(EpochKind::Iteration(1)); // empty window
        c.add(5);
        rec.finish();

        let epochs = rec.epochs();
        assert_eq!(epochs.len(), 4);
        assert_eq!(epochs[0].kind, EpochKind::Setup);
        assert_eq!(epochs[0].refs(), 3);
        assert_eq!(epochs[1].refs(), 7);
        assert_eq!(epochs[2].refs(), 0);
        assert_eq!(epochs[3].kind, EpochKind::Tail);
        assert_eq!(epochs[3].refs(), 5);
        let sum: u64 = epochs.iter().map(|e| e.refs()).sum();
        assert_eq!(sum, m.snapshot().counter("trace.refs").unwrap());
    }

    #[test]
    fn empty_tail_is_elided_and_finish_is_idempotent() {
        let m = Metrics::enabled();
        let rec = EpochRecorder::new(&m);
        m.counter("x").inc();
        rec.mark(EpochKind::Iteration(0));
        rec.finish();
        rec.finish();
        rec.mark(EpochKind::Iteration(1)); // after finish: ignored
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn rw_ratio_flavours() {
        let m = Metrics::enabled();
        let rec = EpochRecorder::new(&m);
        rec.mark(EpochKind::Iteration(0)); // empty
        m.counter("trace.reads").add(10);
        m.counter("trace.refs").add(10);
        rec.mark(EpochKind::Iteration(1)); // read-only
        m.counter("trace.reads").add(8);
        m.counter("trace.writes").add(4);
        m.counter("trace.refs").add(12);
        rec.mark(EpochKind::Iteration(2)); // ratio 2
        let e = rec.epochs();
        assert_eq!(e[0].rw_ratio(), None);
        assert_eq!(e[1].rw_ratio(), Some(f64::INFINITY));
        assert_eq!(e[2].rw_ratio(), Some(2.0));
        assert!(e[2].wall_ns < u64::MAX);
    }

    #[test]
    fn clones_share_epochs() {
        let m = Metrics::enabled();
        let rec = EpochRecorder::new(&m);
        let rec2 = rec.clone();
        m.counter("x").inc();
        rec.mark(EpochKind::Iteration(0));
        assert_eq!(rec2.len(), 1);
    }
}
