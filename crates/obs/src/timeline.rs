//! Wall-clock event journal with a Chrome trace-event / Perfetto
//! exporter.
//!
//! The paper's per-iteration characterization (§VI) is temporal: what an
//! object does *per main-loop iteration* matters more than its whole-run
//! aggregate. A [`Timeline`] gives every pipeline stage a shared journal
//! to record that temporal structure into — begin/end spans for
//! execution phases (pre-compute, each iteration, post-processing,
//! technology replays) and instant events for one-off occurrences
//! (migrations, dirty evictions, checkpoint flushes).
//!
//! Like [`crate::Metrics`], a timeline handle is cheaply clonable and has
//! a disabled flavour whose every call is a branch on a `None`, so
//! un-instrumented runs pay nothing.
//!
//! [`Timeline::to_chrome_json`] renders the journal in the Chrome
//! trace-event JSON format, which `ui.perfetto.dev` and `chrome://tracing`
//! open directly. Each distinct category gets its own `tid`, so the
//! tracer, cache filter, memory replays and migration simulator appear as
//! separate tracks.
//!
//! ```
//! use nvsim_obs::{ArgValue, Timeline};
//!
//! let tl = Timeline::enabled();
//! tl.begin("iteration 0", "trace");
//! tl.instant("migration", "placement", &[("bytes", ArgValue::U64(4096))]);
//! tl.end("iteration 0", "trace");
//! let json = tl.to_chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! assert!(json.contains("\"ph\": \"B\""));
//! assert!(json.contains("\"schema\": 1"));
//!
//! // Disabled timelines accept the same calls and record nothing.
//! let off = Timeline::disabled();
//! off.begin("quiet", "trace");
//! assert_eq!(off.events().len(), 0);
//! ```

use crate::snapshot::escape_json_into;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default cap on journal length; instants beyond it are counted as
/// dropped rather than recorded (see [`Timeline::dropped`]).
pub const DEFAULT_EVENT_CAP: usize = 1 << 16;

/// Version of the JSON envelope emitted by [`Timeline::to_chrome_json`]
/// (the non-standard `schema` field next to `traceEvents`). Bump on any
/// non-additive change.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// One typed argument value attached to a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (emitted with three decimals).
    F64(f64),
    /// String.
    Str(String),
}

impl ArgValue {
    fn emit(&self, out: &mut String) {
        match self {
            ArgValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            ArgValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            ArgValue::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:.3}");
                } else {
                    out.push_str("null");
                }
            }
            ArgValue::Str(s) => {
                out.push('"');
                escape_json_into(out, s);
                out.push('"');
            }
        }
    }
}

/// Event flavour, mapping onto Chrome trace-event `ph` codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span opens (`ph: "B"`).
    Begin,
    /// Span closes (`ph: "E"`).
    End,
    /// Point-in-time marker (`ph: "i"`, thread-scoped).
    Instant,
}

impl EventKind {
    /// The Chrome trace-event phase code.
    pub fn ph(self) -> char {
        match self {
            EventKind::Begin => 'B',
            EventKind::End => 'E',
            EventKind::Instant => 'i',
        }
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (span or marker label).
    pub name: String,
    /// Category — one per pipeline stage (`trace`, `cache`, `mem.ddr3`,
    /// `placement`, `app`). Each distinct category renders as its own
    /// Perfetto track.
    pub cat: String,
    /// Begin / end / instant.
    pub kind: EventKind,
    /// Nanoseconds since the timeline was created. Non-decreasing in
    /// journal order (timestamps are taken under the journal lock).
    pub ts_ns: u64,
    /// Track id assigned to the category (first use ⇒ next id).
    pub tid: u32,
    /// Typed arguments (`args` object in the exported JSON).
    pub args: Vec<(String, ArgValue)>,
}

/// Interior state, guarded by one mutex: the journal, the category→track
/// map, and the dropped-instant count. Timestamps are read inside the
/// lock so journal order and timestamp order always agree.
#[derive(Debug, Default)]
struct TimelineState {
    events: Vec<TraceEvent>,
    tids: BTreeMap<String, u32>,
    dropped: u64,
}

#[derive(Debug)]
struct TimelineCore {
    origin: Instant,
    cap: usize,
    state: Mutex<TimelineState>,
}

/// Handle to a shared event journal; the no-op flavour costs one branch
/// per call. Cloning shares the journal.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    inner: Option<Arc<TimelineCore>>,
}

impl Timeline {
    /// Creates a live journal with the default event cap.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAP)
    }

    /// Creates a live journal capping instants at `cap` total events.
    /// Begin/end events are always recorded (they are few and must stay
    /// balanced); instants past the cap increment [`Timeline::dropped`].
    pub fn with_capacity(cap: usize) -> Self {
        Timeline {
            inner: Some(Arc::new(TimelineCore {
                origin: Instant::now(),
                cap,
                state: Mutex::new(TimelineState::default()),
            })),
        }
    }

    /// Creates a disabled journal: every call is a no-op.
    pub fn disabled() -> Self {
        Timeline { inner: None }
    }

    /// `true` when events from this handle actually record.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn push(&self, name: &str, cat: &str, kind: EventKind, args: &[(&str, ArgValue)]) {
        if self.inner.is_none() {
            return;
        }
        self.record(
            name,
            cat,
            kind,
            args.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect(),
        );
    }

    /// Records one event with pre-owned arguments. This is how restored
    /// events re-enter a journal (e.g. a resumed sweep replaying a cell's
    /// spans out of its completion journal): the name, category, kind and
    /// arguments come from the caller, while the timestamp and track id
    /// are assigned exactly as live recording would assign them, so a
    /// restored journal has the same shape as a live one.
    pub fn record(&self, name: &str, cat: &str, kind: EventKind, args: Vec<(String, ArgValue)>) {
        let Some(core) = &self.inner else { return };
        let mut st = core.state.lock().expect("timeline poisoned");
        if kind == EventKind::Instant && st.events.len() >= core.cap {
            st.dropped += 1;
            return;
        }
        let next_tid = st.tids.len() as u32 + 1;
        let tid = *st.tids.entry(cat.to_string()).or_insert(next_tid);
        let ts_ns = u64::try_from(core.origin.elapsed().as_nanos()).unwrap_or(u64::MAX);
        st.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            kind,
            ts_ns,
            tid,
            args,
        });
    }

    /// Opens a span. Pair with [`Timeline::end`] using the same
    /// name and category.
    pub fn begin(&self, name: &str, cat: &str) {
        self.push(name, cat, EventKind::Begin, &[]);
    }

    /// Opens a span with arguments.
    pub fn begin_with(&self, name: &str, cat: &str, args: &[(&str, ArgValue)]) {
        self.push(name, cat, EventKind::Begin, args);
    }

    /// Closes the most recent open span of this name/category.
    pub fn end(&self, name: &str, cat: &str) {
        self.push(name, cat, EventKind::End, &[]);
    }

    /// Closes a span, attaching arguments to the end event (viewers
    /// merge them with the begin event's arguments).
    pub fn end_with(&self, name: &str, cat: &str, args: &[(&str, ArgValue)]) {
        self.push(name, cat, EventKind::End, args);
    }

    /// Records a point-in-time marker.
    pub fn instant(&self, name: &str, cat: &str, args: &[(&str, ArgValue)]) {
        self.push(name, cat, EventKind::Instant, args);
    }

    /// A copy of the journal, in record (= timestamp) order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |core| {
            core.state.lock().expect("timeline poisoned").events.clone()
        })
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |core| {
            core.state.lock().expect("timeline poisoned").events.len()
        })
    }

    /// `true` when no event has been recorded (always for disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends another journal's events to this one, deterministically.
    ///
    /// The shard's events keep their relative order; their categories
    /// are re-mapped onto this journal's track ids (first use ⇒ next
    /// id, exactly as live recording assigns them); their timestamps
    /// are re-based onto the end of this journal so the merged journal
    /// stays non-decreasing in record order; and the shard's dropped
    /// count carries over. Instants past this journal's cap count as
    /// dropped, mirroring live recording.
    ///
    /// This is the timeline half of the parallel sweep engine's
    /// deterministic merge (see [`crate::Metrics::absorb`]): absorb
    /// per-worker shards in a stable order and the merged journal has
    /// the same event sequence — names, categories, kinds, arguments
    /// and track ids — as a serial run sharing one journal; only the
    /// wall-clock `ts_ns` values differ, as they do between any two
    /// serial runs. No-op on a disabled journal, a disabled or empty
    /// shard, or a shard that *is* this journal.
    pub fn absorb(&self, shard: &Timeline) {
        let Some(core) = &self.inner else { return };
        if let Some(other) = &shard.inner {
            if Arc::ptr_eq(core, other) {
                return;
            }
        }
        let events = shard.events();
        let shard_dropped = shard.dropped();
        if events.is_empty() && shard_dropped == 0 {
            return;
        }
        let mut st = core.state.lock().expect("timeline poisoned");
        let base = st.events.last().map_or(0, |e| e.ts_ns);
        for e in events {
            if e.kind == EventKind::Instant && st.events.len() >= core.cap {
                st.dropped += 1;
                continue;
            }
            let next_tid = st.tids.len() as u32 + 1;
            let tid = *st.tids.entry(e.cat.clone()).or_insert(next_tid);
            st.events.push(TraceEvent {
                ts_ns: base.saturating_add(e.ts_ns),
                tid,
                ..e
            });
        }
        st.dropped += shard_dropped;
    }

    /// Instants discarded because the journal hit its cap.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |core| {
            core.state.lock().expect("timeline poisoned").dropped
        })
    }

    /// Renders the journal as Chrome trace-event JSON (the "JSON object
    /// format"), which `ui.perfetto.dev` and `chrome://tracing` load
    /// directly:
    ///
    /// ```json
    /// {
    ///   "schema": 1,
    ///   "displayTimeUnit": "ms",
    ///   "otherData": {"tool": "nv-scavenger", "dropped_events": 0},
    ///   "traceEvents": [
    ///     {"name": "iteration 0", "cat": "trace", "ph": "B",
    ///      "ts": 12.345, "pid": 1, "tid": 1, "args": {}},
    ///     {"name": "migration", "cat": "placement", "ph": "i", "s": "t",
    ///      "ts": 15.002, "pid": 1, "tid": 2, "args": {"bytes": 4096}}
    ///   ]
    /// }
    /// ```
    ///
    /// `ts` is microseconds (fractional, nanosecond precision) since
    /// timeline creation; `pid` is always 1; `tid` is the per-category
    /// track. Instants carry `"s": "t"` (thread scope).
    pub fn to_chrome_json(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(128 + events.len() * 96);
        let _ = write!(out, "{{\n  \"schema\": {TRACE_SCHEMA_VERSION},\n");
        out.push_str("  \"displayTimeUnit\": \"ms\",\n");
        let _ = write!(
            out,
            "  \"otherData\": {{\"tool\": \"nv-scavenger\", \"dropped_events\": {}}},\n",
            self.dropped()
        );
        out.push_str("  \"traceEvents\": [");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": \"");
            escape_json_into(&mut out, &e.name);
            out.push_str("\", \"cat\": \"");
            escape_json_into(&mut out, &e.cat);
            let _ = write!(
                out,
                "\", \"ph\": \"{}\", \"ts\": {}.{:03}, \"pid\": 1, \"tid\": {}",
                e.kind.ph(),
                e.ts_ns / 1_000,
                e.ts_ns % 1_000,
                e.tid
            );
            if e.kind == EventKind::Instant {
                out.push_str(", \"s\": \"t\"");
            }
            out.push_str(", \"args\": {");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('"');
                escape_json_into(&mut out, k);
                out.push_str("\": ");
                v.emit(&mut out);
            }
            out.push_str("}}");
        }
        if !events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timeline_records_nothing() {
        let tl = Timeline::disabled();
        tl.begin("a", "x");
        tl.instant("b", "x", &[]);
        tl.end("a", "x");
        assert!(!tl.is_enabled());
        assert!(tl.is_empty());
        assert_eq!(tl.dropped(), 0);
        assert!(tl.to_chrome_json().contains("\"traceEvents\": []"));
    }

    #[test]
    fn timestamps_are_non_decreasing_in_record_order() {
        let tl = Timeline::enabled();
        for i in 0..50 {
            tl.instant(&format!("e{i}"), "t", &[]);
        }
        let events = tl.events();
        assert_eq!(events.len(), 50);
        for w in events.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
    }

    #[test]
    fn categories_get_stable_distinct_tids() {
        let tl = Timeline::enabled();
        tl.begin("a", "trace");
        tl.begin("b", "mem.ddr3");
        tl.end("b", "mem.ddr3");
        tl.instant("c", "trace", &[]);
        tl.end("a", "trace");
        let e = tl.events();
        assert_eq!(e[0].tid, e[3].tid);
        assert_eq!(e[0].tid, e[4].tid);
        assert_ne!(e[0].tid, e[1].tid);
    }

    #[test]
    fn cap_drops_instants_but_never_spans() {
        let tl = Timeline::with_capacity(4);
        for _ in 0..10 {
            tl.instant("i", "t", &[]);
        }
        tl.begin("span", "t");
        tl.end("span", "t");
        assert_eq!(tl.len(), 6); // 4 instants + B + E
        assert_eq!(tl.dropped(), 6);
    }

    #[test]
    fn clones_share_the_journal() {
        let tl = Timeline::enabled();
        let tl2 = tl.clone();
        tl.begin("a", "x");
        tl2.end("a", "x");
        assert_eq!(tl.len(), 2);
    }

    #[test]
    fn absorb_rebases_timestamps_and_remaps_tids() {
        let parent = Timeline::enabled();
        parent.begin("app0", "trace");
        parent.end("app0", "trace");

        let shard = Timeline::enabled();
        shard.begin("replay ddr3", "mem");
        shard.instant("power", "mem", &[("mw", ArgValue::F64(1.5))]);
        shard.end("replay ddr3", "mem");
        shard.instant("migration", "placement", &[]);

        parent.absorb(&shard);
        let events = parent.events();
        assert_eq!(events.len(), 6);
        // Relative order and payloads survive.
        assert_eq!(events[2].name, "replay ddr3");
        assert_eq!(events[3].args[0].0, "mw");
        assert_eq!(events[5].cat, "placement");
        // Timestamps stay non-decreasing across the seam.
        for w in events.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns, "ts regressed");
        }
        // tids follow the parent's first-use numbering: trace=1, mem=2,
        // placement=3 — not the shard's own ids.
        assert_eq!(events[0].tid, 1);
        assert_eq!(events[2].tid, 2);
        assert_eq!(events[5].tid, 3);
    }

    #[test]
    fn absorb_merges_category_tracks() {
        let parent = Timeline::enabled();
        parent.begin("a", "mem");
        parent.end("a", "mem");
        let shard = Timeline::enabled();
        shard.instant("b", "mem", &[]);
        parent.absorb(&shard);
        let e = parent.events();
        assert_eq!(e[0].tid, e[2].tid, "same category, same track");
    }

    #[test]
    fn absorb_carries_dropped_and_respects_cap() {
        let parent = Timeline::with_capacity(3);
        parent.instant("p", "t", &[]);
        let shard = Timeline::with_capacity(8);
        for _ in 0..4 {
            shard.instant("s", "t", &[]);
        }
        parent.absorb(&shard);
        // Cap 3: one parent instant + two shard instants fit; the other
        // two shard instants drop.
        assert_eq!(parent.len(), 3);
        assert_eq!(parent.dropped(), 2);
        // A shard's own dropped count carries over too.
        let lossy = Timeline::with_capacity(0);
        lossy.instant("x", "t", &[]);
        assert_eq!(lossy.dropped(), 1);
        let parent2 = Timeline::enabled();
        parent2.absorb(&lossy);
        assert_eq!(parent2.dropped(), 1);
    }

    #[test]
    fn absorb_no_ops_on_self_disabled_and_empty() {
        let tl = Timeline::enabled();
        tl.begin("a", "x");
        let clone = tl.clone();
        tl.absorb(&clone); // same journal: must not deadlock or duplicate
        assert_eq!(tl.len(), 1);
        tl.absorb(&Timeline::disabled());
        tl.absorb(&Timeline::enabled());
        assert_eq!(tl.len(), 1);
        let off = Timeline::disabled();
        off.absorb(&tl);
        assert!(off.is_empty());
    }

    #[test]
    fn record_matches_live_recording_shape() {
        let live = Timeline::enabled();
        live.begin_with("replay pcram", "mem", &[("n", ArgValue::U64(3))]);
        live.end("replay pcram", "mem");
        live.instant("power", "mem", &[("mw", ArgValue::F64(1.5))]);

        let restored = Timeline::enabled();
        for e in live.events() {
            restored.record(&e.name, &e.cat, e.kind, e.args.clone());
        }
        let a = live.events();
        let b = restored.events();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.cat, y.cat);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.tid, y.tid);
            assert_eq!(x.args, y.args);
        }
        // Disabled journals ignore record() like every other call.
        let off = Timeline::disabled();
        off.record("x", "y", EventKind::Instant, Vec::new());
        assert!(off.is_empty());
    }

    #[test]
    fn chrome_json_escapes_and_formats_args() {
        let tl = Timeline::enabled();
        tl.instant(
            "odd\"name",
            "cat",
            &[
                ("n", ArgValue::U64(7)),
                ("f", ArgValue::F64(1.5)),
                ("s", ArgValue::Str("x\\y".into())),
            ],
        );
        let json = tl.to_chrome_json();
        assert!(json.contains("odd\\\"name"));
        assert!(json.contains("\"n\": 7"));
        assert!(json.contains("\"f\": 1.500"));
        assert!(json.contains("\"s\": \"x\\\\y\""));
        assert!(json.contains("\"s\": \"t\""));
    }
}
