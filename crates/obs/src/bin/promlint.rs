//! Lints Prometheus text exposition against the in-repo encoder's
//! self-check ([`nvsim_obs::prom::lint`]).
//!
//! ```text
//! promlint [FILE]
//! ```
//!
//! Reads `FILE` (or stdin when omitted or `-`), exits 0 when the
//! exposition is well-formed, 1 with the first violation on stderr
//! otherwise. CI scrapes `/metrics?format=prometheus` and pipes the
//! body through this bin.

use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (label, text) = match args.as_slice() {
        [] => ("<stdin>".to_string(), read_stdin()),
        [path] if path == "-" => ("<stdin>".to_string(), read_stdin()),
        [path] => (path.clone(), std::fs::read_to_string(path)),
        _ => {
            eprintln!("usage: promlint [FILE]");
            return ExitCode::FAILURE;
        }
    };
    let text = match text {
        Ok(text) => text,
        Err(err) => {
            eprintln!("promlint: {label}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match nvsim_obs::prom::lint(&text) {
        Ok(()) => {
            let samples = nvsim_obs::prom::parse_series(&text)
                .map(|s| s.len())
                .unwrap_or(0);
            println!("ok: {label}: {samples} samples, exposition well-formed");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("promlint: {label}: {err}");
            ExitCode::FAILURE
        }
    }
}

fn read_stdin() -> std::io::Result<String> {
    let mut buf = String::new();
    std::io::stdin().read_to_string(&mut buf)?;
    Ok(buf)
}
