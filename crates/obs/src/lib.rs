//! # nvsim-obs
//!
//! A zero-dependency observability layer for the NV-SCAVENGER pipeline:
//! counters, gauges, fixed-bucket histograms, and scoped span timers,
//! collected into a [`Snapshot`] that renders as JSON or a human table.
//!
//! The paper's tool (§III) computes its statistics *on-the-fly* rather
//! than post-processing trace files, which makes the instrumentation
//! layer itself part of the measured system. This crate exists so each
//! pipeline stage — tracer, cache filter, memory controller, object
//! registry, migration simulator — can report what it did without
//! perturbing what it measures:
//!
//! * every handle is pre-bound (one `Arc<AtomicU64>` clone at setup, a
//!   single relaxed atomic op per event on the hot path), and
//! * a [`Metrics`] handle created with [`Metrics::disabled`] hands out
//!   no-op instruments, so un-instrumented runs pay one branch on a
//!   `None` — the benches of §III-D keep their numbers.
//!
//! Histograms use power-of-two buckets (bucket *i* counts values in
//! `[2^(i-1), 2^i)`), which is exact enough for latency and object-size
//! distributions while keeping recording branch-free.
//!
//! On top of the instruments sit three iteration-resolved layers:
//!
//! * [`epoch`] — an [`EpochRecorder`] snapshots the registry at phase
//!   boundaries and stores per-window [`Snapshot::delta`]s, restoring
//!   the per-iteration view the paper's methodology is built on;
//! * [`timeline`] — a [`Timeline`] journal of begin/end phase spans and
//!   instant events (migrations, dirty evictions, checkpoint flushes)
//!   that exports Chrome trace-event JSON loadable in Perfetto;
//! * [`report`] — a [`RunReport`] folding epochs, totals, drift rows
//!   and the timeline summary into versioned JSON or Markdown.
//!
//! Since the pipeline went parallel, fault-injected and served, the
//! instruments gained an attribution layer:
//!
//! * [`event`] / [`bus`] — typed [`Event`]s carrying a [`Correlation`]
//!   (run, app, cell, worker, request) fan out through a bounded
//!   [`EventBus`] to pluggable subscribers: a JSONL sink
//!   ([`JsonlSink`]), a metrics deriver ([`MetricsAggregator`]) and a
//!   timeline mirror ([`TimelineBridge`]);
//! * [`prom`] — a Prometheus text-exposition encoder
//!   ([`PromRegistry`]) with label-cardinality budgets, a self-check
//!   linter and a golden parser.
//!
//! ## Example
//!
//! ```
//! use nvsim_obs::Metrics;
//!
//! let metrics = Metrics::enabled();
//! let refs = metrics.counter("trace.refs");
//! let sizes = metrics.histogram("objects.size_bytes");
//!
//! for size in [8u64, 64, 64, 4096] {
//!     refs.inc();
//!     sizes.record(size);
//! }
//!
//! let snap = metrics.snapshot();
//! assert_eq!(snap.counter("trace.refs"), Some(4));
//! let h = snap.histogram("objects.size_bytes").unwrap();
//! assert_eq!(h.count, 4);
//! assert_eq!(h.max, 4096);
//! assert!(snap.to_json().contains("\"trace.refs\": 4"));
//!
//! // Disabled metrics accept the same calls and record nothing.
//! let off = Metrics::disabled();
//! off.counter("trace.refs").inc();
//! assert!(off.snapshot().is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod artifact;
pub mod bus;
pub mod epoch;
pub mod event;
pub mod histogram;
pub mod metrics;
pub mod prom;
pub mod report;
pub mod snapshot;
pub mod span;
pub mod timeline;

pub use bus::{
    EventBus, EventBusBuilder, JsonlSink, MetricsAggregator, Subscribe, TimelineBridge,
    DEFAULT_EVENT_CAP,
};
pub use epoch::{Epoch, EpochKind, EpochRecorder};
pub use event::{Correlation, Event, EventRecord, EVENT_SCHEMA_VERSION, KINDS};
pub use prom::{PromKind, PromRegistry};
pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use metrics::{Counter, Gauge, Metrics};
pub use artifact::atomic_write;
pub use report::{
    snapshot_json_with_degraded, DegradedCell, ObjectDrift, ReportMeta, RunReport,
    REPORT_SCHEMA_VERSION,
};
pub use snapshot::Snapshot;
pub use span::Span;
pub use timeline::{ArgValue, EventKind, Timeline, TraceEvent, TRACE_SCHEMA_VERSION};
