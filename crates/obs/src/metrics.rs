//! The [`Metrics`] registry and its scalar instruments.
//!
//! A [`Metrics`] value is a cheap clonable handle. Instruments are
//! pre-bound: [`Metrics::counter`] resolves the name once and returns a
//! handle whose [`Counter::inc`] is a single relaxed atomic add — or a
//! no-op when the registry is disabled. All instruments registered under
//! the same name share one underlying cell, so any pipeline stage can
//! contribute to e.g. `trace.refs`.

use crate::histogram::{Histogram, HistogramCore};
use crate::snapshot::Snapshot;
use crate::span::Span;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Interior tables of an enabled registry. Names are resolved under a
/// mutex (setup path); recording touches only the pre-bound atomics.
#[derive(Debug, Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
}

/// Handle to a metrics registry; the no-op flavour costs one `None`
/// check per instrument creation and nothing per event.
///
/// Cloning shares the registry: clones see each other's instruments and
/// a snapshot taken from any clone covers them all.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<Registry>>,
}

impl Metrics {
    /// Creates a live registry that records everything.
    pub fn enabled() -> Self {
        Metrics {
            inner: Some(Arc::new(Registry::default())),
        }
    }

    /// Creates a disabled registry: every instrument it hands out is a
    /// no-op and [`Metrics::snapshot`] is empty.
    pub fn disabled() -> Self {
        Metrics { inner: None }
    }

    /// `true` when instruments from this handle actually record.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Returns the counter registered under `name`, creating it at zero
    /// on first use. Counters are monotonically increasing `u64`s.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|r| {
            Arc::clone(
                r.counters
                    .lock()
                    .expect("counter table poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Returns the gauge registered under `name` (a settable `i64`,
    /// e.g. a current queue depth or a signed energy delta).
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|r| {
            Arc::clone(
                r.gauges
                    .lock()
                    .expect("gauge table poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Returns the histogram registered under `name` (power-of-two
    /// buckets; see [`crate::histogram`]).
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram::from_core(self.inner.as_ref().map(|r| {
            Arc::clone(
                r.histograms
                    .lock()
                    .expect("histogram table poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Starts a wall-clock span that records elapsed nanoseconds into
    /// the histogram `name` when dropped.
    pub fn span(&self, name: &str) -> Span {
        Span::new(self.histogram(name))
    }

    /// Folds a shard registry's snapshot into this registry, as if the
    /// shard's instruments had recorded here directly: counters add,
    /// gauges take the shard's value ([`Gauge::set`] last-writer-wins),
    /// histograms merge bucket-wise ([`Histogram::absorb`]). Instruments
    /// the shard knows and this registry doesn't are created, including
    /// zero-valued ones — so the merged key set matches a serial run
    /// that shared one registry.
    ///
    /// This is the deterministic-merge primitive of the parallel sweep
    /// engine: give each worker its own [`Metrics::enabled`] shard, then
    /// absorb the shards in a *stable* order (cell order, never
    /// completion order) and the final [`Metrics::snapshot`] is
    /// byte-identical to the serial run's. No-op on a disabled registry.
    pub fn absorb(&self, shard: &Snapshot) {
        if self.inner.is_none() {
            return;
        }
        for (name, v) in &shard.counters {
            self.counter(name).add(*v);
        }
        for (name, v) in &shard.gauges {
            self.gauge(name).set(*v);
        }
        for (name, h) in &shard.histograms {
            self.histogram(name).absorb(h);
        }
    }

    /// Reads every instrument into an immutable [`Snapshot`]. Counters
    /// and histograms keep accumulating afterwards; snapshots are cheap
    /// enough to take per phase.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        if let Some(r) = &self.inner {
            for (name, cell) in r.counters.lock().expect("counter table poisoned").iter() {
                snap.counters
                    .insert(name.clone(), cell.load(Ordering::Relaxed));
            }
            for (name, cell) in r.gauges.lock().expect("gauge table poisoned").iter() {
                snap.gauges
                    .insert(name.clone(), cell.load(Ordering::Relaxed));
            }
            for (name, core) in r.histograms.lock().expect("histogram table poisoned").iter() {
                snap.histograms.insert(name.clone(), core.snapshot());
            }
        }
        snap
    }
}

/// A monotonically increasing counter. `Clone` shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled counter).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A settable signed gauge. `Clone` shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled gauge).
    pub fn get(&self) -> i64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        m.counter("a").add(5);
        m.gauge("b").set(7);
        m.histogram("c").record(9);
        assert_eq!(m.counter("a").get(), 0);
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn instruments_with_same_name_share_a_cell() {
        let m = Metrics::enabled();
        let a = m.counter("x");
        let b = m.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(m.snapshot().counter("x"), Some(3));
    }

    #[test]
    fn clones_share_the_registry() {
        let m = Metrics::enabled();
        let m2 = m.clone();
        m.counter("shared").inc();
        m2.counter("shared").inc();
        assert_eq!(m.snapshot().counter("shared"), Some(2));
    }

    #[test]
    fn gauges_go_both_ways() {
        let m = Metrics::enabled();
        let g = m.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        assert_eq!(m.snapshot().gauge("depth"), Some(7));
    }

    #[test]
    fn absorb_merges_shards_in_order() {
        let parent = Metrics::enabled();
        parent.counter("trace.refs").add(100);
        let shard = Metrics::enabled();
        shard.counter("trace.refs").add(11);
        shard.counter("cache.misses").add(0); // registered but zero
        shard.gauge("mem.energy").set(42);
        shard.histogram("sizes").record(8);
        parent.absorb(&shard.snapshot());
        let snap = parent.snapshot();
        assert_eq!(snap.counter("trace.refs"), Some(111));
        assert_eq!(snap.counter("cache.misses"), Some(0));
        assert_eq!(snap.gauge("mem.energy"), Some(42));
        assert_eq!(snap.histogram("sizes").unwrap().count, 1);
        // Disabled parents stay empty.
        let off = Metrics::disabled();
        off.absorb(&shard.snapshot());
        assert!(off.snapshot().is_empty());
    }

    #[test]
    fn snapshot_is_a_point_in_time() {
        let m = Metrics::enabled();
        let c = m.counter("events");
        c.inc();
        let snap = m.snapshot();
        c.inc();
        assert_eq!(snap.counter("events"), Some(1));
        assert_eq!(m.snapshot().counter("events"), Some(2));
    }
}
