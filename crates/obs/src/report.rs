//! Consolidated run reports.
//!
//! A [`RunReport`] folds the three observability products of a profiling
//! run — per-iteration [`Epoch`] deltas, whole-run
//! [`Snapshot`](crate::Snapshot) totals, and (optionally) a
//! [`Timeline`](crate::Timeline) summary plus per-object hot/cold drift
//! rows — into one artifact with two stable renderings:
//! [`RunReport::to_json`] for machines and [`RunReport::to_markdown`]
//! for humans.
//!
//! The JSON rendering is versioned: the top-level `"schema"` field is
//! [`REPORT_SCHEMA_VERSION`] and only additive changes are allowed
//! without bumping it. The golden-schema tests under `tests/` pin the
//! required keys.
//!
//! This crate cannot see the object registry, so hot/cold drift rows
//! ([`ObjectDrift`]) are computed by the caller (`nv-scavenger`'s
//! profile pipeline) and handed in via [`RunReport::with_drift`].

use crate::epoch::Epoch;
use crate::snapshot::{escape_json_into, Snapshot};
use crate::timeline::Timeline;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Version of the JSON rendering emitted by [`RunReport::to_json`].
/// Bump on any non-additive change.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// Identifying metadata for one profiled run.
#[derive(Debug, Clone, Default)]
pub struct ReportMeta {
    /// Application driver name (`gtc`, `cam`, ...).
    pub app: String,
    /// Main-loop iterations the run was configured for.
    pub iterations: u32,
}

/// Hot/cold classification of one object across iterations: the paper's
/// per-iteration reference-rate view (§VI-B), reduced to a drift row.
#[derive(Debug, Clone)]
pub struct ObjectDrift {
    /// Object name (allocation-site label).
    pub name: String,
    /// One char per iteration: `H` when the object was hot that
    /// iteration (reference rate at or above the classifier threshold),
    /// `c` when cold.
    pub pattern: String,
    /// Number of hot<->cold transitions across consecutive iterations.
    /// 0 means the object's classification is stable — the paper's
    /// best case for static NVRAM placement.
    pub flips: u32,
    /// Iterations classified hot.
    pub hot_iterations: u32,
    /// Mean per-iteration reference rate.
    pub mean_reference_rate: f64,
}

impl ObjectDrift {
    /// Builds a drift row from per-iteration hot flags and rates.
    /// `hot[i]` says whether the object was hot in iteration `i`.
    pub fn from_flags(name: &str, hot: &[bool], rates: &[f64]) -> Self {
        let pattern: String = hot.iter().map(|h| if *h { 'H' } else { 'c' }).collect();
        let flips = hot.windows(2).filter(|w| w[0] != w[1]).count() as u32;
        let hot_iterations = hot.iter().filter(|h| **h).count() as u32;
        let mean_reference_rate = if rates.is_empty() {
            0.0
        } else {
            rates.iter().sum::<f64>() / rates.len() as f64
        };
        ObjectDrift {
            name: name.to_string(),
            pattern,
            flips,
            hot_iterations,
            mean_reference_rate,
        }
    }
}

/// One quarantined sweep cell: the fleet exhausted its retry budget on
/// this cell and kept going without it. Carried by [`RunReport`] and
/// the `--metrics-json` `degraded` section so a degraded run is
/// machine-distinguishable from a complete one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedCell {
    /// Cell name (`"{app}/{technology}"`, or an app name when the whole
    /// app failed before its cells ran).
    pub cell: String,
    /// Stringified error from the last attempt.
    pub error: String,
    /// Attempts made before quarantine (1 = no retries).
    pub attempts: u32,
}

/// Emits a `degraded` JSON array (without key) at the given indent.
fn emit_degraded_array(out: &mut String, degraded: &[DegradedCell], indent: &str) {
    out.push('[');
    for (i, d) in degraded.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n{indent}  {{\"cell\": \"");
        escape_json_into(out, &d.cell);
        out.push_str("\", \"error\": \"");
        escape_json_into(out, &d.error);
        let _ = write!(out, "\", \"attempts\": {}}}", d.attempts);
    }
    if !degraded.is_empty() {
        out.push('\n');
        out.push_str(indent);
    }
    out.push(']');
}

/// Renders a metrics snapshot as JSON with a trailing `degraded`
/// section listing quarantined cells. With no degraded cells this is
/// exactly [`Snapshot::to_json`] — byte-identical, so fault-free runs
/// keep their golden output — and with quarantined cells the `degraded`
/// array is spliced in as a fourth top-level key.
pub fn snapshot_json_with_degraded(snapshot: &Snapshot, degraded: &[DegradedCell]) -> String {
    let base = snapshot.to_json();
    if degraded.is_empty() {
        return base;
    }
    let Some(trimmed) = base.strip_suffix("\n}\n") else {
        return base;
    };
    let mut out = String::from(trimmed);
    out.push_str(",\n  \"degraded\": ");
    emit_degraded_array(&mut out, degraded, "  ");
    out.push_str("\n}\n");
    out
}

/// Per-technology rollup of the `mem.<tech>.*` namespace, plus deltas
/// against the baseline technology (DRAM when present).
#[derive(Debug, Clone, Default)]
struct MemRow {
    reads: u64,
    writes: u64,
    energy_pj: i64,
    elapsed_ns: i64,
}

/// The consolidated report. Build with [`RunReport::new`], extend with
/// [`RunReport::with_drift`] / [`RunReport::with_timeline`], render
/// with [`RunReport::to_json`] or [`RunReport::to_markdown`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Run identity.
    pub meta: ReportMeta,
    /// Per-window metric deltas, in run order.
    pub epochs: Vec<Epoch>,
    /// Whole-run snapshot the epochs partition.
    pub totals: Snapshot,
    /// Per-object hot/cold drift rows (caller-computed).
    pub drift: Vec<ObjectDrift>,
    /// Events recorded on the run's timeline, when one was attached.
    pub timeline_events: Option<usize>,
    /// Instants the timeline dropped at its capacity, when attached.
    pub timeline_dropped: Option<u64>,
    /// Cells the sweep quarantined after exhausting retries. Empty for
    /// a complete run; rendered (JSON `degraded` array, Markdown
    /// "Degraded cells" section) only when non-empty, so fault-free
    /// output is unchanged.
    pub degraded: Vec<DegradedCell>,
}

impl RunReport {
    /// Starts a report from the run's epochs and final snapshot.
    pub fn new(meta: ReportMeta, epochs: Vec<Epoch>, totals: Snapshot) -> Self {
        RunReport {
            meta,
            epochs,
            totals,
            drift: Vec::new(),
            timeline_events: None,
            timeline_dropped: None,
            degraded: Vec::new(),
        }
    }

    /// Attaches the sweep's quarantined cells.
    pub fn with_degraded(mut self, degraded: Vec<DegradedCell>) -> Self {
        self.degraded = degraded;
        self
    }

    /// Attaches per-object hot/cold drift rows.
    pub fn with_drift(mut self, drift: Vec<ObjectDrift>) -> Self {
        self.drift = drift;
        self
    }

    /// Records the timeline's event/drop counts in the report summary.
    pub fn with_timeline(mut self, timeline: &Timeline) -> Self {
        if timeline.is_enabled() {
            self.timeline_events = Some(timeline.len());
            self.timeline_dropped = Some(timeline.dropped());
        }
        self
    }

    /// Total references across all epochs (equals the whole-run
    /// `trace.refs` when the epoch partition is exhaustive).
    fn total_refs(&self) -> u64 {
        self.totals.counter("trace.refs").unwrap_or(0)
    }

    /// `mem.<tech>.*` rollup keyed by technology, from the totals.
    fn mem_rows(&self) -> BTreeMap<String, MemRow> {
        let mut rows: BTreeMap<String, MemRow> = BTreeMap::new();
        for (name, v) in &self.totals.counters {
            let Some(rest) = name.strip_prefix("mem.") else { continue };
            let Some((tech, suffix)) = rest.split_once('.') else { continue };
            let row = rows.entry(tech.to_string()).or_default();
            match suffix {
                "reads" => row.reads = *v,
                "writes" => row.writes = *v,
                _ => {}
            }
        }
        for (name, v) in &self.totals.gauges {
            let Some(rest) = name.strip_prefix("mem.") else { continue };
            let Some((tech, suffix)) = rest.split_once('.') else { continue };
            let row = rows.entry(tech.to_string()).or_default();
            match suffix {
                "energy_pj" => row.energy_pj = *v,
                "elapsed_ns" => row.elapsed_ns = *v,
                _ => {}
            }
        }
        rows
    }

    /// The comparison baseline for memory deltas: DDR3 when replayed,
    /// otherwise the alphabetically first technology.
    fn mem_baseline<'a>(rows: &'a BTreeMap<String, MemRow>) -> Option<(&'a str, &'a MemRow)> {
        rows.get("ddr3")
            .map(|r| ("ddr3", r))
            .or_else(|| rows.iter().next().map(|(t, r)| (t.as_str(), r)))
    }

    /// Renders the report as versioned JSON (see module docs). Top-level
    /// keys: `schema`, `app`, `iterations`, `epochs`, `objects`, `mem`,
    /// `timeline`, `totals` — plus `degraded` when the sweep
    /// quarantined cells.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(out, "  \"schema\": {REPORT_SCHEMA_VERSION},\n  \"app\": \"");
        escape_json_into(&mut out, &self.meta.app);
        let _ = writeln!(out, "\",\n  \"iterations\": {},", self.meta.iterations);

        out.push_str("  \"epochs\": [");
        let total_refs = self.total_refs();
        for (i, e) in self.epochs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"label\": \"");
            escape_json_into(&mut out, &e.kind.label());
            let _ = write!(
                out,
                "\", \"iteration\": {}, \"wall_ns\": {}, \"refs\": {}, \
                 \"reads\": {}, \"writes\": {}, \"rw_ratio\": {}, \"reference_rate\": {}}}",
                e.kind
                    .iteration()
                    .map_or("null".to_string(), |i| i.to_string()),
                e.wall_ns,
                e.refs(),
                e.delta.counter("trace.reads").unwrap_or(0),
                e.delta.counter("trace.writes").unwrap_or(0),
                json_f64(e.rw_ratio()),
                json_f64(if total_refs == 0 {
                    None
                } else {
                    Some(e.refs() as f64 / total_refs as f64)
                }),
            );
        }
        if !self.epochs.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");

        out.push_str("  \"objects\": [");
        for (i, d) in self.drift.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": \"");
            escape_json_into(&mut out, &d.name);
            out.push_str("\", \"pattern\": \"");
            escape_json_into(&mut out, &d.pattern);
            let _ = write!(
                out,
                "\", \"flips\": {}, \"hot_iterations\": {}, \"mean_reference_rate\": {}}}",
                d.flips,
                d.hot_iterations,
                json_f64(Some(d.mean_reference_rate)),
            );
        }
        if !self.drift.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");

        let rows = self.mem_rows();
        let baseline = Self::mem_baseline(&rows).map(|(t, r)| (t.to_string(), r.clone()));
        out.push_str("  \"mem\": {");
        let mut first = true;
        for (tech, row) in &rows {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    \"");
            escape_json_into(&mut out, tech);
            let _ = write!(
                out,
                "\": {{\"reads\": {}, \"writes\": {}, \"energy_pj\": {}, \"elapsed_ns\": {}, \
                 \"energy_vs_baseline\": {}, \"latency_vs_baseline\": {}}}",
                row.reads,
                row.writes,
                row.energy_pj,
                row.elapsed_ns,
                json_f64(baseline.as_ref().and_then(|(_, b)| ratio(row.energy_pj, b.energy_pj))),
                json_f64(baseline.as_ref().and_then(|(_, b)| ratio(row.elapsed_ns, b.elapsed_ns))),
            );
        }
        if !rows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");

        if !self.degraded.is_empty() {
            out.push_str("  \"degraded\": ");
            emit_degraded_array(&mut out, &self.degraded, "  ");
            out.push_str(",\n");
        }

        let _ = writeln!(
            out,
            "  \"timeline\": {{\"events\": {}, \"dropped\": {}}},",
            self.timeline_events
                .map_or("null".to_string(), |n| n.to_string()),
            self.timeline_dropped
                .map_or("null".to_string(), |n| n.to_string()),
        );

        out.push_str("  \"totals\": ");
        // Indent the embedded snapshot object to nest cleanly.
        let totals = self.totals.to_json();
        for (i, line) in totals.trim_end().lines().enumerate() {
            if i > 0 {
                out.push_str("\n  ");
            }
            out.push_str(line);
        }
        out.push_str("\n}\n");
        out
    }

    /// Renders the report as Markdown: a per-iteration epoch table, the
    /// object drift table, and the memory-system comparison.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# NV-SCAVENGER run report: {}", self.meta.app);
        let _ = writeln!(
            out,
            "\n{} configured iterations, {} recorded epochs.",
            self.meta.iterations,
            self.epochs.len()
        );
        if let Some(events) = self.timeline_events {
            let _ = writeln!(
                out,
                "Timeline: {} events ({} instants dropped at capacity).",
                events,
                self.timeline_dropped.unwrap_or(0)
            );
        }

        out.push_str("\n## Epochs\n\n");
        out.push_str("| epoch | wall (ms) | refs | reads | writes | R/W | ref rate |\n");
        out.push_str("|---|---:|---:|---:|---:|---:|---:|\n");
        let total_refs = self.total_refs();
        for e in &self.epochs {
            let _ = writeln!(
                out,
                "| {} | {:.3} | {} | {} | {} | {} | {} |",
                e.kind.label(),
                e.wall_ns as f64 / 1e6,
                e.refs(),
                e.delta.counter("trace.reads").unwrap_or(0),
                e.delta.counter("trace.writes").unwrap_or(0),
                md_f64(e.rw_ratio()),
                md_f64(if total_refs == 0 {
                    None
                } else {
                    Some(e.refs() as f64 / total_refs as f64)
                }),
            );
        }

        if !self.drift.is_empty() {
            out.push_str("\n## Object hot/cold drift\n\n");
            out.push_str("`H` = hot that iteration, `c` = cold; stable rows (0 flips) are \n");
            out.push_str("static-placement candidates.\n\n");
            out.push_str("| object | pattern | flips | hot iters | mean ref rate |\n");
            out.push_str("|---|---|---:|---:|---:|\n");
            for d in &self.drift {
                let _ = writeln!(
                    out,
                    "| {} | `{}` | {} | {} | {:.4} |",
                    d.name, d.pattern, d.flips, d.hot_iterations, d.mean_reference_rate
                );
            }
        }

        if !self.degraded.is_empty() {
            out.push_str("\n## Degraded cells\n\n");
            out.push_str("The sweep quarantined these cells after exhausting retries; their\n");
            out.push_str("results are missing from the tables above.\n\n");
            out.push_str("| cell | attempts | last error |\n|---|---:|---|\n");
            for d in &self.degraded {
                let _ = writeln!(out, "| {} | {} | {} |", d.cell, d.attempts, d.error);
            }
        }

        let rows = self.mem_rows();
        if !rows.is_empty() {
            let baseline = Self::mem_baseline(&rows).map(|(t, r)| (t.to_string(), r.clone()));
            let base_name = baseline.as_ref().map_or("-", |(t, _)| t.as_str()).to_string();
            out.push_str("\n## Memory systems\n\n");
            let _ = writeln!(out, "Deltas are relative to the `{base_name}` replay.\n");
            out.push_str("| tech | reads | writes | energy (pJ) | elapsed (ns) | energy Δ | latency Δ |\n");
            out.push_str("|---|---:|---:|---:|---:|---:|---:|\n");
            for (tech, row) in &rows {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | {} | {} |",
                    tech,
                    row.reads,
                    row.writes,
                    row.energy_pj,
                    row.elapsed_ns,
                    md_ratio(baseline.as_ref().and_then(|(_, b)| ratio(row.energy_pj, b.energy_pj))),
                    md_ratio(baseline.as_ref().and_then(|(_, b)| ratio(row.elapsed_ns, b.elapsed_ns))),
                );
            }
        }
        out
    }
}

/// `self/base` when both are positive.
fn ratio(v: i64, base: i64) -> Option<f64> {
    (v > 0 && base > 0).then(|| v as f64 / base as f64)
}

/// JSON rendering of an optional float: `null` when absent or
/// non-finite, 4-decimal fixed otherwise.
fn json_f64(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => format!("{v:.4}"),
        _ => "null".to_string(),
    }
}

/// Markdown rendering of an optional float: `-` when absent, `inf` for
/// a read-only window, 3-decimal fixed otherwise.
fn md_f64(v: Option<f64>) -> String {
    match v {
        None => "-".to_string(),
        Some(v) if v.is_infinite() => "inf".to_string(),
        Some(v) => format!("{v:.3}"),
    }
}

/// Markdown rendering of a baseline ratio: `1.234x` or `-`.
fn md_ratio(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => format!("{v:.3}x"),
        _ => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::{EpochKind, EpochRecorder};
    use crate::Metrics;

    fn sample_report() -> RunReport {
        let m = Metrics::enabled();
        let rec = EpochRecorder::new(&m);
        m.counter("trace.refs").add(10);
        m.counter("trace.reads").add(8);
        m.counter("trace.writes").add(2);
        rec.mark(EpochKind::Iteration(0));
        m.counter("trace.refs").add(30);
        m.counter("trace.reads").add(30);
        rec.mark(EpochKind::Iteration(1));
        m.counter("mem.ddr3.reads").add(100);
        m.gauge("mem.ddr3.energy_pj").set(1_000);
        m.gauge("mem.ddr3.elapsed_ns").set(500);
        m.counter("mem.pcram.reads").add(100);
        m.gauge("mem.pcram.energy_pj").set(700);
        m.gauge("mem.pcram.elapsed_ns").set(900);
        rec.finish();
        RunReport::new(
            ReportMeta {
                app: "gtc".into(),
                iterations: 2,
            },
            rec.epochs(),
            m.snapshot(),
        )
        .with_drift(vec![ObjectDrift::from_flags(
            "zion",
            &[true, false],
            &[0.4, 0.001],
        )])
    }

    #[test]
    fn drift_rows_from_flags() {
        let d = ObjectDrift::from_flags("x", &[true, true, false, true], &[0.2; 4]);
        assert_eq!(d.pattern, "HHcH");
        assert_eq!(d.flips, 2);
        assert_eq!(d.hot_iterations, 3);
        assert!((d.mean_reference_rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn json_has_versioned_schema_and_sections() {
        let json = sample_report().to_json();
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains("\"app\": \"gtc\""));
        assert!(json.contains("\"label\": \"iteration 0\""));
        assert!(json.contains("\"rw_ratio\": 4.0000"));
        // iteration 1 is read-only: infinity renders as null.
        assert!(json.contains("\"rw_ratio\": null"));
        assert!(json.contains("\"pattern\": \"Hc\""));
        assert!(json.contains("\"ddr3\""));
        assert!(json.contains("\"energy_vs_baseline\": 0.7000"));
        assert!(json.contains("\"latency_vs_baseline\": 1.8000"));
        assert!(json.contains("\"totals\": {"));
        assert!(json.contains("\"trace.refs\": 40"));
    }

    #[test]
    fn markdown_has_epoch_and_drift_tables() {
        let md = sample_report().to_markdown();
        assert!(md.contains("# NV-SCAVENGER run report: gtc"));
        assert!(md.contains("| iteration 0 |"));
        assert!(md.contains("| zion | `Hc` | 1 | 1 |"));
        assert!(md.contains("## Memory systems"));
        assert!(md.contains("0.700x"));
        assert!(md.contains("| iteration 1 |"));
        assert!(md.contains(" inf |"), "read-only window renders inf");
    }

    #[test]
    fn degraded_section_appears_only_when_cells_failed() {
        let clean = sample_report();
        assert!(!clean.to_json().contains("\"degraded\""));
        assert!(!clean.to_markdown().contains("Degraded cells"));

        let hurt = sample_report().with_degraded(vec![DegradedCell {
            cell: "GTC/pcram".into(),
            error: "worker failed on GTC/pcram: injected".into(),
            attempts: 2,
        }]);
        let json = hurt.to_json();
        assert!(json.contains("\"degraded\": ["));
        assert!(json.contains("\"cell\": \"GTC/pcram\""));
        assert!(json.contains("\"attempts\": 2"));
        let md = hurt.to_markdown();
        assert!(md.contains("## Degraded cells"));
        assert!(md.contains("| GTC/pcram | 2 |"));
    }

    #[test]
    fn snapshot_json_degraded_splice_preserves_clean_output() {
        let m = Metrics::enabled();
        m.counter("trace.refs").add(4);
        let snap = m.snapshot();
        assert_eq!(snapshot_json_with_degraded(&snap, &[]), snap.to_json());

        let cells = vec![
            DegradedCell {
                cell: "GTC/pcram".into(),
                error: "corrupt transaction frame 0 at byte 12".into(),
                attempts: 2,
            },
            DegradedCell {
                cell: "S3D/mram".into(),
                error: "injected".into(),
                attempts: 1,
            },
        ];
        let json = snapshot_json_with_degraded(&snap, &cells);
        assert!(json.starts_with(&snap.to_json()[..snap.to_json().len() - 3]));
        assert!(json.contains("\"degraded\": ["));
        assert!(json.contains("\"cell\": \"S3D/mram\""));
        assert!(json.ends_with("]\n}\n"));
    }

    #[test]
    fn empty_report_is_still_valid() {
        let r = RunReport::new(ReportMeta::default(), Vec::new(), Snapshot::default());
        let json = r.to_json();
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains("\"epochs\": []"));
        assert!(json.contains("\"timeline\": {\"events\": null, \"dropped\": null}"));
        let md = r.to_markdown();
        assert!(md.contains("## Epochs"));
    }
}
