//! The bounded, lock-light event bus and its built-in subscribers.
//!
//! Producers publish typed [`Event`]s with a [`Correlation`] context
//! through an [`EventBus`]; the bus stamps each one with a sequence
//! number and a timestamp and fans it out synchronously to its
//! subscribers. Like [`crate::Metrics`], a disabled bus
//! ([`EventBus::disabled`]) is a no-op handle that costs one branch per
//! publish, so instrumented code never needs `if let`.
//!
//! The bus is bounded the same way [`crate::Timeline`] is: past the
//! capacity, events are counted in [`EventBus::dropped`] instead of
//! being delivered, so a runaway producer degrades observability
//! instead of memory.
//!
//! Built-in subscribers:
//! - [`JsonlSink`] — one JSON line per event, the `--events PATH`
//!   output.
//! - [`MetricsAggregator`] — derives [`crate::Metrics`] counters,
//!   gauges and latency histograms from events.
//! - [`TimelineBridge`] — mirrors events into a [`crate::Timeline`] as
//!   instants whose args carry the correlation fields.
//!
//! ```
//! use nvsim_obs::{Event, EventBus, Metrics, MetricsAggregator};
//!
//! let metrics = Metrics::enabled();
//! let bus = EventBus::builder("run-1")
//!     .subscribe(Box::new(MetricsAggregator::new(metrics.clone())))
//!     .build();
//! let corr = bus.correlation().with_cell("GTC/pcram");
//! bus.publish(&corr, Event::CellStarted { attempt: 1 });
//! assert_eq!(metrics.snapshot().counter("fleet.cells.started"), Some(1));
//! assert_eq!(bus.published(), 1);
//! ```

use crate::event::{Correlation, Event, EventRecord};
use crate::metrics::Metrics;
use crate::timeline::{ArgValue, Timeline};
use std::fmt;
use std::fs::OpenOptions;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default bus capacity: one more event than this per run is dropped
/// (and counted), not delivered. Matches the [`crate::Timeline`] cap.
pub const DEFAULT_EVENT_CAP: u64 = 1 << 16;

/// A consumer of stamped events. Implementations must be cheap and
/// must not panic: `on_event` runs inline on the publishing thread.
pub trait Subscribe: Send + Sync {
    /// Called once per published event, in publication order per
    /// publishing thread.
    fn on_event(&self, record: &EventRecord);

    /// Called when the bus is flushed (end of run); sinks with buffers
    /// push them out here. Default: nothing.
    fn flush(&self) {}
}

struct BusCore {
    run_id: String,
    origin: Instant,
    cap: u64,
    seq: AtomicU64,
    dropped: AtomicU64,
    subscribers: Vec<Box<dyn Subscribe>>,
}

/// A cloneable handle to the event bus. The disabled form publishes
/// nothing and allocates nothing; clones share the same core, sequence
/// numbering and subscribers.
#[derive(Clone, Default)]
pub struct EventBus {
    inner: Option<Arc<BusCore>>,
}

impl fmt::Debug for EventBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("EventBus(disabled)"),
            Some(core) => f
                .debug_struct("EventBus")
                .field("run_id", &core.run_id)
                .field("published", &self.published())
                .field("dropped", &self.dropped())
                .field("subscribers", &core.subscribers.len())
                .finish(),
        }
    }
}

/// Configures and builds an enabled [`EventBus`]. Obtained from
/// [`EventBus::builder`].
pub struct EventBusBuilder {
    run_id: String,
    cap: u64,
    subscribers: Vec<Box<dyn Subscribe>>,
}

impl EventBusBuilder {
    /// Overrides the event capacity (default
    /// [`DEFAULT_EVENT_CAP`]).
    pub fn with_capacity(mut self, cap: u64) -> Self {
        self.cap = cap;
        self
    }

    /// Removes the capacity bound (`u64::MAX`). The default cap suits
    /// one bounded sweep; a long-lived process whose metrics are
    /// *derived* from the bus (nvsim-serve) must never hit it — past
    /// the cap every subscriber goes silent at once, so a capped serve
    /// bus would freeze `/metrics` at stale-but-plausible values.
    pub fn unbounded(self) -> Self {
        self.with_capacity(u64::MAX)
    }

    /// Adds a subscriber; events fan out to subscribers in the order
    /// they were added.
    pub fn subscribe(mut self, subscriber: Box<dyn Subscribe>) -> Self {
        self.subscribers.push(subscriber);
        self
    }

    /// Builds the enabled bus.
    pub fn build(self) -> EventBus {
        EventBus {
            inner: Some(Arc::new(BusCore {
                run_id: self.run_id,
                origin: Instant::now(),
                cap: self.cap,
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                subscribers: self.subscribers,
            })),
        }
    }
}

impl EventBus {
    /// Starts building an enabled bus for `run_id`.
    pub fn builder(run_id: impl Into<String>) -> EventBusBuilder {
        EventBusBuilder {
            run_id: run_id.into(),
            cap: DEFAULT_EVENT_CAP,
            subscribers: Vec::new(),
        }
    }

    /// The no-op bus: publishing costs one branch, nothing is recorded.
    pub fn disabled() -> Self {
        EventBus { inner: None }
    }

    /// Whether this handle delivers events anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The run identifier, or `""` when disabled.
    pub fn run_id(&self) -> &str {
        self.inner.as_ref().map_or("", |core| &core.run_id)
    }

    /// A [`Correlation`] pre-filled with this bus's run id.
    pub fn correlation(&self) -> Correlation {
        Correlation::for_run(self.run_id())
    }

    /// Stamps and delivers one event to every subscriber. Past the
    /// capacity the event is counted as dropped instead. No-op when
    /// disabled.
    pub fn publish(&self, correlation: &Correlation, event: Event) {
        let Some(core) = &self.inner else { return };
        let seq = core.seq.fetch_add(1, Ordering::Relaxed);
        if seq >= core.cap {
            core.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let record = EventRecord {
            seq,
            ts_ns: core.origin.elapsed().as_nanos() as u64,
            correlation: correlation.clone(),
            event,
        };
        for subscriber in &core.subscribers {
            subscriber.on_event(&record);
        }
    }

    /// Events actually delivered so far.
    pub fn published(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |core| core.seq.load(Ordering::Relaxed).min(core.cap))
    }

    /// Events discarded because the capacity was exhausted.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |core| core.dropped.load(Ordering::Relaxed))
    }

    /// Flushes every subscriber (call at the end of a run so buffered
    /// sinks hit disk).
    pub fn flush(&self) {
        if let Some(core) = &self.inner {
            for subscriber in &core.subscribers {
                subscriber.flush();
            }
        }
    }
}

/// Writes one JSON line per event ([`EventRecord::to_jsonl`]) to a
/// buffered writer — the sink behind `--events PATH`. Write errors are
/// swallowed: observability must never fail the run it observes.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Opens `path` for append (creating it if missing) and buffers
    /// writes to it. Append, not truncate: the `--events PATH` flags
    /// promise the log survives restarts, so a relaunched server or a
    /// resumed sweep extends the prior event history instead of
    /// silently wiping it.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self::to_writer(Box::new(BufWriter::new(file))))
    }

    /// Wraps an arbitrary writer (tests use an in-memory buffer).
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(out),
        }
    }
}

impl Subscribe for JsonlSink {
    fn on_event(&self, record: &EventRecord) {
        let mut out = self.out.lock().expect("jsonl sink poisoned");
        let _ = out.write_all(record.to_jsonl().as_bytes());
        let _ = out.write_all(b"\n");
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl sink poisoned").flush();
    }
}

/// Derives [`Metrics`] from events, so counters become a *view* over
/// the event stream instead of a separate instrumentation path.
///
/// Serve events map onto the pre-existing `serve.*` names (plus the
/// `serve.inflight` gauge and per-route `serve.latency.<route>`
/// histograms); fleet, fault and store events map onto `fleet.*` and
/// `store.*` counters. Query execution maps to nothing — the query
/// engine maintains its own `query.*` counters with per-block detail
/// the event does not carry.
pub struct MetricsAggregator {
    metrics: Metrics,
}

impl MetricsAggregator {
    /// Aggregates into `metrics`.
    pub fn new(metrics: Metrics) -> Self {
        MetricsAggregator { metrics }
    }
}

impl Subscribe for MetricsAggregator {
    fn on_event(&self, record: &EventRecord) {
        let m = &self.metrics;
        // Serve events published from a shard carry the shard index in
        // the correlation `worker` field; those also bump a per-shard
        // `serve.shard.*` counter next to the global one, so the two
        // views are derived from the same stream and sum by
        // construction. Fleet events reuse `worker` for the fleet
        // worker index, but none of the serve arms below overlap with
        // fleet-published kinds.
        let shard = record.correlation.worker;
        let sharded = |family: &str| {
            if let Some(s) = shard {
                m.counter(&format!("serve.shard.{family}.{s}")).inc();
            }
        };
        match &record.event {
            Event::RequestReceived => {
                m.counter("serve.requests").inc();
                m.gauge("serve.inflight").add(1);
                sharded("requests");
            }
            Event::RequestFinished {
                route,
                status,
                latency_ns,
            } => {
                m.counter(&format!("serve.responses.{status}")).inc();
                m.histogram(&format!("serve.latency.{route}"))
                    .record(*latency_ns);
                m.gauge("serve.inflight").add(-1);
            }
            Event::RequestShed => {
                m.counter("serve.shed").inc();
                sharded("shed");
            }
            Event::CacheHit => {
                m.counter("serve.cache.hits").inc();
                sharded("cache.hits");
            }
            Event::CacheMiss => {
                m.counter("serve.cache.misses").inc();
                sharded("cache.misses");
            }
            Event::CacheInserted => {
                m.counter("serve.cache.insertions").inc();
                sharded("cache.insertions");
            }
            Event::CacheEvicted { n } => {
                m.counter("serve.cache.evictions").add(*n);
                if let Some(s) = shard {
                    m.counter(&format!("serve.shard.cache.evictions.{s}")).add(*n);
                }
            }
            Event::SweepStarted { .. } => m.counter("fleet.sweeps").inc(),
            Event::SweepFinished { .. } => {}
            Event::CellStarted { .. } => m.counter("fleet.cells.started").inc(),
            Event::CellFinished { .. } => m.counter("fleet.cells.finished").inc(),
            Event::CellRetried { .. } => m.counter("fleet.cells.retried").inc(),
            Event::CellQuarantined { .. } => m.counter("fleet.cells.quarantined").inc(),
            Event::CellResumed { .. } => m.counter("fleet.cells.resumed").inc(),
            Event::FaultInjected { .. } => m.counter("fleet.faults.injected").inc(),
            Event::StoreWrite { .. } => m.counter("store.writes").inc(),
            Event::StoreMerge { .. } => m.counter("store.merges").inc(),
            Event::AllocCrashed { .. } => m.counter("alloc.crashes.observed").inc(),
            Event::AllocRecovered { .. } => m.counter("alloc.recoveries.observed").inc(),
            Event::DistLeaseGranted { cells, .. } => {
                m.counter("dist.leases.granted").inc();
                m.counter("dist.cells.leased").add(*cells);
            }
            Event::DistLeaseExpired { .. } => m.counter("dist.leases.expired").inc(),
            Event::DistShardReceived { .. } => m.counter("dist.shards.received").inc(),
            Event::DistShardRejected { .. } => m.counter("dist.shards.rejected").inc(),
            Event::QueryExecuted { .. } => {}
        }
    }
}

/// Mirrors events into a [`Timeline`] as instants named after
/// [`Event::kind`], with the correlation fields as args — so a Perfetto
/// view of a run shows *which* cell retried, on *which* worker.
pub struct TimelineBridge {
    timeline: Timeline,
}

impl TimelineBridge {
    /// Bridges into `timeline`.
    pub fn new(timeline: Timeline) -> Self {
        TimelineBridge { timeline }
    }
}

impl Subscribe for TimelineBridge {
    fn on_event(&self, record: &EventRecord) {
        let c = &record.correlation;
        let mut args: Vec<(&str, ArgValue)> = Vec::with_capacity(5);
        args.push(("seq", ArgValue::U64(record.seq)));
        if !c.run_id.is_empty() {
            args.push(("run_id", ArgValue::Str(c.run_id.clone())));
        }
        if !c.cell.is_empty() {
            args.push(("cell", ArgValue::Str(c.cell.clone())));
        }
        if let Some(w) = c.worker {
            args.push(("worker", ArgValue::U64(w)));
        }
        if !c.request_id.is_empty() {
            args.push(("request_id", ArgValue::Str(c.request_id.clone())));
        }
        self.timeline.instant(record.event.kind(), "event", &args);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    struct Capture(Mutex<Vec<EventRecord>>);
    impl Subscribe for Capture {
        fn on_event(&self, record: &EventRecord) {
            self.0.lock().unwrap().push(record.clone());
        }
    }

    #[test]
    fn disabled_bus_is_inert() {
        let bus = EventBus::disabled();
        bus.publish(&bus.correlation(), Event::RequestReceived);
        assert!(!bus.is_enabled());
        assert_eq!(bus.published(), 0);
        assert_eq!(bus.dropped(), 0);
        assert_eq!(bus.run_id(), "");
        bus.flush();
        assert_eq!(format!("{bus:?}"), "EventBus(disabled)");
    }

    #[test]
    fn publish_stamps_sequence_and_fans_out() {
        let capture = Arc::new(Capture(Mutex::new(Vec::new())));
        struct Tee(Arc<Capture>);
        impl Subscribe for Tee {
            fn on_event(&self, r: &EventRecord) {
                self.0.on_event(r);
            }
        }
        let bus = EventBus::builder("run-x")
            .subscribe(Box::new(Tee(Arc::clone(&capture))))
            .subscribe(Box::new(Tee(Arc::clone(&capture))))
            .build();
        let corr = bus.correlation().with_cell("GTC/pcram");
        bus.publish(&corr, Event::CellStarted { attempt: 1 });
        bus.publish(&corr, Event::CellFinished {
            attempt: 1,
            transactions: 9,
        });
        let seen = capture.0.lock().unwrap();
        // Two subscribers x two events, same seq within a publish.
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0].seq, 0);
        assert_eq!(seen[1].seq, 0);
        assert_eq!(seen[2].seq, 1);
        assert_eq!(seen[3].seq, 1);
        assert_eq!(seen[0].correlation.run_id, "run-x");
        assert_eq!(bus.published(), 2);
        assert_eq!(bus.dropped(), 0);
    }

    #[test]
    fn capacity_bounds_delivery_and_counts_drops() {
        let capture = Arc::new(Capture(Mutex::new(Vec::new())));
        struct Tee(Arc<Capture>);
        impl Subscribe for Tee {
            fn on_event(&self, r: &EventRecord) {
                self.0.on_event(r);
            }
        }
        let bus = EventBus::builder("run-x")
            .with_capacity(3)
            .subscribe(Box::new(Tee(Arc::clone(&capture))))
            .build();
        for _ in 0..10 {
            bus.publish(&bus.correlation(), Event::RequestReceived);
        }
        assert_eq!(bus.published(), 3);
        assert_eq!(bus.dropped(), 7);
        assert_eq!(capture.0.lock().unwrap().len(), 3);
    }

    #[test]
    fn unbounded_bus_ignores_the_default_cap() {
        let bus = EventBus::builder("run-u").unbounded().build();
        for _ in 0..(DEFAULT_EVENT_CAP + 10) {
            bus.publish(&bus.correlation(), Event::RequestReceived);
        }
        assert_eq!(bus.published(), DEFAULT_EVENT_CAP + 10);
        assert_eq!(bus.dropped(), 0);
    }

    #[test]
    fn jsonl_sink_appends_across_reopens() {
        let path = std::env::temp_dir().join(format!(
            "nvsim-jsonl-append-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        for run in ["run-a", "run-b"] {
            let bus = EventBus::builder(run)
                .subscribe(Box::new(JsonlSink::create(&path).unwrap()))
                .build();
            bus.publish(&bus.correlation(), Event::RequestReceived);
            bus.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        // A second sink on the same path extends the log; a truncating
        // open would leave only run-b's line.
        assert_eq!(text.lines().count(), 2, "{text}");
        assert!(text.contains("run-a"), "{text}");
        assert!(text.contains("run-b"), "{text}");
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event_and_flushes() {
        struct Pipe(mpsc::Sender<Vec<u8>>);
        impl Write for Pipe {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.send(buf.to_vec()).unwrap();
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let (tx, rx) = mpsc::channel();
        let bus = EventBus::builder("run-j")
            .subscribe(Box::new(JsonlSink::to_writer(Box::new(Pipe(tx)))))
            .build();
        bus.publish(&bus.correlation(), Event::SweepStarted { cells: 2 });
        bus.publish(&bus.correlation(), Event::SweepFinished {
            completed: 2,
            quarantined: 0,
            resumed: 0,
        });
        bus.flush();
        drop(bus);
        let bytes: Vec<u8> = rx.try_iter().flatten().collect();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\": \"sweep.started\""), "{text}");
        assert!(lines[1].contains("\"kind\": \"sweep.finished\""), "{text}");
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn aggregator_derives_serve_metrics_from_events() {
        let metrics = Metrics::enabled();
        let bus = EventBus::builder("serve-1")
            .subscribe(Box::new(MetricsAggregator::new(metrics.clone())))
            .build();
        let corr = bus.correlation().with_request("req-0");
        bus.publish(&corr, Event::RequestReceived);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("serve.requests"), Some(1));
        assert_eq!(snap.gauge("serve.inflight"), Some(1));
        bus.publish(&corr, Event::CacheMiss);
        bus.publish(&corr, Event::CacheInserted);
        bus.publish(&corr, Event::CacheEvicted { n: 2 });
        bus.publish(&corr, Event::RequestFinished {
            route: "query".into(),
            status: 200,
            latency_ns: 1_234,
        });
        bus.publish(&bus.correlation(), Event::RequestShed);
        let snap = metrics.snapshot();
        assert_eq!(snap.gauge("serve.inflight"), Some(0));
        assert_eq!(snap.counter("serve.cache.misses"), Some(1));
        assert_eq!(snap.counter("serve.cache.insertions"), Some(1));
        assert_eq!(snap.counter("serve.cache.evictions"), Some(2));
        assert_eq!(snap.counter("serve.responses.200"), Some(1));
        assert_eq!(snap.counter("serve.shed"), Some(1));
        let latency = snap.histogram("serve.latency.query").unwrap();
        assert_eq!(latency.count, 1);
        assert_eq!(latency.sum, 1_234);
    }

    #[test]
    fn aggregator_splits_serve_counters_per_shard() {
        let metrics = Metrics::enabled();
        let bus = EventBus::builder("serve-2")
            .subscribe(Box::new(MetricsAggregator::new(metrics.clone())))
            .build();
        // Two requests on shard 0, one on shard 3, one unsharded
        // (legacy path): globals count all four, shard counters only
        // their own, and the shard counters sum to the sharded share.
        for (shard, hits) in [(Some(0), 2u64), (Some(3), 1), (None, 1)] {
            for _ in 0..hits {
                let corr = bus.correlation().with_worker(shard).with_request("req-x");
                bus.publish(&corr, Event::RequestReceived);
                bus.publish(&corr, Event::CacheHit);
                bus.publish(&corr, Event::CacheEvicted { n: 2 });
            }
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("serve.requests"), Some(4));
        assert_eq!(snap.counter("serve.cache.hits"), Some(4));
        assert_eq!(snap.counter("serve.cache.evictions"), Some(8));
        assert_eq!(snap.counter("serve.shard.requests.0"), Some(2));
        assert_eq!(snap.counter("serve.shard.requests.3"), Some(1));
        assert_eq!(snap.counter("serve.shard.cache.hits.0"), Some(2));
        assert_eq!(snap.counter("serve.shard.cache.hits.3"), Some(1));
        assert_eq!(snap.counter("serve.shard.cache.evictions.0"), Some(4));
        // The unsharded request derived no shard series at all.
        assert_eq!(snap.counter("serve.shard.requests.1"), None);
    }

    #[test]
    fn aggregator_derives_fleet_counters_from_events() {
        let metrics = Metrics::enabled();
        let bus = EventBus::builder("run-1")
            .subscribe(Box::new(MetricsAggregator::new(metrics.clone())))
            .build();
        let corr = bus.correlation().with_cell("GTC/pcram");
        bus.publish(&corr, Event::SweepStarted { cells: 1 });
        bus.publish(&corr, Event::CellStarted { attempt: 1 });
        bus.publish(&corr, Event::CellRetried {
            attempt: 1,
            error: "x".into(),
        });
        bus.publish(&corr, Event::CellStarted { attempt: 2 });
        bus.publish(&corr, Event::CellFinished {
            attempt: 2,
            transactions: 5,
        });
        bus.publish(&corr, Event::FaultInjected {
            kind: "transient".into(),
        });
        bus.publish(&corr, Event::StoreWrite {
            path: "p".into(),
            bytes: 1,
            tables: 1,
        });
        bus.publish(&corr, Event::StoreMerge {
            path: "p".into(),
            added: 1,
            total: 1,
        });
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("fleet.sweeps"), Some(1));
        assert_eq!(snap.counter("fleet.cells.started"), Some(2));
        assert_eq!(snap.counter("fleet.cells.retried"), Some(1));
        assert_eq!(snap.counter("fleet.cells.finished"), Some(1));
        assert_eq!(snap.counter("fleet.faults.injected"), Some(1));
        assert_eq!(snap.counter("store.writes"), Some(1));
        assert_eq!(snap.counter("store.merges"), Some(1));
    }

    #[test]
    fn timeline_bridge_mirrors_events_as_instants() {
        let timeline = Timeline::enabled();
        let bus = EventBus::builder("run-t")
            .subscribe(Box::new(TimelineBridge::new(timeline.clone())))
            .build();
        let corr = bus
            .correlation()
            .with_cell("CAM/sttram")
            .with_worker(Some(3));
        bus.publish(&corr, Event::CellQuarantined {
            attempts: 2,
            error: "boom".into(),
        });
        let events = timeline.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "cell.quarantined");
        assert_eq!(events[0].cat, "event");
        let args = &events[0].args;
        assert!(args.iter().any(|(k, _)| k == "cell"));
        assert!(args.iter().any(|(k, _)| k == "worker"));
    }
}
