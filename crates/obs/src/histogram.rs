//! Fixed-bucket power-of-two histograms.
//!
//! Bucket 0 counts the value 0, bucket `i >= 1` counts values in
//! `[2^(i-1), 2^i)`, and the last bucket absorbs everything at or above
//! `2^(BUCKETS-2)`. Recording is one index computation from
//! `leading_zeros` plus one relaxed atomic add — no allocation, no
//! locks — so histograms are safe on the tracer's per-reference path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets. 33 buckets cover 0 and `[1, 2^31)` exactly, with
/// one overflow bucket — enough range for nanosecond latencies, byte
/// sizes, and queue depths alike.
pub const BUCKETS: usize = 33;

/// Shared interior of a histogram: bucket counts plus sum/min/max.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket a value falls in.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

impl HistogramCore {
    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Folds a snapshot of *another* histogram into this one: bucket
    /// counts, `count` and `sum` add; `min`/`max` widen. Empty snapshots
    /// are a no-op so an absorbed shard never disturbs `min`.
    pub(crate) fn absorb(&self, snap: &HistogramSnapshot) {
        if snap.count == 0 {
            return;
        }
        for (i, n) in snap.buckets.iter().enumerate() {
            if *n > 0 {
                self.buckets[i].fetch_add(*n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.min.fetch_min(snap.min, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Recording handle for one histogram. `Clone` shares the buckets; a
/// handle from a disabled [`crate::Metrics`] drops every record.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    pub(crate) fn from_core(core: Option<Arc<HistogramCore>>) -> Self {
        Histogram(core)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.0 {
            core.record(v);
        }
    }

    /// `true` when records actually land somewhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Folds a [`HistogramSnapshot`] taken from *another* histogram into
    /// this one, as if every observation it summarizes had been recorded
    /// here: bucket counts, `count` and `sum` add; `min`/`max` widen.
    /// Used to merge per-worker shard registries deterministically (see
    /// [`crate::Metrics::absorb`]). No-op on a disabled handle or an
    /// empty snapshot.
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        if let Some(core) = &self.0 {
            core.absorb(snap);
        }
    }
}

/// Immutable copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see module docs for bounds).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping at `u64::MAX`).
    pub sum: u64,
    /// Smallest observed value, 0 when empty.
    pub min: u64,
    /// Largest observed value, 0 when empty.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observations, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive) of bucket `i`, `u64::MAX` for the
    /// overflow bucket.
    pub fn bucket_bound(i: usize) -> u64 {
        if i + 1 >= BUCKETS {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// The observations recorded between `earlier` and `self` (both
    /// snapshots of the *same* histogram, `earlier` taken first):
    /// bucket counts, `count` and `sum` subtract; `min`/`max` cannot be
    /// recovered for a window, so the delta keeps the whole-run values
    /// from `self`.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| {
                self.buckets[i].saturating_sub(earlier.buckets[i])
            }),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
        }
    }

    /// Merges another snapshot into this one, as if both histograms had
    /// recorded into a single instrument: bucket counts, `count` and
    /// `sum` (wrapping) add; `min`/`max` widen, treating an empty side
    /// as neutral. The value-level counterpart of [`Histogram::absorb`].
    pub fn absorb(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        for (i, n) in other.buckets.iter().enumerate() {
            self.buckets[i] = self.buckets[i].wrapping_add(*n);
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Median (approximate, from bucket bounds — see
    /// [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 90th percentile (approximate, from bucket bounds).
    pub fn p90(&self) -> u64 {
        self.quantile(0.9)
    }

    /// 99th percentile (approximate, from bucket bounds).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// An approximate quantile (`q` in 0..=1) read off the bucket
    /// boundaries: the upper bound of the bucket where the cumulative
    /// count crosses `q * count`. Exact for values that are themselves
    /// powers of two minus one; within 2x otherwise.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target.max(1) {
                return Self::bucket_bound(i).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_pow2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn records_track_count_sum_min_max() {
        let core = HistogramCore::default();
        for v in [4u64, 64, 64, 1000] {
            core.record(v);
        }
        let s = core.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1132);
        assert_eq!(s.min, 4);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 283.0).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = HistogramCore::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0);
    }

    #[test]
    fn percentile_helpers_match_quantile() {
        let core = HistogramCore::default();
        for v in 1..=100u64 {
            core.record(v);
        }
        let s = core.snapshot();
        assert_eq!(s.p50(), s.quantile(0.5));
        assert_eq!(s.p90(), s.quantile(0.9));
        assert_eq!(s.p99(), s.quantile(0.99));
        assert!(s.p50() <= s.p90() && s.p90() <= s.p99());
    }

    #[test]
    fn quantile_lands_in_the_right_bucket() {
        let core = HistogramCore::default();
        for _ in 0..90 {
            core.record(10); // bucket [8,16)
        }
        for _ in 0..10 {
            core.record(5000); // bucket [4096,8192)
        }
        let s = core.snapshot();
        assert_eq!(s.quantile(0.5), 16);
        assert_eq!(s.quantile(1.0), 5000); // capped at observed max
    }

    #[test]
    fn disabled_histogram_drops_records() {
        let h = Histogram::default();
        assert!(!h.is_enabled());
        h.record(42); // no panic, no effect
    }

    #[test]
    fn absorb_matches_recording_into_one_core() {
        let merged = HistogramCore::default();
        let shard_a = HistogramCore::default();
        let shard_b = HistogramCore::default();
        for v in [1u64, 5, 900] {
            merged.record(v);
            shard_a.record(v);
        }
        for v in [0u64, 64, u64::MAX] {
            merged.record(v);
            shard_b.record(v);
        }
        let combined = HistogramCore::default();
        combined.absorb(&shard_a.snapshot());
        combined.absorb(&shard_b.snapshot());
        assert_eq!(combined.snapshot(), merged.snapshot());
    }

    #[test]
    fn absorb_of_empty_snapshot_is_identity() {
        let core = HistogramCore::default();
        core.record(7);
        let before = core.snapshot();
        core.absorb(&HistogramCore::default().snapshot());
        assert_eq!(core.snapshot(), before);
        // ... including into an empty core (min must stay untouched).
        let empty = HistogramCore::default();
        empty.absorb(&HistogramCore::default().snapshot());
        assert_eq!(empty.snapshot().min, 0);
        assert_eq!(empty.snapshot().count, 0);
    }

    #[test]
    fn snapshot_absorb_matches_core_absorb() {
        let a = HistogramCore::default();
        let b = HistogramCore::default();
        for v in [3u64, 17, 4096] {
            a.record(v);
        }
        for v in [2u64, 2, 1 << 40] {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.absorb(&b.snapshot());
        let core = HistogramCore::default();
        core.absorb(&a.snapshot());
        core.absorb(&b.snapshot());
        assert_eq!(merged, core.snapshot());
        // Empty left-hand side takes the other's min.
        let mut empty = HistogramCore::default().snapshot();
        empty.absorb(&b.snapshot());
        assert_eq!(empty.min, 2);
    }
}
