//! Scoped wall-clock timing.

use crate::histogram::Histogram;
use std::time::Instant;

/// A scoped timer: created by [`crate::Metrics::span`], it records the
/// elapsed wall-clock nanoseconds into its histogram when dropped.
///
/// Spans from a disabled registry still read the clock twice but record
/// nothing; keep them off per-event hot paths and around phases
/// instead (one span per experiment, app run, or drain).
#[derive(Debug)]
pub struct Span {
    histogram: Histogram,
    started: Instant,
}

impl Span {
    pub(crate) fn new(histogram: Histogram) -> Self {
        Span {
            histogram,
            started: Instant::now(),
        }
    }

    /// Nanoseconds elapsed so far (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Ends the span early, recording the elapsed time now.
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.histogram.record(self.elapsed_ns());
    }
}

#[cfg(test)]
mod tests {
    use crate::Metrics;

    #[test]
    fn span_records_into_its_histogram_on_drop() {
        let m = Metrics::enabled();
        {
            let _span = m.span("phase.ns");
            std::hint::black_box(0u64);
        }
        let snap = m.snapshot();
        let h = snap.histogram("phase.ns").expect("span recorded");
        assert_eq!(h.count, 1);
    }

    #[test]
    fn finish_records_immediately() {
        let m = Metrics::enabled();
        let span = m.span("early.ns");
        span.finish();
        assert_eq!(m.snapshot().histogram("early.ns").unwrap().count, 1);
    }

    #[test]
    fn disabled_span_is_silent() {
        let m = Metrics::disabled();
        let span = m.span("quiet.ns");
        assert!(span.elapsed_ns() < u64::MAX);
        drop(span);
        assert!(m.snapshot().is_empty());
    }
}
