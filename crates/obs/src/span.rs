//! Scoped wall-clock timing.

use crate::histogram::Histogram;
use std::time::Instant;

/// A scoped timer: created by [`crate::Metrics::span`], it records the
/// elapsed wall-clock nanoseconds into its histogram when dropped.
///
/// A span from a disabled registry never reads the clock: construction
/// and drop are both a single branch, so spans are safe even on
/// per-event hot paths of un-instrumented runs.
#[derive(Debug)]
pub struct Span {
    histogram: Histogram,
    /// `None` exactly when the histogram is disabled — the clock is
    /// never consulted in that case.
    started: Option<Instant>,
}

impl Span {
    pub(crate) fn new(histogram: Histogram) -> Self {
        let started = histogram.is_enabled().then(Instant::now);
        Span { histogram, started }
    }

    /// Nanoseconds elapsed so far (saturating at `u64::MAX`); 0 for a
    /// span from a disabled registry, which keeps no start time.
    pub fn elapsed_ns(&self) -> u64 {
        self.started
            .map_or(0, |s| u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    /// Ends the span early, recording the elapsed time now.
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.started.is_some() {
            self.histogram.record(self.elapsed_ns());
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Metrics;

    #[test]
    fn span_records_into_its_histogram_on_drop() {
        let m = Metrics::enabled();
        {
            let _span = m.span("phase.ns");
            std::hint::black_box(0u64);
        }
        let snap = m.snapshot();
        let h = snap.histogram("phase.ns").expect("span recorded");
        assert_eq!(h.count, 1);
    }

    #[test]
    fn finish_records_immediately() {
        let m = Metrics::enabled();
        let span = m.span("early.ns");
        span.finish();
        assert_eq!(m.snapshot().histogram("early.ns").unwrap().count, 1);
    }

    #[test]
    fn disabled_span_is_silent_and_clockless() {
        let m = Metrics::disabled();
        let span = m.span("quiet.ns");
        assert!(span.started.is_none(), "disabled span must not read the clock");
        assert_eq!(span.elapsed_ns(), 0);
        drop(span);
        assert!(m.snapshot().is_empty());
    }
}
