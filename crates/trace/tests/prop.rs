//! Property tests for the synthetic allocators: live heap allocations
//! never overlap (even under heavy reuse), the stack balances, and the
//! trace buffer never drops or reorders references.

use nvsim_trace::{
    replay_trace, replay_transactions, HeapAllocator, RecordingSink, StackAllocator, TraceBuffer,
    TraceWriter, TxnTraceWriter,
};
use nvsim_trace::{Event, EventSink, Phase, RoutineId};
use nvsim_types::{
    AddressSpaceLayout, AddrRange, AccessKind, MemRef, MemTransaction, TransactionKind, VirtAddr,
};
use proptest::prelude::*;

/// A heap workload step: allocate (size) or free (index into live list).
#[derive(Debug, Clone)]
enum Step {
    Alloc(u64),
    Free(usize),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..100_000).prop_map(Step::Alloc),
            (0usize..64).prop_map(Step::Free),
        ],
        1..200,
    )
}

proptest! {
    #[test]
    fn live_heap_allocations_never_overlap(ops in steps()) {
        let mut h = HeapAllocator::new(AddressSpaceLayout::default().heap);
        let mut live: Vec<(VirtAddr, u64)> = Vec::new();
        for op in ops {
            match op {
                Step::Alloc(size) => {
                    let base = h.alloc(size).unwrap();
                    let sz = h.live_size(base).unwrap();
                    let range = AddrRange::from_base_size(base, sz);
                    for &(b, s) in &live {
                        let other = AddrRange::from_base_size(b, s);
                        prop_assert!(
                            !range.overlaps(&other),
                            "overlap: {range} vs {other}"
                        );
                    }
                    live.push((base, sz));
                }
                Step::Free(i) if !live.is_empty() => {
                    let (base, _) = live.swap_remove(i % live.len());
                    h.free(base).unwrap();
                }
                Step::Free(_) => {}
            }
        }
        let live_bytes: u64 = live.iter().map(|&(_, s)| s).sum();
        prop_assert_eq!(h.live_bytes(), live_bytes);
        prop_assert!(h.peak_bytes() >= h.live_bytes());
    }

    #[test]
    fn stack_balances_and_stays_in_range(sizes in proptest::collection::vec(1u64..10_000, 1..50)) {
        let layout = AddressSpaceLayout::default();
        let mut s = StackAllocator::new(layout.stack);
        let top = s.sp();
        let mut frames = Vec::new();
        for &size in &sizes {
            let (base, sp) = s.push_frame(size).unwrap();
            prop_assert!(sp < base);
            prop_assert!(layout.stack.contains(sp));
            frames.push((base, sp));
        }
        // Frames tile the stack without gaps.
        for pair in frames.windows(2) {
            prop_assert_eq!(pair[1].0, pair[0].1);
        }
        for _ in &sizes {
            s.pop_frame().unwrap();
        }
        prop_assert_eq!(s.sp(), top);
        prop_assert!(s.pop_frame().is_err());
        prop_assert_eq!(s.max_depth(), top.raw() - frames.last().unwrap().1.raw());
    }

    #[test]
    fn trace_buffer_preserves_order_and_count(
        addrs in proptest::collection::vec(0u64..1 << 30, 1..500),
        cap in 1usize..64,
    ) {
        let mut buf = TraceBuffer::new(cap);
        let mut seen = Vec::new();
        for &a in &addrs {
            if buf.push(MemRef::read(VirtAddr::new(a), 8)) {
                buf.flush(|batch| seen.extend(batch.iter().map(|r| r.addr.raw())));
            }
        }
        buf.flush(|batch| seen.extend(batch.iter().map(|r| r.addr.raw())));
        prop_assert_eq!(&seen, &addrs);
        prop_assert_eq!(buf.total_refs(), addrs.len() as u64);
    }
}

/// An arbitrary well-formed event sequence for the trace-file round trip.
/// Addresses and stack pointers span the full `u64` range (so consecutive
/// refs exercise maximum-magnitude zig-zag deltas in both directions),
/// sizes include zero-sized refs, and every phase-marker variant appears.
fn event_sequence() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u64>(), 0u32..=64, any::<bool>(), any::<u64>()).prop_map(
                |(addr, size, write, sp)| {
                    Event::Ref(MemRef {
                        addr: VirtAddr::new(addr),
                        size,
                        kind: if write { AccessKind::Write } else { AccessKind::Read },
                        sp: VirtAddr::new(sp),
                    })
                }
            ),
            (0u32..16, any::<u64>(), any::<u64>()).prop_map(|(r, fb, sp)| {
                Event::RoutineEnter {
                    routine: RoutineId(r),
                    frame_base: VirtAddr::new(fb.max(sp)),
                    sp: VirtAddr::new(sp.min(fb)),
                }
            }),
            (0u32..16, any::<u64>()).prop_map(|(r, sp)| Event::RoutineExit {
                routine: RoutineId(r),
                sp: VirtAddr::new(sp),
            }),
            Just(Event::Phase(Phase::PreComputeBegin)),
            (0u32..20).prop_map(|i| Event::Phase(Phase::IterationBegin(i))),
            (0u32..20).prop_map(|i| Event::Phase(Phase::IterationEnd(i))),
            Just(Event::Phase(Phase::PostProcessBegin)),
            Just(Event::Phase(Phase::ProgramEnd)),
        ],
        0..300,
    )
}

/// An arbitrary cache-filtered transaction stream for the codec round
/// trip: full-range addresses and issue cycles (maximum deltas), all
/// three transaction kinds.
fn txn_sequence() -> impl Strategy<Value = Vec<MemTransaction>> {
    proptest::collection::vec(
        (any::<u64>(), 0u8..3, any::<u64>()).prop_map(|(addr, kind, cycle)| MemTransaction {
            addr: VirtAddr::new(addr),
            kind: match kind {
                0 => TransactionKind::ReadFill,
                1 => TransactionKind::Writeback,
                _ => TransactionKind::WriteThrough,
            },
            issue_cycle: cycle,
        }),
        0..400,
    )
}

proptest! {
    #[test]
    fn tracefile_round_trips_arbitrary_streams(events in event_sequence()) {
        // Feed the raw events into both a recorder and the encoder.
        let mut direct = RecordingSink::default();
        let mut writer = TraceWriter::new();
        for e in &events {
            match e {
                Event::Ref(r) => {
                    direct.on_batch(std::slice::from_ref(r));
                    writer.on_batch(std::slice::from_ref(r));
                }
                other => {
                    direct.on_control(other);
                    writer.on_control(other);
                }
            }
        }
        let encoded = writer.into_bytes();
        let mut replayed = RecordingSink::default();
        replay_trace(encoded, &mut replayed, 32).expect("round-trip replay");
        prop_assert_eq!(&direct.events, &replayed.events);
    }

    #[test]
    fn txn_codec_round_trips_arbitrary_streams(txns in txn_sequence()) {
        let mut writer = TxnTraceWriter::new();
        for t in &txns {
            writer.push(t);
        }
        prop_assert_eq!(writer.count(), txns.len() as u64);
        let mut decoded = Vec::with_capacity(txns.len());
        let n = replay_transactions(writer.into_bytes(), |t| decoded.push(t))
            .expect("round-trip replay");
        prop_assert_eq!(n, txns.len() as u64);
        prop_assert_eq!(&decoded, &txns);
    }
}
