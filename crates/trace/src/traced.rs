//! Traced containers: data structures that emit their own reference stream.
//!
//! These are the substitution for PIN's memory-operand instrumentation: a
//! proxy application stores its real computation state in traced containers
//! and every element access goes through a [`Tracer`], producing the same
//! `MemRef` stream the equivalent compiled loads/stores would produce under
//! PIN (same addresses, sizes and read/write kinds, in the same order).

use crate::event::AllocSite;
use crate::tracer::{StackFrame, Tracer};
use nvsim_types::{AddrRange, NvsimError, VirtAddr};
use std::marker::PhantomData;

/// A traced, fixed-length array of `T` backed by real storage.
#[derive(Debug, Clone)]
pub struct TracedVec<T> {
    data: Vec<T>,
    base: VirtAddr,
}

impl<T: Copy + Default> TracedVec<T> {
    /// Element size in bytes as emitted in references.
    const ELEM: u64 = std::mem::size_of::<T>() as u64;

    /// Creates a traced vector in the global segment under `name`.
    pub fn global(t: &mut Tracer<'_>, name: &str, len: usize) -> Result<Self, NvsimError> {
        let base = t.define_global(name, len as u64 * Self::ELEM)?;
        Ok(TracedVec {
            data: vec![T::default(); len],
            base,
        })
    }

    /// Creates a traced vector on the heap at the given allocation site.
    pub fn heap(t: &mut Tracer<'_>, site: AllocSite, len: usize) -> Result<Self, NvsimError> {
        let base = t.malloc(len as u64 * Self::ELEM, site)?;
        Ok(TracedVec {
            data: vec![T::default(); len],
            base,
        })
    }

    /// Creates a traced vector inside a stack frame.
    pub fn on_stack(frame: &mut StackFrame, len: usize) -> Self {
        let base = frame.reserve(len as u64 * Self::ELEM);
        TracedVec {
            data: vec![T::default(); len],
            base,
        }
    }

    /// Frees a heap-resident vector, consuming it.
    pub fn free(self, t: &mut Tracer<'_>) -> Result<(), NvsimError> {
        t.free(self.base)
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the vector has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Base address of the backing storage.
    #[inline]
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Size of the backing storage in bytes.
    #[inline]
    pub fn size_bytes(&self) -> u64 {
        self.data.len() as u64 * Self::ELEM
    }

    /// Address range occupied by the storage.
    pub fn range(&self) -> AddrRange {
        AddrRange::from_base_size(self.base, self.size_bytes())
    }

    /// Address of element `i`.
    #[inline]
    pub fn addr_of(&self, i: usize) -> VirtAddr {
        debug_assert!(i < self.data.len());
        self.base + i as u64 * Self::ELEM
    }

    /// Traced read of element `i`.
    #[inline]
    pub fn get(&self, t: &mut Tracer<'_>, i: usize) -> T {
        t.read(self.addr_of(i), Self::ELEM as u32);
        self.data[i]
    }

    /// Traced write of element `i`.
    #[inline]
    pub fn set(&mut self, t: &mut Tracer<'_>, i: usize, v: T) {
        t.write(self.addr_of(i), Self::ELEM as u32);
        self.data[i] = v;
    }

    /// Traced read-modify-write of element `i` (one read + one write, as a
    /// compiled `a[i] = f(a[i])` performs).
    #[inline]
    pub fn update(&mut self, t: &mut Tracer<'_>, i: usize, f: impl FnOnce(T) -> T) {
        let addr = self.addr_of(i);
        t.read(addr, Self::ELEM as u32);
        let v = f(self.data[i]);
        t.write(addr, Self::ELEM as u32);
        self.data[i] = v;
    }

    /// Traced fill of the whole vector (one write per element).
    pub fn fill(&mut self, t: &mut Tracer<'_>, v: T) {
        for i in 0..self.data.len() {
            self.set(t, i, v);
        }
    }

    /// Untraced view of the data, for assertions and result verification
    /// (the analogue of inspecting memory from outside the instrumented
    /// program).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Untraced mutable initialization access, for pre-trace setup only.
    pub fn as_mut_slice_untraced(&mut self) -> &mut [T] {
        &mut self.data
    }
}

/// A single traced scalar value.
#[derive(Debug, Clone)]
pub struct TracedScalar<T> {
    value: T,
    addr: VirtAddr,
}

impl<T: Copy + Default> TracedScalar<T> {
    const SIZE: u64 = std::mem::size_of::<T>() as u64;

    /// Creates a traced scalar in the global segment.
    pub fn global(t: &mut Tracer<'_>, name: &str) -> Result<Self, NvsimError> {
        let addr = t.define_global(name, Self::SIZE)?;
        Ok(TracedScalar {
            value: T::default(),
            addr,
        })
    }

    /// Creates a traced scalar inside a stack frame.
    pub fn on_stack(frame: &mut StackFrame) -> Self {
        TracedScalar {
            value: T::default(),
            addr: frame.reserve(Self::SIZE),
        }
    }

    /// Address of the scalar.
    pub fn addr(&self) -> VirtAddr {
        self.addr
    }

    /// Traced read.
    #[inline]
    pub fn get(&self, t: &mut Tracer<'_>) -> T {
        t.read(self.addr, Self::SIZE as u32);
        self.value
    }

    /// Traced write.
    #[inline]
    pub fn set(&mut self, t: &mut Tracer<'_>, v: T) {
        t.write(self.addr, Self::SIZE as u32);
        self.value = v;
    }
}

/// A traced row-major matrix.
#[derive(Debug, Clone)]
pub struct TracedMatrix<T> {
    storage: TracedVec<T>,
    rows: usize,
    cols: usize,
    _marker: PhantomData<T>,
}

impl<T: Copy + Default> TracedMatrix<T> {
    /// Creates a traced matrix in the global segment.
    pub fn global(
        t: &mut Tracer<'_>,
        name: &str,
        rows: usize,
        cols: usize,
    ) -> Result<Self, NvsimError> {
        Ok(TracedMatrix {
            storage: TracedVec::global(t, name, rows * cols)?,
            rows,
            cols,
            _marker: PhantomData,
        })
    }

    /// Creates a traced matrix on the heap.
    pub fn heap(
        t: &mut Tracer<'_>,
        site: AllocSite,
        rows: usize,
        cols: usize,
    ) -> Result<Self, NvsimError> {
        Ok(TracedMatrix {
            storage: TracedVec::heap(t, site, rows * cols)?,
            rows,
            cols,
            _marker: PhantomData,
        })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Backing storage size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.storage.size_bytes()
    }

    /// Base address.
    pub fn base(&self) -> VirtAddr {
        self.storage.base()
    }

    /// Traced read of `(i, j)`.
    #[inline]
    pub fn get(&self, t: &mut Tracer<'_>, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.storage.get(t, i * self.cols + j)
    }

    /// Traced write of `(i, j)`.
    #[inline]
    pub fn set(&mut self, t: &mut Tracer<'_>, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        self.storage.set(t, i * self.cols + j, v)
    }

    /// Frees a heap-resident matrix.
    pub fn free(self, t: &mut Tracer<'_>) -> Result<(), NvsimError> {
        self.storage.free(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CountingSink, RecordingSink};
    use crate::Event;
    use nvsim_types::Region;

    #[test]
    fn traced_vec_emits_reads_and_writes() {
        let mut sink = CountingSink::default();
        {
            let mut t = Tracer::new(&mut sink);
            let mut v = TracedVec::<f64>::global(&mut t, "v", 16).unwrap();
            v.set(&mut t, 0, 1.5);
            v.set(&mut t, 1, 2.5);
            let sum = v.get(&mut t, 0) + v.get(&mut t, 1);
            assert_eq!(sum, 4.0);
            v.update(&mut t, 0, |x| x * 2.0);
            assert_eq!(v.as_slice()[0], 3.0);
            t.finish();
        }
        // 2 writes + 2 reads + update(1 read + 1 write)
        assert_eq!(sink.reads, 3);
        assert_eq!(sink.writes, 3);
    }

    #[test]
    fn element_addresses_are_contiguous() {
        let mut sink = RecordingSink::default();
        {
            let mut t = Tracer::new(&mut sink);
            let v = TracedVec::<f64>::global(&mut t, "v", 4).unwrap();
            for i in 0..4 {
                let _ = v.get(&mut t, i);
            }
            t.finish();
        }
        let addrs: Vec<u64> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Ref(r) => Some(r.addr.raw()),
                _ => None,
            })
            .collect();
        assert_eq!(addrs.len(), 4);
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 8);
        }
    }

    #[test]
    fn regions_match_constructors() {
        let mut sink = CountingSink::default();
        let mut t = Tracer::new(&mut sink);
        let layout = *t.layout();
        let rid = t.register_routine("app", "f");

        let g = TracedVec::<f64>::global(&mut t, "g", 8).unwrap();
        assert_eq!(layout.region_of(g.base()), Some(Region::Global));

        let h = TracedVec::<f64>::heap(&mut t, AllocSite::new("x.rs", 1), 8).unwrap();
        assert_eq!(layout.region_of(h.base()), Some(Region::Heap));

        let mut frame = t.call(rid, 256).unwrap();
        let s = TracedVec::<f64>::on_stack(&mut frame, 8);
        assert_eq!(layout.region_of(s.base()), Some(Region::Stack));
        t.ret(rid).unwrap();

        h.free(&mut t).unwrap();
        t.finish();
    }

    #[test]
    fn matrix_is_row_major() {
        let mut sink = RecordingSink::default();
        {
            let mut t = Tracer::new(&mut sink);
            let mut m = TracedMatrix::<f32>::global(&mut t, "m", 2, 3).unwrap();
            m.set(&mut t, 0, 0, 1.0);
            m.set(&mut t, 0, 1, 2.0);
            m.set(&mut t, 1, 0, 3.0);
            assert_eq!(m.get(&mut t, 1, 0), 3.0);
            t.finish();
        }
        let addrs: Vec<u64> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Ref(r) => Some(r.addr.raw()),
                _ => None,
            })
            .collect();
        // (0,1) is 4 bytes after (0,0); (1,0) is 12 bytes after (0,0).
        assert_eq!(addrs[1] - addrs[0], 4);
        assert_eq!(addrs[2] - addrs[0], 12);
    }

    #[test]
    fn scalar_round_trip() {
        let mut sink = CountingSink::default();
        {
            let mut t = Tracer::new(&mut sink);
            let mut s = TracedScalar::<u64>::global(&mut t, "counter").unwrap();
            s.set(&mut t, 42);
            assert_eq!(s.get(&mut t), 42);
            t.finish();
        }
        assert_eq!(sink.reads, 1);
        assert_eq!(sink.writes, 1);
    }
}
