//! Consumers of the instrumentation event stream.
//!
//! A sink is the analysis side of NV-SCAVENGER: the object-attribution
//! tools (stack/heap/global, paper §III-A..C) and the embedded cache
//! simulator (§III) all implement [`EventSink`]. References arrive in
//! batches (the trace buffer of §III-D); control events arrive in order —
//! the tracer flushes pending references before delivering a control event,
//! so every batched reference was executed under the call-stack state
//! established by the control events that precede it.

use crate::event::{Event, GlobalSymbol};
use nvsim_obs::{Counter, Metrics};
use nvsim_types::MemRef;

/// A consumer of instrumentation events.
pub trait EventSink {
    /// Called once before any event, with the global symbol table (the
    /// libdwarf scan of §III-C).
    fn on_globals(&mut self, _symbols: &[GlobalSymbol]) {}

    /// A flushed batch of memory references, in program order.
    fn on_batch(&mut self, refs: &[MemRef]);

    /// A control event (routine enter/exit, heap alloc/free, phase marker).
    /// Never called with [`Event::Ref`].
    fn on_control(&mut self, event: &Event);

    /// Called after the final flush, when the traced program ends.
    fn on_finish(&mut self) {}
}

/// A sink that discards everything; useful for measuring pure
/// instrumentation overhead.
#[derive(Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    #[inline]
    fn on_batch(&mut self, _refs: &[MemRef]) {}
    #[inline]
    fn on_control(&mut self, _event: &Event) {}
}

/// Counts references and control events.
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Total references observed.
    pub refs: u64,
    /// Read references observed.
    pub reads: u64,
    /// Write references observed.
    pub writes: u64,
    /// Control events observed.
    pub controls: u64,
    /// Batches delivered.
    pub batches: u64,
    /// Whether `on_finish` ran.
    pub finished: bool,
}

impl EventSink for CountingSink {
    fn on_batch(&mut self, refs: &[MemRef]) {
        self.batches += 1;
        self.refs += refs.len() as u64;
        for r in refs {
            if r.kind.is_write() {
                self.writes += 1;
            } else {
                self.reads += 1;
            }
        }
    }

    fn on_control(&mut self, _event: &Event) {
        self.controls += 1;
    }

    fn on_finish(&mut self) {
        self.finished = true;
    }
}

/// Records the full interleaved event stream; for tests and small traces
/// only (it stores every reference).
#[derive(Debug, Default)]
pub struct RecordingSink {
    /// Interleaved events: control events and individual references in the
    /// order the program produced them.
    pub events: Vec<Event>,
    /// Global symbols received at start.
    pub globals: Vec<GlobalSymbol>,
}

impl EventSink for RecordingSink {
    fn on_globals(&mut self, symbols: &[GlobalSymbol]) {
        self.globals = symbols.to_vec();
    }

    fn on_batch(&mut self, refs: &[MemRef]) {
        self.events.extend(refs.iter().copied().map(Event::Ref));
    }

    fn on_control(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Fans events out to several sinks — the "three tools" of §III-D run over
/// one execution in-process by teeing the stream.
pub struct TeeSink<'a> {
    sinks: Vec<&'a mut dyn EventSink>,
    batches: Counter,
    fanout_refs: Counter,
}

impl<'a> TeeSink<'a> {
    /// Creates a tee over the given sinks.
    pub fn new(sinks: Vec<&'a mut dyn EventSink>) -> Self {
        TeeSink {
            sinks,
            batches: Counter::default(),
            fanout_refs: Counter::default(),
        }
    }

    /// Binds the tee to an observability registry: `trace.tee_batches`
    /// counts incoming batches, `trace.tee_fanout_refs` the references
    /// delivered across all attached sinks (batch size × sink count).
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.batches = metrics.counter("trace.tee_batches");
        self.fanout_refs = metrics.counter("trace.tee_fanout_refs");
    }
}

impl EventSink for TeeSink<'_> {
    fn on_globals(&mut self, symbols: &[GlobalSymbol]) {
        for s in &mut self.sinks {
            s.on_globals(symbols);
        }
    }

    fn on_batch(&mut self, refs: &[MemRef]) {
        self.batches.inc();
        self.fanout_refs
            .add(refs.len() as u64 * self.sinks.len() as u64);
        for s in &mut self.sinks {
            s.on_batch(refs);
        }
    }

    fn on_control(&mut self, event: &Event) {
        for s in &mut self.sinks {
            s.on_control(event);
        }
    }

    fn on_finish(&mut self) {
        for s in &mut self.sinks {
            s.on_finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;
    use nvsim_types::VirtAddr;

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::default();
        s.on_batch(&[
            MemRef::read(VirtAddr::new(0), 8),
            MemRef::write(VirtAddr::new(8), 8),
            MemRef::read(VirtAddr::new(16), 8),
        ]);
        s.on_control(&Event::Phase(Phase::ProgramEnd));
        s.on_finish();
        assert_eq!((s.refs, s.reads, s.writes), (3, 2, 1));
        assert_eq!(s.controls, 1);
        assert_eq!(s.batches, 1);
        assert!(s.finished);
    }

    #[test]
    fn tee_duplicates_stream() {
        let mut a = CountingSink::default();
        let mut b = CountingSink::default();
        {
            let mut tee = TeeSink::new(vec![&mut a, &mut b]);
            tee.on_batch(&[MemRef::read(VirtAddr::new(0), 4)]);
            tee.on_control(&Event::Phase(Phase::PreComputeBegin));
            tee.on_finish();
        }
        assert_eq!(a.refs, 1);
        assert_eq!(b.refs, 1);
        assert!(a.finished && b.finished);
    }

    #[test]
    fn recording_sink_preserves_order() {
        let mut s = RecordingSink::default();
        s.on_control(&Event::Phase(Phase::PreComputeBegin));
        s.on_batch(&[MemRef::read(VirtAddr::new(4), 4)]);
        assert_eq!(s.events.len(), 2);
        assert!(matches!(s.events[0], Event::Phase(_)));
        assert!(s.events[1].is_ref());
    }
}
