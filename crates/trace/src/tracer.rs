//! The [`Tracer`]: the façade an instrumented application calls into.
//!
//! One `Tracer` stands in for the PIN runtime of the paper: it owns the
//! synthetic address space, the routine table, the trace buffer (§III-D)
//! and the connection to the analysis sinks. Proxy applications hold a
//! `Tracer` for the duration of a run and route every load, store,
//! allocation, call and return through it.

use crate::buffer::TraceBuffer;
use crate::event::{AllocSite, Event, GlobalSymbol, Phase};
use crate::layout::{GlobalAllocator, HeapAllocator, StackAllocator};
use crate::routine::{RoutineId, RoutineTable};
use crate::sink::EventSink;
use nvsim_obs::{ArgValue, Counter, EpochKind, EpochRecorder, Histogram, Metrics, Timeline};
use nvsim_types::{AddressSpaceLayout, MemRef, NvsimError, VirtAddr};
use serde::{Deserialize, Serialize};

/// Pre-bound observability handles for the tracer's hot path. Every
/// handle is a no-op when the tracer was given no (or a disabled)
/// [`Metrics`] registry, so un-instrumented runs keep §III-D numbers.
#[derive(Debug, Default)]
struct TracerInstruments {
    refs: Counter,
    reads: Counter,
    writes: Counter,
    controls: Counter,
    dropped_refs: Counter,
    flushes: Counter,
    batch_refs: Histogram,
}

impl TracerInstruments {
    fn bind(metrics: &Metrics) -> Self {
        TracerInstruments {
            refs: metrics.counter("trace.refs"),
            reads: metrics.counter("trace.reads"),
            writes: metrics.counter("trace.writes"),
            controls: metrics.counter("trace.controls"),
            dropped_refs: metrics.counter("trace.dropped_refs"),
            flushes: metrics.counter("trace.flushes"),
            batch_refs: metrics.histogram("trace.batch_refs"),
        }
    }
}

/// Running totals kept inline by the tracer (cheap enough for the hot
/// path; everything finer-grained lives in sinks).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracerStats {
    /// Total references recorded.
    pub refs: u64,
    /// Read references.
    pub reads: u64,
    /// Write references.
    pub writes: u64,
    /// Routine calls recorded.
    pub calls: u64,
    /// Heap allocations recorded.
    pub allocs: u64,
}

/// A bump cursor over one routine's stack frame, used by traced containers
/// to place stack variables at realistic addresses. Returned by
/// [`Tracer::call`]; the frame occupies `[sp, frame_base)`.
#[derive(Debug, Clone, Copy)]
pub struct StackFrame {
    /// Routine owning the frame.
    pub routine: RoutineId,
    /// One past the highest address of the frame.
    pub frame_base: VirtAddr,
    /// Lowest address of the frame (stack pointer after setup).
    pub sp: VirtAddr,
    cursor: VirtAddr,
}

impl StackFrame {
    /// Reserves `size` bytes inside the frame and returns their base.
    ///
    /// # Panics
    /// Panics if the frame is exhausted — frame sizes are declared by the
    /// proxy application, so exhaustion is a bug in the app model.
    pub fn reserve(&mut self, size: u64) -> VirtAddr {
        let size = size.max(1).div_ceil(8) * 8;
        let new_cursor = self.cursor.raw().checked_sub(size).expect("frame underflow");
        assert!(
            new_cursor >= self.sp.raw(),
            "stack frame exhausted: routine {:?} declared too small a frame",
            self.routine
        );
        self.cursor = VirtAddr::new(new_cursor);
        self.cursor
    }
}

/// The instrumentation façade.
///
/// ```
/// use nvsim_trace::{Tracer, TracedVec, CountingSink, Phase};
///
/// let mut sink = CountingSink::default();
/// {
///     let mut t = Tracer::new(&mut sink);
///     let mut v = TracedVec::<f64>::global(&mut t, "field", 8).unwrap();
///     t.phase(Phase::IterationBegin(0));
///     v.set(&mut t, 0, 1.0);           // traced write
///     let _x = v.get(&mut t, 0);       // traced read
///     t.phase(Phase::IterationEnd(0));
///     t.finish();
/// }
/// assert_eq!(sink.reads, 1);
/// assert_eq!(sink.writes, 1);
/// ```
pub struct Tracer<'s> {
    layout: AddressSpaceLayout,
    routines: RoutineTable,
    globals: Vec<GlobalSymbol>,
    global_alloc: GlobalAllocator,
    heap_alloc: HeapAllocator,
    stack_alloc: StackAllocator,
    buffer: TraceBuffer,
    sink: &'s mut dyn EventSink,
    started: bool,
    finished: bool,
    stats: TracerStats,
    obs: TracerInstruments,
    epochs: EpochRecorder,
    timeline: Timeline,
    /// Name of the currently-open phase span on the timeline, if any.
    open_span: Option<String>,
    /// Whether the Setup epoch has been closed (at the first
    /// `IterationBegin`).
    setup_marked: bool,
    /// When `false`, `read`/`write` are dropped (but allocations and calls
    /// still flow). §VI: heap (de)allocations are instrumented through the
    /// whole program, "but memory references to those objects are recorded
    /// only during the main computation loop".
    refs_enabled: bool,
}

impl<'s> Tracer<'s> {
    /// Creates a tracer with the default layout and buffer capacity.
    pub fn new(sink: &'s mut dyn EventSink) -> Self {
        Self::with_capacity(sink, crate::buffer::DEFAULT_CAPACITY)
    }

    /// Creates a tracer with an explicit trace-buffer capacity.
    pub fn with_capacity(sink: &'s mut dyn EventSink, buffer_capacity: usize) -> Self {
        let layout = AddressSpaceLayout::default();
        Tracer {
            layout,
            routines: RoutineTable::new(),
            globals: Vec::new(),
            global_alloc: GlobalAllocator::new(layout.global),
            heap_alloc: HeapAllocator::new(layout.heap),
            stack_alloc: StackAllocator::new(layout.stack),
            buffer: TraceBuffer::new(buffer_capacity),
            sink,
            started: false,
            finished: false,
            stats: TracerStats::default(),
            obs: TracerInstruments::default(),
            epochs: EpochRecorder::disabled(),
            timeline: Timeline::disabled(),
            open_span: None,
            setup_marked: false,
            refs_enabled: true,
        }
    }

    /// Binds this tracer to an observability registry. Counters under
    /// `trace.*` (see `docs/METRICS.md`) start recording; with a
    /// disabled registry every handle stays a no-op.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.obs = TracerInstruments::bind(metrics);
    }

    /// Binds this tracer to an epoch recorder: each phase boundary of the
    /// §VI protocol then closes a metric window — everything before the
    /// first `IterationBegin` becomes the Setup epoch, each
    /// `IterationEnd(i)` closes `Iteration(i)`, and `ProgramEnd` closes
    /// PostProcess. The tracer never calls
    /// [`EpochRecorder::finish`]; the pipeline owning the recorder does,
    /// so post-trace stages (cache filter, replays) land in the Tail
    /// epoch.
    pub fn set_epochs(&mut self, epochs: &EpochRecorder) {
        self.epochs = epochs.clone();
    }

    /// Binds this tracer to an event timeline: the §VI phases render as
    /// begin/end spans under the `trace` category, and
    /// [`Tracer::annotate`] markers under `app`.
    pub fn set_timeline(&mut self, timeline: &Timeline) {
        self.timeline = timeline.clone();
    }

    /// Records an application-level instant marker on the timeline
    /// (category `app`). A no-op without a bound timeline.
    pub fn annotate(&mut self, name: &str, args: &[(&str, ArgValue)]) {
        self.timeline.instant(name, "app", args);
    }

    /// Mirrors a phase boundary onto the timeline and epoch recorder.
    /// Called *after* the phase control event reached the sink, so any
    /// metrics the sink updates on the boundary land in the closing
    /// window.
    fn observe_phase(&mut self, phase: Phase) {
        match phase {
            Phase::PreComputeBegin => self.open_phase_span("pre_compute".to_string()),
            Phase::IterationBegin(i) => {
                if !self.setup_marked {
                    self.setup_marked = true;
                    self.epochs.mark(EpochKind::Setup);
                }
                self.open_phase_span(format!("iteration {i}"));
            }
            Phase::IterationEnd(i) => {
                self.epochs.mark(EpochKind::Iteration(i));
                self.close_phase_span();
            }
            Phase::PostProcessBegin => self.open_phase_span("post_process".to_string()),
            Phase::ProgramEnd => {
                // Only meaningful when the app used the phase protocol;
                // otherwise leave everything to the recorder's Tail.
                // Reset the flag so `finish` after an explicit
                // `ProgramEnd` doesn't close a second window.
                if std::mem::take(&mut self.setup_marked) {
                    self.epochs.mark(EpochKind::PostProcess);
                }
                self.close_phase_span();
            }
        }
    }

    fn open_phase_span(&mut self, name: String) {
        self.close_phase_span();
        if self.timeline.is_enabled() {
            self.timeline.begin(&name, "trace");
            self.open_span = Some(name);
        }
    }

    fn close_phase_span(&mut self) {
        if let Some(name) = self.open_span.take() {
            self.timeline.end(&name, "trace");
        }
    }

    /// The simulated address-space layout.
    pub fn layout(&self) -> &AddressSpaceLayout {
        &self.layout
    }

    /// The routine table (for report name resolution).
    pub fn routines(&self) -> &RoutineTable {
        &self.routines
    }

    /// Registered global symbols.
    pub fn globals(&self) -> &[GlobalSymbol] {
        &self.globals
    }

    /// Inline statistics.
    pub fn stats(&self) -> TracerStats {
        self.stats
    }

    /// Enables or disables reference recording (§VI semantics). Control
    /// events always flow.
    pub fn set_refs_enabled(&mut self, enabled: bool) {
        self.refs_enabled = enabled;
    }

    /// `true` if reference recording is enabled.
    pub fn refs_enabled(&self) -> bool {
        self.refs_enabled
    }

    // ---- setup -----------------------------------------------------------

    /// Registers a routine; idempotent per `(image, name)`.
    pub fn register_routine(&mut self, image: &str, name: &str) -> RoutineId {
        self.routines.register(image, name)
    }

    /// Defines a global symbol of `size` bytes and returns its base.
    pub fn define_global(&mut self, name: &str, size: u64) -> Result<VirtAddr, NvsimError> {
        assert!(!self.started, "globals must be defined before tracing starts");
        let base = self.global_alloc.alloc(size)?;
        self.globals.push(GlobalSymbol {
            name: name.to_owned(),
            base,
            size,
        });
        Ok(base)
    }

    /// Defines an *overlay* view of existing global storage — a FORTRAN
    /// common-block member that re-partitions a shared block (§III-C). The
    /// registry downstream merges overlapping views into one object.
    pub fn define_global_overlay(
        &mut self,
        name: &str,
        base: VirtAddr,
        size: u64,
    ) -> Result<(), NvsimError> {
        assert!(!self.started, "globals must be defined before tracing starts");
        if !self.layout.global.contains(base) {
            return Err(NvsimError::InvalidConfig(format!(
                "overlay {name} base {base} outside global segment"
            )));
        }
        self.globals.push(GlobalSymbol {
            name: name.to_owned(),
            base,
            size,
        });
        Ok(())
    }

    fn ensure_started(&mut self) {
        if !self.started {
            self.started = true;
            self.sink.on_globals(&self.globals);
        }
    }

    // ---- control events --------------------------------------------------

    fn control(&mut self, event: Event) {
        self.ensure_started();
        let sink = &mut *self.sink;
        let obs = &self.obs;
        self.buffer.flush(|batch| {
            obs.flushes.inc();
            obs.batch_refs.record(batch.len() as u64);
            sink.on_batch(batch);
        });
        obs.controls.inc();
        sink.on_control(&event);
    }

    /// Marks an execution phase boundary.
    pub fn phase(&mut self, phase: Phase) {
        self.control(Event::Phase(phase));
        self.observe_phase(phase);
    }

    /// Enters `routine` with a frame of `frame_size` bytes; returns the
    /// frame for stack-variable placement. Must be paired with
    /// [`Tracer::ret`].
    pub fn call(&mut self, routine: RoutineId, frame_size: u64) -> Result<StackFrame, NvsimError> {
        let (frame_base, sp) = self.stack_alloc.push_frame(frame_size)?;
        self.stats.calls += 1;
        self.control(Event::RoutineEnter {
            routine,
            frame_base,
            sp,
        });
        Ok(StackFrame {
            routine,
            frame_base,
            sp,
            cursor: frame_base,
        })
    }

    /// Returns from the most recent [`Tracer::call`].
    pub fn ret(&mut self, routine: RoutineId) -> Result<(), NvsimError> {
        let sp = self.stack_alloc.pop_frame()?;
        self.control(Event::RoutineExit { routine, sp });
        Ok(())
    }

    /// Allocates `size` heap bytes (malloc exit hook).
    pub fn malloc(&mut self, size: u64, site: AllocSite) -> Result<VirtAddr, NvsimError> {
        let base = self.heap_alloc.alloc(size)?;
        self.stats.allocs += 1;
        self.control(Event::HeapAlloc { base, size, site });
        Ok(base)
    }

    /// Frees a heap allocation (free entry hook).
    pub fn free(&mut self, base: VirtAddr) -> Result<(), NvsimError> {
        self.heap_alloc.free(base)?;
        self.control(Event::HeapFree { base });
        Ok(())
    }

    /// Reallocates: free + malloc, per §III-B.
    pub fn realloc(
        &mut self,
        base: VirtAddr,
        new_size: u64,
        site: AllocSite,
    ) -> Result<VirtAddr, NvsimError> {
        self.free(base)?;
        self.malloc(new_size, site)
    }

    // ---- the hot path ------------------------------------------------------

    /// Records a read of `size` bytes at `addr`.
    #[inline]
    pub fn read(&mut self, addr: VirtAddr, size: u32) {
        if self.refs_enabled {
            self.push_ref(MemRef::read(addr, size));
        } else {
            self.obs.dropped_refs.inc();
        }
    }

    /// Records a write of `size` bytes at `addr`.
    #[inline]
    pub fn write(&mut self, addr: VirtAddr, size: u32) {
        if self.refs_enabled {
            self.push_ref(MemRef::write(addr, size));
        } else {
            self.obs.dropped_refs.inc();
        }
    }

    #[inline]
    fn push_ref(&mut self, r: MemRef) {
        self.ensure_started();
        let r = r.with_sp(self.stack_alloc.sp());
        self.stats.refs += 1;
        self.obs.refs.inc();
        if r.kind.is_write() {
            self.stats.writes += 1;
            self.obs.writes.inc();
        } else {
            self.stats.reads += 1;
            self.obs.reads.inc();
        }
        if self.buffer.push(r) {
            let sink = &mut *self.sink;
            let obs = &self.obs;
            self.buffer.flush(|batch| {
                obs.flushes.inc();
                obs.batch_refs.record(batch.len() as u64);
                sink.on_batch(batch);
            });
        }
    }

    // ---- teardown ----------------------------------------------------------

    /// Flushes pending references, emits [`Phase::ProgramEnd`] and
    /// finalizes the sink. Idempotent.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.control(Event::Phase(Phase::ProgramEnd));
        self.sink.on_finish();
        // Observe after the sink finalized, so metrics it exports on
        // finish land in the PostProcess window rather than the Tail.
        self.observe_phase(Phase::ProgramEnd);
    }

    /// Current heap statistics (live bytes, peak bytes).
    pub fn heap_stats(&self) -> (u64, u64) {
        (self.heap_alloc.live_bytes(), self.heap_alloc.peak_bytes())
    }

    /// Current stack pointer (for tests and diagnostics).
    pub fn sp(&self) -> VirtAddr {
        self.stack_alloc.sp()
    }

    /// Global segment bytes allocated.
    pub fn global_bytes(&self) -> u64 {
        self.global_alloc.used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CountingSink, RecordingSink};

    #[test]
    fn refs_flow_through_buffer_to_sink() {
        let mut sink = CountingSink::default();
        {
            let mut t = Tracer::with_capacity(&mut sink, 4);
            let g = t.define_global("grid", 1024).unwrap();
            for i in 0..10 {
                t.read(g + i * 8, 8);
            }
            t.write(g, 8);
            t.finish();
        }
        assert_eq!(sink.refs, 11);
        assert_eq!(sink.reads, 10);
        assert_eq!(sink.writes, 1);
        assert!(sink.finished);
        // 11 refs with capacity 4: two full flushes + final control flush.
        assert_eq!(sink.batches, 3);
    }

    #[test]
    fn control_events_flush_pending_refs_first() {
        let mut sink = RecordingSink::default();
        {
            let mut t = Tracer::with_capacity(&mut sink, 1024);
            let rid = t.register_routine("app", "kernel");
            let g = t.define_global("x", 64).unwrap();
            t.read(g, 8);
            let frame = t.call(rid, 128).unwrap();
            t.write(frame.sp, 8);
            t.ret(rid).unwrap();
            t.finish();
        }
        // Order: Ref(read) < RoutineEnter < Ref(write) < RoutineExit < Phase(End)
        let kinds: Vec<&'static str> = sink
            .events
            .iter()
            .map(|e| match e {
                Event::Ref(r) if r.kind.is_write() => "W",
                Event::Ref(_) => "R",
                Event::RoutineEnter { .. } => "enter",
                Event::RoutineExit { .. } => "exit",
                Event::Phase(_) => "phase",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["R", "enter", "W", "exit", "phase"]);
    }

    #[test]
    fn refs_carry_current_sp() {
        let mut sink = RecordingSink::default();
        {
            let mut t = Tracer::new(&mut sink);
            let rid = t.register_routine("app", "f");
            let g = t.define_global("x", 64).unwrap();
            t.read(g, 8); // before any call: sp at stack top
            let frame = t.call(rid, 256).unwrap();
            t.read(g, 8); // inside call: sp lowered
            assert_eq!(t.sp(), frame.sp);
            t.ret(rid).unwrap();
            t.finish();
        }
        let sps: Vec<u64> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Ref(r) => Some(r.sp.raw()),
                _ => None,
            })
            .collect();
        assert_eq!(sps.len(), 2);
        assert!(sps[0] > sps[1]);
    }

    #[test]
    fn disabled_refs_are_dropped_but_allocs_flow() {
        let mut sink = CountingSink::default();
        {
            let mut t = Tracer::new(&mut sink);
            t.set_refs_enabled(false);
            let b = t.malloc(4096, AllocSite::new("pre.rs", 1)).unwrap();
            t.read(b, 8);
            t.write(b, 8);
            t.set_refs_enabled(true);
            t.read(b, 8);
            t.finish();
        }
        assert_eq!(sink.refs, 1);
        // alloc + program end
        assert_eq!(sink.controls, 2);
    }

    #[test]
    fn globals_delivered_once_at_start() {
        let mut sink = RecordingSink::default();
        {
            let mut t = Tracer::new(&mut sink);
            t.define_global("a", 64).unwrap();
            t.define_global("b", 128).unwrap();
            let base = t.globals()[0].base;
            t.define_global_overlay("a_view", base, 32).unwrap();
            t.read(base, 8);
            t.finish();
        }
        assert_eq!(sink.globals.len(), 3);
        assert_eq!(sink.globals[2].name, "a_view");
    }

    #[test]
    fn frame_reserve_places_vars_inside_frame() {
        let mut sink = CountingSink::default();
        let mut t = Tracer::new(&mut sink);
        let rid = t.register_routine("app", "f");
        let mut frame = t.call(rid, 256).unwrap();
        let a = frame.reserve(64);
        let b = frame.reserve(64);
        assert!(b < a);
        assert!(a >= frame.sp && a < frame.frame_base);
        assert!(b >= frame.sp);
        t.ret(rid).unwrap();
        t.finish();
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn frame_overflow_panics() {
        let mut sink = CountingSink::default();
        let mut t = Tracer::new(&mut sink);
        let rid = t.register_routine("app", "f");
        let mut frame = t.call(rid, 64).unwrap();
        let _ = frame.reserve(128);
    }

    #[test]
    fn overlay_outside_global_segment_errors() {
        let mut sink = CountingSink::default();
        let mut t = Tracer::new(&mut sink);
        assert!(t
            .define_global_overlay("bad", VirtAddr::new(0x1), 8)
            .is_err());
    }

    #[test]
    fn metrics_mirror_stats_and_count_drops() {
        let m = nvsim_obs::Metrics::enabled();
        let mut sink = CountingSink::default();
        {
            let mut t = Tracer::with_capacity(&mut sink, 4);
            t.set_metrics(&m);
            let g = t.define_global("x", 256).unwrap();
            for i in 0..6 {
                t.read(g + i * 8, 8);
            }
            t.write(g, 8);
            t.set_refs_enabled(false);
            t.read(g, 8);
            t.finish();
        }
        let s = m.snapshot();
        assert_eq!(s.counter("trace.refs"), Some(7));
        assert_eq!(s.counter("trace.reads"), Some(6));
        assert_eq!(s.counter("trace.writes"), Some(1));
        assert_eq!(s.counter("trace.dropped_refs"), Some(1));
        // Capacity 4, 7 refs: one full flush plus the finish flush.
        assert_eq!(s.counter("trace.flushes"), Some(2));
        let batches = s.histogram("trace.batch_refs").expect("batch histogram");
        assert_eq!(batches.count, 2);
        assert_eq!(batches.sum, 7);
        assert_eq!(batches.max, 4);
    }

    #[test]
    fn phases_drive_epochs_and_timeline() {
        use nvsim_obs::{EpochKind, EpochRecorder, EventKind, Metrics, Timeline};
        let m = Metrics::enabled();
        let rec = EpochRecorder::new(&m);
        let tl = Timeline::enabled();
        let mut sink = CountingSink::default();
        {
            let mut t = Tracer::new(&mut sink);
            t.set_metrics(&m);
            t.set_epochs(&rec);
            t.set_timeline(&tl);
            let g = t.define_global("x", 256).unwrap();
            t.phase(Phase::PreComputeBegin);
            t.read(g, 8); // setup-window ref
            for i in 0..2 {
                t.phase(Phase::IterationBegin(i));
                t.read(g, 8);
                t.write(g, 8);
                t.annotate("step", &[("i", ArgValue::U64(u64::from(i)))]);
                t.phase(Phase::IterationEnd(i));
            }
            t.phase(Phase::PostProcessBegin);
            t.read(g, 8);
            t.finish();
        }
        rec.finish();

        // Setup + two iterations + post-process; the empty tail elides.
        let epochs = rec.epochs();
        let labels: Vec<String> = epochs.iter().map(|e| e.kind.label()).collect();
        assert_eq!(labels, ["setup", "iteration 0", "iteration 1", "post_process"]);
        assert_eq!(epochs[0].kind, EpochKind::Setup);
        assert_eq!(epochs[1].refs(), 2);
        assert_eq!(epochs[1].rw_ratio(), Some(1.0));
        let total: u64 = epochs.iter().map(|e| e.refs()).sum();
        assert_eq!(total, m.snapshot().counter("trace.refs").unwrap());

        // Timeline: four balanced phase spans plus two app markers.
        let events = tl.events();
        let begins = events.iter().filter(|e| e.kind == EventKind::Begin).count();
        let ends = events.iter().filter(|e| e.kind == EventKind::End).count();
        assert_eq!(begins, 4);
        assert_eq!(begins, ends);
        let markers: Vec<&str> = events
            .iter()
            .filter(|e| e.cat == "app")
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(markers, ["step", "step"]);
        assert!(events.iter().any(|e| e.name == "iteration 1"));
    }

    #[test]
    fn finish_is_idempotent() {
        let mut sink = CountingSink::default();
        {
            let mut t = Tracer::new(&mut sink);
            t.finish();
            t.finish();
        }
        assert_eq!(sink.controls, 1);
    }
}
