//! CRC32-framed stream sections — the durable framing shared by every
//! on-disk byte format in the workspace.
//!
//! The tracefile module introduced the layout (its "format version 2"):
//!
//! ```text
//! [u32 magic] ([u32 len][u32 crc32][len payload bytes])* [u32 0][u32 0]
//! ```
//!
//! A writer appends records into a pending frame and seals it at a
//! record boundary once the payload reaches [`FRAME_TARGET`]; the
//! stream ends with a zero-length terminator frame whose absence tells
//! the reader the stream was cut. Readers validate the magic up front,
//! check every frame's length bound and CRC32 (IEEE), and turn any
//! violation into a precise [`NvsimError::Corrupt`] naming the failing
//! section and absolute byte offset.
//!
//! The machinery lives here — public — so other durable formats (the
//! `nvsim-store` columnar sweep store, the sweep journal) reuse the
//! exact same framing instead of reinventing it: [`FrameWriter`] for
//! the write half, [`FrameReader`] + [`FrameCursor`] for the read half,
//! and the varint/zig-zag helpers both halves encode with.
//!
//! ```
//! use bytes::BufMut;
//! use nvsim_trace::framing::{FrameReader, FrameWriter};
//!
//! const MAGIC: u32 = 0x4e56_5101;
//! let mut w = FrameWriter::new(MAGIC);
//! w.payload().put_u8(7);
//! w.maybe_seal(); // no-op below the frame target
//! let encoded = w.into_bytes();
//!
//! let mut r = FrameReader::open(encoded, MAGIC, "doc").unwrap();
//! let (_, _, payload) = r.next_frame().unwrap().unwrap();
//! assert_eq!(payload.as_ref(), &[7]);
//! assert!(r.next_frame().unwrap().is_none());
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use nvsim_types::NvsimError;

/// Target payload size of one CRC32 frame. Frames seal at the first
/// record boundary at or past this size, so a single oversized record
/// (e.g. a large globals table) still lands in one frame.
pub const FRAME_TARGET: usize = 64 * 1024;

/// Bytes of frame header: `u32` payload length + `u32` CRC32.
pub const FRAME_HEADER_LEN: usize = 8;

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE 802.3, reflected) — the checksum guarding each frame;
/// exported so other durable artifacts (e.g. the sweep journal) can
/// share it.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Builds a [`NvsimError::Corrupt`] naming the failing `section` and the
/// absolute byte `offset` of the failure.
pub fn corrupt(section: impl Into<String>, offset: u64) -> NvsimError {
    NvsimError::Corrupt {
        section: section.into(),
        offset,
    }
}

/// Write half of the framing: a header-plus-sealed-frames buffer and the
/// pending frame payload. [`FrameWriter::seal`] is only called at record
/// boundaries, so no record ever straddles frames.
#[derive(Debug)]
pub struct FrameWriter {
    out: BytesMut,
    frame: BytesMut,
}

impl FrameWriter {
    /// Creates a writer with the `magic` stream header in place.
    pub fn new(magic: u32) -> Self {
        let mut out = BytesMut::with_capacity(1 << 16);
        out.put_u32(magic);
        FrameWriter {
            out,
            frame: BytesMut::with_capacity(FRAME_TARGET + 1024),
        }
    }

    /// The pending frame's payload buffer — encode records into this.
    pub fn payload(&mut self) -> &mut BytesMut {
        &mut self.frame
    }

    /// Encoded size so far, counting the pending frame's eventual header
    /// (but not the final terminator frame).
    pub fn len(&self) -> usize {
        let pending = if self.frame.is_empty() {
            0
        } else {
            FRAME_HEADER_LEN + self.frame.len()
        };
        self.out.len() + pending
    }

    /// `true` if only the magic header has been written.
    pub fn is_empty(&self) -> bool {
        self.out.len() <= 4 && self.frame.is_empty()
    }

    /// Seals the pending frame (length + CRC32 header, then payload).
    /// Call only at a record boundary. A no-op when the pending frame is
    /// empty.
    pub fn seal(&mut self) {
        if self.frame.is_empty() {
            return;
        }
        let payload = std::mem::take(&mut self.frame);
        self.out.put_u32(payload.len() as u32);
        self.out.put_u32(crc32(&payload));
        self.out.put_slice(&payload);
    }

    /// Seals the pending frame if it has reached [`FRAME_TARGET`].
    pub fn maybe_seal(&mut self) {
        if self.frame.len() >= FRAME_TARGET {
            self.seal();
        }
    }

    /// Finishes the stream — seals the pending frame and appends the
    /// zero-length terminator frame — returning the encoded bytes.
    pub fn into_bytes(mut self) -> Bytes {
        self.seal();
        // Zero-length terminator frame: its absence tells the reader the
        // stream was cut at a frame boundary.
        self.out.put_u32(0);
        self.out.put_u32(0);
        self.out.freeze()
    }
}

/// Read half of the framing: validates the magic up front, then yields
/// CRC-checked frame payloads until the terminator.
pub struct FrameReader {
    buf: Bytes,
    /// Absolute offset of the next unread byte.
    offset: u64,
    index: u32,
    /// Section-name prefix for errors: `"event"`, `"transaction"`,
    /// `"store"`, …
    prefix: &'static str,
    done: bool,
}

impl FrameReader {
    /// Opens a framed stream, validating the magic.
    ///
    /// # Errors
    /// [`NvsimError::Corrupt`] at offset 0 when the buffer is shorter
    /// than the header or carries a different magic.
    pub fn open(mut buf: Bytes, magic: u32, prefix: &'static str) -> Result<Self, NvsimError> {
        if buf.remaining() < 4 || buf.get_u32() != magic {
            return Err(corrupt(format!("{prefix} header"), 0));
        }
        Ok(FrameReader {
            buf,
            offset: 4,
            index: 0,
            prefix,
            done: false,
        })
    }

    /// The next frame as `(section name, absolute payload offset,
    /// payload)`, or `None` after the terminator frame.
    ///
    /// # Errors
    /// [`NvsimError::Corrupt`] on a truncated stream, an out-of-bounds
    /// frame length, a CRC mismatch, or trailing bytes after the
    /// terminator.
    pub fn next_frame(&mut self) -> Result<Option<(String, u64, Bytes)>, NvsimError> {
        if self.done {
            return Ok(None);
        }
        let section = format!("{} frame {}", self.prefix, self.index);
        if self.buf.remaining() < FRAME_HEADER_LEN {
            return Err(corrupt(format!("{} stream end", self.prefix), self.offset));
        }
        let len = self.buf.get_u32() as usize;
        let want_crc = self.buf.get_u32();
        if len == 0 && want_crc == 0 {
            self.done = true;
            if self.buf.has_remaining() {
                return Err(corrupt(
                    format!("{} trailing data", self.prefix),
                    self.offset + FRAME_HEADER_LEN as u64,
                ));
            }
            return Ok(None);
        }
        if self.buf.remaining() < len {
            return Err(corrupt(section, self.offset));
        }
        let payload = self.buf.copy_to_bytes(len);
        let at = self.offset + FRAME_HEADER_LEN as u64;
        if crc32(&payload) != want_crc {
            return Err(corrupt(section, at));
        }
        self.offset = at + len as u64;
        self.index += 1;
        Ok(Some((section, at, payload)))
    }
}

/// Bounds-checked reader over one frame payload, reporting failures as
/// [`NvsimError::Corrupt`] with absolute offsets.
pub struct FrameCursor {
    buf: Bytes,
    base: u64,
    len0: usize,
    /// Section name reported by failures (the frame's section).
    pub section: String,
}

impl FrameCursor {
    /// Wraps one frame payload. `base` is the payload's absolute offset
    /// in the stream (as yielded by [`FrameReader::next_frame`]).
    pub fn new(payload: Bytes, base: u64, section: String) -> Self {
        let len0 = payload.remaining();
        FrameCursor {
            buf: payload,
            base,
            len0,
            section,
        }
    }

    /// Absolute offset of the next unread byte.
    pub fn offset(&self) -> u64 {
        self.base + (self.len0 - self.buf.remaining()) as u64
    }

    /// A [`NvsimError::Corrupt`] at the current offset.
    pub fn fail(&self) -> NvsimError {
        corrupt(self.section.clone(), self.offset())
    }

    /// `true` while unread payload remains.
    pub fn has_remaining(&self) -> bool {
        self.buf.has_remaining()
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// [`NvsimError::Corrupt`] at end of payload.
    pub fn u8(&mut self) -> Result<u8, NvsimError> {
        if !self.buf.has_remaining() {
            return Err(self.fail());
        }
        Ok(self.buf.get_u8())
    }

    /// Reads a LEB128 varint.
    ///
    /// # Errors
    /// [`NvsimError::Corrupt`] on truncation or a varint running past 64
    /// bits.
    pub fn varint(&mut self) -> Result<u64, NvsimError> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(self.fail());
            }
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// [`NvsimError::Corrupt`] on truncation or invalid UTF-8; the error
    /// points at the length prefix.
    pub fn str_field(&mut self) -> Result<String, NvsimError> {
        let at = self.offset();
        let len = self.varint()? as usize;
        if self.buf.remaining() < len {
            return Err(self.fail());
        }
        let bytes = self.buf.copy_to_bytes(len);
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt(self.section.clone(), at))
    }

    /// Reads a fixed 8-byte little-endian `f64` (bit-exact; NaN payloads
    /// and infinities survive the round trip).
    ///
    /// # Errors
    /// [`NvsimError::Corrupt`] on truncation.
    pub fn f64(&mut self) -> Result<f64, NvsimError> {
        if self.buf.remaining() < 8 {
            return Err(self.fail());
        }
        Ok(f64::from_bits(self.buf.get_u64_le()))
    }

    /// Takes the next `len` bytes as a zero-copy [`Bytes`] view of the
    /// underlying frame payload (a refcounted slice, not an allocation —
    /// the backing buffer stays mapped while any view lives).
    ///
    /// # Errors
    /// [`NvsimError::Corrupt`] when fewer than `len` bytes remain.
    pub fn take(&mut self, len: usize) -> Result<Bytes, NvsimError> {
        if self.buf.remaining() < len {
            return Err(self.fail());
        }
        Ok(self.buf.copy_to_bytes(len))
    }
}

/// Appends a LEB128 varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

/// Appends a fixed 8-byte little-endian `f64` (bit-exact).
pub fn put_f64(buf: &mut BytesMut, v: f64) {
    buf.put_u64_le(v.to_bits());
}

/// Zig-zag encodes a signed delta for varint packing.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: u32 = 0x4e56_5199;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_stream_is_header_plus_terminator() {
        let w = FrameWriter::new(MAGIC);
        assert!(w.is_empty());
        let encoded = w.into_bytes();
        assert_eq!(encoded.len(), 4 + FRAME_HEADER_LEN);
        let mut r = FrameReader::open(encoded, MAGIC, "t").unwrap();
        assert!(r.next_frame().unwrap().is_none());
        // And stays None.
        assert!(r.next_frame().unwrap().is_none());
    }

    #[test]
    fn payload_round_trips_with_offsets() {
        let mut w = FrameWriter::new(MAGIC);
        put_varint(w.payload(), 300);
        put_str(w.payload(), "héllo");
        put_f64(w.payload(), -0.125);
        w.seal();
        w.payload().put_u8(0xab);
        let encoded = w.into_bytes();

        let mut r = FrameReader::open(encoded, MAGIC, "t").unwrap();
        let (section, at, payload) = r.next_frame().unwrap().unwrap();
        assert_eq!(at, (4 + FRAME_HEADER_LEN) as u64);
        let mut cur = FrameCursor::new(payload, at, section);
        assert_eq!(cur.varint().unwrap(), 300);
        assert_eq!(cur.str_field().unwrap(), "héllo");
        assert_eq!(cur.f64().unwrap(), -0.125);
        assert!(!cur.has_remaining());

        let (_, _, second) = r.next_frame().unwrap().unwrap();
        assert_eq!(second.as_ref(), &[0xab]);
        assert!(r.next_frame().unwrap().is_none());
    }

    #[test]
    fn wrong_magic_truncation_and_bit_flips_are_corrupt() {
        let mut w = FrameWriter::new(MAGIC);
        w.payload().put_slice(&[1, 2, 3, 4]);
        let good = w.into_bytes();

        assert!(FrameReader::open(good.clone(), MAGIC ^ 1, "t").is_err());

        // Every proper prefix must fail somewhere: at open (cut inside the
        // magic), inside a frame, or at the missing terminator.
        for cut in 0..good.len() {
            let outcome = FrameReader::open(good.slice(0..cut), MAGIC, "t").and_then(|mut r| {
                while r.next_frame()?.is_some() {}
                Ok(())
            });
            assert!(outcome.is_err(), "cut at {cut} should not parse cleanly");
        }

        let mut flipped = good.to_vec();
        flipped[4 + FRAME_HEADER_LEN] ^= 0x10;
        let mut r = FrameReader::open(Bytes::from(flipped), MAGIC, "t").unwrap();
        let err = r.next_frame().unwrap_err();
        assert!(matches!(err, NvsimError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn trailing_bytes_after_terminator_are_corrupt() {
        let w = FrameWriter::new(MAGIC);
        let mut bytes = w.into_bytes().to_vec();
        bytes.push(0);
        let mut r = FrameReader::open(Bytes::from(bytes), MAGIC, "t").unwrap();
        assert!(r.next_frame().is_err());
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -4096] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn take_is_a_bounds_checked_zero_copy_view() {
        let payload = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let mut cur = FrameCursor::new(payload, 10, "t".into());
        let head = cur.take(3).unwrap();
        assert_eq!(head.as_ref(), &[1, 2, 3]);
        assert_eq!(cur.offset(), 13);
        assert!(cur.take(3).is_err(), "only two bytes remain");
        assert_eq!(cur.take(2).unwrap().as_ref(), &[4, 5]);
        assert!(!cur.has_remaining());
    }

    #[test]
    fn varint_detects_overlong_encodings() {
        // 10 continuation bytes push shift past 64 bits.
        let payload = Bytes::from(vec![0xff; 10]);
        let mut cur = FrameCursor::new(payload, 0, "t".into());
        assert!(cur.varint().is_err());
    }
}
