//! On-disk trace encoding — the *offline* NV-SCAVENGER design §III-D
//! describes and rejects:
//!
//! "One possible solution is to offload major instrumentation
//! functionality into an offline tool. ... This solution reduces the
//! instrumentation overhead significantly. ... However, it is not a
//! scalable solution. A short serial HPC application can easily produce a
//! trace of tens of gigabytes of data. Post-processing the trace by I/O
//! operations, even though the trace file is compressed, is also very
//! slow. ... So we stick to the original design, i.e., computing
//! statistics on the address stream on-the-fly without storing raw
//! traces."
//!
//! We implement the offline path anyway so the design decision can be
//! *measured* (see `benches/` and the `offline_vs_online` experiment):
//! a compact delta/varint encoding of the full event stream that any
//! `EventSink` can be replayed from later.
//!
//! Encoding: one byte tag per event. References encode the address as a
//! zig-zag varint *delta* from the previous reference address (spatial
//! locality makes most deltas one or two bytes), the size as a varint and
//! the kind in the tag; the stack pointer is delta-encoded against the
//! previous sp. Control events are rare and encoded plainly.
//!
//! ## Durable framing (format version 2)
//!
//! Because captured streams are reused — fanned out across replay cells,
//! written to disk by `nvscav record`, read back by resumed sweeps — the
//! byte stream is wrapped in validated sections:
//!
//! ```text
//! [u32 magic] ([u32 len][u32 crc32][len payload bytes])* [u32 0][u32 0]
//! ```
//!
//! The writer seals a frame at an event boundary once the pending
//! payload reaches [`crate::framing::FRAME_TARGET`] (so no event ever
//! straddles frames;
//! delta state *does* carry across frames in both writer and reader),
//! and terminates the stream with a zero-length frame. The decoders
//! verify magic, frame bounds, per-frame CRC32 (IEEE) and the
//! terminator, turning truncation and bit corruption into precise
//! [`NvsimError::Corrupt`] errors — naming the failing section and the
//! absolute byte offset — instead of fabricating events or panicking.

use crate::event::{AllocSite, Event, GlobalSymbol, Phase};
use crate::framing::{
    corrupt, put_varint, unzigzag, zigzag, FrameCursor, FrameReader, FrameWriter,
};
use crate::routine::RoutineId;
use crate::sink::EventSink;
use bytes::{BufMut, Bytes};
use nvsim_types::{AccessKind, MemRef, MemTransaction, NvsimError, TransactionKind, VirtAddr};

// The framing machinery (CRC32 frames, varint/zig-zag codecs) lives in
// [`crate::framing`] so other durable formats — the nvsim-store columnar
// store, the sweep journal — share it. `crc32` stays re-exported from
// here for compatibility.
pub use crate::framing::crc32;

const TAG_READ: u8 = 0;
const TAG_WRITE: u8 = 1;
const TAG_ENTER: u8 = 2;
const TAG_EXIT: u8 = 3;
const TAG_ALLOC: u8 = 4;
const TAG_FREE: u8 = 5;
const TAG_PHASE: u8 = 6;
const TAG_GLOBALS: u8 = 7;

/// File magic ("NVSC" + version 2: CRC32-framed sections).
const MAGIC: u32 = 0x4e56_5302;

const TXN_TAG_READ_FILL: u8 = 0;
const TXN_TAG_WRITEBACK: u8 = 1;
const TXN_TAG_WRITE_THROUGH: u8 = 2;

/// Magic for encoded main-memory transaction streams ("NVT" + version 2).
/// Distinct from [`MAGIC`] so the two stream flavours can never be
/// replayed into the wrong decoder.
const TXN_MAGIC: u32 = 0x4e56_5402;

/// An [`EventSink`] that encodes the event stream into a byte buffer.
#[derive(Debug)]
pub struct TraceWriter {
    frames: FrameWriter,
    last_addr: u64,
    last_sp: u64,
    events: u64,
}

impl Default for TraceWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceWriter {
    /// Creates a writer with the file header in place.
    pub fn new() -> Self {
        TraceWriter {
            frames: FrameWriter::new(MAGIC),
            last_addr: 0,
            last_sp: 0,
            events: 0,
        }
    }

    /// Encoded size so far, bytes (excluding the final terminator frame).
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` if only the header has been written.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Events encoded so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Finishes the stream — seals the pending frame and appends the
    /// terminator — returning the encoded bytes.
    pub fn into_bytes(self) -> Bytes {
        self.frames.into_bytes()
    }

    fn put_ref(&mut self, r: &MemRef) {
        self.events += 1;
        let buf = self.frames.payload();
        buf.put_u8(if r.kind.is_write() { TAG_WRITE } else { TAG_READ });
        let addr = r.addr.raw();
        put_varint(buf, zigzag(addr.wrapping_sub(self.last_addr) as i64));
        self.last_addr = addr;
        put_varint(buf, u64::from(r.size));
        let sp = r.sp.raw();
        put_varint(buf, zigzag(sp.wrapping_sub(self.last_sp) as i64));
        self.last_sp = sp;
        self.frames.maybe_seal();
    }

    fn put_str(&mut self, s: &str) {
        put_varint(self.frames.payload(), s.len() as u64);
        self.frames.payload().put_slice(s.as_bytes());
    }
}

impl EventSink for TraceWriter {
    fn on_globals(&mut self, symbols: &[GlobalSymbol]) {
        self.frames.payload().put_u8(TAG_GLOBALS);
        put_varint(self.frames.payload(), symbols.len() as u64);
        for s in symbols {
            self.put_str(&s.name);
            put_varint(self.frames.payload(), s.base.raw());
            put_varint(self.frames.payload(), s.size);
        }
        self.frames.maybe_seal();
    }

    fn on_batch(&mut self, refs: &[MemRef]) {
        for r in refs {
            self.put_ref(r);
        }
    }

    fn on_control(&mut self, event: &Event) {
        self.events += 1;
        let buf = self.frames.payload();
        match event {
            Event::RoutineEnter {
                routine,
                frame_base,
                sp,
            } => {
                buf.put_u8(TAG_ENTER);
                put_varint(buf, u64::from(routine.0));
                put_varint(buf, frame_base.raw());
                put_varint(buf, sp.raw());
            }
            Event::RoutineExit { routine, sp } => {
                buf.put_u8(TAG_EXIT);
                put_varint(buf, u64::from(routine.0));
                put_varint(buf, sp.raw());
            }
            Event::HeapAlloc { base, size, site } => {
                buf.put_u8(TAG_ALLOC);
                put_varint(buf, base.raw());
                put_varint(buf, *size);
                self.put_str(site.file);
                put_varint(self.frames.payload(), u64::from(site.line));
            }
            Event::HeapFree { base } => {
                buf.put_u8(TAG_FREE);
                put_varint(buf, base.raw());
            }
            Event::Phase(p) => {
                buf.put_u8(TAG_PHASE);
                let (kind, arg) = match p {
                    Phase::PreComputeBegin => (0u8, 0u32),
                    Phase::IterationBegin(i) => (1, *i),
                    Phase::IterationEnd(i) => (2, *i),
                    Phase::PostProcessBegin => (3, 0),
                    Phase::ProgramEnd => (4, 0),
                };
                buf.put_u8(kind);
                put_varint(buf, u64::from(arg));
            }
            Event::Ref(_) => unreachable!("refs arrive via on_batch"),
        }
        self.frames.maybe_seal();
    }
}

/// Encoder for cache-filtered main-memory transaction streams — the
/// scavenge half of the sweep engine's scavenge-once/replay-many scheme.
///
/// The expensive part of a technology sweep is producing the filtered
/// stream (instrumented run + L1/L2 simulation); the replays themselves
/// only need the surviving [`MemTransaction`]s. Encoding them with the
/// same delta/varint scheme as the event stream — one tag byte, a
/// zig-zag varint address delta and an `issue_cycle` delta — keeps the
/// captured buffer a few bytes per transaction, so one capture can be
/// fanned out across arbitrarily many (technology × config) replay
/// cells without rerunning the application. The stream carries the same
/// CRC32 framing as the event flavour (module docs), so a corrupted or
/// truncated capture fails one replay cell precisely instead of
/// poisoning the sweep.
#[derive(Debug)]
pub struct TxnTraceWriter {
    frames: FrameWriter,
    last_addr: u64,
    last_cycle: u64,
    count: u64,
}

impl Default for TxnTraceWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnTraceWriter {
    /// Creates a writer with the stream header in place.
    pub fn new() -> Self {
        TxnTraceWriter {
            frames: FrameWriter::new(TXN_MAGIC),
            last_addr: 0,
            last_cycle: 0,
            count: 0,
        }
    }

    /// Encoded size so far, bytes (excluding the final terminator frame).
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` if only the header has been written.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Transactions encoded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Appends one transaction.
    pub fn push(&mut self, t: &MemTransaction) {
        self.count += 1;
        let buf = self.frames.payload();
        buf.put_u8(match t.kind {
            TransactionKind::ReadFill => TXN_TAG_READ_FILL,
            TransactionKind::Writeback => TXN_TAG_WRITEBACK,
            TransactionKind::WriteThrough => TXN_TAG_WRITE_THROUGH,
        });
        let addr = t.addr.raw();
        put_varint(buf, zigzag(addr.wrapping_sub(self.last_addr) as i64));
        self.last_addr = addr;
        put_varint(buf, zigzag(t.issue_cycle.wrapping_sub(self.last_cycle) as i64));
        self.last_cycle = t.issue_cycle;
        self.frames.maybe_seal();
    }

    /// Finishes the stream — seals the pending frame and appends the
    /// terminator — returning the encoded bytes.
    pub fn into_bytes(self) -> Bytes {
        self.frames.into_bytes()
    }
}

/// Decodes a transaction stream produced by [`TxnTraceWriter`], calling
/// `emit` once per transaction in encode order, and returns the count.
/// Cloning the [`Bytes`] handle is refcounted, so many replay cells can
/// decode the same capture concurrently without copying it.
///
/// # Errors
/// [`NvsimError::Corrupt`] — naming the failing section and absolute
/// byte offset — on a malformed stream: wrong magic, a truncated or
/// bit-flipped frame (CRC mismatch), an unknown tag, or a stream cut
/// before its terminator frame. Transactions already emitted before the
/// error stand; callers treating the stream as all-or-nothing should
/// discard their sink on `Err`.
pub fn replay_transactions(
    encoded: Bytes,
    mut emit: impl FnMut(MemTransaction),
) -> Result<u64, NvsimError> {
    let mut frames = FrameReader::open(encoded, TXN_MAGIC, "transaction")?;
    let mut last_addr = 0u64;
    let mut last_cycle = 0u64;
    let mut count = 0u64;
    while let Some((section, at, payload)) = frames.next_frame()? {
        let mut cur = FrameCursor::new(payload, at, section);
        while cur.has_remaining() {
            let tag_at = cur.offset();
            let kind = match cur.u8()? {
                TXN_TAG_READ_FILL => TransactionKind::ReadFill,
                TXN_TAG_WRITEBACK => TransactionKind::Writeback,
                TXN_TAG_WRITE_THROUGH => TransactionKind::WriteThrough,
                _ => return Err(corrupt(cur.section.clone(), tag_at)),
            };
            let addr = last_addr.wrapping_add(unzigzag(cur.varint()?) as u64);
            last_addr = addr;
            let issue_cycle = last_cycle.wrapping_add(unzigzag(cur.varint()?) as u64);
            last_cycle = issue_cycle;
            emit(MemTransaction {
                addr: VirtAddr::new(addr),
                kind,
                issue_cycle,
            });
            count += 1;
        }
    }
    Ok(count)
}

/// Replays an encoded trace into a sink, batching references through a
/// reusable buffer so the sink sees the same batch/control discipline as
/// the online pipeline.
///
/// Leaked strings: allocation sites carry `&'static str` file names (as
/// PIN's image data effectively is); decoding interns each distinct file
/// name once via `Box::leak`. Traces name few files, so the leak is
/// bounded and intentional.
///
/// # Errors
/// [`NvsimError::Corrupt`] — naming the failing section and absolute
/// byte offset — on a malformed trace: wrong magic, a truncated or
/// bit-flipped frame (CRC mismatch), an unknown tag or phase kind, a
/// non-UTF-8 string, or a stream cut before its terminator frame.
/// Events already delivered to the sink before the error stand.
pub fn replay(
    encoded: Bytes,
    sink: &mut dyn EventSink,
    batch_capacity: usize,
) -> Result<u64, NvsimError> {
    let mut frames = FrameReader::open(encoded, MAGIC, "event")?;

    let mut batch: Vec<MemRef> = Vec::with_capacity(batch_capacity);
    let mut last_addr = 0u64;
    let mut last_sp = 0u64;
    let mut events = 0u64;
    let mut files: Vec<&'static str> = Vec::new();

    macro_rules! flush {
        ($sink:expr) => {
            if !batch.is_empty() {
                $sink.on_batch(&batch);
                batch.clear();
            }
        };
    }

    while let Some((section, at, payload)) = frames.next_frame()? {
        let mut cur = FrameCursor::new(payload, at, section);
        while cur.has_remaining() {
            let tag_at = cur.offset();
            let tag = cur.u8()?;
            match tag {
                TAG_READ | TAG_WRITE => {
                    events += 1;
                    let addr = last_addr.wrapping_add(unzigzag(cur.varint()?) as u64);
                    last_addr = addr;
                    let size = cur.varint()? as u32;
                    let sp = last_sp.wrapping_add(unzigzag(cur.varint()?) as u64);
                    last_sp = sp;
                    batch.push(MemRef {
                        addr: VirtAddr::new(addr),
                        size,
                        kind: if tag == TAG_WRITE {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        },
                        sp: VirtAddr::new(sp),
                    });
                    if batch.len() == batch_capacity {
                        flush!(sink);
                    }
                }
                TAG_GLOBALS => {
                    let n = cur.varint()?;
                    let mut symbols = Vec::with_capacity(n.min(1024) as usize);
                    for _ in 0..n {
                        let name = cur.str_field()?;
                        let base = VirtAddr::new(cur.varint()?);
                        let size = cur.varint()?;
                        symbols.push(GlobalSymbol { name, base, size });
                    }
                    sink.on_globals(&symbols);
                }
                TAG_ENTER => {
                    events += 1;
                    flush!(sink);
                    let routine = RoutineId(cur.varint()? as u32);
                    let frame_base = VirtAddr::new(cur.varint()?);
                    let sp = VirtAddr::new(cur.varint()?);
                    sink.on_control(&Event::RoutineEnter {
                        routine,
                        frame_base,
                        sp,
                    });
                }
                TAG_EXIT => {
                    events += 1;
                    flush!(sink);
                    let routine = RoutineId(cur.varint()? as u32);
                    let sp = VirtAddr::new(cur.varint()?);
                    sink.on_control(&Event::RoutineExit { routine, sp });
                }
                TAG_ALLOC => {
                    events += 1;
                    flush!(sink);
                    let base = VirtAddr::new(cur.varint()?);
                    let size = cur.varint()?;
                    let file_owned = cur.str_field()?;
                    let line = cur.varint()? as u32;
                    let file = match files.iter().find(|f| **f == file_owned) {
                        Some(f) => *f,
                        None => {
                            let leaked: &'static str = Box::leak(file_owned.into_boxed_str());
                            files.push(leaked);
                            leaked
                        }
                    };
                    sink.on_control(&Event::HeapAlloc {
                        base,
                        size,
                        site: AllocSite::new(file, line),
                    });
                }
                TAG_FREE => {
                    events += 1;
                    flush!(sink);
                    let base = VirtAddr::new(cur.varint()?);
                    sink.on_control(&Event::HeapFree { base });
                }
                TAG_PHASE => {
                    events += 1;
                    flush!(sink);
                    let kind_at = cur.offset();
                    let kind = cur.u8()?;
                    let arg = cur.varint()? as u32;
                    let phase = match kind {
                        0 => Phase::PreComputeBegin,
                        1 => Phase::IterationBegin(arg),
                        2 => Phase::IterationEnd(arg),
                        3 => Phase::PostProcessBegin,
                        4 => Phase::ProgramEnd,
                        _ => return Err(corrupt(cur.section.clone(), kind_at)),
                    };
                    sink.on_control(&Event::Phase(phase));
                    if matches!(phase, Phase::ProgramEnd) {
                        sink.on_finish();
                    }
                }
                _ => return Err(corrupt(cur.section.clone(), tag_at)),
            }
        }
    }
    flush!(sink);
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::{FRAME_HEADER_LEN, FRAME_TARGET};
    use crate::sink::{CountingSink, RecordingSink};
    use crate::traced::TracedVec;
    use crate::tracer::Tracer;

    /// Encode a run, replay it, and compare with a direct run.
    #[test]
    fn round_trip_matches_direct_run() {
        let run = |sink: &mut dyn EventSink| {
            let mut t = Tracer::new(sink);
            let rid = t.register_routine("app", "kern");
            let mut v = TracedVec::<f64>::global(&mut t, "v", 128).unwrap();
            let h = TracedVec::<f64>::heap(&mut t, AllocSite::new("x.rs", 9), 32).unwrap();
            t.phase(Phase::IterationBegin(0));
            let mut frame = t.call(rid, 256).unwrap();
            let mut loc = TracedVec::<f64>::on_stack(&mut frame, 8);
            for i in 0..128 {
                let x = v.get(&mut t, i);
                loc.set(&mut t, i % 8, x);
                v.set(&mut t, i, x + 1.0);
            }
            t.ret(rid).unwrap();
            t.phase(Phase::IterationEnd(0));
            h.free(&mut t).unwrap();
            t.finish();
        };

        // Direct recording.
        let mut direct = RecordingSink::default();
        run(&mut direct);

        // Encoded round trip.
        let mut writer = TraceWriter::new();
        run(&mut writer);
        let encoded = writer.into_bytes();
        let mut replayed = RecordingSink::default();
        replay(encoded, &mut replayed, 64).unwrap();

        assert_eq!(direct.globals, replayed.globals);
        assert_eq!(direct.events.len(), replayed.events.len());
        assert_eq!(direct.events, replayed.events);
    }

    #[test]
    fn encoding_is_compact_for_sequential_refs() {
        let mut writer = TraceWriter::new();
        {
            let mut t = Tracer::new(&mut writer);
            let v = TracedVec::<f64>::global(&mut t, "v", 10_000).unwrap();
            for i in 0..10_000 {
                let _ = v.get(&mut t, i);
            }
            t.finish();
        }
        let events = writer.events();
        let bytes = writer.len();
        // Sequential deltas fit in ~4 bytes/event (tag + delta + size +
        // sp-delta), far below the 21-byte raw record; the CRC framing
        // adds 8 bytes per 64 KiB frame.
        assert!(events >= 10_000);
        assert!(
            (bytes as f64) < 6.0 * events as f64,
            "{bytes} bytes for {events} events"
        );
    }

    #[test]
    fn replay_batching_respects_capacity() {
        let mut writer = TraceWriter::new();
        {
            let mut t = Tracer::new(&mut writer);
            let v = TracedVec::<f64>::global(&mut t, "v", 100).unwrap();
            for i in 0..100 {
                let _ = v.get(&mut t, i);
            }
            t.finish();
        }
        let mut counter = CountingSink::default();
        replay(writer.into_bytes(), &mut counter, 16).unwrap();
        assert_eq!(counter.refs, 100);
        assert!(counter.finished);
        // 100 refs / 16 per batch (plus a final control flush).
        assert!(counter.batches >= 7);
    }

    #[test]
    fn multi_frame_streams_round_trip() {
        // Enough refs to force several 64 KiB frames; delta state must
        // carry across the frame seams.
        let mut writer = TraceWriter::new();
        {
            let mut t = Tracer::new(&mut writer);
            let mut v = TracedVec::<f64>::global(&mut t, "v", 1 << 15).unwrap();
            for i in 0..(1 << 15) {
                let _ = v.get(&mut t, i);
                v.set(&mut t, i, 1.0);
            }
            t.finish();
        }
        let encoded = writer.into_bytes();
        assert!(
            encoded.len() > FRAME_TARGET + FRAME_HEADER_LEN + 4,
            "stream should span multiple frames ({} bytes)",
            encoded.len()
        );
        let mut counter = CountingSink::default();
        replay(encoded, &mut counter, 256).unwrap();
        assert_eq!(counter.refs, 2 << 15);
        assert!(counter.finished);
    }

    #[test]
    fn bad_magic_is_a_header_error() {
        let mut sink = CountingSink::default();
        let err = replay(Bytes::from_static(&[0, 0, 0, 0, 1]), &mut sink, 8).unwrap_err();
        assert_eq!(
            err,
            NvsimError::Corrupt {
                section: "event header".into(),
                offset: 0
            }
        );
    }

    #[test]
    fn bit_flip_is_a_frame_crc_error() {
        let mut writer = TraceWriter::new();
        {
            let mut t = Tracer::new(&mut writer);
            let v = TracedVec::<f64>::global(&mut t, "v", 64).unwrap();
            for i in 0..64 {
                let _ = v.get(&mut t, i);
            }
            t.finish();
        }
        let good = writer.into_bytes();
        // Flip one bit in the middle of frame 0's payload.
        let mut bad = good.to_vec();
        let mid = 4 + FRAME_HEADER_LEN + (bad.len() - 4 - 2 * FRAME_HEADER_LEN) / 2;
        bad[mid] ^= 0x01;
        let mut sink = CountingSink::default();
        let err = replay(Bytes::from(bad), &mut sink, 8).unwrap_err();
        match err {
            NvsimError::Corrupt { section, offset } => {
                assert_eq!(section, "event frame 0");
                assert_eq!(offset, (4 + FRAME_HEADER_LEN) as u64);
            }
            other => panic!("expected Corrupt, got {other}"),
        }
        // The pristine copy still replays.
        let mut ok = CountingSink::default();
        assert!(replay(good, &mut ok, 8).is_ok());
    }

    #[test]
    fn truncation_is_a_precise_error_at_any_cut() {
        let mut writer = TraceWriter::new();
        {
            let mut t = Tracer::new(&mut writer);
            let v = TracedVec::<f64>::global(&mut t, "v", 32).unwrap();
            for i in 0..32 {
                let _ = v.get(&mut t, i);
            }
            t.finish();
        }
        let good = writer.into_bytes();
        // Any proper prefix must fail — mid-frame cuts break the frame
        // bounds, frame-boundary cuts lose the terminator.
        for cut in [good.len() - 1, good.len() - FRAME_HEADER_LEN, 6, 4] {
            let mut sink = CountingSink::default();
            let err = replay(good.slice(0..cut), &mut sink, 8).unwrap_err();
            assert!(
                matches!(err, NvsimError::Corrupt { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn transaction_stream_round_trips() {
        let txns = vec![
            MemTransaction::read_fill(VirtAddr::new(0x1000)),
            MemTransaction::writeback(VirtAddr::new(0x1040)),
            MemTransaction {
                addr: VirtAddr::new(0),
                kind: TransactionKind::WriteThrough,
                issue_cycle: u64::MAX,
            },
            MemTransaction::read_fill(VirtAddr::new(u64::MAX)),
        ];
        let mut writer = TxnTraceWriter::new();
        assert!(writer.is_empty());
        for t in &txns {
            writer.push(t);
        }
        assert_eq!(writer.count(), 4);
        let mut decoded = Vec::new();
        let n = replay_transactions(writer.into_bytes(), |t| decoded.push(t)).unwrap();
        assert_eq!(n, 4);
        assert_eq!(decoded, txns);
    }

    #[test]
    fn transaction_encoding_is_compact_for_sequential_streams() {
        let mut writer = TxnTraceWriter::new();
        for i in 0..10_000u64 {
            writer.push(&MemTransaction::read_fill(VirtAddr::new(i * 64)));
        }
        // Sequential line fills: tag + 1-2 byte address delta + 1 byte
        // cycle delta, far below the 17-byte raw record.
        assert!(
            writer.len() < 5 * 10_000,
            "{} bytes for 10_000 transactions",
            writer.len()
        );
    }

    #[test]
    fn transaction_bad_magic_is_a_header_error() {
        // An event-stream header is not a transaction-stream header.
        let writer = TraceWriter::new();
        let err = replay_transactions(writer.into_bytes(), |_| {}).unwrap_err();
        assert_eq!(
            err,
            NvsimError::Corrupt {
                section: "transaction header".into(),
                offset: 0
            }
        );
    }

    #[test]
    fn transaction_truncation_and_bit_flips_are_caught() {
        let mut writer = TxnTraceWriter::new();
        for i in 0..100u64 {
            writer.push(&MemTransaction::read_fill(VirtAddr::new(i * 64)));
        }
        let good = writer.into_bytes();

        let err = replay_transactions(good.slice(0..good.len() - 9), |_| {}).unwrap_err();
        assert!(matches!(err, NvsimError::Corrupt { .. }), "{err}");

        let mut bad = good.to_vec();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        let err = replay_transactions(Bytes::from(bad), |_| {}).unwrap_err();
        match &err {
            NvsimError::Corrupt { section, .. } => {
                assert!(section.starts_with("transaction"), "{err}")
            }
            other => panic!("expected Corrupt, got {other}"),
        }

        assert_eq!(replay_transactions(good, |_| {}).unwrap(), 100);
    }

    #[test]
    fn empty_streams_round_trip() {
        let n = replay_transactions(TxnTraceWriter::new().into_bytes(), |_| {}).unwrap();
        assert_eq!(n, 0);
        let mut sink = CountingSink::default();
        assert_eq!(replay(TraceWriter::new().into_bytes(), &mut sink, 8).unwrap(), 0);
    }
}
