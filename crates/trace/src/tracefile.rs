//! On-disk trace encoding — the *offline* NV-SCAVENGER design §III-D
//! describes and rejects:
//!
//! "One possible solution is to offload major instrumentation
//! functionality into an offline tool. ... This solution reduces the
//! instrumentation overhead significantly. ... However, it is not a
//! scalable solution. A short serial HPC application can easily produce a
//! trace of tens of gigabytes of data. Post-processing the trace by I/O
//! operations, even though the trace file is compressed, is also very
//! slow. ... So we stick to the original design, i.e., computing
//! statistics on the address stream on-the-fly without storing raw
//! traces."
//!
//! We implement the offline path anyway so the design decision can be
//! *measured* (see `benches/` and the `offline_vs_online` experiment):
//! a compact delta/varint encoding of the full event stream that any
//! `EventSink` can be replayed from later.
//!
//! Encoding: one byte tag per event. References encode the address as a
//! zig-zag varint *delta* from the previous reference address (spatial
//! locality makes most deltas one or two bytes), the size as a varint and
//! the kind in the tag; the stack pointer is delta-encoded against the
//! previous sp. Control events are rare and encoded plainly.

use crate::event::{AllocSite, Event, GlobalSymbol, Phase};
use crate::routine::RoutineId;
use crate::sink::EventSink;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use nvsim_types::{AccessKind, MemRef, MemTransaction, TransactionKind, VirtAddr};

const TAG_READ: u8 = 0;
const TAG_WRITE: u8 = 1;
const TAG_ENTER: u8 = 2;
const TAG_EXIT: u8 = 3;
const TAG_ALLOC: u8 = 4;
const TAG_FREE: u8 = 5;
const TAG_PHASE: u8 = 6;
const TAG_GLOBALS: u8 = 7;

/// File magic ("NVSC" + version).
const MAGIC: u32 = 0x4e56_5301;

const TXN_TAG_READ_FILL: u8 = 0;
const TXN_TAG_WRITEBACK: u8 = 1;
const TXN_TAG_WRITE_THROUGH: u8 = 2;

/// Magic for encoded main-memory transaction streams ("NVT" + version).
/// Distinct from [`MAGIC`] so the two stream flavours can never be
/// replayed into the wrong decoder.
const TXN_MAGIC: u32 = 0x4e56_5401;

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
        assert!(shift < 64, "varint too long");
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// An [`EventSink`] that encodes the event stream into a byte buffer.
#[derive(Debug)]
pub struct TraceWriter {
    buf: BytesMut,
    last_addr: u64,
    last_sp: u64,
    events: u64,
}

impl Default for TraceWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceWriter {
    /// Creates a writer with the file header in place.
    pub fn new() -> Self {
        let mut buf = BytesMut::with_capacity(1 << 16);
        buf.put_u32(MAGIC);
        TraceWriter {
            buf,
            last_addr: 0,
            last_sp: 0,
            events: 0,
        }
    }

    /// Encoded size so far, bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if only the header has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.len() <= 4
    }

    /// Events encoded so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Finishes the stream, returning the encoded bytes.
    pub fn into_bytes(self) -> Bytes {
        self.buf.freeze()
    }

    fn put_ref(&mut self, r: &MemRef) {
        self.events += 1;
        self.buf.put_u8(if r.kind.is_write() { TAG_WRITE } else { TAG_READ });
        let addr = r.addr.raw();
        put_varint(&mut self.buf, zigzag(addr.wrapping_sub(self.last_addr) as i64));
        self.last_addr = addr;
        put_varint(&mut self.buf, u64::from(r.size));
        let sp = r.sp.raw();
        put_varint(&mut self.buf, zigzag(sp.wrapping_sub(self.last_sp) as i64));
        self.last_sp = sp;
    }

    fn put_str(&mut self, s: &str) {
        put_varint(&mut self.buf, s.len() as u64);
        self.buf.put_slice(s.as_bytes());
    }
}

impl EventSink for TraceWriter {
    fn on_globals(&mut self, symbols: &[GlobalSymbol]) {
        self.buf.put_u8(TAG_GLOBALS);
        put_varint(&mut self.buf, symbols.len() as u64);
        for s in symbols {
            self.put_str(&s.name);
            put_varint(&mut self.buf, s.base.raw());
            put_varint(&mut self.buf, s.size);
        }
    }

    fn on_batch(&mut self, refs: &[MemRef]) {
        for r in refs {
            self.put_ref(r);
        }
    }

    fn on_control(&mut self, event: &Event) {
        self.events += 1;
        match event {
            Event::RoutineEnter {
                routine,
                frame_base,
                sp,
            } => {
                self.buf.put_u8(TAG_ENTER);
                put_varint(&mut self.buf, u64::from(routine.0));
                put_varint(&mut self.buf, frame_base.raw());
                put_varint(&mut self.buf, sp.raw());
            }
            Event::RoutineExit { routine, sp } => {
                self.buf.put_u8(TAG_EXIT);
                put_varint(&mut self.buf, u64::from(routine.0));
                put_varint(&mut self.buf, sp.raw());
            }
            Event::HeapAlloc { base, size, site } => {
                self.buf.put_u8(TAG_ALLOC);
                put_varint(&mut self.buf, base.raw());
                put_varint(&mut self.buf, *size);
                self.put_str(site.file);
                put_varint(&mut self.buf, u64::from(site.line));
            }
            Event::HeapFree { base } => {
                self.buf.put_u8(TAG_FREE);
                put_varint(&mut self.buf, base.raw());
            }
            Event::Phase(p) => {
                self.buf.put_u8(TAG_PHASE);
                let (kind, arg) = match p {
                    Phase::PreComputeBegin => (0u8, 0u32),
                    Phase::IterationBegin(i) => (1, *i),
                    Phase::IterationEnd(i) => (2, *i),
                    Phase::PostProcessBegin => (3, 0),
                    Phase::ProgramEnd => (4, 0),
                };
                self.buf.put_u8(kind);
                put_varint(&mut self.buf, u64::from(arg));
            }
            Event::Ref(_) => unreachable!("refs arrive via on_batch"),
        }
    }
}

/// Encoder for cache-filtered main-memory transaction streams — the
/// scavenge half of the sweep engine's scavenge-once/replay-many scheme.
///
/// The expensive part of a technology sweep is producing the filtered
/// stream (instrumented run + L1/L2 simulation); the replays themselves
/// only need the surviving [`MemTransaction`]s. Encoding them with the
/// same delta/varint scheme as the event stream — one tag byte, a
/// zig-zag varint address delta and an `issue_cycle` delta — keeps the
/// captured buffer a few bytes per transaction, so one capture can be
/// fanned out across arbitrarily many (technology × config) replay
/// cells without rerunning the application.
#[derive(Debug)]
pub struct TxnTraceWriter {
    buf: BytesMut,
    last_addr: u64,
    last_cycle: u64,
    count: u64,
}

impl Default for TxnTraceWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnTraceWriter {
    /// Creates a writer with the stream header in place.
    pub fn new() -> Self {
        let mut buf = BytesMut::with_capacity(1 << 16);
        buf.put_u32(TXN_MAGIC);
        TxnTraceWriter {
            buf,
            last_addr: 0,
            last_cycle: 0,
            count: 0,
        }
    }

    /// Encoded size so far, bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if only the header has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.len() <= 4
    }

    /// Transactions encoded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Appends one transaction.
    pub fn push(&mut self, t: &MemTransaction) {
        self.count += 1;
        self.buf.put_u8(match t.kind {
            TransactionKind::ReadFill => TXN_TAG_READ_FILL,
            TransactionKind::Writeback => TXN_TAG_WRITEBACK,
            TransactionKind::WriteThrough => TXN_TAG_WRITE_THROUGH,
        });
        let addr = t.addr.raw();
        put_varint(&mut self.buf, zigzag(addr.wrapping_sub(self.last_addr) as i64));
        self.last_addr = addr;
        put_varint(
            &mut self.buf,
            zigzag(t.issue_cycle.wrapping_sub(self.last_cycle) as i64),
        );
        self.last_cycle = t.issue_cycle;
    }

    /// Finishes the stream, returning the encoded bytes.
    pub fn into_bytes(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Decodes a transaction stream produced by [`TxnTraceWriter`], calling
/// `emit` once per transaction in encode order, and returns the count.
/// Cloning the [`Bytes`] handle is refcounted, so many replay cells can
/// decode the same capture concurrently without copying it.
///
/// # Panics
/// Panics on a malformed stream (wrong magic, truncated data, unknown
/// tag).
pub fn replay_transactions(encoded: Bytes, mut emit: impl FnMut(MemTransaction)) -> u64 {
    let mut buf = encoded;
    assert!(buf.remaining() >= 4, "transaction trace too short");
    assert_eq!(buf.get_u32(), TXN_MAGIC, "bad transaction trace magic");
    let mut last_addr = 0u64;
    let mut last_cycle = 0u64;
    let mut count = 0u64;
    while buf.has_remaining() {
        let kind = match buf.get_u8() {
            TXN_TAG_READ_FILL => TransactionKind::ReadFill,
            TXN_TAG_WRITEBACK => TransactionKind::Writeback,
            TXN_TAG_WRITE_THROUGH => TransactionKind::WriteThrough,
            other => panic!("bad transaction tag {other}"),
        };
        let addr = last_addr.wrapping_add(unzigzag(get_varint(&mut buf)) as u64);
        last_addr = addr;
        let issue_cycle = last_cycle.wrapping_add(unzigzag(get_varint(&mut buf)) as u64);
        last_cycle = issue_cycle;
        emit(MemTransaction {
            addr: VirtAddr::new(addr),
            kind,
            issue_cycle,
        });
        count += 1;
    }
    count
}

/// Replays an encoded trace into a sink, batching references through a
/// reusable buffer so the sink sees the same batch/control discipline as
/// the online pipeline.
///
/// Leaked strings: allocation sites carry `&'static str` file names (as
/// PIN's image data effectively is); decoding interns each distinct file
/// name once via `Box::leak`. Traces name few files, so the leak is
/// bounded and intentional.
///
/// # Panics
/// Panics on a malformed trace (wrong magic, truncated stream).
pub fn replay(encoded: Bytes, sink: &mut dyn EventSink, batch_capacity: usize) -> u64 {
    let mut buf = encoded;
    assert!(buf.remaining() >= 4, "trace too short");
    assert_eq!(buf.get_u32(), MAGIC, "bad trace magic");

    let mut batch: Vec<MemRef> = Vec::with_capacity(batch_capacity);
    let mut last_addr = 0u64;
    let mut last_sp = 0u64;
    let mut events = 0u64;
    let mut files: Vec<&'static str> = Vec::new();

    let get_str = |buf: &mut Bytes| -> String {
        let len = get_varint(buf) as usize;
        let bytes = buf.copy_to_bytes(len);
        String::from_utf8(bytes.to_vec()).expect("utf8 string in trace")
    };

    macro_rules! flush {
        ($sink:expr) => {
            if !batch.is_empty() {
                $sink.on_batch(&batch);
                batch.clear();
            }
        };
    }

    while buf.has_remaining() {
        let tag = buf.get_u8();
        match tag {
            TAG_READ | TAG_WRITE => {
                events += 1;
                let addr = last_addr.wrapping_add(unzigzag(get_varint(&mut buf)) as u64);
                last_addr = addr;
                let size = get_varint(&mut buf) as u32;
                let sp = last_sp.wrapping_add(unzigzag(get_varint(&mut buf)) as u64);
                last_sp = sp;
                batch.push(MemRef {
                    addr: VirtAddr::new(addr),
                    size,
                    kind: if tag == TAG_WRITE {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                    sp: VirtAddr::new(sp),
                });
                if batch.len() == batch_capacity {
                    flush!(sink);
                }
            }
            TAG_GLOBALS => {
                let n = get_varint(&mut buf);
                let symbols: Vec<GlobalSymbol> = (0..n)
                    .map(|_| {
                        let name = get_str(&mut buf);
                        let base = VirtAddr::new(get_varint(&mut buf));
                        let size = get_varint(&mut buf);
                        GlobalSymbol { name, base, size }
                    })
                    .collect();
                sink.on_globals(&symbols);
            }
            TAG_ENTER => {
                events += 1;
                flush!(sink);
                let routine = RoutineId(get_varint(&mut buf) as u32);
                let frame_base = VirtAddr::new(get_varint(&mut buf));
                let sp = VirtAddr::new(get_varint(&mut buf));
                sink.on_control(&Event::RoutineEnter {
                    routine,
                    frame_base,
                    sp,
                });
            }
            TAG_EXIT => {
                events += 1;
                flush!(sink);
                let routine = RoutineId(get_varint(&mut buf) as u32);
                let sp = VirtAddr::new(get_varint(&mut buf));
                sink.on_control(&Event::RoutineExit { routine, sp });
            }
            TAG_ALLOC => {
                events += 1;
                flush!(sink);
                let base = VirtAddr::new(get_varint(&mut buf));
                let size = get_varint(&mut buf);
                let file_owned = get_str(&mut buf);
                let line = get_varint(&mut buf) as u32;
                let file = match files.iter().find(|f| **f == file_owned) {
                    Some(f) => *f,
                    None => {
                        let leaked: &'static str = Box::leak(file_owned.into_boxed_str());
                        files.push(leaked);
                        leaked
                    }
                };
                sink.on_control(&Event::HeapAlloc {
                    base,
                    size,
                    site: AllocSite::new(file, line),
                });
            }
            TAG_FREE => {
                events += 1;
                flush!(sink);
                let base = VirtAddr::new(get_varint(&mut buf));
                sink.on_control(&Event::HeapFree { base });
            }
            TAG_PHASE => {
                events += 1;
                flush!(sink);
                let kind = buf.get_u8();
                let arg = get_varint(&mut buf) as u32;
                let phase = match kind {
                    0 => Phase::PreComputeBegin,
                    1 => Phase::IterationBegin(arg),
                    2 => Phase::IterationEnd(arg),
                    3 => Phase::PostProcessBegin,
                    4 => Phase::ProgramEnd,
                    other => panic!("bad phase kind {other}"),
                };
                sink.on_control(&Event::Phase(phase));
                if matches!(phase, Phase::ProgramEnd) {
                    sink.on_finish();
                }
            }
            other => panic!("bad trace tag {other}"),
        }
    }
    flush!(sink);
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CountingSink, RecordingSink};
    use crate::traced::TracedVec;
    use crate::tracer::Tracer;

    /// Encode a run, replay it, and compare with a direct run.
    #[test]
    fn round_trip_matches_direct_run() {
        let run = |sink: &mut dyn EventSink| {
            let mut t = Tracer::new(sink);
            let rid = t.register_routine("app", "kern");
            let mut v = TracedVec::<f64>::global(&mut t, "v", 128).unwrap();
            let h = TracedVec::<f64>::heap(&mut t, AllocSite::new("x.rs", 9), 32).unwrap();
            t.phase(Phase::IterationBegin(0));
            let mut frame = t.call(rid, 256).unwrap();
            let mut loc = TracedVec::<f64>::on_stack(&mut frame, 8);
            for i in 0..128 {
                let x = v.get(&mut t, i);
                loc.set(&mut t, i % 8, x);
                v.set(&mut t, i, x + 1.0);
            }
            t.ret(rid).unwrap();
            t.phase(Phase::IterationEnd(0));
            h.free(&mut t).unwrap();
            t.finish();
        };

        // Direct recording.
        let mut direct = RecordingSink::default();
        run(&mut direct);

        // Encoded round trip.
        let mut writer = TraceWriter::new();
        run(&mut writer);
        let encoded = writer.into_bytes();
        let mut replayed = RecordingSink::default();
        replay(encoded, &mut replayed, 64);

        assert_eq!(direct.globals, replayed.globals);
        assert_eq!(direct.events.len(), replayed.events.len());
        assert_eq!(direct.events, replayed.events);
    }

    #[test]
    fn encoding_is_compact_for_sequential_refs() {
        let mut writer = TraceWriter::new();
        {
            let mut t = Tracer::new(&mut writer);
            let v = TracedVec::<f64>::global(&mut t, "v", 10_000).unwrap();
            for i in 0..10_000 {
                let _ = v.get(&mut t, i);
            }
            t.finish();
        }
        let events = writer.events();
        let bytes = writer.len();
        // Sequential deltas fit in ~4 bytes/event (tag + delta + size +
        // sp-delta), far below the 21-byte raw record.
        assert!(events >= 10_000);
        assert!(
            (bytes as f64) < 6.0 * events as f64,
            "{bytes} bytes for {events} events"
        );
    }

    #[test]
    fn replay_batching_respects_capacity() {
        let mut writer = TraceWriter::new();
        {
            let mut t = Tracer::new(&mut writer);
            let v = TracedVec::<f64>::global(&mut t, "v", 100).unwrap();
            for i in 0..100 {
                let _ = v.get(&mut t, i);
            }
            t.finish();
        }
        let mut counter = CountingSink::default();
        replay(writer.into_bytes(), &mut counter, 16);
        assert_eq!(counter.refs, 100);
        assert!(counter.finished);
        // 100 refs / 16 per batch (plus a final control flush).
        assert!(counter.batches >= 7);
    }

    #[test]
    #[should_panic(expected = "bad trace magic")]
    fn bad_magic_panics() {
        let mut sink = CountingSink::default();
        replay(Bytes::from_static(&[0, 0, 0, 0, 1]), &mut sink, 8);
    }

    #[test]
    fn transaction_stream_round_trips() {
        let txns = vec![
            MemTransaction::read_fill(VirtAddr::new(0x1000)),
            MemTransaction::writeback(VirtAddr::new(0x1040)),
            MemTransaction {
                addr: VirtAddr::new(0),
                kind: TransactionKind::WriteThrough,
                issue_cycle: u64::MAX,
            },
            MemTransaction::read_fill(VirtAddr::new(u64::MAX)),
        ];
        let mut writer = TxnTraceWriter::new();
        assert!(writer.is_empty());
        for t in &txns {
            writer.push(t);
        }
        assert_eq!(writer.count(), 4);
        let mut decoded = Vec::new();
        let n = replay_transactions(writer.into_bytes(), |t| decoded.push(t));
        assert_eq!(n, 4);
        assert_eq!(decoded, txns);
    }

    #[test]
    fn transaction_encoding_is_compact_for_sequential_streams() {
        let mut writer = TxnTraceWriter::new();
        for i in 0..10_000u64 {
            writer.push(&MemTransaction::read_fill(VirtAddr::new(i * 64)));
        }
        // Sequential line fills: tag + 1-2 byte address delta + 1 byte
        // cycle delta, far below the 17-byte raw record.
        assert!(
            writer.len() < 5 * 10_000,
            "{} bytes for 10_000 transactions",
            writer.len()
        );
    }

    #[test]
    #[should_panic(expected = "bad transaction trace magic")]
    fn transaction_bad_magic_panics() {
        // An event-stream header is not a transaction-stream header.
        let writer = TraceWriter::new();
        replay_transactions(writer.into_bytes(), |_| {});
    }
}
