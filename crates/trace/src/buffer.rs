//! The trace buffer of §III-D.
//!
//! "To further improve the performance of NV-SCAVENGER, we use a memory
//! buffer to temporarily store memory traces. Any memory reference is
//! simply placed into the buffer until the buffer is full. All addresses in
//! the buffer are then processed at once. This scheme delays data analysis
//! and reduces the frequency of interferences with the program data cache
//! caused by data processing."
//!
//! The buffer is a plain reusable `Vec<MemRef>`: pushes in the hot path are
//! a bounds check and a write, and the storage is never reallocated after
//! warm-up. Control events (routine enter/exit, allocation, phase markers)
//! force a flush so sinks observe references in order relative to the
//! call-stack state that produced them.

use nvsim_types::MemRef;

/// Default buffer capacity in references. 64 Ki refs ≈ 2 MiB, comfortably
/// larger than the simulated L2 so flush-time processing does not thrash
/// the (real) cache between batches — the same reasoning as the paper's.
pub const DEFAULT_CAPACITY: usize = 64 * 1024;

/// A bounded, reusable batch of memory references.
#[derive(Debug)]
pub struct TraceBuffer {
    refs: Vec<MemRef>,
    capacity: usize,
    flushes: u64,
    total_refs: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding up to `capacity` references per batch.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace buffer capacity must be positive");
        TraceBuffer {
            refs: Vec::with_capacity(capacity),
            capacity,
            flushes: 0,
            total_refs: 0,
        }
    }

    /// Pushes one reference; returns `true` if the buffer is now full and
    /// must be flushed before the next push.
    #[inline]
    pub fn push(&mut self, r: MemRef) -> bool {
        debug_assert!(self.refs.len() < self.capacity);
        self.refs.push(r);
        self.total_refs += 1;
        self.refs.len() == self.capacity
    }

    /// `true` if no references are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Number of pending references.
    #[inline]
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hands the pending batch to `f` and clears the buffer. The storage is
    /// retained for reuse. Counts as a flush only if references were
    /// pending.
    pub fn flush<F: FnOnce(&[MemRef])>(&mut self, f: F) {
        if self.refs.is_empty() {
            return;
        }
        self.flushes += 1;
        f(&self.refs);
        self.refs.clear();
    }

    /// Number of non-empty flushes performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Total references ever pushed.
    pub fn total_refs(&self) -> u64 {
        self.total_refs
    }
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim_types::VirtAddr;

    fn r(addr: u64) -> MemRef {
        MemRef::read(VirtAddr::new(addr), 8)
    }

    #[test]
    fn push_signals_full_at_capacity() {
        let mut b = TraceBuffer::new(3);
        assert!(!b.push(r(0)));
        assert!(!b.push(r(8)));
        assert!(b.push(r(16)));
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn flush_delivers_in_order_and_clears() {
        let mut b = TraceBuffer::new(4);
        b.push(r(1));
        b.push(r(2));
        let mut seen = Vec::new();
        b.flush(|batch| seen.extend(batch.iter().map(|m| m.addr.raw())));
        assert_eq!(seen, vec![1, 2]);
        assert!(b.is_empty());
        assert_eq!(b.flushes(), 1);
        assert_eq!(b.total_refs(), 2);
    }

    #[test]
    fn empty_flush_is_free() {
        let mut b = TraceBuffer::new(4);
        b.flush(|_| panic!("must not be called"));
        assert_eq!(b.flushes(), 0);
    }

    #[test]
    fn storage_is_reused_across_flushes() {
        let mut b = TraceBuffer::new(8);
        for round in 0..10 {
            for i in 0..8 {
                b.push(r(round * 8 + i));
            }
            b.flush(|batch| assert_eq!(batch.len(), 8));
        }
        assert_eq!(b.flushes(), 10);
        assert_eq!(b.total_refs(), 80);
        assert!(b.refs.capacity() >= 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = TraceBuffer::new(0);
    }
}
