//! Routine identities, mirroring PIN's `RTN` API.
//!
//! §III-A: "to identify the routine, we use the starting address of the
//! routine as its signature, because we can easily obtain routine name and
//! image name based on this address using the PIN API." Here routines are
//! registered up front by the proxy applications; the table maps a compact
//! id to (name, image, synthetic start address).

use nvsim_types::VirtAddr;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Compact identifier of a registered routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RoutineId(pub u32);

/// Metadata for one routine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutineInfo {
    /// Routine (function/subroutine) name.
    pub name: String,
    /// Image (executable or library) the routine belongs to.
    pub image: String,
    /// Synthetic starting address — the routine signature of §III-A.
    pub start_addr: VirtAddr,
}

/// Registry of routines known to the instrumentation layer.
#[derive(Debug, Default, Clone)]
pub struct RoutineTable {
    routines: Vec<RoutineInfo>,
    by_name: HashMap<(String, String), RoutineId>,
}

/// Synthetic text segment where routine start addresses are minted; below
/// the global segment so they never alias data.
const TEXT_BASE: u64 = 0x10_0000;
/// Spacing between synthetic routine start addresses.
const TEXT_STRIDE: u64 = 0x100;

impl RoutineTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a routine (idempotent per `(image, name)` pair) and
    /// returns its id.
    pub fn register(&mut self, image: &str, name: &str) -> RoutineId {
        let key = (image.to_owned(), name.to_owned());
        if let Some(&id) = self.by_name.get(&key) {
            return id;
        }
        let id = RoutineId(self.routines.len() as u32);
        let start_addr = VirtAddr::new(TEXT_BASE + TEXT_STRIDE * u64::from(id.0));
        self.routines.push(RoutineInfo {
            name: name.to_owned(),
            image: image.to_owned(),
            start_addr,
        });
        self.by_name.insert(key, id);
        id
    }

    /// Looks up routine metadata.
    pub fn info(&self, id: RoutineId) -> Option<&RoutineInfo> {
        self.routines.get(id.0 as usize)
    }

    /// Resolves a routine by its synthetic start address (the PIN-style
    /// reverse lookup).
    pub fn by_start_addr(&self, addr: VirtAddr) -> Option<RoutineId> {
        let raw = addr.raw();
        if raw < TEXT_BASE || !(raw - TEXT_BASE).is_multiple_of(TEXT_STRIDE) {
            return None;
        }
        let idx = (raw - TEXT_BASE) / TEXT_STRIDE;
        if (idx as usize) < self.routines.len() {
            Some(RoutineId(idx as u32))
        } else {
            None
        }
    }

    /// Number of registered routines.
    pub fn len(&self) -> usize {
        self.routines.len()
    }

    /// `true` if no routines are registered.
    pub fn is_empty(&self) -> bool {
        self.routines.is_empty()
    }

    /// Iterates over `(id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RoutineId, &RoutineInfo)> {
        self.routines
            .iter()
            .enumerate()
            .map(|(i, info)| (RoutineId(i as u32), info))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let mut t = RoutineTable::new();
        let a = t.register("nek5000", "ax_helm");
        let b = t.register("nek5000", "ax_helm");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        let c = t.register("nek5000", "glsum");
        assert_ne!(a, c);
    }

    #[test]
    fn same_name_different_image_is_distinct() {
        let mut t = RoutineTable::new();
        let a = t.register("cam", "init");
        let b = t.register("gtc", "init");
        assert_ne!(a, b);
    }

    #[test]
    fn start_addr_round_trips() {
        let mut t = RoutineTable::new();
        let a = t.register("s3d", "rhsf");
        let b = t.register("s3d", "chemkin");
        for id in [a, b] {
            let addr = t.info(id).unwrap().start_addr;
            assert_eq!(t.by_start_addr(addr), Some(id));
        }
        assert_eq!(t.by_start_addr(VirtAddr::new(0x1)), None);
        assert_eq!(t.by_start_addr(VirtAddr::new(TEXT_BASE + 7)), None);
        assert_eq!(
            t.by_start_addr(VirtAddr::new(TEXT_BASE + 100 * TEXT_STRIDE)),
            None
        );
    }
}
