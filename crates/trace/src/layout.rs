//! Synthetic address-space allocators for the three segments.
//!
//! The proxy applications allocate their data structures through these
//! allocators so that every data structure owns a realistic, disjoint
//! virtual address range. The heap allocator deliberately *reuses freed
//! addresses* (first-fit free list with coalescing): §III-B calls out that
//! "some already deallocated heap objects may share the same virtual memory
//! address with an active heap memory object", which forces the object
//! registry to keep dead-object flags — behaviour this allocator exercises.

use nvsim_types::{AddrRange, NvsimError, VirtAddr};

/// Alignment applied to all allocations (glibc-style 16 bytes).
pub const ALLOC_ALIGN: u64 = 16;

/// Bump allocator for the global/data segment.
#[derive(Debug, Clone)]
pub struct GlobalAllocator {
    range: AddrRange,
    next: VirtAddr,
}

impl GlobalAllocator {
    /// Creates an allocator over the given segment range.
    pub fn new(range: AddrRange) -> Self {
        GlobalAllocator {
            range,
            next: range.start,
        }
    }

    /// Reserves `size` bytes and returns their base address.
    pub fn alloc(&mut self, size: u64) -> Result<VirtAddr, NvsimError> {
        let base = self.next.align_up(ALLOC_ALIGN);
        let end = base
            .checked_add(size)
            .ok_or(NvsimError::OutOfAddressSpace {
                segment: "global",
                requested: size,
            })?;
        if end > self.range.end {
            return Err(NvsimError::OutOfAddressSpace {
                segment: "global",
                requested: size,
            });
        }
        self.next = end;
        Ok(base)
    }

    /// Bytes allocated so far.
    pub fn used(&self) -> u64 {
        self.next.raw() - self.range.start.raw()
    }
}

/// A block on the heap free list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FreeBlock {
    base: VirtAddr,
    size: u64,
}

/// First-fit heap allocator with address reuse and coalescing.
#[derive(Debug, Clone)]
pub struct HeapAllocator {
    range: AddrRange,
    frontier: VirtAddr,
    /// Free blocks sorted by base address (kept small: scientific codes
    /// make few concurrent allocations relative to their footprint).
    free: Vec<FreeBlock>,
    /// Live allocations: (base, size), sorted by base.
    live: Vec<(VirtAddr, u64)>,
    peak_bytes: u64,
    live_bytes: u64,
}

impl HeapAllocator {
    /// Creates an allocator over the given heap range.
    pub fn new(range: AddrRange) -> Self {
        HeapAllocator {
            range,
            frontier: range.start,
            free: Vec::new(),
            live: Vec::new(),
            peak_bytes: 0,
            live_bytes: 0,
        }
    }

    /// Allocates `size` bytes (rounded up to [`ALLOC_ALIGN`]), preferring
    /// to reuse a freed block.
    pub fn alloc(&mut self, size: u64) -> Result<VirtAddr, NvsimError> {
        let size = size.max(1).div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        // First fit over the free list.
        if let Some(idx) = self.free.iter().position(|b| b.size >= size) {
            let block = self.free[idx];
            let base = block.base;
            if block.size == size {
                self.free.remove(idx);
            } else {
                self.free[idx] = FreeBlock {
                    base: block.base + size,
                    size: block.size - size,
                };
            }
            self.insert_live(base, size);
            return Ok(base);
        }
        // Otherwise extend the frontier.
        let base = self.frontier.align_up(ALLOC_ALIGN);
        let end = base
            .checked_add(size)
            .ok_or(NvsimError::OutOfAddressSpace {
                segment: "heap",
                requested: size,
            })?;
        if end > self.range.end {
            return Err(NvsimError::OutOfAddressSpace {
                segment: "heap",
                requested: size,
            });
        }
        self.frontier = end;
        self.insert_live(base, size);
        Ok(base)
    }

    /// Frees the allocation starting at `base`, returning its size.
    pub fn free(&mut self, base: VirtAddr) -> Result<u64, NvsimError> {
        let idx = self
            .live
            .binary_search_by_key(&base, |&(b, _)| b)
            .map_err(|_| NvsimError::Protocol(format!("free of unallocated address {base}")))?;
        let (_, size) = self.live.remove(idx);
        self.live_bytes -= size;
        self.insert_free(FreeBlock { base, size });
        Ok(size)
    }

    /// Reallocates: modelled as free followed by alloc, exactly as §III-B
    /// treats `realloc`. Returns the new base address.
    pub fn realloc(&mut self, base: VirtAddr, new_size: u64) -> Result<VirtAddr, NvsimError> {
        self.free(base)?;
        self.alloc(new_size)
    }

    /// Size of the live allocation at `base`, if any.
    pub fn live_size(&self, base: VirtAddr) -> Option<u64> {
        self.live
            .binary_search_by_key(&base, |&(b, _)| b)
            .ok()
            .map(|i| self.live[i].1)
    }

    /// Current live bytes.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Peak live bytes over the allocator's lifetime.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    fn insert_live(&mut self, base: VirtAddr, size: u64) {
        let idx = self
            .live
            .binary_search_by_key(&base, |&(b, _)| b)
            .expect_err("allocator returned an address that is already live");
        self.live.insert(idx, (base, size));
        self.live_bytes += size;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
    }

    fn insert_free(&mut self, block: FreeBlock) {
        let idx = self
            .free
            .partition_point(|b| b.base < block.base);
        self.free.insert(idx, block);
        // Coalesce with the successor, then the predecessor.
        if idx + 1 < self.free.len() {
            let next = self.free[idx + 1];
            if self.free[idx].base + self.free[idx].size == next.base {
                self.free[idx].size += next.size;
                self.free.remove(idx + 1);
            }
        }
        if idx > 0 {
            let prev = self.free[idx - 1];
            if prev.base + prev.size == self.free[idx].base {
                self.free[idx - 1].size += self.free[idx].size;
                self.free.remove(idx);
            }
        }
    }
}

/// Downward-growing stack with frame bookkeeping.
///
/// §III-A's fast method classifies a reference as a stack reference when
/// its address lies between the current stack pointer and the highest value
/// the stack pointer ever had; [`StackAllocator::base`] and
/// [`StackAllocator::sp`] provide those bounds, and the low watermark is
/// tracked for footprint reporting.
#[derive(Debug, Clone)]
pub struct StackAllocator {
    range: AddrRange,
    sp: VirtAddr,
    /// Frame base (address one past the top of the frame) per live frame.
    frames: Vec<VirtAddr>,
    low_watermark: VirtAddr,
}

impl StackAllocator {
    /// Creates a stack occupying `range`, with the stack pointer at the top.
    pub fn new(range: AddrRange) -> Self {
        StackAllocator {
            range,
            sp: range.end,
            frames: Vec::new(),
            low_watermark: range.end,
        }
    }

    /// Current stack pointer.
    #[inline]
    pub fn sp(&self) -> VirtAddr {
        self.sp
    }

    /// Initial (highest) stack pointer — the paper's "maximum value that
    /// the stack pointer has had".
    #[inline]
    pub fn base(&self) -> VirtAddr {
        self.range.end
    }

    /// Deepest stack pointer reached.
    #[inline]
    pub fn low_watermark(&self) -> VirtAddr {
        self.low_watermark
    }

    /// Maximum stack depth in bytes reached so far.
    pub fn max_depth(&self) -> u64 {
        self.range.end.raw() - self.low_watermark.raw()
    }

    /// Pushes a frame of `size` bytes; returns `(frame_base, new_sp)` where
    /// the frame occupies `[new_sp, frame_base)`.
    pub fn push_frame(&mut self, size: u64) -> Result<(VirtAddr, VirtAddr), NvsimError> {
        let size = size.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        let frame_base = self.sp;
        let new_sp_raw = self
            .sp
            .raw()
            .checked_sub(size)
            .filter(|&raw| raw >= self.range.start.raw())
            .ok_or(NvsimError::OutOfAddressSpace {
                segment: "stack",
                requested: size,
            })?;
        self.sp = VirtAddr::new(new_sp_raw);
        self.low_watermark = self.low_watermark.min(self.sp);
        self.frames.push(frame_base);
        Ok((frame_base, self.sp))
    }

    /// Pops the top frame, restoring the stack pointer.
    pub fn pop_frame(&mut self) -> Result<VirtAddr, NvsimError> {
        let frame_base = self
            .frames
            .pop()
            .ok_or_else(|| NvsimError::Protocol("pop_frame on empty stack".into()))?;
        self.sp = frame_base;
        Ok(self.sp)
    }

    /// Number of live frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// `true` if `addr` lies in the live stack area (fast-method test).
    #[inline]
    pub fn is_live_stack_addr(&self, addr: VirtAddr) -> bool {
        addr >= self.sp && addr < self.base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim_types::AddressSpaceLayout;

    fn heap() -> HeapAllocator {
        HeapAllocator::new(AddressSpaceLayout::default().heap)
    }

    #[test]
    fn global_bump_is_monotone_and_aligned() {
        let mut g = GlobalAllocator::new(AddressSpaceLayout::default().global);
        let a = g.alloc(100).unwrap();
        let b = g.alloc(10).unwrap();
        assert!(b > a);
        assert!(a.is_aligned(ALLOC_ALIGN));
        assert!(b.is_aligned(ALLOC_ALIGN));
        assert!(b.raw() - a.raw() >= 100);
        assert!(g.used() >= 110);
    }

    #[test]
    fn global_exhaustion_errors() {
        let mut g = GlobalAllocator::new(AddrRange::from_base_size(VirtAddr::new(0x40_0000), 64));
        assert!(g.alloc(48).is_ok());
        assert!(matches!(
            g.alloc(64),
            Err(NvsimError::OutOfAddressSpace { segment: "global", .. })
        ));
    }

    #[test]
    fn heap_reuses_freed_addresses() {
        let mut h = heap();
        let a = h.alloc(1024).unwrap();
        let _b = h.alloc(1024).unwrap();
        h.free(a).unwrap();
        let c = h.alloc(512).unwrap();
        // First-fit: the freed block at `a` is reused.
        assert_eq!(c, a);
    }

    #[test]
    fn heap_free_of_unknown_address_errors() {
        let mut h = heap();
        assert!(matches!(
            h.free(VirtAddr::new(0xdead_beef)),
            Err(NvsimError::Protocol(_))
        ));
    }

    #[test]
    fn heap_coalescing_merges_neighbours() {
        let mut h = heap();
        let a = h.alloc(64).unwrap();
        let b = h.alloc(64).unwrap();
        let c = h.alloc(64).unwrap();
        let _keep = h.alloc(64).unwrap();
        h.free(a).unwrap();
        h.free(c).unwrap();
        h.free(b).unwrap(); // merges a+b+c into one 192-byte block
        let d = h.alloc(192).unwrap();
        assert_eq!(d, a);
    }

    #[test]
    fn heap_tracks_live_and_peak() {
        let mut h = heap();
        let a = h.alloc(100).unwrap(); // rounds to 112
        assert_eq!(h.live_bytes(), 112);
        assert_eq!(h.live_size(a), Some(112));
        let b = h.alloc(16).unwrap();
        assert_eq!(h.peak_bytes(), 128);
        h.free(a).unwrap();
        h.free(b).unwrap();
        assert_eq!(h.live_bytes(), 0);
        assert_eq!(h.peak_bytes(), 128);
        assert_eq!(h.live_count(), 0);
    }

    #[test]
    fn realloc_is_free_then_alloc() {
        let mut h = heap();
        let a = h.alloc(64).unwrap();
        let b = h.realloc(a, 32).unwrap();
        // The freed 64-byte block satisfies the 32-byte request first-fit.
        assert_eq!(b, a);
        assert!(h.realloc(VirtAddr::new(0x1), 8).is_err());
    }

    #[test]
    fn stack_frames_nest_and_restore() {
        let mut s = StackAllocator::new(AddressSpaceLayout::default().stack);
        let top = s.sp();
        let (fb1, sp1) = s.push_frame(100).unwrap();
        assert_eq!(fb1, top);
        assert_eq!(sp1.raw(), top.raw() - 112); // aligned up to 112
        let (fb2, sp2) = s.push_frame(64).unwrap();
        assert_eq!(fb2, sp1);
        assert!(sp2 < sp1);
        assert_eq!(s.depth(), 2);
        assert!(s.is_live_stack_addr(sp2));
        assert!(!s.is_live_stack_addr(sp2 - 8));
        s.pop_frame().unwrap();
        assert_eq!(s.sp(), sp1);
        s.pop_frame().unwrap();
        assert_eq!(s.sp(), top);
        assert!(s.pop_frame().is_err());
        assert_eq!(s.max_depth(), top.raw() - sp2.raw());
    }

    #[test]
    fn stack_overflow_errors() {
        let mut s = StackAllocator::new(AddrRange::from_base_size(
            VirtAddr::new(0x7ff0_0000_0000),
            256,
        ));
        assert!(s.push_frame(128).is_ok());
        assert!(matches!(
            s.push_frame(256),
            Err(NvsimError::OutOfAddressSpace { segment: "stack", .. })
        ));
    }
}
