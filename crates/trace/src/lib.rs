//! # nvsim-trace
//!
//! The library-level instrumentation layer of the NV-SCAVENGER
//! reproduction. The paper instruments x86 binaries with PIN (§III); since
//! no mature binary-instrumentation bindings exist for Rust, this crate
//! substitutes *traced containers*: application data structures whose reads
//! and writes emit the exact [`MemRef`](nvsim_types::MemRef) stream the
//! algorithm performs, plus routine enter/exit hooks that drive the same
//! shadow-stack attribution logic NV-SCAVENGER builds on top of PIN's
//! call/return instrumentation.
//!
//! The crate provides:
//!
//! * [`event`] — the event vocabulary flowing from an application to
//!   analysis sinks (references, routine enter/exit, heap alloc/free,
//!   phase markers);
//! * [`buffer`] — the trace buffer of §III-D ("any memory reference is
//!   simply placed into the buffer until the buffer is full; all addresses
//!   in the buffer are then processed at once");
//! * [`layout`] — synthetic stack/heap/global address-space allocators;
//! * [`routine`] — the routine table (PIN `RTN`-style name/image lookup);
//! * [`tracer`] — the [`Tracer`] façade applications call into;
//! * [`traced`] — traced containers ([`TracedVec`], [`TracedScalar`],
//!   [`TracedMatrix`]);
//! * [`sink`] — the [`EventSink`] consumer trait and utility sinks;
//! * [`tracefile`] — the compact on-disk trace encoding implementing the
//!   *offline* design §III-D discusses, so the online-vs-offline decision
//!   can be benchmarked;
//! * [`framing`] — the CRC32-framed section layout and varint codecs the
//!   tracefile (and other durable formats, e.g. the `nvsim-store`
//!   columnar sweep store) build on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod buffer;
pub mod event;
pub mod framing;
pub mod layout;
pub mod routine;
pub mod sink;
pub mod traced;
pub mod tracefile;
pub mod tracer;

pub use buffer::TraceBuffer;
pub use event::{AllocSite, Event, GlobalSymbol, Phase};
pub use layout::{GlobalAllocator, HeapAllocator, StackAllocator};
pub use routine::{RoutineId, RoutineTable};
pub use sink::{CountingSink, EventSink, NullSink, RecordingSink, TeeSink};
pub use tracefile::{crc32, replay as replay_trace, replay_transactions, TraceWriter, TxnTraceWriter};
pub use traced::{TracedMatrix, TracedScalar, TracedVec};
pub use tracer::{Tracer, TracerStats};

// Re-exported so application drivers can attach typed arguments to
// [`Tracer::annotate`] markers without depending on `nvsim-obs` directly.
pub use nvsim_obs::ArgValue;
