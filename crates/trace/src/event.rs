//! The event vocabulary flowing from an instrumented application to
//! analysis sinks.
//!
//! Events correspond one-to-one with the instrumentation points the paper
//! inserts with PIN (§III): memory-operand callbacks, function call/return
//! instrumentation (for the shadow stack), `malloc`/`free` entry/exit
//! instrumentation (heap objects), and iteration markers around the main
//! computation loop (§VI: "we specifically instrument the main computation
//! loop").

use crate::routine::RoutineId;
use nvsim_types::{MemRef, VirtAddr};
use serde::{Deserialize, Serialize};

/// Execution phase markers.
///
/// §VI: scientific applications typically have a pre-computing phase, a
/// main computation loop, and a post-processing phase; the tool instruments
/// the main loop but tracks allocations made in all phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Initialization / input parsing begins.
    PreComputeBegin,
    /// One iteration of the main computation loop begins (0-based index).
    IterationBegin(u32),
    /// The iteration ends.
    IterationEnd(u32),
    /// Post-processing (aggregation, output) begins.
    PostProcessBegin,
    /// The program is done; sinks should finalize.
    ProgramEnd,
}

/// The static allocation site of a heap object.
///
/// §III-B uses "the base address, the size, the line number and the file
/// name for the function call, and the starting addresses of the routines
/// currently active in the shadow stack" as the heap-object signature. The
/// call-stack component is appended by the object registry (which owns the
/// shadow stack); the site carries the source coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AllocSite {
    /// Source file of the allocating call.
    pub file: &'static str,
    /// Line number of the allocating call.
    pub line: u32,
}

impl AllocSite {
    /// Creates an allocation site.
    pub const fn new(file: &'static str, line: u32) -> Self {
        AllocSite { file, line }
    }
}

/// A global symbol, as NV-SCAVENGER would read it from the executable with
/// libdwarf (§III-C).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GlobalSymbol {
    /// Symbol name (e.g. `mass_matrix`, or a FORTRAN common-block member).
    pub name: String,
    /// Base address in the global segment.
    pub base: VirtAddr,
    /// Size in bytes.
    pub size: u64,
}

/// One instrumentation event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A batch-flushed memory reference (the common case by far).
    Ref(MemRef),
    /// A routine was entered; `frame_base` is the highest address of its
    /// new stack frame, `sp` the stack pointer after frame setup.
    RoutineEnter {
        /// Routine being entered.
        routine: RoutineId,
        /// Highest address (exclusive) of the routine's frame.
        frame_base: VirtAddr,
        /// Stack pointer after the frame was set up.
        sp: VirtAddr,
    },
    /// The current routine returned; `sp` is restored to the caller's.
    RoutineExit {
        /// Routine being exited.
        routine: RoutineId,
        /// Stack pointer after the frame was torn down.
        sp: VirtAddr,
    },
    /// A heap region was allocated (`malloc`/Fortran `allocate` exit hook).
    HeapAlloc {
        /// Base address returned by the allocator.
        base: VirtAddr,
        /// Requested size in bytes.
        size: u64,
        /// Static allocation site.
        site: AllocSite,
    },
    /// A heap region was freed (`free` entry hook). `realloc` is modelled
    /// as free + alloc, exactly as §III-B prescribes.
    HeapFree {
        /// Base address being freed.
        base: VirtAddr,
    },
    /// Execution phase marker.
    Phase(Phase),
}

impl Event {
    /// `true` for `Event::Ref`.
    #[inline]
    pub fn is_ref(&self) -> bool {
        matches!(self, Event::Ref(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_classification() {
        let e = Event::Ref(MemRef::read(VirtAddr::new(8), 8));
        assert!(e.is_ref());
        assert!(!Event::Phase(Phase::ProgramEnd).is_ref());
    }

    #[test]
    fn alloc_site_equality_is_structural() {
        assert_eq!(AllocSite::new("a.rs", 10), AllocSite::new("a.rs", 10));
        assert_ne!(AllocSite::new("a.rs", 10), AllocSite::new("a.rs", 11));
    }
}
