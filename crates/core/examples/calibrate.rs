//! Calibration probe: print measured-vs-paper for the headline numbers.
use nv_scavenger::experiments as ex;
use nvsim_apps::AppScale;

fn main() {
    let scale = AppScale::Small;
    let iters = 10;

    println!("== Table V (stack) ==");
    for r in ex::table5(scale, iters).unwrap() {
        println!(
            "{:8} ratio={:6.2} (paper {:5.2})  first={:6.2} (paper {:5.2})  share={:5.1}% (paper {:4.1}%)",
            r.app, r.rw_ratio, r.paper.0, r.rw_ratio_first, r.paper.1,
            r.reference_percentage, r.paper.2
        );
    }

    println!("\n== Figure 2 (CAM stack objects) ==");
    let f2 = ex::fig2(scale, iters).unwrap();
    println!(
        ">10: objects {:.1}% (paper 43.3) refs {:.1}% (paper 68.9) | >50: objects {:.1}% (paper 3.2) refs {:.1}% (paper 8.9)",
        f2.objects_ratio_gt10 * 100.0, f2.refs_ratio_gt10 * 100.0,
        f2.objects_ratio_gt50 * 100.0, f2.refs_ratio_gt50 * 100.0
    );

    println!("\n== Figures 3-6 (global+heap pools) ==");
    for r in ex::figs3_6(scale, iters).unwrap() {
        println!(
            "{:8} total={:6.2}MBeq read_only={:5.1}% high_ratio={:6.3}MBeq gt1_objs={:4.1}%",
            r.app,
            mbeq(r.total_bytes, scale),
            100.0 * r.read_only_bytes as f64 / r.total_bytes.max(1) as f64,
            mbeq(r.high_ratio_bytes, scale),
            r.objects_ratio_gt1 * 100.0
        );
    }
    println!("paper: Nek RO 7.1% of 824MB (59MB), high 38.6MB; CAM RO 15.5% (94MB), high 4.8MB");

    println!("\n== Figure 7 (untouched) ==");
    for r in ex::fig7(scale, iters).unwrap() {
        println!("{:8} untouched={:4.1}%", r.app, r.untouched_fraction * 100.0);
    }
    println!("paper: Nek 24.3%, CAM 11.5%, S3D small, GTC ~0");

    println!("\n== Figures 8-11 (variance, min stable [1,2) fraction) ==");
    for r in ex::figs8_11(scale, iters).unwrap() {
        println!("{:8} min_stable={:4.2} (paper >0.6)", r.app, r.min_stable_fraction);
    }

    println!("\n== Table VI (normalized power) ==");
    for r in ex::table6(scale, iters).unwrap() {
        println!(
            "{:8} [{:.3} {:.3} {:.3} {:.3}] paper [{:.3} {:.3} {:.3} {:.3}] txns={}",
            r.app, r.normalized[0], r.normalized[1], r.normalized[2], r.normalized[3],
            r.paper[0], r.paper[1], r.paper[2], r.paper[3], r.transactions
        );
    }

    println!("\n== Figure 12 (normalized runtime) ==");
    for r in ex::fig12(scale).unwrap() {
        print!("{:8}", r.app);
        for p in &r.points {
            print!("  {}={:.3}", p.technology, p.normalized_runtime);
        }
        println!("  (paper: MRAM ~1.00, STT <1.05, PCRAM <=1.25)");
    }

    println!("\n== Suitability (abstract: 31% / 27% for two apps) ==");
    for r in ex::suitability(scale, iters).unwrap() {
        println!(
            "{:8} cat2={:4.1}% cat1={:4.1}%",
            r.app,
            r.category2.suitable_fraction() * 100.0,
            r.category1.suitable_fraction() * 100.0
        );
    }
}

fn mbeq(bytes: u64, scale: AppScale) -> f64 {
    scale.to_paper_mb(bytes)
}
