//! # nv-scavenger
//!
//! The top of the reproduction: NV-SCAVENGER as a library. This crate
//! wires the substrate crates into the paper's Figure 1 pipeline —
//! instrumented application → trace buffer → {stack, heap, global}
//! attribution tools and cache simulator → memory traces → power
//! simulator — plus the PTLsim-replacement latency study and the
//! placement advisor.
//!
//! * [`stack_fast`] — the light-weight whole-stack tool of §III-A (first
//!   method), which produces Table V;
//! * [`pipeline`] — single-run characterization combining the object
//!   registry, the fast stack tool and footprint accounting;
//! * [`parallel`] — the §III-D "three tools in parallel" runner (one
//!   instrumented execution per tool, on crossbeam scoped threads);
//! * [`profile`] — the whole pipeline bound to one `nvsim-obs` metrics
//!   registry, exporting per-layer counters (see `docs/METRICS.md`);
//! * [`experiments`] — one assembly function per table/figure of the
//!   paper, returning serializable report types;
//! * [`fleet`] — the parallel sweep engine: capture each application's
//!   cache-filtered transaction stream once, replay it across the
//!   technology grid on a bounded worker pool, and merge per-worker
//!   metric/timeline shards deterministically;
//! * [`resilience`] — the fault-tolerance layer under the fleet: the
//!   retry/quarantine [`FleetPolicy`], the CRC-checked per-cell
//!   completion [`Journal`] that makes killed sweeps resumable, and the
//!   exact binary [`CellRecord`] format both are built on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod dataset_store;
pub mod eval_cells;
pub mod experiments;
pub mod fleet;
pub mod parallel;
pub mod pipeline;
pub mod profile;
pub mod resilience;
pub mod stack_fast;

pub use dataset_store::{
    dataset_from_store, dataset_to_store, epochs_to_store, merge_into_dataset,
    merge_into_dataset_observed, read_alloc, read_dataset,
    read_fig12, read_fig2, read_fig7, read_figs3_6, read_figs8_11, read_suitability, read_table1,
    read_table5, read_table6, write_dataset, write_epochs,
};
pub use eval_cells::{
    assemble_dataset, eval_grid, run_eval_cell, CellResult, EvalCell, Section,
};
pub use experiments::{
    alloc_study, alloc_study_jobs, collect_dataset, recovery_scaling, AllocRecoveryRow,
    AllocReport, AllocRow, EvalDataset,
};
pub use fleet::{
    cell_point, current_worker, default_jobs, grid_points, profile_fleet, profile_fleet_app,
    profile_fleet_app_policy, profile_fleet_policy, publish_fired, replay_cells,
    replay_cells_policy, run_indexed, AppRun, CapturedStream, CellOutcome, CellSpec, FleetRun,
    SweepOutcome,
};
pub use parallel::TaskPool;
pub use resilience::{CellRecord, FleetPolicy, Journal, JournalEvent};
pub use pipeline::{
    characterize, characterize_observed, characterize_with_metrics, Characterization,
};
pub use profile::{
    alloc_region_frames, object_drift, profile, profile_observed, ProfileReport, DEFAULT_MTBF_S,
    HOT_REFERENCE_RATE,
};
pub use stack_fast::{FastStackSink, StackIterationRow, StackReport};
