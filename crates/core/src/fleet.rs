//! The parallel experiment fleet: a scavenge-once/replay-many sweep
//! engine over the paper's §VI evaluation matrix.
//!
//! The evaluation is an embarrassingly parallel grid — 4 applications ×
//! {DDR3, PCRAM, STTRAM, MRAM} technology cells — yet the serial
//! pipeline re-runs the instrumented application and the L1/L2 filter
//! for every cell. This module splits the work the way the cost
//! structure demands:
//!
//! 1. **Scavenge once** — [`CapturedStream::capture`] runs the tracer +
//!    cache filter a single time per application and encodes the
//!    surviving main-memory stream with the `tracefile` delta scheme
//!    ([`nvsim_trace::TxnTraceWriter`]) into an in-memory buffer a few
//!    bytes per transaction.
//! 2. **Replay many** — [`replay_cells`] fans the captured buffer out
//!    across a bounded crossbeam worker pool ([`run_indexed`]), one
//!    decode-and-replay per technology cell.
//! 3. **Fleet the applications** — [`profile_fleet`] runs the four
//!    proxies concurrently on the same pool, each through the full
//!    instrumented pipeline ([`profile_fleet_app`]).
//!
//! ## Determinism
//!
//! Every worker records into its own [`Metrics`]/[`Timeline`] shard;
//! when a stage completes, the shards are merged in **stable cell
//! order** (never completion order) via [`Metrics::absorb`] and
//! [`Timeline::absorb`]. Because the proxies are deterministic and
//! every instrument counts events rather than wall time, the merged
//! metrics snapshot is *byte-identical* to a serial run sharing one
//! registry, and the merged timeline has the identical event sequence
//! (only its wall-clock timestamps differ, as they do between any two
//! serial runs). `tests/fleet_differential.rs` holds the pipeline to
//! that guarantee for every application.

use crate::pipeline::characterize_observed;
use crate::profile::{ProfileReport, DEFAULT_MTBF_S};
use bytes::Bytes;
use nvsim_apps::{all_apps, AppScale, Application};
use nvsim_cache::{CacheFilterSink, TransactionSink};
use nvsim_mem::system::{MemorySystem, PowerReport};
use nvsim_obs::{ArgValue, EpochRecorder, Metrics, ReportMeta, Timeline};
use nvsim_placement::{compare_targets_traced, MigrationConfig, MigrationSimulator};
use nvsim_trace::{replay_transactions, Tracer, TxnTraceWriter};
use nvsim_types::{
    CacheConfig, DeviceProfile, MemTransaction, MemoryTechnology, NvsimError, Region, SystemConfig,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: the machine's available parallelism, 1 if it
/// cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `task(0..n)` on a bounded pool of at most `jobs` crossbeam
/// scoped workers and returns the results **in index order**, however
/// the scheduler interleaved the work. Workers pull indices from a
/// shared atomic cursor, so the pool stays busy until the grid drains;
/// with `jobs <= 1` the tasks simply run inline.
///
/// This is the fleet's only scheduling primitive: everything layered on
/// top owes its determinism to results coming back by index, not by
/// completion.
///
/// # Panics
/// Propagates a panic from any worker.
pub fn run_indexed<T, F>(jobs: usize, n: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.clamp(1, n.max(1));
    if jobs == 1 {
        return (0..n).map(task).collect();
    }
    let slots: Vec<parking_lot::Mutex<Option<T>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..jobs {
            let slots = &slots;
            let next = &next;
            let task = &task;
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let done = task(i);
                *slots[i].lock() = Some(done);
            });
        }
    })
    .expect("fleet worker panicked");
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every fleet slot filled"))
        .collect()
}

/// One cell of the sweep grid: a memory technology plus the system
/// configuration its replay runs under.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Technology to replay on.
    pub technology: MemoryTechnology,
    /// System configuration (Tables II–III defaults unless swept).
    pub system: SystemConfig,
}

impl CellSpec {
    /// The default grid: every Table IV technology at the default
    /// system configuration, in [`MemoryTechnology::ALL`] (= Table VI
    /// report) order.
    pub fn grid() -> Vec<CellSpec> {
        let sys = SystemConfig::default();
        MemoryTechnology::ALL
            .iter()
            .map(|&t| CellSpec {
                technology: t,
                system: sys.clone(),
            })
            .collect()
    }
}

/// Adapter that delta-encodes every transaction leaving the cache
/// filter. (Lives here rather than in `nvsim-trace` because the
/// [`TransactionSink`] trait belongs to `nvsim-cache`, which already
/// depends on the trace crate.)
struct EncodingSink {
    writer: TxnTraceWriter,
}

impl TransactionSink for EncodingSink {
    fn on_transaction(&mut self, t: MemTransaction) {
        self.writer.push(&t);
    }
}

/// The scavenge product for one application: its cache-filtered
/// main-memory stream, delta-encoded in memory, ready to be replayed
/// into any number of cells concurrently (decoding clones only a
/// refcounted [`Bytes`] handle).
pub struct CapturedStream {
    /// Application the stream was captured from.
    pub app: String,
    encoded: Bytes,
    transactions: u64,
}

impl CapturedStream {
    /// Runs the tracer + cache filter once over `app` and captures the
    /// surviving transaction stream. Observable behaviour matches the
    /// cache-filter pass of [`crate::profile::profile_observed`]
    /// exactly: the same `cache_filter` timeline span, the same
    /// `cache.*` metric exports — only the downstream sink encodes
    /// instead of materializing a `Vec`.
    pub fn capture(
        app: &mut dyn Application,
        iterations: u32,
        metrics: &Metrics,
        timeline: &Timeline,
    ) -> Result<Self, NvsimError> {
        let name = app.spec().name.to_string();
        timeline.begin("cache_filter", "cache");
        let mut sink = CacheFilterSink::new(
            &CacheConfig::default(),
            EncodingSink {
                writer: TxnTraceWriter::new(),
            },
        );
        sink.set_metrics(metrics);
        sink.set_timeline(timeline);
        {
            let mut tracer = Tracer::new(&mut sink);
            app.run(&mut tracer, iterations)?;
            tracer.finish();
        }
        timeline.end("cache_filter", "cache");
        let writer = sink.into_downstream().writer;
        Ok(CapturedStream {
            app: name,
            transactions: writer.count(),
            encoded: writer.into_bytes(),
        })
    }

    /// Transactions in the captured stream.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Encoded size, bytes.
    pub fn encoded_len(&self) -> usize {
        self.encoded.len()
    }

    /// Streams the capture into a transaction sink, returning the
    /// count. Decoding is allocation-free and safe to run from many
    /// threads at once.
    pub fn replay_into(&self, sink: &mut dyn TransactionSink) -> u64 {
        replay_transactions(self.encoded.clone(), |t| sink.on_transaction(t))
    }

    /// Materializes the capture as a `Vec`, for callers that need the
    /// serial pipeline's in-memory representation.
    pub fn to_vec(&self) -> Vec<MemTransaction> {
        let mut txns = Vec::with_capacity(self.transactions as usize);
        replay_transactions(self.encoded.clone(), |t| txns.push(t));
        txns
    }
}

/// Result of one replay cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Technology the cell replayed on.
    pub technology: MemoryTechnology,
    /// The replay's power report.
    pub power: PowerReport,
}

/// Replays one captured stream into every cell of `cells` on at most
/// `jobs` workers, returning outcomes in cell order.
///
/// Each cell records into a private metrics/timeline shard; after the
/// pool drains, the shards are absorbed into `metrics`/`timeline` in
/// cell order, reproducing exactly what a serial loop over the cells
/// would have recorded — counters sum, gauges keep the last cell's
/// value, and the timeline gains one `replay <tech>` span plus `power`
/// instant per cell, in grid order.
pub fn replay_cells(
    captured: &CapturedStream,
    cells: &[CellSpec],
    jobs: usize,
    metrics: &Metrics,
    timeline: &Timeline,
) -> Vec<CellOutcome> {
    let shards: Vec<(Metrics, Timeline)> = cells
        .iter()
        .map(|_| {
            (
                if metrics.is_enabled() {
                    Metrics::enabled()
                } else {
                    Metrics::disabled()
                },
                if timeline.is_enabled() {
                    Timeline::enabled()
                } else {
                    Timeline::disabled()
                },
            )
        })
        .collect();
    let shards_ref = &shards;
    let outcomes = run_indexed(jobs, cells.len(), |i| {
        let cell = &cells[i];
        let (m, tl) = &shards_ref[i];
        let mut sys = MemorySystem::new(DeviceProfile::for_technology(cell.technology), &cell.system);
        sys.set_metrics(m);
        sys.set_timeline(tl);
        // Streaming decode straight into the controller; the span
        // mirrors what `MemorySystem::replay` emits for a `Vec` replay.
        let name = format!(
            "replay {}",
            cell.technology.to_string().to_lowercase()
        );
        tl.begin(&name, "mem");
        let n = captured.replay_into(&mut sys);
        tl.end_with(&name, "mem", &[("transactions", ArgValue::U64(n))]);
        CellOutcome {
            technology: cell.technology,
            power: sys.finish(),
        }
    });
    for (m, tl) in &shards {
        metrics.absorb(&m.snapshot());
        timeline.absorb(tl);
    }
    outcomes
}

/// The fleet analogue of [`crate::profile::profile_observed`]: one
/// application through the full instrumented pipeline, with the
/// technology replays captured once and fanned out over `jobs` workers.
///
/// Stage order — characterization, checkpoint comparison, cache-filter
/// capture, technology replays, migration, epoch seal — matches the
/// serial pipeline, and the cell shards are absorbed *before* the
/// migration stage and the epoch recorder's [`EpochRecorder::finish`],
/// so the Tail epoch partitions the `cache.*`/`mem.*`/`placement.*`
/// counters exactly as a serial run does. With `jobs <= 1` the replays
/// run inline and the function is behaviourally identical to
/// `profile_observed`.
pub fn profile_fleet_app(
    app: &mut dyn Application,
    iterations: u32,
    jobs: usize,
    metrics: &Metrics,
    timeline: &Timeline,
) -> Result<ProfileReport, NvsimError> {
    let recorder = EpochRecorder::new(metrics);

    // Run 1: attribution tools (exports trace.* / objects.*).
    let characterization = characterize_observed(app, iterations, metrics, &recorder, timeline)?;

    // Checkpoint-cost comparison for the measured footprint.
    let checkpoints = compare_targets_traced(
        characterization.footprint.total(),
        DEFAULT_MTBF_S,
        timeline,
    );

    // Run 2: the scavenge — tracer + cache filter once, encoded.
    let captured = CapturedStream::capture(app, iterations, metrics, timeline)?;

    // The replay fan-out: one cell per Table IV technology.
    let outcomes = replay_cells(&captured, &CellSpec::grid(), jobs, metrics, timeline);
    let power: Vec<PowerReport> = outcomes.into_iter().map(|o| o.power).collect();

    // Migration over the run's long-term working set (global + heap).
    let refs: Vec<_> = characterization
        .registry
        .objects()
        .iter()
        .filter(|o| o.region != Region::Stack)
        .map(|o| (&o.metrics, o.metrics.size_bytes))
        .collect();
    let migration = MigrationSimulator::new(MigrationConfig::default())
        .with_metrics(metrics)
        .with_timeline(timeline)
        .run(&refs);

    recorder.finish();
    let meta = ReportMeta {
        app: app.spec().name.to_string(),
        iterations,
    };
    Ok(ProfileReport {
        characterization,
        transactions: captured.transactions(),
        power,
        migration,
        checkpoints,
        snapshot: metrics.snapshot(),
        epochs: recorder.epochs(),
        meta,
    })
}

/// Runs every proxy application through [`profile_fleet_app`]
/// concurrently on at most `jobs` workers, absorbing each application's
/// metrics/timeline shard into `metrics`/`timeline` in Table I
/// application order.
///
/// This is the engine behind `run_all --parallel`: the merged
/// `--metrics-json` snapshot is byte-identical to the serial
/// instrumented pass (counters sum over applications; gauges keep the
/// last application's value, matching serial overwrite order), and the
/// merged timeline carries the identical event sequence. Worker count
/// composes: up to `jobs` applications run at once, each fanning its
/// replay cells over up to `jobs` more workers.
pub fn profile_fleet(
    scale: AppScale,
    iterations: u32,
    jobs: usize,
    metrics: &Metrics,
    timeline: &Timeline,
) -> Result<Vec<ProfileReport>, NvsimError> {
    let n = all_apps(scale).len();
    let shards: Vec<(Metrics, Timeline)> = (0..n)
        .map(|_| {
            (
                if metrics.is_enabled() {
                    Metrics::enabled()
                } else {
                    Metrics::disabled()
                },
                if timeline.is_enabled() {
                    Timeline::enabled()
                } else {
                    Timeline::disabled()
                },
            )
        })
        .collect();
    let shards_ref = &shards;
    let results = run_indexed(jobs, n, |i| {
        let mut app = all_apps(scale).remove(i);
        let (m, tl) = &shards_ref[i];
        profile_fleet_app(app.as_mut(), iterations, jobs, m, tl)
    });
    for (m, tl) in &shards {
        metrics.absorb(&m.snapshot());
        timeline.absorb(tl);
    }
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::filtered_trace;
    use nvsim_apps::Gtc;
    use nvsim_mem::system::replay_all_technologies;

    #[test]
    fn run_indexed_returns_results_in_index_order() {
        for jobs in [1, 2, 8, 64] {
            let got = run_indexed(jobs, 17, |i| i * i);
            let want: Vec<usize> = (0..17).map(|i| i * i).collect();
            assert_eq!(got, want, "jobs={jobs}");
        }
        assert!(run_indexed(4, 0, |i| i).is_empty());
    }

    #[test]
    fn captured_stream_round_trips_the_filtered_trace() {
        let mut app = Gtc::new(AppScale::Test);
        let captured = CapturedStream::capture(
            &mut app,
            2,
            &Metrics::disabled(),
            &Timeline::disabled(),
        )
        .unwrap();
        let mut app2 = Gtc::new(AppScale::Test);
        let direct = filtered_trace(&mut app2, 2).unwrap();
        assert_eq!(captured.transactions(), direct.len() as u64);
        assert_eq!(captured.to_vec(), direct);
        // The delta encoding earns its keep: well under the raw record.
        assert!(captured.encoded_len() < direct.len() * 17);
    }

    #[test]
    fn replay_cells_matches_the_serial_replay() {
        let mut app = Gtc::new(AppScale::Test);
        let captured = CapturedStream::capture(
            &mut app,
            1,
            &Metrics::disabled(),
            &Timeline::disabled(),
        )
        .unwrap();
        let serial = replay_all_technologies(&captured.to_vec(), &SystemConfig::default()).0;
        for jobs in [1, 4] {
            let outcomes = replay_cells(
                &captured,
                &CellSpec::grid(),
                jobs,
                &Metrics::disabled(),
                &Timeline::disabled(),
            );
            assert_eq!(outcomes.len(), 4);
            for (o, s) in outcomes.iter().zip(&serial) {
                assert_eq!(o.power, *s, "jobs={jobs} {}", o.technology);
            }
        }
    }

    #[test]
    fn replay_cells_merges_shards_deterministically() {
        let mut app = Gtc::new(AppScale::Test);
        let captured = CapturedStream::capture(
            &mut app,
            1,
            &Metrics::disabled(),
            &Timeline::disabled(),
        )
        .unwrap();
        let reference = {
            let metrics = Metrics::enabled();
            let timeline = Timeline::enabled();
            replay_cells(&captured, &CellSpec::grid(), 1, &metrics, &timeline);
            (metrics.snapshot().to_json(), timeline_shape(&timeline))
        };
        for jobs in [2, 3, 8] {
            let metrics = Metrics::enabled();
            let timeline = Timeline::enabled();
            replay_cells(&captured, &CellSpec::grid(), jobs, &metrics, &timeline);
            assert_eq!(metrics.snapshot().to_json(), reference.0, "jobs={jobs}");
            assert_eq!(timeline_shape(&timeline), reference.1, "jobs={jobs}");
        }
    }

    /// The timestamp-free view of a journal: everything that must be
    /// schedule-independent.
    fn timeline_shape(tl: &Timeline) -> Vec<(String, String, char, u32)> {
        tl.events()
            .into_iter()
            .map(|e| (e.name, e.cat, e.kind.ph(), e.tid))
            .collect()
    }
}
