//! The parallel experiment fleet: a scavenge-once/replay-many sweep
//! engine over the paper's §VI evaluation matrix.
//!
//! The evaluation is an embarrassingly parallel grid — 4 applications ×
//! {DDR3, PCRAM, STTRAM, MRAM} technology cells — yet the serial
//! pipeline re-runs the instrumented application and the L1/L2 filter
//! for every cell. This module splits the work the way the cost
//! structure demands:
//!
//! 1. **Scavenge once** — [`CapturedStream::capture`] runs the tracer +
//!    cache filter a single time per application and encodes the
//!    surviving main-memory stream with the `tracefile` delta scheme
//!    ([`nvsim_trace::TxnTraceWriter`]) into an in-memory buffer a few
//!    bytes per transaction.
//! 2. **Replay many** — [`replay_cells_policy`] fans the captured buffer
//!    out across a bounded crossbeam worker pool ([`run_indexed`]), one
//!    decode-and-replay per technology cell.
//! 3. **Fleet the applications** — [`profile_fleet_policy`] runs the
//!    four proxies concurrently on the same pool, each through the full
//!    instrumented pipeline ([`profile_fleet_app_policy`]).
//!
//! ## Determinism
//!
//! Every worker records into its own [`Metrics`]/[`Timeline`] shard;
//! when a stage completes, the shards are merged in **stable cell
//! order** (never completion order) via [`Metrics::absorb`] and
//! [`Timeline::absorb`]. Because the proxies are deterministic and
//! every instrument counts events rather than wall time, the merged
//! metrics snapshot is *byte-identical* to a serial run sharing one
//! registry, and the merged timeline has the identical event sequence
//! (only its wall-clock timestamps differ, as they do between any two
//! serial runs). `tests/fleet_differential.rs` holds the pipeline to
//! that guarantee for every application.
//!
//! ## Resilience
//!
//! Each cell attempt runs under `std::panic::catch_unwind` with a fresh
//! pair of shards; a failed attempt's shards are discarded whole, so a
//! retry never double-counts a partial replay. The retry budget,
//! quarantine behaviour, fault injection and completion journal are all
//! carried by [`FleetPolicy`] (see [`crate::resilience`] and
//! `docs/RESILIENCE.md`); the policy-free wrappers keep the original
//! strict semantics.

use crate::pipeline::characterize_observed;
use crate::profile::{ProfileReport, DEFAULT_MTBF_S};
use crate::resilience::{CellRecord, FleetPolicy};
use bytes::Bytes;
use nvsim_apps::{all_apps, AppScale, Application};
use nvsim_cache::{CacheFilterSink, TransactionSink};
use nvsim_faults::panic_message;
use nvsim_mem::system::{MemorySystem, PowerReport};
use nvsim_obs::{ArgValue, DegradedCell, EpochRecorder, Event, Metrics, ReportMeta, Timeline};
use nvsim_placement::{compare_targets_traced, MigrationConfig, MigrationSimulator};
use nvsim_trace::{replay_transactions, Tracer, TxnTraceWriter};
use nvsim_types::{
    CacheConfig, DeviceProfile, MemTransaction, MemoryTechnology, NvsimError, Region, SystemConfig,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: the machine's available parallelism, 1 if it
/// cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

thread_local! {
    /// Index of the [`run_indexed`] pool worker this thread is, if any.
    static WORKER_ID: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// The [`run_indexed`] worker index of the current thread: `Some(w)` on
/// a pool worker, `None` on a thread outside any pool (the `jobs <= 1`
/// inline path runs on the caller's thread and keeps whatever identity
/// that thread has). Events published from inside a cell use this for
/// their [`nvsim_obs::Correlation::worker`] field, which is what makes per-worker
/// attribution possible at all — a merged metrics snapshot cannot say
/// which worker did what.
pub fn current_worker() -> Option<u64> {
    WORKER_ID.with(|w| w.get())
}

/// Runs `task(0..n)` on a bounded pool of at most `jobs` crossbeam
/// scoped workers and returns the results **in index order**, however
/// the scheduler interleaved the work. Workers pull indices from a
/// shared atomic cursor, so the pool stays busy until the grid drains;
/// with `jobs <= 1` the tasks simply run inline.
///
/// This is the fleet's only scheduling primitive: everything layered on
/// top owes its determinism to results coming back by index, not by
/// completion.
///
/// # Panics
/// Propagates a panic from any worker — deterministically: each worker
/// catches its task's unwind so the rest of the grid still runs, and the
/// *lowest-indexed* failure is rethrown during collection. (Resilient
/// callers pass tasks that never panic; see [`replay_cells_policy`].)
pub fn run_indexed<T, F>(jobs: usize, n: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.clamp(1, n.max(1));
    if jobs == 1 {
        return (0..n).map(task).collect();
    }
    let slots: Vec<parking_lot::Mutex<Option<std::thread::Result<T>>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for worker in 0..jobs {
            let slots = &slots;
            let next = &next;
            let task = &task;
            scope.spawn(move |_| {
                WORKER_ID.with(|w| w.set(Some(worker as u64)));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let done = catch_unwind(AssertUnwindSafe(|| task(i)));
                    *slots[i].lock() = Some(done);
                }
            });
        }
    })
    .expect("fleet scope failed");
    slots
        .into_iter()
        .map(
            |slot| match slot.into_inner().expect("every fleet slot filled") {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            },
        )
        .collect()
}

/// One cell of the sweep grid: a memory technology plus the system
/// configuration its replay runs under.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Technology to replay on.
    pub technology: MemoryTechnology,
    /// System configuration (Tables II–III defaults unless swept).
    pub system: SystemConfig,
}

impl CellSpec {
    /// The default grid: every Table IV technology at the default
    /// system configuration, in [`MemoryTechnology::ALL`] (= Table VI
    /// report) order.
    pub fn grid() -> Vec<CellSpec> {
        let sys = SystemConfig::default();
        MemoryTechnology::ALL
            .iter()
            .map(|&t| CellSpec {
                technology: t,
                system: sys.clone(),
            })
            .collect()
    }
}

/// The canonical name of one replay cell — `app/technology`, e.g.
/// `GTC/pcram`. These names key the fault injector, the completion
/// journal and the `degraded` report section.
pub fn cell_point(app: &str, technology: MemoryTechnology) -> String {
    format!("{app}/{}", technology.to_string().to_lowercase())
}

/// Every cell name of the full sweep grid (all applications × all
/// Table IV technologies, stable order) — the point universe a seeded
/// [`nvsim_faults::FaultPlan`] draws from.
pub fn grid_points(scale: AppScale) -> Vec<String> {
    all_apps(scale)
        .iter()
        .flat_map(|app| {
            let name = app.spec().name.to_string();
            CellSpec::grid()
                .into_iter()
                .map(move |cell| cell_point(&name, cell.technology))
        })
        .collect()
}

/// Adapter that delta-encodes every transaction leaving the cache
/// filter. (Lives here rather than in `nvsim-trace` because the
/// [`TransactionSink`] trait belongs to `nvsim-cache`, which already
/// depends on the trace crate.)
struct EncodingSink {
    writer: TxnTraceWriter,
}

impl TransactionSink for EncodingSink {
    fn on_transaction(&mut self, t: MemTransaction) {
        self.writer.push(&t);
    }
}

/// The scavenge product for one application: its cache-filtered
/// main-memory stream, delta-encoded in memory, ready to be replayed
/// into any number of cells concurrently (decoding clones only a
/// refcounted [`Bytes`] handle).
pub struct CapturedStream {
    /// Application the stream was captured from.
    pub app: String,
    encoded: Bytes,
    transactions: u64,
}

impl CapturedStream {
    /// Runs the tracer + cache filter once over `app` and captures the
    /// surviving transaction stream. Observable behaviour matches the
    /// cache-filter pass of [`crate::profile::profile_observed`]
    /// exactly: the same `cache_filter` timeline span, the same
    /// `cache.*` metric exports — only the downstream sink encodes
    /// instead of materializing a `Vec`.
    pub fn capture(
        app: &mut dyn Application,
        iterations: u32,
        metrics: &Metrics,
        timeline: &Timeline,
    ) -> Result<Self, NvsimError> {
        let name = app.spec().name.to_string();
        timeline.begin("cache_filter", "cache");
        let mut sink = CacheFilterSink::new(
            &CacheConfig::default(),
            EncodingSink {
                writer: TxnTraceWriter::new(),
            },
        );
        sink.set_metrics(metrics);
        sink.set_timeline(timeline);
        {
            let mut tracer = Tracer::new(&mut sink);
            app.run(&mut tracer, iterations)?;
            tracer.finish();
        }
        timeline.end("cache_filter", "cache");
        let writer = sink.into_downstream().writer;
        Ok(CapturedStream {
            app: name,
            transactions: writer.count(),
            encoded: writer.into_bytes(),
        })
    }

    /// Transactions in the captured stream.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Encoded size, bytes.
    pub fn encoded_len(&self) -> usize {
        self.encoded.len()
    }

    /// Streams the capture into a transaction sink, returning the
    /// count. Decoding is allocation-free and safe to run from many
    /// threads at once.
    ///
    /// # Errors
    /// [`NvsimError::Corrupt`] if the captured buffer fails frame
    /// validation (possible when a capture was read back from damaged
    /// storage — an in-memory capture always replays).
    pub fn replay_into(&self, sink: &mut dyn TransactionSink) -> Result<u64, NvsimError> {
        replay_transactions(self.encoded.clone(), |t| sink.on_transaction(t))
    }

    /// Materializes the capture as a `Vec`, for callers that need the
    /// serial pipeline's in-memory representation.
    ///
    /// # Errors
    /// [`NvsimError::Corrupt`] under the same conditions as
    /// [`CapturedStream::replay_into`].
    pub fn to_vec(&self) -> Result<Vec<MemTransaction>, NvsimError> {
        let mut txns = Vec::with_capacity(self.transactions as usize);
        replay_transactions(self.encoded.clone(), |t| txns.push(t))?;
        Ok(txns)
    }
}

/// Result of one replay cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Technology the cell replayed on.
    pub technology: MemoryTechnology,
    /// The replay's power report.
    pub power: PowerReport,
}

/// What a policy-driven sweep produced: per-cell outcomes (index-aligned
/// with the cell grid; `None` marks a quarantined cell), the degraded
/// roster, and how many cells were restored from the journal instead of
/// replayed.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One entry per cell, grid order; `None` = quarantined.
    pub outcomes: Vec<Option<CellOutcome>>,
    /// Quarantined cells with their last error and attempt count, in
    /// grid order.
    pub degraded: Vec<DegradedCell>,
    /// Cells restored from the completion journal.
    pub resumed: usize,
}

/// Private per-cell result carried back from the worker pool, shards
/// attached so the merge happens in stable order on the caller's thread.
enum CellRun {
    Done {
        outcome: CellOutcome,
        metrics: Metrics,
        timeline: Timeline,
        resumed: bool,
    },
    Failed {
        error: NvsimError,
        attempts: u32,
    },
}

fn shard_pair(metrics: &Metrics, timeline: &Timeline) -> (Metrics, Timeline) {
    (
        if metrics.is_enabled() {
            Metrics::enabled()
        } else {
            Metrics::disabled()
        },
        if timeline.is_enabled() {
            Timeline::enabled()
        } else {
            Timeline::disabled()
        },
    )
}

/// One replay attempt: probe the fault injector, decode the (possibly
/// corrupted) capture into a fresh memory system, return the outcome and
/// replayed count. Records only into the attempt's private shards, so a
/// failure leaves no trace in the merged report.
fn run_cell_once(
    captured: &CapturedStream,
    cell: &CellSpec,
    cell_name: &str,
    policy: &FleetPolicy,
    metrics: &Metrics,
    timeline: &Timeline,
) -> Result<(CellOutcome, u64), NvsimError> {
    policy.faults.on_cell_start(cell_name)?;
    let encoded = match policy.faults.corrupted(cell_name, &captured.encoded) {
        Some(bad) => Bytes::from(bad),
        None => captured.encoded.clone(),
    };
    let mut sys = MemorySystem::new(DeviceProfile::for_technology(cell.technology), &cell.system);
    sys.set_metrics(metrics);
    sys.set_timeline(timeline);
    // Streaming decode straight into the controller; the span mirrors
    // what `MemorySystem::replay` emits for a `Vec` replay.
    let span = format!("replay {}", cell.technology.to_string().to_lowercase());
    timeline.begin(&span, "mem");
    let n = replay_transactions(encoded, |t| sys.on_transaction(t))?;
    timeline.end_with(&span, "mem", &[("transactions", ArgValue::U64(n))]);
    Ok((
        CellOutcome {
            technology: cell.technology,
            power: sys.finish(),
        },
        n,
    ))
}

/// Runs one cell to completion under the policy: restore from the
/// journal if resuming, otherwise up to `max_attempts` fresh-shard
/// attempts with bounded backoff, journaling the first success. Every
/// lifecycle step publishes a typed event on [`FleetPolicy::events`]
/// (`cell.started`/`finished`/`retried`/`quarantined`/`resumed`, plus
/// one `fault.injected` per fault the injector fired), correlated to
/// the run, application, cell and pool worker.
fn run_cell_resilient(
    captured: &CapturedStream,
    cell: &CellSpec,
    policy: &FleetPolicy,
    parent_metrics: &Metrics,
    parent_timeline: &Timeline,
) -> CellRun {
    let cell_name = cell_point(&captured.app, cell.technology);
    let corr = policy
        .events
        .correlation()
        .with_app(captured.app.as_str())
        .with_cell(cell_name.as_str())
        .with_worker(current_worker());

    if policy.resume {
        if let Some(journal) = &policy.journal {
            if let Some(record) = journal.load(&cell_name) {
                // A record from a different capture (changed iterations,
                // changed scale) is stale: re-run rather than restore.
                if record.transactions == captured.transactions() {
                    let (m, tl) = shard_pair(parent_metrics, parent_timeline);
                    if let Some(outcome) = record.restore(&m, &tl) {
                        policy.events.publish(
                            &corr,
                            Event::CellResumed {
                                transactions: record.transactions,
                            },
                        );
                        return CellRun::Done {
                            outcome,
                            metrics: m,
                            timeline: tl,
                            resumed: true,
                        };
                    }
                }
            }
        }
    }

    let mut last_err: Option<NvsimError> = None;
    for attempt in 1..=policy.max_attempts() {
        if attempt > 1 {
            std::thread::sleep(policy.backoff(attempt));
        }
        policy.events.publish(&corr, Event::CellStarted { attempt });
        let (m, tl) = shard_pair(parent_metrics, parent_timeline);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_cell_once(captured, cell, &cell_name, policy, &m, &tl)
        }));
        // The injector logged what it fired during this attempt (even a
        // panic logs before unwinding); publish each firing.
        for kind in policy.faults.take_fired(&cell_name) {
            policy.events.publish(
                &corr,
                Event::FaultInjected {
                    kind: kind.label().to_string(),
                },
            );
        }
        let failure = match result {
            Ok(Ok((outcome, n))) => {
                let journal_err = policy.journal.as_ref().and_then(|journal| {
                    let record = CellRecord::from_run(&cell_name, &outcome, n, &m, &tl);
                    journal.store(&record).err()
                });
                match journal_err {
                    // A cell whose completion cannot be made durable
                    // counts as failed: resuming would silently redo
                    // (or worse, trust) work the journal never saw.
                    Some(e) => e,
                    None => {
                        policy.events.publish(
                            &corr,
                            Event::CellFinished {
                                attempt,
                                transactions: n,
                            },
                        );
                        return CellRun::Done {
                            outcome,
                            metrics: m,
                            timeline: tl,
                            resumed: false,
                        };
                    }
                }
            }
            Ok(Err(e)) => e,
            Err(payload) => NvsimError::WorkerFailed {
                cell: cell_name.clone(),
                cause: panic_message(payload),
            },
        };
        if attempt < policy.max_attempts() {
            policy.events.publish(
                &corr,
                Event::CellRetried {
                    attempt,
                    error: failure.to_string(),
                },
            );
        }
        last_err = Some(failure);
    }
    let error = last_err.unwrap_or_else(|| NvsimError::WorkerFailed {
        cell: cell_name.clone(),
        cause: "no attempt ran".to_string(),
    });
    policy.events.publish(
        &corr,
        Event::CellQuarantined {
            attempts: policy.max_attempts(),
            error: error.to_string(),
        },
    );
    CellRun::Failed {
        error,
        attempts: policy.max_attempts(),
    }
}

/// Drains the policy injector's fired log and publishes one
/// `fault.injected` event per leftover firing — firings the per-cell
/// drain in [`run_cell_resilient`] never claims: probes at non-cell
/// points (e.g. the allocator's `alloc.*` injection sites), or attempts
/// abandoned by an application-level failure. Every fleet entry point
/// calls this at teardown so the shared injector's log is empty — not
/// accumulating — when the run ends, and `--events` streams are
/// complete no matter which entry point drove the sweep. Call only
/// after the worker pool has joined: a mid-run drain could steal a
/// concurrent cell's firing before its own per-cell drain and publish
/// it with point-level (not cell-level) correlation.
pub fn publish_fired(policy: &FleetPolicy) {
    for (point, kind) in policy.faults.take_all_fired() {
        policy.events.publish(
            &policy.events.correlation().with_cell(point.as_str()),
            Event::FaultInjected {
                kind: kind.label().to_string(),
            },
        );
    }
}

/// Replays one captured stream into every cell of `cells` on at most
/// `jobs` workers under a [`FleetPolicy`], returning outcomes in cell
/// order.
///
/// Each cell *attempt* records into a private metrics/timeline shard;
/// after the pool drains, the successful shards are absorbed into
/// `metrics`/`timeline` in cell order, reproducing exactly what a serial
/// loop over the cells would have recorded — counters sum, gauges keep
/// the last cell's value, and the timeline gains one `replay <tech>`
/// span plus `power` instant per cell, in grid order. Failed attempts
/// contribute nothing; quarantined cells appear only in
/// [`SweepOutcome::degraded`].
///
/// # Errors
/// With [`FleetPolicy::fail_fast`], the first quarantined cell's error
/// (in grid order) aborts the sweep. Keep-going sweeps always return
/// `Ok` and report failures in the degraded roster.
pub fn replay_cells_policy(
    captured: &CapturedStream,
    cells: &[CellSpec],
    jobs: usize,
    metrics: &Metrics,
    timeline: &Timeline,
    policy: &FleetPolicy,
) -> Result<SweepOutcome, NvsimError> {
    let sweep_corr = policy
        .events
        .correlation()
        .with_app(captured.app.as_str())
        .with_worker(current_worker());
    policy.events.publish(
        &sweep_corr,
        Event::SweepStarted {
            cells: cells.len() as u64,
        },
    );
    let runs = run_indexed(jobs, cells.len(), |i| {
        run_cell_resilient(captured, &cells[i], policy, metrics, timeline)
    });
    let mut outcomes = Vec::with_capacity(cells.len());
    let mut degraded = Vec::new();
    let mut resumed = 0usize;
    for (i, run) in runs.into_iter().enumerate() {
        match run {
            CellRun::Done {
                outcome,
                metrics: m,
                timeline: tl,
                resumed: was_resumed,
            } => {
                metrics.absorb(&m.snapshot());
                timeline.absorb(&tl);
                if was_resumed {
                    resumed += 1;
                }
                outcomes.push(Some(outcome));
            }
            CellRun::Failed { error, attempts } => {
                if policy.fail_fast {
                    return Err(error);
                }
                degraded.push(DegradedCell {
                    cell: cell_point(&captured.app, cells[i].technology),
                    error: error.to_string(),
                    attempts,
                });
                outcomes.push(None);
            }
        }
    }
    // Leftover firings (non-cell probes, abandoned attempts) are
    // published before the sweep closes, so a caller driving this entry
    // point directly still gets a complete `--events` stream.
    publish_fired(policy);
    policy.events.publish(
        &sweep_corr,
        Event::SweepFinished {
            completed: outcomes.iter().filter(|o| o.is_some()).count() as u64,
            quarantined: degraded.len() as u64,
            resumed: resumed as u64,
        },
    );
    Ok(SweepOutcome {
        outcomes,
        degraded,
        resumed,
    })
}

/// [`replay_cells_policy`] under the strict legacy contract: one attempt
/// per cell, any failure panics with the cell's error. Kept for callers
/// that sweep trusted in-memory captures (the experiment assemblies).
///
/// # Panics
/// On the first failed cell.
pub fn replay_cells(
    captured: &CapturedStream,
    cells: &[CellSpec],
    jobs: usize,
    metrics: &Metrics,
    timeline: &Timeline,
) -> Vec<CellOutcome> {
    match replay_cells_policy(captured, cells, jobs, metrics, timeline, &FleetPolicy::strict()) {
        Ok(sweep) => sweep.outcomes.into_iter().flatten().collect(),
        Err(e) => panic!("fleet cell failed: {e}"),
    }
}

/// One application's policy-driven fleet run: the report plus its share
/// of the degraded roster.
pub struct AppRun {
    /// The application's profile report. Quarantined cells are absent
    /// from [`ProfileReport::power`].
    pub report: ProfileReport,
    /// Quarantined cells, grid order.
    pub degraded: Vec<DegradedCell>,
    /// Cells restored from the journal.
    pub resumed: usize,
}

/// The fleet analogue of [`crate::profile::profile_observed`]: one
/// application through the full instrumented pipeline, with the
/// technology replays captured once and fanned out over `jobs` workers
/// under a [`FleetPolicy`].
///
/// Stage order — characterization, checkpoint comparison, cache-filter
/// capture, technology replays, migration, epoch seal — matches the
/// serial pipeline, and the cell shards are absorbed *before* the
/// migration stage and the epoch recorder's [`EpochRecorder::finish`],
/// so the Tail epoch partitions the `cache.*`/`mem.*`/`placement.*`
/// counters exactly as a serial run does. With `jobs <= 1` the replays
/// run inline and the function is behaviourally identical to
/// `profile_observed`.
///
/// # Errors
/// Application-level errors (the proxy itself failing) always propagate.
/// Cell-level failures propagate only under [`FleetPolicy::fail_fast`];
/// otherwise they land in [`AppRun::degraded`].
pub fn profile_fleet_app_policy(
    app: &mut dyn Application,
    iterations: u32,
    jobs: usize,
    metrics: &Metrics,
    timeline: &Timeline,
    policy: &FleetPolicy,
) -> Result<AppRun, NvsimError> {
    let recorder = EpochRecorder::new(metrics);

    // Run 1: attribution tools (exports trace.* / objects.*).
    let characterization = characterize_observed(app, iterations, metrics, &recorder, timeline)?;

    // Checkpoint-cost comparison for the measured footprint.
    let checkpoints = compare_targets_traced(
        characterization.footprint.total(),
        DEFAULT_MTBF_S,
        timeline,
    );

    // Run 2: the scavenge — tracer + cache filter once, encoded.
    let captured = CapturedStream::capture(app, iterations, metrics, timeline)?;

    // The replay fan-out: one cell per Table IV technology.
    let sweep = replay_cells_policy(&captured, &CellSpec::grid(), jobs, metrics, timeline, policy)?;
    let power: Vec<PowerReport> = sweep
        .outcomes
        .into_iter()
        .flatten()
        .map(|o| o.power)
        .collect();

    // Migration over the run's long-term working set (global + heap).
    let refs: Vec<_> = characterization
        .registry
        .objects()
        .iter()
        .filter(|o| o.region != Region::Stack)
        .map(|o| (&o.metrics, o.metrics.size_bytes))
        .collect();
    // Identical allocator wiring to the serial pipeline: NVRAM residency
    // backed by real frames, then a remount/recover to measure the scan
    // cost. Same region sizing, same stage position — the serial-vs-fleet
    // snapshot byte-identity depends on it (the policy injector is
    // disabled by default, so a clean fleet matches the serial profile;
    // an armed `alloc.*` fault crashes the region mid-run instead).
    let frames = crate::profile::alloc_region_frames(characterization.footprint.total());
    let arena = nvsim_alloc::Arena::new(nvsim_alloc::words_for(frames), policy.faults.clone());
    let (arena, allocator) = match nvsim_alloc::NvAllocator::format(arena.clone(), frames) {
        Ok(a) => (arena, a),
        // Killed at the format seal: remount fault-free and recover the
        // virgin region (reformats), so the run still has an allocator.
        Err(_) => {
            let remounted = arena.remount(nvsim_faults::FaultInjector::disabled());
            let (a, _) = nvsim_alloc::NvAllocator::recover(remounted.clone(), frames)
                .expect("recovering a fault-free region cannot fail");
            (remounted, a)
        }
    };
    let allocator = allocator.with_metrics(metrics);
    let migration = MigrationSimulator::new(MigrationConfig::default())
        .with_metrics(metrics)
        .with_timeline(timeline)
        .with_allocator(&allocator)
        .run(&refs);
    let alloc_stats = allocator.stats();
    let frames = allocator.frames();
    let (_, alloc_recovery) = nvsim_alloc::NvAllocator::recover(
        arena.remount(nvsim_faults::FaultInjector::disabled()),
        frames,
    )
    .expect("recovering a fault-free region cannot fail");
    allocator.note_recovery(&alloc_recovery);

    recorder.finish();
    // The allocator stage runs after the sweep's own drain, so any
    // `alloc.*` firings it provoked are still in the injector's log —
    // publish them before this entry point returns.
    publish_fired(policy);
    let meta = ReportMeta {
        app: app.spec().name.to_string(),
        iterations,
    };
    Ok(AppRun {
        report: ProfileReport {
            characterization,
            transactions: captured.transactions(),
            power,
            migration,
            alloc: alloc_stats,
            alloc_recovery,
            checkpoints,
            snapshot: metrics.snapshot(),
            epochs: recorder.epochs(),
            meta,
        },
        degraded: sweep.degraded,
        resumed: sweep.resumed,
    })
}

/// [`profile_fleet_app_policy`] under the strict legacy contract.
///
/// # Errors
/// Any failed stage or cell.
pub fn profile_fleet_app(
    app: &mut dyn Application,
    iterations: u32,
    jobs: usize,
    metrics: &Metrics,
    timeline: &Timeline,
) -> Result<ProfileReport, NvsimError> {
    profile_fleet_app_policy(app, iterations, jobs, metrics, timeline, &FleetPolicy::strict())
        .map(|run| run.report)
}

/// What a policy-driven whole-fleet run produced.
pub struct FleetRun {
    /// One entry per application, Table I order; `None` marks an
    /// application quarantined by an application-level failure.
    pub reports: Vec<Option<ProfileReport>>,
    /// Quarantined cells and applications: cell entries in application
    /// then grid order, application-level entries named by the bare
    /// application name.
    pub degraded: Vec<DegradedCell>,
    /// Cells restored from the completion journal.
    pub resumed: usize,
}

/// Runs every proxy application through [`profile_fleet_app_policy`]
/// concurrently on at most `jobs` workers, absorbing each application's
/// metrics/timeline shard into `metrics`/`timeline` in Table I
/// application order.
///
/// This is the engine behind `run_all --parallel`: the merged
/// `--metrics-json` snapshot is byte-identical to the serial
/// instrumented pass (counters sum over applications; gauges keep the
/// last application's value, matching serial overwrite order), and the
/// merged timeline carries the identical event sequence. Worker count
/// composes: up to `jobs` applications run at once, each fanning its
/// replay cells over up to `jobs` more workers. An application that
/// fails outright (panic or error outside the replay cells) is
/// quarantined whole: its shard is discarded and it joins the degraded
/// roster under its bare name.
///
/// # Errors
/// With [`FleetPolicy::fail_fast`], the first failure in application
/// order aborts the run.
pub fn profile_fleet_policy(
    scale: AppScale,
    iterations: u32,
    jobs: usize,
    metrics: &Metrics,
    timeline: &Timeline,
    policy: &FleetPolicy,
) -> Result<FleetRun, NvsimError> {
    let names: Vec<String> = all_apps(scale)
        .iter()
        .map(|a| a.spec().name.to_string())
        .collect();
    let names_ref = &names;
    let runs = run_indexed(jobs, names.len(), |i| {
        let (m, tl) = shard_pair(metrics, timeline);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut app = all_apps(scale).remove(i);
            profile_fleet_app_policy(app.as_mut(), iterations, jobs, &m, &tl, policy)
        }));
        let result = match result {
            Ok(inner) => inner,
            Err(payload) => Err(NvsimError::WorkerFailed {
                cell: names_ref[i].clone(),
                cause: panic_message(payload),
            }),
        };
        (m, tl, result)
    });

    let mut reports = Vec::with_capacity(names.len());
    let mut degraded = Vec::new();
    let mut resumed = 0usize;
    for (i, (m, tl, result)) in runs.into_iter().enumerate() {
        match result {
            Ok(run) => {
                metrics.absorb(&m.snapshot());
                timeline.absorb(&tl);
                degraded.extend(run.degraded);
                resumed += run.resumed;
                reports.push(Some(run.report));
            }
            Err(error) => {
                if policy.fail_fast {
                    return Err(error);
                }
                // An application-level failure quarantines the whole
                // app; mirror the degraded roster's bare-name entry on
                // the event stream.
                policy.events.publish(
                    &policy
                        .events
                        .correlation()
                        .with_app(names[i].as_str())
                        .with_cell(names[i].as_str()),
                    Event::CellQuarantined {
                        attempts: 1,
                        error: error.to_string(),
                    },
                );
                degraded.push(DegradedCell {
                    cell: names[i].clone(),
                    error: error.to_string(),
                    attempts: 1,
                });
                reports.push(None);
            }
        }
    }
    // Sweep teardown: drain and publish whatever the per-cell drains
    // never claimed. Safe only after the join above: a mid-run drain
    // could steal a concurrent cell's firings before its own take_fired
    // call.
    publish_fired(policy);
    Ok(FleetRun {
        reports,
        degraded,
        resumed,
    })
}

/// [`profile_fleet_policy`] under the strict legacy contract: any
/// failure aborts the whole fleet.
///
/// # Errors
/// The first failed application or cell, in application order.
pub fn profile_fleet(
    scale: AppScale,
    iterations: u32,
    jobs: usize,
    metrics: &Metrics,
    timeline: &Timeline,
) -> Result<Vec<ProfileReport>, NvsimError> {
    let run = profile_fleet_policy(
        scale,
        iterations,
        jobs,
        metrics,
        timeline,
        &FleetPolicy::strict(),
    )?;
    Ok(run
        .reports
        .into_iter()
        .map(|r| r.expect("strict fleet returned Ok with a missing report"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::filtered_trace;
    use nvsim_apps::Gtc;
    use nvsim_mem::system::replay_all_technologies;

    #[test]
    fn run_indexed_returns_results_in_index_order() {
        for jobs in [1, 2, 8, 64] {
            let got = run_indexed(jobs, 17, |i| i * i);
            let want: Vec<usize> = (0..17).map(|i| i * i).collect();
            assert_eq!(got, want, "jobs={jobs}");
        }
        assert!(run_indexed(4, 0, |i| i).is_empty());
    }

    #[test]
    fn run_indexed_propagates_the_lowest_indexed_panic() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_indexed(4, 8, |i| {
                if i % 2 == 1 {
                    panic!("boom at {i}");
                }
                i
            })
        }))
        .unwrap_err();
        assert_eq!(panic_message(caught), "boom at 1");
    }

    #[test]
    fn cell_points_name_app_and_technology() {
        assert_eq!(cell_point("GTC", MemoryTechnology::Pcram), "GTC/pcram");
        let points = grid_points(AppScale::Test);
        assert_eq!(points.len(), 16, "4 apps x 4 technologies");
        assert!(points.contains(&"Nek5000/ddr3".to_string()));
        assert!(points.contains(&"S3D/sttram".to_string()));
    }

    #[test]
    fn captured_stream_round_trips_the_filtered_trace() {
        let mut app = Gtc::new(AppScale::Test);
        let captured = CapturedStream::capture(
            &mut app,
            2,
            &Metrics::disabled(),
            &Timeline::disabled(),
        )
        .unwrap();
        let mut app2 = Gtc::new(AppScale::Test);
        let direct = filtered_trace(&mut app2, 2).unwrap();
        assert_eq!(captured.transactions(), direct.len() as u64);
        assert_eq!(captured.to_vec().unwrap(), direct);
        // The delta encoding earns its keep: well under the raw record.
        assert!(captured.encoded_len() < direct.len() * 17);
    }

    #[test]
    fn replay_cells_matches_the_serial_replay() {
        let mut app = Gtc::new(AppScale::Test);
        let captured = CapturedStream::capture(
            &mut app,
            1,
            &Metrics::disabled(),
            &Timeline::disabled(),
        )
        .unwrap();
        let serial =
            replay_all_technologies(&captured.to_vec().unwrap(), &SystemConfig::default()).0;
        for jobs in [1, 4] {
            let outcomes = replay_cells(
                &captured,
                &CellSpec::grid(),
                jobs,
                &Metrics::disabled(),
                &Timeline::disabled(),
            );
            assert_eq!(outcomes.len(), 4);
            for (o, s) in outcomes.iter().zip(&serial) {
                assert_eq!(o.power, *s, "jobs={jobs} {}", o.technology);
            }
        }
    }

    #[test]
    fn replay_cells_merges_shards_deterministically() {
        let mut app = Gtc::new(AppScale::Test);
        let captured = CapturedStream::capture(
            &mut app,
            1,
            &Metrics::disabled(),
            &Timeline::disabled(),
        )
        .unwrap();
        let reference = {
            let metrics = Metrics::enabled();
            let timeline = Timeline::enabled();
            replay_cells(&captured, &CellSpec::grid(), 1, &metrics, &timeline);
            (metrics.snapshot().to_json(), timeline_shape(&timeline))
        };
        for jobs in [2, 3, 8] {
            let metrics = Metrics::enabled();
            let timeline = Timeline::enabled();
            replay_cells(&captured, &CellSpec::grid(), jobs, &metrics, &timeline);
            assert_eq!(metrics.snapshot().to_json(), reference.0, "jobs={jobs}");
            assert_eq!(timeline_shape(&timeline), reference.1, "jobs={jobs}");
        }
    }

    /// The timestamp-free view of a journal: everything that must be
    /// schedule-independent.
    fn timeline_shape(tl: &Timeline) -> Vec<(String, String, char, u32)> {
        tl.events()
            .into_iter()
            .map(|e| (e.name, e.cat, e.kind.ph(), e.tid))
            .collect()
    }
}
