//! `nvscav` — the NV-SCAVENGER command-line tool.
//!
//! ```text
//! nvscav list
//! nvscav characterize <app> [--scale test|small|bench] [--iters N] [--json out.json]
//! nvscav power        <app> [--scale ...] [--iters N]
//! nvscav latency      <app> [--scale ...]
//! nvscav plan         <app> [--scale ...] [--iters N]
//! nvscav record       <app> --out trace.nvsc [--scale ...] [--iters N]
//! nvscav replay       --in trace.nvsc
//! ```
//!
//! `record`/`replay` exercise the offline-trace path of §III-D: `record`
//! runs an application once and stores the compressed event stream;
//! `replay` re-runs the full attribution analysis from the file without
//! re-executing the application.

use nv_scavenger::pipeline::characterize;
use nv_scavenger::FastStackSink;
use nvsim_apps::{all_apps, AppScale, Application};
use nvsim_cpu::{sweep_technologies, CoreParams, CpuSink};
use nvsim_mem::system::replay_all_technologies;
use nvsim_objects::report::object_summaries;
use nvsim_objects::{ObjectRegistry, RegistryConfig};
use nvsim_placement::{classify, plan, PlacementPolicy};
use nvsim_trace::{replay_trace, TeeSink, TraceWriter, Tracer};
use nvsim_types::{DeviceProfile, Region, SystemConfig};
use std::process::ExitCode;

struct Cli {
    scale: AppScale,
    iters: u32,
    out: Option<String>,
    input: Option<String>,
    json: Option<String>,
    positional: Vec<String>,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        scale: AppScale::Small,
        iters: 10,
        out: None,
        input: None,
        json: None,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                cli.scale = match it.next().map(String::as_str) {
                    Some("test") => AppScale::Test,
                    Some("small") => AppScale::Small,
                    Some("bench") => AppScale::Bench,
                    other => return Err(format!("bad --scale {other:?}")),
                }
            }
            "--iters" => {
                cli.iters = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--iters needs a number")?;
            }
            "--out" => cli.out = Some(it.next().ok_or("--out needs a path")?.clone()),
            "--in" => cli.input = Some(it.next().ok_or("--in needs a path")?.clone()),
            "--json" => cli.json = Some(it.next().ok_or("--json needs a path")?.clone()),
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => cli.positional.push(other.to_string()),
        }
    }
    Ok(cli)
}

fn find_app(name: &str, scale: AppScale) -> Result<Box<dyn Application>, String> {
    all_apps(scale)
        .into_iter()
        .find(|a| a.spec().name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown app {name}; try `nvscav list`"))
}

fn cmd_list() {
    println!("bundled proxy applications (Table I):");
    for app in all_apps(AppScale::Small) {
        let s = app.spec();
        println!(
            "  {:<10} {:<35} paper footprint {:>4.0} MB/task",
            s.name, s.description, s.paper_footprint_mb
        );
    }
}

fn cmd_characterize(cli: &Cli) -> Result<(), String> {
    let name = cli.positional.first().ok_or("characterize needs an app")?;
    let mut app = find_app(name, cli.scale)?;
    let c = characterize(app.as_mut(), cli.iters).map_err(|e| e.to_string())?;
    println!(
        "{}: {} refs ({} reads / {} writes), footprint {} B",
        app.spec().name,
        c.tracer_stats.refs,
        c.tracer_stats.reads,
        c.tracer_stats.writes,
        c.footprint.total()
    );
    println!(
        "stack: R/W {:.2} (first iter {:.2}), {:.1}% of references",
        c.stack.rw_ratio_steady().unwrap_or(0.0),
        c.stack.rw_ratio_first().unwrap_or(0.0),
        c.stack.stack_reference_share() * 100.0
    );
    println!("\ntop objects:");
    let mut rows = object_summaries(&c.registry, Region::Global);
    rows.extend(object_summaries(&c.registry, Region::Heap));
    rows.sort_by_key(|r| std::cmp::Reverse(r.counts.total()));
    if let Some(path) = &cli.json {
        let dump = serde_json::json!({
            "app": app.spec().name,
            "scale_divisor": cli.scale.divisor(),
            "iterations": cli.iters,
            "stack": c.stack,
            "footprint": c.footprint,
            "objects": rows,
        });
        let text = serde_json::to_string_pretty(&dump).map_err(|e| e.to_string())?;
        nvsim_obs::artifact::write_text(std::path::Path::new(path), &text)?;
        println!("(wrote {path})");
    }
    for o in rows.iter().take(12) {
        println!(
            "  {:<24} {:<7} {:>12} refs  ratio {}",
            o.name,
            o.region.to_string(),
            o.counts.total(),
            nvsim_bench_fmt(o.rw_ratio)
        );
    }
    Ok(())
}

fn nvsim_bench_fmt(r: Option<f64>) -> String {
    match r {
        None => "-".into(),
        Some(x) if x.is_infinite() => "read-only".into(),
        Some(x) => format!("{x:.2}"),
    }
}

fn cmd_power(cli: &Cli) -> Result<(), String> {
    let name = cli.positional.first().ok_or("power needs an app")?;
    let mut app = find_app(name, cli.scale)?;
    let txns = nv_scavenger::experiments::filtered_trace(app.as_mut(), cli.iters)
        .map_err(|e| e.to_string())?;
    println!("{} main-memory transactions after cache filtering", txns.len());
    let (reports, normalized) = replay_all_technologies(&txns, &SystemConfig::default());
    for (r, n) in reports.iter().zip(&normalized) {
        println!(
            "  {:<8} {:>8.1} mW  normalized {:.3}",
            r.technology,
            r.total_mw(),
            n
        );
    }
    Ok(())
}

fn cmd_latency(cli: &Cli) -> Result<(), String> {
    let name = cli
        .positional
        .first()
        .ok_or("latency needs an app")?
        .clone();
    let scale = cli.scale;
    let points = sweep_technologies(&CoreParams::default(), |params| {
        let mut app = find_app(&name, scale).expect("validated above");
        let mut sink = CpuSink::for_iterations(params, 0, 1);
        {
            let mut tracer = Tracer::new(&mut sink);
            app.run(&mut tracer, 1).expect("run");
            tracer.finish();
        }
        sink.result().expect("finished")
    });
    for p in &points {
        println!(
            "  {:<8} {:>5} ns  {:>12} cycles  normalized {:.3}",
            p.technology, p.latency_ns, p.result.cycles, p.normalized_runtime
        );
    }
    Ok(())
}

fn cmd_plan(cli: &Cli) -> Result<(), String> {
    let name = cli.positional.first().ok_or("plan needs an app")?;
    let mut app = find_app(name, cli.scale)?;
    let c = characterize(app.as_mut(), cli.iters).map_err(|e| e.to_string())?;
    let mut objects = object_summaries(&c.registry, Region::Global);
    objects.extend(object_summaries(&c.registry, Region::Heap));
    for (label, policy) in [
        ("category 2 (STTRAM-like)", PlacementPolicy::category2()),
        ("category 1 (PCRAM-like)", PlacementPolicy::category1()),
    ] {
        let rep = classify(&objects, &policy);
        let hybrid = plan(&rep, &DeviceProfile::ddr3(), 1.25);
        println!(
            "{label}: {:.1}% suitable -> plan {} B DRAM + {} B NVRAM, {:.1} mW standby saved",
            rep.suitable_fraction() * 100.0,
            hybrid.dram_bytes,
            hybrid.nvram_bytes,
            hybrid.standby_saving_mw
        );
    }
    Ok(())
}

fn cmd_record(cli: &Cli) -> Result<(), String> {
    let name = cli.positional.first().ok_or("record needs an app")?;
    let out = cli.out.as_ref().ok_or("record needs --out <path>")?;
    let mut app = find_app(name, cli.scale)?;
    let mut writer = TraceWriter::new();
    {
        let mut tracer = Tracer::new(&mut writer);
        app.run(&mut tracer, cli.iters).map_err(|e| e.to_string())?;
        tracer.finish();
    }
    let events = writer.events();
    let bytes = writer.into_bytes();
    nvsim_obs::atomic_write(std::path::Path::new(out), &bytes).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "recorded {events} events ({} bytes, {:.2} B/event) to {out}",
        bytes.len(),
        bytes.len() as f64 / events as f64
    );
    Ok(())
}

fn cmd_replay(cli: &Cli) -> Result<(), String> {
    let input = cli.input.as_ref().ok_or("replay needs --in <path>")?;
    let data = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    let mut registry = ObjectRegistry::new(RegistryConfig::default());
    let mut stack = FastStackSink::new();
    let events = {
        let mut tee = TeeSink::new(vec![&mut registry, &mut stack]);
        // A truncated or bit-flipped tracefile surfaces here as a
        // `Corrupt` error naming the failing frame and byte offset.
        replay_trace(bytes::Bytes::from(data), &mut tee, 65536)
            .map_err(|e| format!("{input}: {e}"))?
    };
    println!("replayed {events} events from {input}");
    println!(
        "stack: R/W {:.2}, {:.1}% of references",
        stack.report().rw_ratio_all().unwrap_or(0.0),
        stack.report().stack_reference_share() * 100.0
    );
    println!(
        "objects: {} tracked over {} iterations, {} main-loop refs",
        registry.objects().len(),
        registry.iterations_seen(),
        registry.total_refs()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        eprintln!("usage: nvscav <list|characterize|power|latency|plan|record|replay> ...");
        return ExitCode::FAILURE;
    };
    let cli = match parse_cli(&args[1..]) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "characterize" => cmd_characterize(&cli),
        "power" => cmd_power(&cli),
        "latency" => cmd_latency(&cli),
        "plan" => cmd_plan(&cli),
        "record" => cmd_record(&cli),
        "replay" => cmd_replay(&cli),
        other => Err(format!("unknown command {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
