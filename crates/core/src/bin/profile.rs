//! `profile` — run one application through the fully instrumented
//! pipeline and print the per-layer metrics breakdown.
//!
//! ```text
//! profile --app <name> [--scale test|small|bench] [--iters N]
//!         [--json out.json] [--timeline out.trace.json] [--report out.md|out.json]
//!         [--store DIR]
//! ```
//!
//! Every stage of the Figure 1 pipeline is bound to one `nvsim-obs`
//! registry: the tracer and object registry (`trace.*`, `objects.*`),
//! the L1/L2 cache filter (`cache.*`), the four Table IV memory replays
//! (`mem.<tech>.*`) and the migration simulator (`placement.*`). The
//! metric names and units are documented in `docs/METRICS.md`; the JSON
//! layout is described in EXPERIMENTS.md ("Reading the metrics output").
//!
//! `--timeline` writes the run's event journal as Chrome trace-event
//! JSON (open it at <https://ui.perfetto.dev>). `--report` writes the
//! consolidated run report — Markdown unless the path ends in `.json`.
//! `--store` writes the per-epoch counter deltas to
//! `DIR/profile.nvstore`, queryable with `nvq` (see docs/STORE.md).

use nv_scavenger::profile::profile_observed;
use nvsim_apps::{all_apps, AppScale, Application};
use nvsim_obs::artifact::write_text;
use nvsim_obs::{Metrics, Timeline};
use std::path::Path;
use std::process::ExitCode;

struct Cli {
    app: Option<String>,
    scale: AppScale,
    iters: u32,
    json: Option<String>,
    timeline: Option<String>,
    report: Option<String>,
    store: Option<String>,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        app: None,
        scale: AppScale::Small,
        iters: 10,
        json: None,
        timeline: None,
        report: None,
        store: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--app" => cli.app = Some(it.next().ok_or("--app needs a name")?.clone()),
            "--scale" => {
                cli.scale = match it.next().map(String::as_str) {
                    Some("test") => AppScale::Test,
                    Some("small") => AppScale::Small,
                    Some("bench") => AppScale::Bench,
                    other => return Err(format!("bad --scale {other:?}")),
                }
            }
            "--iters" => {
                cli.iters = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--iters needs a number")?;
            }
            "--json" => cli.json = Some(it.next().ok_or("--json needs a path")?.clone()),
            "--timeline" => {
                cli.timeline = Some(it.next().ok_or("--timeline needs a path")?.clone())
            }
            "--report" => cli.report = Some(it.next().ok_or("--report needs a path")?.clone()),
            "--store" => cli.store = Some(it.next().ok_or("--store needs a dir")?.clone()),
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            // Allow the app as a bare positional too: `profile gtc`.
            other => cli.app = Some(other.to_string()),
        }
    }
    Ok(cli)
}

fn find_app(name: &str, scale: AppScale) -> Result<Box<dyn Application>, String> {
    all_apps(scale)
        .into_iter()
        .find(|a| a.spec().name.eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let names: Vec<&str> = all_apps(scale).iter().map(|a| a.spec().name).collect();
            format!("unknown app {name}; bundled apps: {}", names.join(", "))
        })
}

fn run(cli: &Cli) -> Result<(), String> {
    let name = cli.app.as_ref().ok_or(
        "usage: profile --app <name> [--scale test|small|bench] [--iters N] \
         [--json out.json] [--timeline out.trace.json] [--report out.md|out.json] \
         [--store DIR]",
    )?;
    let mut app = find_app(name, cli.scale)?;
    let metrics = Metrics::enabled();
    // The journal costs a lock per event, so only keep one when some
    // output actually wants it (the report embeds its event counts).
    let timeline = if cli.timeline.is_some() || cli.report.is_some() {
        Timeline::enabled()
    } else {
        Timeline::disabled()
    };
    let report = profile_observed(app.as_mut(), cli.iters, &metrics, &timeline)
        .map_err(|e| e.to_string())?;

    println!(
        "{} @ 1/{} scale, {} iterations: {} refs -> {} main-memory transactions",
        app.spec().name,
        cli.scale.divisor(),
        cli.iters,
        report.characterization.tracer_stats.refs,
        report.transactions
    );
    println!(
        "objects: {} tracked, stack share {:.1}%, migration moved {} B for {:.2}% NVRAM residency",
        report.characterization.registry.objects().len(),
        report.characterization.stack.stack_reference_share() * 100.0,
        report.migration.bytes_moved,
        report.migration.nvram_residency() * 100.0
    );
    for p in &report.power {
        println!("  {:<8} {:>8.1} mW", p.technology, p.total_mw());
    }
    println!("\n{}", report.snapshot.to_table());

    if let Some(path) = &cli.json {
        write_text(Path::new(path), &report.snapshot.to_json())?;
        println!("(wrote {path})");
    }
    if let Some(path) = &cli.timeline {
        write_text(Path::new(path), &timeline.to_chrome_json())?;
        println!(
            "(wrote {path}: {} events, {} dropped — open at ui.perfetto.dev)",
            timeline.len(),
            timeline.dropped()
        );
    }
    if let Some(dir) = &cli.store {
        let path = nv_scavenger::write_epochs(&report.meta.app, &report.epochs, Path::new(dir))
            .map_err(|e| e.to_string())?;
        println!("(wrote {})", path.display());
    }
    if let Some(path) = &cli.report {
        let rr = report.run_report(&timeline);
        let rendered = if path.ends_with(".json") {
            rr.to_json()
        } else {
            rr.to_markdown()
        };
        write_text(Path::new(path), &rendered)?;
        println!("(wrote {path})");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
