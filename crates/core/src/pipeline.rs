//! Single-run characterization: one instrumented execution feeding the
//! object registry and the fast stack tool simultaneously (Figure 1).

use crate::stack_fast::{FastStackSink, StackReport};
use nvsim_apps::Application;
use nvsim_objects::{ObjectRegistry, RegistryConfig};
use nvsim_obs::{EpochRecorder, Metrics, Timeline};
use nvsim_trace::{TeeSink, Tracer, TracerStats};
use nvsim_types::NvsimError;
use serde::{Deserialize, Serialize};

/// Footprint measured during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Footprint {
    /// Bytes in the global segment.
    pub global_bytes: u64,
    /// Peak live heap bytes.
    pub heap_peak_bytes: u64,
}

impl Footprint {
    /// Total footprint.
    pub fn total(&self) -> u64 {
        self.global_bytes + self.heap_peak_bytes
    }
}

/// Everything one characterization run produces.
pub struct Characterization {
    /// The full object registry (heap + global + per-routine stack).
    pub registry: ObjectRegistry,
    /// The fast stack tool's Table V report.
    pub stack: StackReport,
    /// Tracer-level counters.
    pub tracer_stats: TracerStats,
    /// Measured footprint.
    pub footprint: Footprint,
}

/// Runs `app` for `iterations` main-loop iterations with the full sink
/// stack attached.
pub fn characterize(
    app: &mut dyn Application,
    iterations: u32,
) -> Result<Characterization, NvsimError> {
    characterize_with_metrics(app, iterations, &Metrics::disabled())
}

/// Like [`characterize`], but binds every pipeline stage (tracer, tee
/// fan-out, object registry) to `metrics` so the run also exports
/// `trace.*` and `objects.*` instruments. With a disabled handle this is
/// exactly [`characterize`]: the instruments compile to no-ops and the
/// returned [`Characterization`] is identical.
pub fn characterize_with_metrics(
    app: &mut dyn Application,
    iterations: u32,
    metrics: &Metrics,
) -> Result<Characterization, NvsimError> {
    characterize_observed(
        app,
        iterations,
        metrics,
        &EpochRecorder::disabled(),
        &Timeline::disabled(),
    )
}

/// Like [`characterize_with_metrics`], but additionally binds the tracer
/// to an [`EpochRecorder`] (each §VI phase boundary closes a metric
/// window) and a [`Timeline`] (phases render as begin/end spans). Both
/// have disabled flavours, so this is the most general entry point; the
/// narrower functions delegate here.
pub fn characterize_observed(
    app: &mut dyn Application,
    iterations: u32,
    metrics: &Metrics,
    epochs: &EpochRecorder,
    timeline: &Timeline,
) -> Result<Characterization, NvsimError> {
    let mut registry = ObjectRegistry::new(RegistryConfig::default());
    registry.set_metrics(metrics);
    let mut fast = FastStackSink::new();
    let (tracer_stats, footprint, routines) = {
        let mut tee = TeeSink::new(vec![&mut registry, &mut fast]);
        tee.set_metrics(metrics);
        let mut tracer = Tracer::new(&mut tee);
        tracer.set_metrics(metrics);
        tracer.set_epochs(epochs);
        tracer.set_timeline(timeline);
        app.run(&mut tracer, iterations)?;
        tracer.finish();
        let (_, heap_peak) = tracer.heap_stats();
        (
            tracer.stats(),
            Footprint {
                global_bytes: tracer.global_bytes(),
                heap_peak_bytes: heap_peak,
            },
            tracer.routines().clone(),
        )
    };
    registry.resolve_stack_names(&routines);
    Ok(Characterization {
        registry,
        stack: fast.into_report(),
        tracer_stats,
        footprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim_apps::{AppScale, Gtc, Nek5000};
    use nvsim_types::Region;

    #[test]
    fn characterize_nek_produces_all_reports() {
        let mut app = Nek5000::new(AppScale::Test);
        let c = characterize(&mut app, 3).unwrap();
        assert!(c.registry.finished());
        assert_eq!(c.registry.iterations_seen(), 3);
        assert_eq!(c.stack.iterations.len(), 3);
        assert!(c.footprint.total() > 100_000);
        assert!(c.tracer_stats.refs > 10_000);
        // All three regions have objects.
        for r in Region::ALL {
            assert!(
                c.registry.objects_in(r).count() > 0,
                "no objects in {r}"
            );
        }
        // Fast tool and registry agree on the stack share within a
        // fraction of a percent (the fast tool counts the live-stack
        // window, the registry attributes via the shadow stack).
        let fast_share = c.stack.stack_reference_share();
        let reg_share = c.registry.region_total(Region::Stack).total() as f64
            / c.registry.total_refs() as f64;
        assert!(
            (fast_share - reg_share).abs() < 0.01,
            "fast {fast_share} vs registry {reg_share}"
        );
    }

    #[test]
    fn gtc_stack_share_is_lowest_shape() {
        let mut gtc = Gtc::new(AppScale::Test);
        let c = characterize(&mut gtc, 2).unwrap();
        let share = c.stack.stack_reference_share();
        assert!(share < 0.6, "GTC stack share should be low: {share}");
    }
}
