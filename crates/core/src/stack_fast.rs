//! The fast whole-stack analysis tool (§III-A, first method).
//!
//! "In the first method, we record the number of read and write operations
//! to the entire program stack. In particular, for each memory reference,
//! we record the current stack pointer besides the memory reference
//! information. We also record the maximum value that the stack pointer
//! has had during the execution of the program. Assuming that the stack
//! pointer grows downwards, if the effective memory address stays between
//! the maximum stack pointer and the current stack pointer, this memory
//! reference is counted as a stack memory reference. ... it is
//! light-weighted and much faster than the second method."
//!
//! This sink needs no object registry, no shadow stack and no address
//! index — just the per-reference stack pointer already carried by
//! [`MemRef`] — and produces exactly the Table V columns.

use nvsim_trace::{Event, EventSink, Phase};
use nvsim_types::{AccessCounts, MemRef, VirtAddr};
use serde::{Deserialize, Serialize};

/// Per-iteration counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StackIterationRow {
    /// References classified as stack.
    pub stack: AccessCounts,
    /// All references in the iteration.
    pub total: AccessCounts,
}

impl StackIterationRow {
    /// Stack read/write ratio for the iteration.
    pub fn rw_ratio(&self) -> Option<f64> {
        self.stack.read_write_ratio()
    }

    /// Fraction of the iteration's references that hit the stack.
    pub fn stack_share(&self) -> f64 {
        if self.total.total() == 0 {
            0.0
        } else {
            self.stack.total() as f64 / self.total.total() as f64
        }
    }
}

/// The Table V row produced for one application.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StackReport {
    /// Per main-loop-iteration counters.
    pub iterations: Vec<StackIterationRow>,
}

impl StackReport {
    /// Aggregate stack read/write ratio over iterations `1..` (the paper
    /// reports CAM's steady-state ratio excluding the first iteration).
    pub fn rw_ratio_steady(&self) -> Option<f64> {
        let mut acc = AccessCounts::ZERO;
        for row in self.iterations.iter().skip(1) {
            acc += row.stack;
        }
        if self.iterations.len() <= 1 {
            return self.rw_ratio_all();
        }
        acc.read_write_ratio()
    }

    /// First-iteration stack read/write ratio (the parenthesized CAM value
    /// in Table V).
    pub fn rw_ratio_first(&self) -> Option<f64> {
        self.iterations.first().and_then(|r| r.rw_ratio())
    }

    /// Aggregate ratio over all iterations.
    pub fn rw_ratio_all(&self) -> Option<f64> {
        let mut acc = AccessCounts::ZERO;
        for row in &self.iterations {
            acc += row.stack;
        }
        acc.read_write_ratio()
    }

    /// Stack reference percentage over the whole main loop (Table V,
    /// column 3).
    pub fn stack_reference_share(&self) -> f64 {
        let stack: u64 = self.iterations.iter().map(|r| r.stack.total()).sum();
        let total: u64 = self.iterations.iter().map(|r| r.total.total()).sum();
        if total == 0 {
            0.0
        } else {
            stack as f64 / total as f64
        }
    }
}

/// The fast stack tool.
pub struct FastStackSink {
    max_sp: VirtAddr,
    current: StackIterationRow,
    in_iteration: bool,
    report: StackReport,
}

impl Default for FastStackSink {
    fn default() -> Self {
        Self::new()
    }
}

impl FastStackSink {
    /// Creates the sink.
    pub fn new() -> Self {
        FastStackSink {
            max_sp: VirtAddr::NULL,
            current: StackIterationRow::default(),
            in_iteration: false,
            report: StackReport::default(),
        }
    }

    /// The finished report.
    pub fn report(&self) -> &StackReport {
        &self.report
    }

    /// Consumes the sink, returning the report.
    pub fn into_report(self) -> StackReport {
        self.report
    }

    #[inline]
    fn classify(&mut self, r: &MemRef) {
        // Track the highest stack-pointer value seen (stack grows down).
        if r.sp > self.max_sp {
            self.max_sp = r.sp;
        }
        let is_write = r.kind.is_write();
        self.current.total.record(is_write);
        if r.addr >= r.sp && r.addr < self.max_sp {
            self.current.stack.record(is_write);
        }
    }
}

impl EventSink for FastStackSink {
    fn on_batch(&mut self, refs: &[MemRef]) {
        if !self.in_iteration {
            return; // Table V instruments the main computation loop only.
        }
        for r in refs {
            self.classify(r);
        }
    }

    fn on_control(&mut self, event: &Event) {
        match event {
            // A call instruction reads the stack pointer before pushing
            // the frame: the caller's sp (= the new frame's base) is a
            // stack-pointer observation too, and the outermost one is the
            // program's initial stack pointer — the "maximum value the
            // stack pointer has had".
            Event::RoutineEnter { frame_base, .. }
                if *frame_base > self.max_sp => {
                    self.max_sp = *frame_base;
                }
            Event::Phase(p) => match p {
                Phase::IterationBegin(_) => {
                    self.in_iteration = true;
                    self.current = StackIterationRow::default();
                }
                Phase::IterationEnd(_) => {
                    self.in_iteration = false;
                    self.report.iterations.push(self.current);
                }
                _ => {}
            },
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim_trace::{TracedVec, Tracer};

    #[test]
    fn classifies_stack_vs_global() {
        let mut sink = FastStackSink::new();
        {
            let mut t = Tracer::new(&mut sink);
            let rid = t.register_routine("app", "kern");
            let mut g = TracedVec::<f64>::global(&mut t, "g", 64).unwrap();
            for iter in 0..2 {
                t.phase(Phase::IterationBegin(iter));
                let mut frame = t.call(rid, 512).unwrap();
                let mut local = TracedVec::<f64>::on_stack(&mut frame, 16);
                for i in 0..16 {
                    let v = g.get(&mut t, i); // global read
                    local.set(&mut t, i, v); // stack write
                    let a = local.get(&mut t, i); // stack read
                    let b = local.get(&mut t, (i + 1) % 16); // stack read
                    g.set(&mut t, i, a + b); // global write
                }
                t.ret(rid).unwrap();
                t.phase(Phase::IterationEnd(iter));
            }
            t.finish();
        }
        let rep = sink.report();
        assert_eq!(rep.iterations.len(), 2);
        let row = rep.iterations[0];
        // Per inner step: 2 global refs + 3 stack refs.
        assert_eq!(row.total.total(), 16 * 5);
        assert_eq!(row.stack.total(), 16 * 3);
        assert!((row.stack_share() - 0.6).abs() < 1e-12);
        // Stack: 2 reads / 1 write per step.
        assert!((row.rw_ratio().unwrap() - 2.0).abs() < 1e-12);
        assert!((rep.stack_reference_share() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn pre_and_post_phase_refs_are_excluded() {
        let mut sink = FastStackSink::new();
        {
            let mut t = Tracer::new(&mut sink);
            let mut g = TracedVec::<f64>::global(&mut t, "g", 8).unwrap();
            t.phase(Phase::PreComputeBegin);
            g.fill(&mut t, 1.0);
            t.phase(Phase::IterationBegin(0));
            let _ = g.get(&mut t, 0);
            t.phase(Phase::IterationEnd(0));
            t.phase(Phase::PostProcessBegin);
            g.fill(&mut t, 2.0);
            t.finish();
        }
        let rep = sink.report();
        assert_eq!(rep.iterations.len(), 1);
        assert_eq!(rep.iterations[0].total.total(), 1);
    }

    #[test]
    fn steady_vs_first_iteration_split() {
        let mut rep = StackReport::default();
        let row = |r, w| StackIterationRow {
            stack: AccessCounts::new(r, w),
            total: AccessCounts::new(r + 10, w + 10),
        };
        rep.iterations.push(row(10, 2)); // first: ratio 5
        rep.iterations.push(row(100, 5)); // steady: ratio 20
        rep.iterations.push(row(100, 5));
        assert!((rep.rw_ratio_first().unwrap() - 5.0).abs() < 1e-12);
        assert!((rep.rw_ratio_steady().unwrap() - 20.0).abs() < 1e-12);
        let all = rep.rw_ratio_all().unwrap();
        assert!(all > 5.0 && all < 20.0);
    }
}
